// OVER — the Over-Valued Erdős–Rényi expander overlay (Section 2,
// "Background on OVER"; pseudo-code deferred by the paper to the long
// version [16], reconstructed here — see DESIGN.md §5).
//
// Vertices are clusters; an overlay edge {C, D} means every node of C is
// linked to every node of D. OVER must preserve, over polynomially many
// vertex additions and removals:
//   Property 1: isoperimetric constant I(G) >= log^{1+alpha}(N) / 2,
//   Property 2: maximum degree <= c * log^{1+alpha}(N).
//
// Reconstruction: keep the graph close to a random near-regular graph of
// target degree d* = Theta(log^{1+alpha} N).
//   * initialize: G(m, p) with p = d*/(m-1) ("over-valued" relative to the
//     connectivity threshold), then bring every vertex up to the degree
//     floor with random edges;
//   * Add(v): connect v to d* distinct random clusters (drawn through the
//     caller-supplied sampler — randCl in the full protocol), respecting the
//     degree cap;
//   * Remove(v): drop v; any ex-neighbor left under the floor draws fresh
//     random edges.
// Random near-regular graphs of degree d have edge expansion Theta(d) whp,
// which is exactly Property 1; bench_props_overlay measures both properties
// under long churn.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace now::over {

struct OverParams {
  /// N — the maximum network size; degrees scale as log^{1+alpha} N.
  std::uint64_t max_size = 1 << 16;
  /// The paper's arbitrarily small constant alpha > 0.
  double alpha = 0.1;
  /// Degree constant: d* = max(3, ceil(c * ln^{1+alpha} N)).
  double degree_constant = 1.0;
  /// Degree cap multiplier: Property 2's constant (cap = cap_factor * d*).
  double cap_factor = 3.0;
};

class Overlay {
 public:
  /// Draws a uniformly (or size-biasedly — the bias is irrelevant to the
  /// expander's structure) random *existing* cluster on behalf of
  /// `requester` (the vertex that needs a fresh edge; NOW starts the randCl
  /// walk there). Standalone tests use a plain uniform sampler that ignores
  /// the requester.
  using Sampler = std::function<ClusterId(ClusterId requester, Rng&)>;

  explicit Overlay(const OverParams& params) : params_(params) {}

  [[nodiscard]] std::size_t target_degree() const;
  [[nodiscard]] std::size_t degree_floor() const;
  [[nodiscard]] std::size_t degree_cap() const;

  /// Builds the initial overlay over `clusters` as over-valued Erdős–Rényi
  /// plus floor repair. Any previous content is discarded.
  void initialize(const std::vector<ClusterId>& clusters, Rng& rng);

  /// OVER's Add: inserts a new vertex and wires it to up to target_degree()
  /// distinct sampled clusters. Returns the chosen neighbors.
  std::vector<ClusterId> add_vertex(ClusterId v, const Sampler& sampler,
                                    Rng& rng);

  /// OVER's Remove: deletes the vertex and repairs ex-neighbors that fell
  /// under the degree floor with fresh sampled edges.
  void remove_vertex(ClusterId v, const Sampler& sampler, Rng& rng);

  [[nodiscard]] bool has(ClusterId v) const;
  [[nodiscard]] std::size_t degree(ClusterId v) const;
  [[nodiscard]] std::vector<ClusterId> neighbors(ClusterId v) const;
  [[nodiscard]] std::size_t num_clusters() const;

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] const OverParams& params() const { return params_; }

  /// Snapshot restore hook (core/snapshot.cpp): the adjacency — including
  /// its dense vertex order, which random draws index — is serialized
  /// verbatim and rebuilt through this mutable view. Not for protocol use.
  [[nodiscard]] graph::Graph& graph_for_restore() { return graph_; }

 private:
  /// Adds sampled edges to v until its degree reaches `goal` (best effort,
  /// bounded retries; respects the degree cap on both endpoints).
  void wire_random_edges(ClusterId v, std::size_t goal, const Sampler& sampler,
                         Rng& rng);

  OverParams params_;
  graph::Graph graph_;
};

}  // namespace now::over
