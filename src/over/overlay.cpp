#include "over/overlay.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.hpp"
#include "graph/erdos_renyi.hpp"

namespace now::over {

namespace {

graph::Vertex as_vertex(ClusterId id) { return id.value(); }
ClusterId as_cluster(graph::Vertex v) { return ClusterId{v}; }

}  // namespace

std::size_t Overlay::target_degree() const {
  const double d = params_.degree_constant *
                   log_pow(static_cast<double>(params_.max_size),
                           1.0 + params_.alpha);
  return std::max<std::size_t>(3, static_cast<std::size_t>(std::ceil(d)));
}

std::size_t Overlay::degree_floor() const {
  return std::max<std::size_t>(2, target_degree() / 2);
}

std::size_t Overlay::degree_cap() const {
  return static_cast<std::size_t>(
      std::ceil(params_.cap_factor * static_cast<double>(target_degree())));
}

void Overlay::initialize(const std::vector<ClusterId>& clusters, Rng& rng) {
  graph_ = graph::Graph{};
  std::vector<graph::Vertex> verts;
  verts.reserve(clusters.size());
  for (const ClusterId c : clusters) verts.push_back(as_vertex(c));

  const std::size_t m = verts.size();
  if (m == 0) return;
  const double p =
      m <= 1 ? 0.0
             : std::min(1.0, static_cast<double>(target_degree()) /
                                 static_cast<double>(m - 1));
  graph::generate_erdos_renyi(graph_, verts, p, rng);

  // Floor repair: ER leaves a few vertices under-connected at small m.
  const std::size_t floor_deg = std::min(degree_floor(), m - 1);
  for (const graph::Vertex v : verts) {
    while (graph_.degree(v) < floor_deg) {
      const graph::Vertex u = graph_.random_vertex(rng);
      if (u == v || graph_.has_edge(v, u)) continue;
      graph_.add_edge(v, u);
    }
  }
}

void Overlay::wire_random_edges(ClusterId v, std::size_t goal,
                                const Sampler& sampler, Rng& rng) {
  const graph::Vertex vv = as_vertex(v);
  const std::size_t m = graph_.num_vertices();
  if (m <= 1) return;
  const std::size_t reachable_goal = std::min(goal, m - 1);
  // Bounded retries: sampled duplicates / cap-saturated targets are skipped.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 10 * goal + 20;
  while (graph_.degree(vv) < reachable_goal && attempts < max_attempts) {
    ++attempts;
    const ClusterId pick = sampler(v, rng);
    const graph::Vertex u = as_vertex(pick);
    if (u == vv || !graph_.has_vertex(u)) continue;
    if (graph_.has_edge(vv, u)) continue;
    if (graph_.degree(u) >= degree_cap()) continue;
    graph_.add_edge(vv, u);
  }
}

std::vector<ClusterId> Overlay::add_vertex(ClusterId v, const Sampler& sampler,
                                           Rng& rng) {
  const bool added = graph_.add_vertex(as_vertex(v));
  assert(added && "vertex already in overlay");
  (void)added;
  wire_random_edges(v, target_degree(), sampler, rng);
  std::vector<ClusterId> result;
  for (const graph::Vertex u : graph_.neighbors(as_vertex(v)))
    result.push_back(as_cluster(u));
  return result;
}

void Overlay::remove_vertex(ClusterId v, const Sampler& sampler, Rng& rng) {
  assert(graph_.has_vertex(as_vertex(v)));
  const std::vector<graph::Vertex> ex_neighbors =
      graph_.neighbors(as_vertex(v));
  graph_.remove_vertex(as_vertex(v));
  const std::size_t floor_deg = degree_floor();
  for (const graph::Vertex u : ex_neighbors) {
    if (!graph_.has_vertex(u)) continue;
    if (graph_.degree(u) < floor_deg) {
      wire_random_edges(as_cluster(u), floor_deg, sampler, rng);
    }
  }
}

bool Overlay::has(ClusterId v) const { return graph_.has_vertex(as_vertex(v)); }

std::size_t Overlay::degree(ClusterId v) const {
  return graph_.degree(as_vertex(v));
}

std::vector<ClusterId> Overlay::neighbors(ClusterId v) const {
  std::vector<ClusterId> result;
  for (const graph::Vertex u : graph_.neighbors(as_vertex(v)))
    result.push_back(as_cluster(u));
  return result;
}

std::size_t Overlay::num_clusters() const { return graph_.num_vertices(); }

}  // namespace now::over
