// Multi-process transport: length-prefixed frames over local TCP.
//
// Topology is a star. One process hosts the hub (SocketHub) and the others
// connect as spokes (SocketSpoke); every data frame routes through the hub,
// even between two endpoints of the same spoke, so the hub observes a total
// order of each round's traffic and can reproduce the in-process delivery
// order exactly (stable sort by sender id — see DESIGN.md §12 for the
// bit-identity argument).
//
// Socket-level framing (all little-endian):  u32 length, u8 kind, body.
// Kinds: DATA carries one net/wire.hpp frame; HELLO/WELCOME handshake a
// spoke in (WELCOME carries the join round, non-zero for processes admitted
// mid-run); OPEN/CLOSE replicate endpoint liveness; DONE/GO implement the
// round barrier. End of run is protocol-level (Tag::kShardBye data), not
// transport-level: a worker that is done simply stops calling end_round
// and closes its socket.
//
// The barrier (hub end_round r): collect frames from every live spoke until
// all have sent DONE(r), admitting new spokes and recording deaths along
// the way; merge the round's data frames with the hub's own, stable-sorted
// by sender; deliver local ones, forward remote ones; broadcast GO(r).
// Spokes block in end_round until GO(r) arrives. A process that dies (EOF /
// write failure) is excluded from the barrier, its endpoints are closed,
// and its process id is reported via drain_dead_processes() so a control
// loop can respawn it; the respawn reconnects and is admitted at the next
// barrier with join_round = current + 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/transport.hpp"

namespace now::net {

/// Hub side: a Transport for the hub process's own actors plus the router
/// and barrier coordinator for all spokes. Create with listen(), then
/// accept_initial() before round 0.
class SocketHub final : public Transport {
 public:
  /// Binds a listening socket on 127.0.0.1 (ephemeral port — see port()).
  /// `expected_spokes` is the number of accept_initial() handshakes.
  [[nodiscard]] static std::unique_ptr<SocketHub> listen(
      std::size_t expected_spokes);

  ~SocketHub() override;
  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until the expected number of spokes have completed the
  /// HELLO/WELCOME handshake (join round 0). Call before the first round.
  void accept_initial();

  // Transport interface (hub-local endpoints).
  void open_endpoint(NodeId id) override;
  bool close_endpoint(NodeId id) override;
  [[nodiscard]] bool is_live(NodeId id) const override;
  void send(Message msg) override;
  void end_round(std::size_t round) override;
  void poll(NodeId id, std::vector<Message>& out) override;

  /// Process ids of spokes that died since the last call (EOF or write
  /// failure observed at a barrier). Their endpoints are already closed.
  [[nodiscard]] std::vector<std::uint64_t> drain_dead_processes();

  /// Spokes currently connected and not dead.
  [[nodiscard]] std::size_t num_live_spokes() const;

 private:
  SocketHub() = default;
  struct Conn;
  struct Endpoint;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

/// Spoke side: the Transport of one worker process. All sends go to the
/// hub; end_round blocks until the hub's GO.
class SocketSpoke final : public Transport {
 public:
  /// Connects to the hub, handshakes HELLO(process_id)/WELCOME(join_round).
  /// Blocks until the hub admits the spoke (for mid-run admission this also
  /// replays the pre-join traffic so round join_round polls correctly).
  [[nodiscard]] static std::unique_ptr<SocketSpoke> connect(
      std::uint16_t port, std::uint64_t process_id);

  ~SocketSpoke() override;
  SocketSpoke(const SocketSpoke&) = delete;
  SocketSpoke& operator=(const SocketSpoke&) = delete;

  void open_endpoint(NodeId id) override;
  bool close_endpoint(NodeId id) override;
  [[nodiscard]] bool is_live(NodeId id) const override;
  void send(Message msg) override;
  void end_round(std::size_t round) override;
  void poll(NodeId id, std::vector<Message>& out) override;
  [[nodiscard]] std::size_t join_round() const override;

 private:
  SocketSpoke() = default;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace now::net
