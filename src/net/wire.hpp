// Versioned byte codec for net::Message frames (the wire format the socket
// transport ships between shard processes).
//
// Frame layout (all little-endian, built on the snapshot writer primitives):
//
//   u8[4]  magic   "NWFR"
//   u8     version (currently 1; decoders reject unknown versions outright,
//                   same policy as snapshots — no cross-version migration)
//   u16    tag
//   u64    from
//   u64    to
//   u64    payload byte count
//   u8[n]  payload bytes
//   u64    FNV-1a-64 checksum of everything above
//
// decode_frame throws WireError on wrong magic, unknown version, unknown
// tag, truncation, trailing bytes, or checksum mismatch — a frame either
// round-trips exactly or is rejected, never misparsed. Versioning rules are
// documented in DESIGN.md §12.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace now::net {

/// Thrown on any malformed, truncated or corrupt frame.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Current frame format version. Bump on ANY layout change.
inline constexpr std::uint8_t kWireFormatVersion = 1;

/// Encodes `msg` into a self-contained checksummed frame.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Message& msg);

/// Decodes a frame produced by encode_frame. The span must contain exactly
/// one frame (the socket transport length-prefixes frames, so boundaries
/// are known before decoding).
[[nodiscard]] Message decode_frame(std::span<const std::uint8_t> bytes);

}  // namespace now::net
