#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/wire.hpp"

namespace now::net {

namespace {

enum FrameKind : std::uint8_t {
  kData = 0,
  kHello = 1,
  kWelcome = 2,
  kDone = 3,
  kGo = 4,
  kOpen = 5,
  kClose = 6,
};

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

/// Assembles one socket frame: u32 length | u8 kind | body.
[[nodiscard]] std::vector<std::uint8_t> make_frame(
    FrameKind kind, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> frame;
  frame.reserve(5 + body.size());
  const auto len = static_cast<std::uint32_t>(1 + body.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  frame.push_back(static_cast<std::uint8_t>(kind));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

[[nodiscard]] std::vector<std::uint8_t> make_u64_frame(FrameKind kind,
                                                       std::uint64_t value) {
  std::vector<std::uint8_t> body;
  put_u64(body, value);
  return make_frame(kind, body);
}

/// Blocking full write; false on any error (peer gone). MSG_NOSIGNAL keeps
/// a dead peer from killing the process with SIGPIPE.
[[nodiscard]] bool write_all(int fd, const std::uint8_t* data,
                             std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

[[nodiscard]] bool write_frame(int fd, const std::vector<std::uint8_t>& f) {
  return write_all(fd, f.data(), f.size());
}

struct ParsedFrame {
  FrameKind kind;
  std::span<const std::uint8_t> body;
};

/// Extracts the next complete frame from `buf` starting at `offset`, or
/// returns false if more bytes are needed. Advances `offset` past the frame.
[[nodiscard]] bool next_frame(const std::vector<std::uint8_t>& buf,
                              std::size_t& offset, ParsedFrame& out) {
  if (buf.size() - offset < 4) return false;
  const std::uint32_t len = get_u32(buf.data() + offset);
  if (len < 1) throw TransportError("socket frame with empty body");
  if (buf.size() - offset < 4 + static_cast<std::size_t>(len)) return false;
  out.kind = static_cast<FrameKind>(buf[offset + 4]);
  out.body = std::span<const std::uint8_t>(buf.data() + offset + 5, len - 1);
  offset += 4 + static_cast<std::size_t>(len);
  return true;
}

void compact(std::vector<std::uint8_t>& buf, std::size_t offset) {
  if (offset == 0) return;
  buf.erase(buf.begin(),
            buf.begin() + static_cast<std::ptrdiff_t>(offset));
}

/// Blocking read of at least one more byte into `buf`; false on EOF.
[[nodiscard]] bool read_some_blocking(int fd, std::vector<std::uint8_t>& buf) {
  std::uint8_t chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    buf.insert(buf.end(), chunk, chunk + n);
    return true;
  }
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

[[nodiscard]] std::uint64_t body_u64(std::span<const std::uint8_t> body) {
  if (body.size() != 8) throw TransportError("malformed control frame");
  return get_u64(body.data());
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketHub

struct SocketHub::Conn {
  int fd = -1;
  std::uint64_t process_id = 0;
  std::size_t join_round = 0;
  bool done = false;  // sent DONE for the barrier in progress
  bool dead = false;
  std::vector<std::uint8_t> rbuf;
};

struct SocketHub::Endpoint {
  NodeId id;
  bool live = false;
  bool local = false;       // owned by the hub process itself
  std::size_t conn = 0;     // owner index into conns when !local
};

struct SocketHub::Impl {
  int listen_fd = -1;
  std::size_t expected_spokes = 0;
  std::vector<Conn> conns;            // never erased; dead conns stay
  std::vector<Endpoint> endpoints;    // sorted by id
  struct Box {
    NodeId id;
    std::vector<Message> ready;
  };
  std::vector<Box> boxes;             // hub-local mailboxes, sorted by id
  std::vector<Message> round_msgs;    // this round's traffic (all senders)
  std::vector<std::uint64_t> dead_since_drain;

  [[nodiscard]] Endpoint* find_endpoint(NodeId id) {
    const auto it = std::lower_bound(
        endpoints.begin(), endpoints.end(), id,
        [](const Endpoint& e, NodeId key) { return e.id < key; });
    return (it != endpoints.end() && it->id == id) ? &*it : nullptr;
  }

  [[nodiscard]] Box* find_box(NodeId id) {
    const auto it = std::lower_bound(
        boxes.begin(), boxes.end(), id,
        [](const Box& b, NodeId key) { return b.id < key; });
    return (it != boxes.end() && it->id == id) ? &*it : nullptr;
  }

  Endpoint& upsert_endpoint(NodeId id) {
    const auto it = std::lower_bound(
        endpoints.begin(), endpoints.end(), id,
        [](const Endpoint& e, NodeId key) { return e.id < key; });
    if (it != endpoints.end() && it->id == id) return *it;
    return *endpoints.insert(it, Endpoint{id, false, false, 0});
  }

  void broadcast_control(FrameKind kind, std::uint64_t value,
                         std::size_t except_conn) {
    const auto frame = make_u64_frame(kind, value);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      if (conns[i].dead || i == except_conn) continue;
      if (!write_frame(conns[i].fd, frame)) mark_dead(i);
    }
  }

  void mark_dead(std::size_t conn_index) {
    Conn& c = conns[conn_index];
    if (c.dead) return;
    c.dead = true;
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    dead_since_drain.push_back(c.process_id);
    // Departure detector: every endpoint the process owned is gone.
    for (Endpoint& e : endpoints) {
      if (!e.local && e.live && e.conn == conn_index) {
        e.live = false;
        broadcast_control(kClose, e.id.value(), conn_index);
      }
    }
  }

  /// Handshakes a newly accepted fd; `join` is the round the spoke may
  /// first participate in.
  void admit(int fd, std::size_t join) {
    set_nodelay(fd);
    Conn conn;
    conn.fd = fd;
    conn.join_round = join;
    // Blocking read of the HELLO frame (spokes send it immediately).
    std::size_t offset = 0;
    ParsedFrame frame{};
    while (!next_frame(conn.rbuf, offset, frame)) {
      if (!read_some_blocking(fd, conn.rbuf)) {
        ::close(fd);
        return;  // died during handshake; never joined
      }
    }
    compact(conn.rbuf, offset);
    if (frame.kind != kHello) {
      ::close(fd);
      throw TransportError("spoke handshake: expected HELLO");
    }
    conn.process_id = body_u64(frame.body);
    if (!write_frame(fd, make_u64_frame(kWelcome, join))) {
      ::close(fd);
      return;
    }
    conns.push_back(std::move(conn));
  }

  /// Applies every complete frame in conns[i]'s read buffer. Frames are
  /// processed in connection order, which is the sender's send order (TCP
  /// FIFO) — the property the delivery-order argument rests on.
  void drain_conn_frames(std::size_t i, std::size_t round) {
    Conn& c = conns[i];
    std::size_t offset = 0;
    ParsedFrame frame{};
    while (!c.dead && next_frame(c.rbuf, offset, frame)) {
      switch (frame.kind) {
        case kData:
          round_msgs.push_back(decode_frame(frame.body));
          break;
        case kDone: {
          const std::uint64_t r = body_u64(frame.body);
          if (r != round) {
            throw TransportError("barrier desync: DONE for wrong round");
          }
          c.done = true;
          break;
        }
        case kOpen: {
          const NodeId id{body_u64(frame.body)};
          Endpoint& e = upsert_endpoint(id);
          if (e.live) {
            throw TransportError("endpoint opened twice: " +
                                 std::to_string(id.value()));
          }
          e.live = true;
          e.local = false;
          e.conn = i;
          broadcast_control(kOpen, id.value(), i);
          break;
        }
        case kClose: {
          const NodeId id{body_u64(frame.body)};
          if (Endpoint* e = find_endpoint(id); e != nullptr && e->live &&
                                               !e->local && e->conn == i) {
            e->live = false;
            broadcast_control(kClose, id.value(), i);
          }
          break;
        }
        default:
          throw TransportError("unexpected frame kind from spoke");
      }
    }
    compact(c.rbuf, offset);
  }

  [[nodiscard]] bool barrier_complete(std::size_t round) const {
    for (const Conn& c : conns) {
      if (c.dead || c.join_round > round) continue;
      if (!c.done) return false;
    }
    return true;
  }
};

std::unique_ptr<SocketHub> SocketHub::listen(std::size_t expected_spokes) {
  auto hub = std::unique_ptr<SocketHub>(new SocketHub());
  hub->impl_ = std::make_unique<Impl>();
  hub->impl_->expected_spokes = expected_spokes;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    throw TransportError("bind/listen failed");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw TransportError("getsockname failed");
  }
  hub->impl_->listen_fd = fd;
  hub->port_ = ntohs(addr.sin_port);
  return hub;
}

SocketHub::~SocketHub() {
  if (!impl_) return;
  for (Conn& c : impl_->conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

void SocketHub::accept_initial() {
  auto& im = *impl_;
  while (im.conns.size() < im.expected_spokes) {
    const int fd = ::accept(im.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw TransportError("accept failed");
    }
    im.admit(fd, /*join=*/0);
  }
}

void SocketHub::open_endpoint(NodeId id) {
  auto& im = *impl_;
  Endpoint& e = im.upsert_endpoint(id);
  if (e.live) {
    throw TransportError("endpoint opened twice: " +
                         std::to_string(id.value()));
  }
  e.live = true;
  e.local = true;
  const auto it = std::lower_bound(
      im.boxes.begin(), im.boxes.end(), id,
      [](const Impl::Box& b, NodeId key) { return b.id < key; });
  if (it == im.boxes.end() || it->id != id) {
    im.boxes.insert(it, Impl::Box{id, {}});
  }
  im.broadcast_control(kOpen, id.value(), im.conns.size());
}

bool SocketHub::close_endpoint(NodeId id) {
  auto& im = *impl_;
  Endpoint* e = im.find_endpoint(id);
  if (e == nullptr || !e->live || !e->local) return false;
  e->live = false;
  im.broadcast_control(kClose, id.value(), im.conns.size());
  return true;
}

bool SocketHub::is_live(NodeId id) const {
  const auto& eps = impl_->endpoints;
  const auto it = std::lower_bound(
      eps.begin(), eps.end(), id,
      [](const Endpoint& e, NodeId key) { return e.id < key; });
  return it != eps.end() && it->id == id && it->live;
}

void SocketHub::send(Message msg) {
  impl_->round_msgs.push_back(std::move(msg));
}

void SocketHub::end_round(std::size_t round) {
  auto& im = *impl_;
  for (auto& box : im.boxes) box.ready.clear();
  for (Conn& c : im.conns) c.done = false;

  // Collect until every participating spoke reached the barrier. New
  // connections are admitted along the way (join round = round + 1).
  std::vector<pollfd> fds;
  std::vector<std::size_t> conn_of_fd;  // fds[k] belongs to conns[...]
  while (!im.barrier_complete(round)) {
    fds.clear();
    conn_of_fd.clear();
    fds.push_back(pollfd{im.listen_fd, POLLIN, 0});
    conn_of_fd.push_back(im.conns.size());  // sentinel for the listener
    for (std::size_t i = 0; i < im.conns.size(); ++i) {
      if (!im.conns[i].dead) {
        fds.push_back(pollfd{im.conns[i].fd, POLLIN, 0});
        conn_of_fd.push_back(i);
      }
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw TransportError("poll failed");
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(im.listen_fd, nullptr, nullptr);
      if (fd >= 0) im.admit(fd, round + 1);
    }
    for (std::size_t k = 1; k < fds.size(); ++k) {
      const std::size_t i = conn_of_fd[k];
      Conn& c = im.conns[i];
      // A conn can be marked dead by a failed broadcast while an earlier
      // entry of this sweep was being drained.
      if (c.dead || fds[k].revents == 0) continue;
      // Drain everything available without blocking.
      bool eof = false;
      std::uint8_t chunk[4096];
      while (true) {
        const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, MSG_DONTWAIT);
        if (n > 0) {
          c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        eof = true;
        break;
      }
      im.drain_conn_frames(i, round);
      if (eof) im.mark_dead(i);
    }
  }

  // Deliver in the in-process order: ascending sender id, send order
  // preserved within a sender (TCP FIFO per connection + stable sort).
  std::stable_sort(im.round_msgs.begin(), im.round_msgs.end(),
                   [](const Message& a, const Message& b) {
                     return a.from.value() < b.from.value();
                   });
  for (Message& msg : im.round_msgs) {
    const Endpoint* e = im.find_endpoint(msg.to);
    if (e == nullptr || !e->live) continue;  // dropped; sender was charged
    if (e->local) {
      if (Impl::Box* box = im.find_box(msg.to)) {
        box->ready.push_back(std::move(msg));
      }
      continue;
    }
    Conn& owner = im.conns[e->conn];
    if (owner.dead) continue;
    const auto bytes = encode_frame(msg);
    if (!write_frame(owner.fd, make_frame(kData, bytes))) {
      im.mark_dead(e->conn);
    }
  }
  im.round_msgs.clear();

  // Release the barrier. Spokes admitted this round consume GO(round) as
  // their start signal (they pre-read up to it before joining).
  im.broadcast_control(kGo, round, im.conns.size());
}

void SocketHub::poll(NodeId id, std::vector<Message>& out) {
  out.clear();
  if (Impl::Box* box = impl_->find_box(id)) std::swap(out, box->ready);
}

std::vector<std::uint64_t> SocketHub::drain_dead_processes() {
  return std::exchange(impl_->dead_since_drain, {});
}

std::size_t SocketHub::num_live_spokes() const {
  std::size_t n = 0;
  for (const Conn& c : impl_->conns) {
    if (!c.dead) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// SocketSpoke

struct SocketSpoke::Impl {
  int fd = -1;
  std::size_t join_round = 0;
  std::vector<std::uint8_t> rbuf;
  struct Box {
    NodeId id;
    std::vector<Message> ready;
  };
  std::vector<Box> boxes;  // sorted by id
  std::vector<NodeId> remote_closed;  // sorted; endpoints reported closed

  [[nodiscard]] Box* find_box(NodeId id) {
    const auto it = std::lower_bound(
        boxes.begin(), boxes.end(), id,
        [](const Box& b, NodeId key) { return b.id < key; });
    return (it != boxes.end() && it->id == id) ? &*it : nullptr;
  }

  void note_open(NodeId id) {
    const auto it = std::lower_bound(remote_closed.begin(),
                                     remote_closed.end(), id);
    if (it != remote_closed.end() && *it == id) remote_closed.erase(it);
  }

  void note_close(NodeId id) {
    const auto it = std::lower_bound(remote_closed.begin(),
                                     remote_closed.end(), id);
    if (it == remote_closed.end() || *it != id) {
      remote_closed.insert(it, id);
    }
  }

  void send_control(FrameKind kind, std::uint64_t value) {
    if (!write_frame(fd, make_u64_frame(kind, value))) {
      throw TransportError("hub connection lost");
    }
  }

  /// Blocking-reads the next frame.
  void read_frame(ParsedFrame& out) {
    std::size_t offset = 0;
    while (!next_frame(rbuf, offset, out)) {
      if (!read_some_blocking(fd, rbuf)) {
        throw TransportError("hub closed connection");
      }
    }
    // The span in `out` points into rbuf; the caller must finish with it
    // before the next read_frame. Compact afterwards via consumed_.
    consumed_ = offset;
  }

  void consume() { compact(rbuf, std::exchange(consumed_, 0)); }

 private:
  std::size_t consumed_ = 0;
};

std::unique_ptr<SocketSpoke> SocketSpoke::connect(std::uint16_t port,
                                                  std::uint64_t process_id) {
  auto spoke = std::unique_ptr<SocketSpoke>(new SocketSpoke());
  spoke->impl_ = std::make_unique<Impl>();
  auto& im = *spoke->impl_;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    ::close(fd);
    throw TransportError("connect to hub failed");
  }
  set_nodelay(fd);
  im.fd = fd;
  im.send_control(kHello, process_id);

  ParsedFrame frame{};
  im.read_frame(frame);
  if (frame.kind != kWelcome) {
    throw TransportError("handshake: expected WELCOME");
  }
  im.join_round = static_cast<std::size_t>(body_u64(frame.body));
  im.consume();

  // Mid-run admission: the hub admitted us during the barrier of round
  // join_round - 1 and releases it with GO(join_round - 1). Replay the
  // liveness traffic up to that point so round join_round starts from the
  // replicated state. No data can arrive yet (our endpoints open later).
  if (im.join_round > 0) {
    const std::uint64_t start_go = im.join_round - 1;
    while (true) {
      im.read_frame(frame);
      bool done = false;
      switch (frame.kind) {
        case kOpen:
          im.note_open(NodeId{body_u64(frame.body)});
          break;
        case kClose:
          im.note_close(NodeId{body_u64(frame.body)});
          break;
        case kGo:
          if (body_u64(frame.body) != start_go) {
            throw TransportError("admission desync: unexpected GO round");
          }
          done = true;
          break;
        default:
          throw TransportError("unexpected frame before join round");
      }
      im.consume();
      if (done) break;
    }
  }
  return spoke;
}

SocketSpoke::~SocketSpoke() {
  if (impl_ && impl_->fd >= 0) ::close(impl_->fd);
}

void SocketSpoke::open_endpoint(NodeId id) {
  auto& im = *impl_;
  const auto it = std::lower_bound(
      im.boxes.begin(), im.boxes.end(), id,
      [](const Impl::Box& b, NodeId key) { return b.id < key; });
  if (it != im.boxes.end() && it->id == id) {
    throw TransportError("endpoint opened twice: " +
                         std::to_string(id.value()));
  }
  im.boxes.insert(it, Impl::Box{id, {}});
  im.send_control(kOpen, id.value());
}

bool SocketSpoke::close_endpoint(NodeId id) {
  auto& im = *impl_;
  const auto it = std::lower_bound(
      im.boxes.begin(), im.boxes.end(), id,
      [](const Impl::Box& b, NodeId key) { return b.id < key; });
  if (it == im.boxes.end() || it->id != id) return false;
  im.boxes.erase(it);
  im.send_control(kClose, id.value());
  return true;
}

bool SocketSpoke::is_live(NodeId id) const {
  auto& im = *impl_;
  const auto box = std::lower_bound(
      im.boxes.begin(), im.boxes.end(), id,
      [](const Impl::Box& b, NodeId key) { return b.id < key; });
  if (box != im.boxes.end() && box->id == id) return true;
  // Remote endpoints: replicated state, one round of lag; unknown ids
  // default to live (the hub is the authority — DESIGN.md §12).
  const auto it = std::lower_bound(im.remote_closed.begin(),
                                   im.remote_closed.end(), id);
  return it == im.remote_closed.end() || *it != id;
}

void SocketSpoke::send(Message msg) {
  const auto bytes = encode_frame(msg);
  if (!write_frame(impl_->fd, make_frame(kData, bytes))) {
    throw TransportError("hub connection lost");
  }
}

void SocketSpoke::end_round(std::size_t round) {
  auto& im = *impl_;
  im.send_control(kDone, round);
  ParsedFrame frame{};
  while (true) {
    im.read_frame(frame);
    bool released = false;
    switch (frame.kind) {
      case kData: {
        Message msg = decode_frame(frame.body);
        if (Impl::Box* box = im.find_box(msg.to)) {
          box->ready.push_back(std::move(msg));  // polled next round
        }
        break;
      }
      case kOpen:
        im.note_open(NodeId{body_u64(frame.body)});
        break;
      case kClose:
        im.note_close(NodeId{body_u64(frame.body)});
        break;
      case kGo:
        if (body_u64(frame.body) != round) {
          throw TransportError("barrier desync: unexpected GO round");
        }
        released = true;
        break;
      default:
        throw TransportError("unexpected frame kind from hub");
    }
    im.consume();
    if (released) return;
  }
}

void SocketSpoke::poll(NodeId id, std::vector<Message>& out) {
  out.clear();
  if (Impl::Box* box = impl_->find_box(id)) std::swap(out, box->ready);
}

std::size_t SocketSpoke::join_round() const { return impl_->join_round; }

}  // namespace now::net
