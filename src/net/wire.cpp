#include "net/wire.hpp"

#include "core/snapshot.hpp"

namespace now::net {

namespace {

constexpr std::uint8_t kMagic[4] = {'N', 'W', 'F', 'R'};

}  // namespace

std::vector<std::uint8_t> encode_frame(const Message& msg) {
  core::SnapshotWriter w;
  for (const std::uint8_t b : kMagic) w.u8(b);
  w.u8(kWireFormatVersion);
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(msg.tag)));
  w.u8(static_cast<std::uint8_t>(static_cast<std::uint16_t>(msg.tag) >> 8));
  w.u64(msg.from.value());
  w.u64(msg.to.value());
  w.u64(msg.payload.size());
  if (!msg.payload.empty()) w.bytes(msg.payload.data(), msg.payload.size());
  const auto& body = w.buffer();
  w.u64(core::fnv1a64(body.data(), body.size()));
  return w.buffer();
}

Message decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(kMagic) + 3 + 3 * 8 + 8) {
    throw WireError("wire frame truncated");
  }
  const std::size_t body_size = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(bytes[body_size +
                                               static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (stored != core::fnv1a64(bytes.data(), body_size)) {
    throw WireError("wire frame checksum mismatch");
  }

  core::SnapshotReader r{{bytes.begin(),
                          bytes.begin() + static_cast<std::ptrdiff_t>(
                                              body_size)}};
  for (const std::uint8_t b : kMagic) {
    if (r.u8() != b) throw WireError("wire frame bad magic");
  }
  const std::uint8_t version = r.u8();
  if (version != kWireFormatVersion) {
    throw WireError("wire frame unknown version " + std::to_string(version));
  }
  const std::uint16_t tag =
      static_cast<std::uint16_t>(r.u8()) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(r.u8()) << 8);
  if (tag > kMaxTag) {
    throw WireError("wire frame unknown tag " + std::to_string(tag));
  }

  Message msg;
  msg.from = NodeId{r.u64()};
  msg.to = NodeId{r.u64()};
  msg.tag = static_cast<Tag>(tag);
  const std::uint64_t payload_size = r.u64();
  if (payload_size != r.remaining()) {
    throw WireError("wire frame payload size mismatch");
  }
  msg.payload.resize(static_cast<std::size_t>(payload_size));
  if (payload_size > 0) {
    r.bytes(msg.payload.data(), static_cast<std::size_t>(payload_size));
  }
  return msg;
}

}  // namespace now::net
