#include "net/transport.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace now::net {

namespace {

struct MailboxLess {
  bool operator()(const auto& box, NodeId id) const { return box.id < id; }
};

}  // namespace

InProcTransport::Mailbox* InProcTransport::find(NodeId id) {
  const auto it = std::lower_bound(mailboxes_.begin(), mailboxes_.end(), id,
                                   MailboxLess{});
  return it != mailboxes_.end() && it->id == id ? &*it : nullptr;
}

const InProcTransport::Mailbox* InProcTransport::find(NodeId id) const {
  const auto it = std::lower_bound(mailboxes_.begin(), mailboxes_.end(), id,
                                   MailboxLess{});
  return it != mailboxes_.end() && it->id == id ? &*it : nullptr;
}

void InProcTransport::open_endpoint(NodeId id) {
  const auto it = std::lower_bound(mailboxes_.begin(), mailboxes_.end(), id,
                                   MailboxLess{});
  assert((it == mailboxes_.end() || it->id != id) &&
         "endpoint already open");
  mailboxes_.insert(it, Mailbox{id, {}, {}});
}

bool InProcTransport::close_endpoint(NodeId id) {
  const auto it = std::lower_bound(mailboxes_.begin(), mailboxes_.end(), id,
                                   MailboxLess{});
  if (it == mailboxes_.end() || it->id != id) return false;
  mailboxes_.erase(it);
  return true;
}

bool InProcTransport::is_live(NodeId id) const { return find(id) != nullptr; }

void InProcTransport::send(Message msg) {
  // Sends to departed / unknown endpoints vanish (reconfigurable channels).
  if (Mailbox* box = find(msg.to)) box->pending.push_back(std::move(msg));
}

void InProcTransport::end_round(std::size_t /*round*/) {
  for (Mailbox& box : mailboxes_) {
    // Unpolled leftovers are dropped; the cleared buffer is recycled as the
    // next round's pending store.
    box.ready.clear();
    std::swap(box.ready, box.pending);
  }
}

void InProcTransport::poll(NodeId id, std::vector<Message>& out) {
  out.clear();
  if (Mailbox* box = find(id)) std::swap(out, box->ready);
}

}  // namespace now::net
