// Deterministic fault-injection decorator over any Transport.
//
// Wraps an inner transport and, at each round barrier, subjects the round's
// staged messages to seeded faults: drops, duplicates, bounded delays,
// per-pair reorder, and windowed partitions. Every decision is drawn from
// Rng::derive_stream keyed ONLY by (seed, sender, receiver, per-pair
// sequence number or round) — never by process layout — so a single-process
// deployment and a sharded multi-process deployment of the same protocol
// make bit-identical fault decisions (each process decorates its own
// transport and owns disjoint senders, hence disjoint pair streams).
//
// Delivery order is normalized to ascending (from, to) with per-pair FIFO
// (delayed-then-fresh), which the socket hub's stable-sort-by-sender merge
// maps to the same final inbox order as the in-process path — the
// fault-injected trajectory itself is deployment-independent.
//
// Faults apply to protocol messages only; the socket transport's barrier
// and handshake frames live below this decorator and are never faulted.
// Every injected fault is recorded; save_events writes the log as a framed
// snapshot file for offline diffing of two deployments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "net/transport.hpp"

namespace now::net {

/// Fault probabilities and shapes. All probabilities are per-message (per
/// window for partition) in [0, 1]; zero means the fault is off.
struct FaultPlan {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // message delivered twice
  double delay = 0.0;      // message arrives 1..max_delay_rounds late
  std::size_t max_delay_rounds = 2;
  double reorder = 0.0;    // a pair's fresh messages this round reverse
  double partition = 0.0;  // pair blacked out for a whole window
  std::size_t partition_rounds = 8;  // partition window length in rounds

  [[nodiscard]] bool any() const {
    return drop > 0 || duplicate > 0 || delay > 0 || reorder > 0 ||
           partition > 0;
  }
};

/// One injected fault, for offline inspection.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kDrop = 0,
    kDuplicate = 1,
    kDelay = 2,
    kReorder = 3,
    kPartition = 4,
  };
  Kind kind;
  std::size_t round;  // round the message was sent (reorder: the pair round)
  NodeId from;
  NodeId to;
  std::size_t until_round = 0;  // delay: delivery round; partition: window end
};

class FaultyTransport final : public Transport {
 public:
  /// Decorates `inner` (not owned; must outlive this object).
  FaultyTransport(Transport& inner, const FaultPlan& plan,
                  std::uint64_t seed);

  void open_endpoint(NodeId id) override;
  bool close_endpoint(NodeId id) override;
  [[nodiscard]] bool is_live(NodeId id) const override;
  void send(Message msg) override;
  void end_round(std::size_t round) override;
  void poll(NodeId id, std::vector<Message>& out) override;
  [[nodiscard]] std::size_t join_round() const override;

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  /// Writes the fault log as a framed snapshot file (magic "NWFAULTS").
  void save_events(const std::string& path) const;

 private:
  struct Delayed {
    std::size_t due_round;
    Message msg;
  };

  /// Appends to the fault log and mirrors the decision into the obs layer
  /// (per-kind counter + trace instant). Telemetry only observes the
  /// already-made decision — the fault streams never see it.
  void record(FaultEvent event);

  Transport& inner_;
  FaultPlan plan_;
  std::uint64_t seed_;
  std::vector<Message> staged_;       // this round's sends, in send order
  std::vector<Delayed> delayed_;      // in decision order (deterministic)
  std::vector<FaultEvent> events_;
  // Per-(sender, receiver) message sequence numbers: the substream index of
  // each message's fault draw, so decisions depend only on the pair's
  // message history, not on process layout.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> pair_seq_;
};

}  // namespace now::net
