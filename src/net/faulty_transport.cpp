#include "net/faulty_transport.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <string_view>

#include "common/rng.hpp"
#include "core/snapshot.hpp"
#include "obs/obs.hpp"

namespace now::net {

namespace {

// Domain-separation salts: partition windows and reorder flips draw from
// streams unrelated to the per-message fault stream.
constexpr std::uint64_t kPartitionSalt = 0x5041525449544E31ULL;
constexpr std::uint64_t kReorderSalt = 0x52454F5244455231ULL;

/// Stable 64-bit key for a (sender, receiver) channel.
[[nodiscard]] std::uint64_t pair_stream(std::uint64_t from, std::uint64_t to) {
  std::uint8_t bytes[16];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(from >> (8 * i));
    bytes[8 + i] = static_cast<std::uint8_t>(to >> (8 * i));
  }
  return core::fnv1a64(bytes, sizeof bytes);
}

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner, const FaultPlan& plan,
                                 std::uint64_t seed)
    : inner_(inner), plan_(plan), seed_(seed) {}

void FaultyTransport::open_endpoint(NodeId id) { inner_.open_endpoint(id); }

bool FaultyTransport::close_endpoint(NodeId id) {
  return inner_.close_endpoint(id);
}

bool FaultyTransport::is_live(NodeId id) const { return inner_.is_live(id); }

std::size_t FaultyTransport::join_round() const {
  return inner_.join_round();
}

void FaultyTransport::send(Message msg) {
  staged_.push_back(std::move(msg));
}

void FaultyTransport::record(FaultEvent event) {
#if NOW_OBS_ENABLED
  // Per-kind names, indexed by FaultEvent::Kind. Interned once.
  struct FaultObs {
    std::array<obs::MetricId, 5> counters;
    std::array<std::uint32_t, 5> instants;
    FaultObs() {
      static constexpr std::array<std::string_view, 5> kKinds = {
          "drop", "duplicate", "delay", "reorder", "partition"};
      for (std::size_t k = 0; k < kKinds.size(); ++k) {
        counters[k] = obs::counter_id("fault." + std::string(kKinds[k]));
        instants[k] =
            obs::span_name_id("fault." + std::string(kKinds[k]));
      }
    }
  };
  static const FaultObs fault_obs;
  const auto k = static_cast<std::size_t>(event.kind);
  obs::counter_add(fault_obs.counters[k]);
  // arg0 packs (send round, until_round), arg1 packs (from, to) — the
  // fault stream's full decision, correlated with net.round spans by the
  // round number.
  obs::instant(obs::Cat::kFault, fault_obs.instants[k],
               (static_cast<std::uint64_t>(event.round) << 32) |
                   (event.until_round & 0xFFFFFFFFULL),
               (event.from.value() << 32) | (event.to.value() & 0xFFFFFFFFULL));
#endif
  events_.push_back(event);
}

void FaultyTransport::end_round(std::size_t round) {
  // Per-pair groups: delayed arrivals due this round go first, then this
  // round's survivors. std::map iteration gives ascending (from, to) — the
  // normalized delivery order both deployments share.
  struct Group {
    std::vector<Message> due;
    std::vector<Message> fresh;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Group> groups;

  for (auto& d : delayed_) {
    if (d.due_round != round) continue;
    groups[{d.msg.from.value(), d.msg.to.value()}].due.push_back(
        std::move(d.msg));
  }
  std::erase_if(delayed_,
                [round](const Delayed& d) { return d.due_round == round; });

  for (Message& msg : staged_) {
    const std::pair<std::uint64_t, std::uint64_t> pair{msg.from.value(),
                                                       msg.to.value()};
    const std::uint64_t stream = pair_stream(pair.first, pair.second);

    if (plan_.partition > 0 && plan_.partition_rounds > 0) {
      const std::uint64_t window = round / plan_.partition_rounds;
      Rng prng = Rng::derive_stream(seed_ ^ kPartitionSalt, stream, window);
      if (prng.bernoulli(plan_.partition)) {
        record(FaultEvent{FaultEvent::Kind::kPartition, round, msg.from,
                          msg.to, (window + 1) * plan_.partition_rounds});
        continue;
      }
    }

    const std::uint64_t seq = pair_seq_[pair]++;
    Rng rng = Rng::derive_stream(seed_, stream, seq);
    // Draw order is fixed (drop, delay, duplicate) so the stream consumed
    // per message is identical in every deployment.
    const bool dropped = rng.bernoulli(plan_.drop);
    const bool delayed = rng.bernoulli(plan_.delay);
    const bool duplicated = rng.bernoulli(plan_.duplicate);
    if (dropped) {
      record(FaultEvent{FaultEvent::Kind::kDrop, round, msg.from, msg.to, 0});
      continue;
    }
    if (delayed && plan_.max_delay_rounds > 0) {
      const std::size_t by =
          1 + static_cast<std::size_t>(rng.uniform(plan_.max_delay_rounds));
      record(FaultEvent{FaultEvent::Kind::kDelay, round, msg.from, msg.to,
                        round + by});
      delayed_.push_back(Delayed{round + by, std::move(msg)});
      continue;
    }
    Group& g = groups[pair];
    if (duplicated) {
      record(FaultEvent{FaultEvent::Kind::kDuplicate, round, msg.from,
                        msg.to, 0});
      g.fresh.push_back(msg);
    }
    g.fresh.push_back(std::move(msg));
  }
  staged_.clear();

  for (auto& [pair, group] : groups) {
    if (plan_.reorder > 0 && group.fresh.size() >= 2) {
      const std::uint64_t stream = pair_stream(pair.first, pair.second);
      Rng rng = Rng::derive_stream(seed_ ^ kReorderSalt, stream, round);
      if (rng.bernoulli(plan_.reorder)) {
        std::reverse(group.fresh.begin(), group.fresh.end());
        record(FaultEvent{FaultEvent::Kind::kReorder, round,
                          NodeId{pair.first}, NodeId{pair.second}, 0});
      }
    }
    for (Message& m : group.due) inner_.send(std::move(m));
    for (Message& m : group.fresh) inner_.send(std::move(m));
  }

  inner_.end_round(round);
}

void FaultyTransport::poll(NodeId id, std::vector<Message>& out) {
  inner_.poll(id, out);
}

void FaultyTransport::save_events(const std::string& path) const {
  core::SnapshotWriter writer;
  writer.u64(events_.size());
  for (const FaultEvent& e : events_) {
    writer.u8(static_cast<std::uint8_t>(e.kind));
    writer.u64(e.round);
    writer.u64(e.from.value());
    writer.u64(e.to.value());
    writer.u64(e.until_round);
  }
  writer.write_file(path, "NWFAULTS", 1);
}

}  // namespace now::net
