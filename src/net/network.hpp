// Synchronous round-based network simulator.
//
// Models the paper's system assumptions (Section 2): a synchronous network
// with discrete rounds, private reconfigurable channels, no rushing within a
// round (messages sent in round r are a function of state before r; this is
// what makes commit–reveal randNum unbiased, see DESIGN.md §5), and a
// departure detector (removing an actor makes subsequent sends to it vanish,
// and neighbors can query liveness).
//
// Used at message level for committee-scale protocols (phase-king, randNum,
// discovery on small networks); larger experiments use the same protocol
// logic with bulk cost accounting, and tests assert the two agree.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace now::net {

/// Outbound-message collector handed to actors each round.
class Outbox {
 public:
  void send(NodeId to, Tag tag, std::vector<std::uint64_t> payload = {});

  /// Convenience: send the same message to every destination in `to`.
  void multicast(std::span<const NodeId> to, Tag tag,
                 const std::vector<std::uint64_t>& payload = {});

 private:
  friend class SyncNetwork;
  explicit Outbox(NodeId self) : self_(self) {}
  NodeId self_;
  std::vector<Message> messages_;
};

/// A protocol participant. One virtual call per round: consume the inbox
/// (messages addressed to this actor, sent in the previous round) and emit
/// this round's messages.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_round(std::size_t round, std::span<const Message> inbox,
                        Outbox& out) = 0;
};

class SyncNetwork {
 public:
  explicit SyncNetwork(Metrics& metrics) : metrics_(metrics) {}

  /// Registers an actor under `id`. The id must not already be registered.
  void add_actor(NodeId id, std::unique_ptr<Actor> actor);

  /// Deregisters (crash / leave). In-flight messages to it are dropped, as
  /// are future sends. Returns false if the id is unknown.
  bool remove_actor(NodeId id);

  [[nodiscard]] bool is_live(NodeId id) const;
  [[nodiscard]] std::size_t num_actors() const { return actors_.size(); }
  [[nodiscard]] std::size_t round() const { return round_; }

  /// Executes one synchronous round: every actor sees messages sent to it in
  /// the previous round and produces messages delivered next round.
  /// Charges one round and all message units to the metrics sink.
  void run_round();

  /// Runs `count` rounds.
  void run_rounds(std::size_t count);

 private:
  Metrics& metrics_;
  std::size_t round_ = 0;
  std::map<NodeId, std::unique_ptr<Actor>> actors_;
  std::map<NodeId, std::vector<Message>> inboxes_;
};

}  // namespace now::net
