// Synchronous round-based engine over a pluggable Transport.
//
// Models the paper's system assumptions (Section 2): a synchronous network
// with discrete rounds, private reconfigurable channels, no rushing within a
// round (messages sent in round r are a function of state before r; this is
// what makes commit–reveal randNum unbiased, see DESIGN.md §5), and a
// departure detector (closing an endpoint makes subsequent sends to it
// vanish, and neighbors can query liveness).
//
// The engine hosts the actors of ONE process and charges all costs; the
// Transport (net/transport.hpp) moves the messages — in-memory, over local
// sockets between shard processes, or through a fault-injection decorator.
// Actor tables and inboxes are flat vectors sorted by id (the NodeSet
// pattern): steady-state rounds reuse every buffer and allocate nothing.
//
// Used at message level for committee-scale protocols (phase-king, randNum,
// discovery on small networks); larger experiments use the same protocol
// logic with bulk cost accounting, and tests assert the two agree.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"

namespace now::net {

/// Outbound-message collector handed to actors each round.
class Outbox {
 public:
  void send(NodeId to, Tag tag, Payload payload = {});

  /// Convenience: send the same message to every destination in `to`.
  void multicast(std::span<const NodeId> to, Tag tag,
                 const Payload& payload = {});

 private:
  friend class RoundEngine;
  explicit Outbox(NodeId self) : self_(self) {}
  NodeId self_;
  std::vector<Message> messages_;
};

/// A protocol participant. One virtual call per round: consume the inbox
/// (messages addressed to this actor, sent in the previous round) and emit
/// this round's messages.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_round(std::size_t round, std::span<const Message> inbox,
                        Outbox& out) = 0;
};

/// Drives the actors of one process in lockstep rounds over a Transport.
/// Bit-compatible with the historical SyncNetwork simulator when paired
/// with InProcTransport (actors run in ascending id order; every unit
/// message is charged before the transport may drop it; one round is
/// charged per run_round).
class RoundEngine {
 public:
  RoundEngine(Metrics& metrics, Transport& transport)
      : metrics_(metrics),
        transport_(transport),
        round_(transport.join_round()) {}

  /// Registers an actor under `id` and opens its transport endpoint. The id
  /// must not already be registered on this engine.
  void add_actor(NodeId id, std::unique_ptr<Actor> actor);

  /// Deregisters (crash / leave) and closes the endpoint. In-flight
  /// messages to it are dropped, as are future sends. Returns false if the
  /// id is unknown.
  bool remove_actor(NodeId id);

  /// Endpoint liveness as seen by the transport (spans processes for
  /// multi-process transports, with one round of lag — DESIGN.md §12).
  [[nodiscard]] bool is_live(NodeId id) const {
    return transport_.is_live(id);
  }
  [[nodiscard]] std::size_t num_actors() const { return slots_.size(); }
  [[nodiscard]] std::size_t round() const { return round_; }

  /// Executes one synchronous round: every actor sees messages sent to it
  /// in the previous round and produces messages delivered next round.
  /// Charges one round and all message units to the metrics sink, then
  /// passes the transport's round barrier.
  void run_round();

  /// Runs `count` rounds.
  void run_rounds(std::size_t count);

 private:
  struct Slot {
    NodeId id;
    std::unique_ptr<Actor> actor;
    std::vector<Message> inbox;  // recycled each round via Transport::poll
  };

  Metrics& metrics_;
  Transport& transport_;
  std::size_t round_;
  std::vector<Slot> slots_;  // sorted by id
  std::vector<Message> outbox_buf_;
};

}  // namespace now::net
