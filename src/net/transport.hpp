// Pluggable transport under the round engine (DESIGN.md §12).
//
// A Transport owns message delivery between named endpoints and the round
// barrier that gives the system its synchronous, no-rushing semantics:
// messages handed to send() during round r become pollable by their
// destination only after end_round(r) returns, and end_round is a barrier —
// for multi-process transports it blocks until every participating process
// has finished round r. The engine (net/network.hpp) charges metrics; the
// transport only moves bytes, so every implementation is cost-transparent.
//
// Implementations:
//   * InProcTransport   — in-memory mailboxes; bit-compatible refactor of
//                         the original SyncNetwork simulator.
//   * SocketTransport   — length-prefixed wire frames over local TCP, one
//                         process per shard (net/socket_transport.hpp).
//   * FaultyTransport   — deterministic seeded fault-injection decorator
//                         (net/faulty_transport.hpp).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace now::net {

/// Thrown on transport-level failures (peer process gone, protocol
/// violation on a socket, barrier round cap exceeded).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers `id` as a deliverable endpoint owned by this process.
  virtual void open_endpoint(NodeId id) = 0;

  /// Deregisters (departure detector): in-flight and future messages to the
  /// endpoint vanish. Returns false if the id is unknown locally.
  virtual bool close_endpoint(NodeId id) = 0;

  /// Liveness query. For multi-process transports remote liveness converges
  /// with one round of lag (see DESIGN.md §12); protocols that branch on
  /// liveness must confine queries to locally owned endpoints.
  [[nodiscard]] virtual bool is_live(NodeId id) const = 0;

  /// Buffers one message for delivery after this round's barrier. Messages
  /// to closed/unknown endpoints are silently dropped (the sender was
  /// already charged — reconfigurable channels, Section 2).
  virtual void send(Message msg) = 0;

  /// Round barrier: makes round-`round` messages deliverable and, for
  /// multi-process transports, blocks until all processes passed round.
  virtual void end_round(std::size_t round) = 0;

  /// Moves the messages deliverable to `id` this round into `out`
  /// (replacing its contents; buffer capacity is recycled).
  virtual void poll(NodeId id, std::vector<Message>& out) = 0;

  /// First round this transport participates in (non-zero for processes
  /// admitted mid-run, e.g. a respawned shard). Engines start there.
  [[nodiscard]] virtual std::size_t join_round() const { return 0; }
};

/// In-memory single-process transport. Mailboxes live in one flat vector
/// sorted by endpoint id (the NodeSet pattern); pending/ready buffers are
/// swapped, not reallocated, so steady-state rounds allocate nothing.
class InProcTransport final : public Transport {
 public:
  void open_endpoint(NodeId id) override;
  bool close_endpoint(NodeId id) override;
  [[nodiscard]] bool is_live(NodeId id) const override;
  void send(Message msg) override;
  void end_round(std::size_t round) override;
  void poll(NodeId id, std::vector<Message>& out) override;

  [[nodiscard]] std::size_t num_endpoints() const {
    return mailboxes_.size();
  }

 private:
  struct Mailbox {
    NodeId id;
    std::vector<Message> pending;  // sent this round, delivered next
    std::vector<Message> ready;    // deliverable this round
  };

  [[nodiscard]] Mailbox* find(NodeId id);
  [[nodiscard]] const Mailbox* find(NodeId id) const;

  std::vector<Mailbox> mailboxes_;  // sorted by id
};

}  // namespace now::net
