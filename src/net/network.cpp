#include "net/network.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <string>
#include <string_view>
#include <utility>

#include "obs/obs.hpp"

namespace now::net {

#if NOW_OBS_ENABLED
namespace {

/// Per-tag send/receive counters, interned once per process. Indexed by
/// the Tag value so the round loop does no string work.
struct TagCounters {
  std::array<obs::MetricId, kMaxTag + 1> send{};
  std::array<obs::MetricId, kMaxTag + 1> recv{};
  TagCounters() {
    static constexpr std::array<std::string_view, kMaxTag + 1> kNames = {
        "value",    "propose", "king",         "discovery",
        "commit",   "reveal",  "echo",         "app",
        "shard_digest", "shard_go", "shard_bye"};
    for (std::size_t t = 0; t <= kMaxTag; ++t) {
      send[t] = obs::counter_id("net.send." + std::string(kNames[t]));
      recv[t] = obs::counter_id("net.recv." + std::string(kNames[t]));
    }
  }
};

const TagCounters& tag_counters() {
  static TagCounters counters;
  return counters;
}

}  // namespace
#endif  // NOW_OBS_ENABLED

void Outbox::send(NodeId to, Tag tag, Payload payload) {
  messages_.push_back(Message{self_, to, tag, std::move(payload)});
}

void Outbox::multicast(std::span<const NodeId> to, Tag tag,
                       const Payload& payload) {
  for (const NodeId dest : to) send(dest, tag, payload);
}

void RoundEngine::add_actor(NodeId id, std::unique_ptr<Actor> actor) {
  assert(actor != nullptr);
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), id,
      [](const Slot& slot, NodeId key) { return slot.id < key; });
  assert((it == slots_.end() || it->id != id) &&
         "actor id already registered");
  slots_.insert(it, Slot{id, std::move(actor), {}});
  transport_.open_endpoint(id);
}

bool RoundEngine::remove_actor(NodeId id) {
  transport_.close_endpoint(id);
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), id,
      [](const Slot& slot, NodeId key) { return slot.id < key; });
  if (it == slots_.end() || it->id != id) return false;
  slots_.erase(it);
  return true;
}

void RoundEngine::run_round() {
  obs::ScopedSpan round_span(obs::Cat::kNet, "net.round", nullptr, round_,
                             slots_.size());
#if NOW_OBS_ENABLED
  const bool count_tags = obs::Registry::enabled();
#endif
  // No rushing: every inbox polled this round was sealed by the previous
  // round's barrier; messages sent below become deliverable only after
  // this round's end_round.
  Outbox out{NodeId{}};
  std::swap(out.messages_, outbox_buf_);  // recycle the buffer
  for (Slot& slot : slots_) {
    transport_.poll(slot.id, slot.inbox);
#if NOW_OBS_ENABLED
    if (count_tags) {
      for (const Message& msg : slot.inbox) {
        obs::counter_add(
            tag_counters().recv[static_cast<std::size_t>(msg.tag)]);
      }
    }
#endif
    out.self_ = slot.id;
    slot.actor->on_round(round_, slot.inbox, out);
    for (Message& msg : out.messages_) {
      // Charged before the transport may drop it: sends to departed nodes
      // still cost the sender (reconfigurable channels).
      metrics_.add_messages(msg.cost_units());
#if NOW_OBS_ENABLED
      if (count_tags) {
        obs::counter_add(
            tag_counters().send[static_cast<std::size_t>(msg.tag)]);
      }
#endif
      transport_.send(std::move(msg));
    }
    out.messages_.clear();
  }
  std::swap(out.messages_, outbox_buf_);
  transport_.end_round(round_);
  metrics_.add_rounds(1);
  ++round_;
}

void RoundEngine::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

}  // namespace now::net
