#include "net/network.hpp"

#include <cassert>
#include <utility>

namespace now::net {

void Outbox::send(NodeId to, Tag tag, std::vector<std::uint64_t> payload) {
  messages_.push_back(Message{self_, to, tag, std::move(payload)});
}

void Outbox::multicast(std::span<const NodeId> to, Tag tag,
                       const std::vector<std::uint64_t>& payload) {
  for (const NodeId dest : to) send(dest, tag, payload);
}

void SyncNetwork::add_actor(NodeId id, std::unique_ptr<Actor> actor) {
  assert(actor != nullptr);
  const bool inserted = actors_.emplace(id, std::move(actor)).second;
  assert(inserted && "actor id already registered");
  (void)inserted;
  inboxes_.try_emplace(id);
}

bool SyncNetwork::remove_actor(NodeId id) {
  inboxes_.erase(id);
  return actors_.erase(id) > 0;
}

bool SyncNetwork::is_live(NodeId id) const { return actors_.contains(id); }

void SyncNetwork::run_round() {
  // Collect this round's output from every actor against the *previous*
  // round's inboxes (no rushing: actors never see same-round messages).
  std::map<NodeId, std::vector<Message>> next_inboxes;
  for (auto& [id, inbox] : inboxes_) next_inboxes.try_emplace(id);

  for (auto& [id, actor] : actors_) {
    Outbox out{id};
    const auto inbox_it = inboxes_.find(id);
    const std::span<const Message> inbox =
        inbox_it == inboxes_.end()
            ? std::span<const Message>{}
            : std::span<const Message>(inbox_it->second);
    actor->on_round(round_, inbox, out);
    for (auto& msg : out.messages_) {
      metrics_.add_messages(msg.cost_units());
      // Sends to departed / unknown nodes vanish (reconfigurable channels).
      if (const auto it = next_inboxes.find(msg.to); it != next_inboxes.end()) {
        it->second.push_back(std::move(msg));
      }
    }
  }

  inboxes_ = std::move(next_inboxes);
  metrics_.add_rounds(1);
  ++round_;
}

void SyncNetwork::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

}  // namespace now::net
