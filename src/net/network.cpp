#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace now::net {

void Outbox::send(NodeId to, Tag tag, Payload payload) {
  messages_.push_back(Message{self_, to, tag, std::move(payload)});
}

void Outbox::multicast(std::span<const NodeId> to, Tag tag,
                       const Payload& payload) {
  for (const NodeId dest : to) send(dest, tag, payload);
}

void RoundEngine::add_actor(NodeId id, std::unique_ptr<Actor> actor) {
  assert(actor != nullptr);
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), id,
      [](const Slot& slot, NodeId key) { return slot.id < key; });
  assert((it == slots_.end() || it->id != id) &&
         "actor id already registered");
  slots_.insert(it, Slot{id, std::move(actor), {}});
  transport_.open_endpoint(id);
}

bool RoundEngine::remove_actor(NodeId id) {
  transport_.close_endpoint(id);
  const auto it = std::lower_bound(
      slots_.begin(), slots_.end(), id,
      [](const Slot& slot, NodeId key) { return slot.id < key; });
  if (it == slots_.end() || it->id != id) return false;
  slots_.erase(it);
  return true;
}

void RoundEngine::run_round() {
  // No rushing: every inbox polled this round was sealed by the previous
  // round's barrier; messages sent below become deliverable only after
  // this round's end_round.
  Outbox out{NodeId{}};
  std::swap(out.messages_, outbox_buf_);  // recycle the buffer
  for (Slot& slot : slots_) {
    transport_.poll(slot.id, slot.inbox);
    out.self_ = slot.id;
    slot.actor->on_round(round_, slot.inbox, out);
    for (Message& msg : out.messages_) {
      // Charged before the transport may drop it: sends to departed nodes
      // still cost the sender (reconfigurable channels).
      metrics_.add_messages(msg.cost_units());
      transport_.send(std::move(msg));
    }
    out.messages_.clear();
  }
  std::swap(out.messages_, outbox_buf_);
  transport_.end_round(round_);
  metrics_.add_rounds(1);
  ++round_;
}

void RoundEngine::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

}  // namespace now::net
