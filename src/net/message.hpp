// Message type of the synchronous network model (Section 2 of the paper):
// nodes exchange point-to-point messages over private channels, in lockstep
// rounds. Messages are counted in unit-size pieces — a payload of w words is
// charged as w unit messages, matching the paper's "communication cost is
// proportional to the number of bits sent" convention.
//
// Payloads are raw little-endian bytes so a message can cross a real wire
// (net/wire.hpp frames them with a version and checksum). Protocols that
// think in 64-bit words — all of ours — use the pack_words/word helpers; the
// unit-cost rule charges one unit per started 8-byte word, which keeps the
// historical word-count accounting bit-identical.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace now::net {

/// Protocol-level message tags. Kept in one enum so traces are readable;
/// individual protocols interpret payload words themselves.
enum class Tag : std::uint16_t {
  kValue,        // phase-king round 1 value broadcast
  kPropose,      // phase-king round 2 proposal
  kKing,         // phase-king round 3 king value
  kDiscovery,    // identity-set gossip
  kCommit,       // randNum commitment
  kReveal,       // randNum reveal
  kEcho,         // randNum echo of received reveals
  kApp,          // application payload
  kShardDigest,  // shard runtime: per-step digest, worker -> coordinator
  kShardGo,      // shard runtime: merged-step acknowledgement broadcast
  kShardBye,     // shard runtime: run complete, workers may exit
};

/// Highest tag value the wire codec accepts (decode rejects unknown tags).
inline constexpr std::uint16_t kMaxTag =
    static_cast<std::uint16_t>(Tag::kShardBye);

/// Raw message body: little-endian bytes, owned by the message.
using Payload = std::vector<std::uint8_t>;

/// Packs 64-bit words into a little-endian byte payload.
[[nodiscard]] inline Payload pack_words(std::span<const std::uint64_t> words) {
  Payload payload;
  payload.reserve(words.size() * 8);
  for (const std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  return payload;
}

/// Convenience literal form: make_words({a, b, c}).
[[nodiscard]] inline Payload make_words(
    std::initializer_list<std::uint64_t> words) {
  return pack_words(std::span<const std::uint64_t>{words.begin(),
                                                   words.end()});
}

/// Number of (whole) 64-bit words in `payload`.
[[nodiscard]] inline std::size_t word_count(const Payload& payload) {
  return payload.size() / 8;
}

/// Reads word `index` of a payload produced by pack_words.
[[nodiscard]] inline std::uint64_t word(const Payload& payload,
                                        std::size_t index) {
  assert((index + 1) * 8 <= payload.size() && "payload word out of range");
  std::uint64_t w = 0;
  for (int i = 0; i < 8; ++i) {
    w |= static_cast<std::uint64_t>(payload[index * 8 +
                                            static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return w;
}

struct Message {
  NodeId from;
  NodeId to;
  Tag tag = Tag::kApp;
  Payload payload;

  /// Unit-message cost: one unit per started 8-byte word (>= 1 even for
  /// empty payloads). Word-packed payloads cost exactly their word count,
  /// preserving the pre-codec accounting.
  [[nodiscard]] std::uint64_t cost_units() const {
    return payload.empty()
               ? 1
               : static_cast<std::uint64_t>((payload.size() + 7) / 8);
  }

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace now::net
