// Message type of the synchronous network model (Section 2 of the paper):
// nodes exchange point-to-point messages over private channels, in lockstep
// rounds. Messages are counted in unit-size pieces — a payload of w words is
// charged as w unit messages, matching the paper's "communication cost is
// proportional to the number of bits sent" convention.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace now::net {

/// Protocol-level message tags. Kept in one enum so traces are readable;
/// individual protocols interpret payload words themselves.
enum class Tag : std::uint16_t {
  kValue,      // phase-king round 1 value broadcast
  kPropose,    // phase-king round 2 proposal
  kKing,       // phase-king round 3 king value
  kDiscovery,  // identity-set gossip
  kCommit,     // randNum commitment
  kReveal,     // randNum reveal
  kEcho,       // randNum echo of received reveals
  kApp,        // application payload
};

struct Message {
  NodeId from;
  NodeId to;
  Tag tag = Tag::kApp;
  std::vector<std::uint64_t> payload;

  /// Unit-message cost of this message (>= 1 even for empty payloads).
  [[nodiscard]] std::uint64_t cost_units() const {
    return payload.empty() ? 1 : static_cast<std::uint64_t>(payload.size());
  }
};

}  // namespace now::net
