// Snapshot subsystem — versioned binary serialization of the full
// deterministic state of a NOW deployment (DESIGN.md §8).
//
// A snapshot captures everything the protocol's future trajectory depends
// on: the NowState slot tables and free lists, the membership slab's exact
// geometry (per-slot extents + allocated tail — slab positions key the
// commit's conflict footprints and the compaction trigger is a function of
// tail and live mass, so layout must survive a round trip verbatim), the
// node/cluster id counters, the node -> home map (rebuilt from
// membership), the Byzantine and live-node sets IN THEIR DENSE ORDER (both
// orders are observable through uniform index draws and items()
// iteration), the overlay adjacency in its dense vertex order
// (random_vertex indexes it), the system RNG's raw 256-bit state, the
// batch/step counters — and the PlanCache's alias-sampler state (the stale
// Vose weights plus the dirty overlay list), because draw_biased's
// rejection pattern is observable through the per-op derived RNG streams.
// Everything else in the PlanCache (dense index tables, neighborhood
// populations) is a pure function of the restored state and is REBUILT on
// load, then debug-asserted consistent_with(state).
//
// Restore-then-continue is bit-identical to the uninterrupted run for
// every shard count and every ResolveMode (tests/core/snapshot_test.cpp).
//
// File format: an 8-byte magic, a little-endian u32 format version, the
// payload, and a trailing FNV-1a-64 checksum of the payload. Loading
// rejects wrong magic, unknown versions, truncation and checksum mismatch
// by throwing SnapshotError. The same Writer/Reader primitives back the
// scenario trace files (sim/trace.hpp) and scenario checkpoints.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace now::core {

class NowSystem;
struct NowParams;

/// Thrown on any malformed, truncated, corrupt or incompatible file.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Current format version of NowSystem snapshots. Bump rules (DESIGN.md
/// §9): bump on ANY payload layout change — loaders reject other versions
/// rather than misparse, and no cross-version migration is attempted. A
/// bump here also obligates bumping sim/trace.hpp's checkpoint version
/// (checkpoints embed a save_system payload); the trace format itself
/// (header + events, no embedded state) is unaffected.
///   v1 — per-cluster member lists, no slab geometry.
///   v2 — membership slab: explicit tail + per-slot extent (first/cap/size)
///        + bulk little-endian member block per live slot.
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// Little-endian binary writer over an in-memory buffer. write_file frames
/// the buffer with magic + version + checksum.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s) {
    u64(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }
  /// Raw byte blob (the membership slab's bulk member write). The caller
  /// owns the layout and must keep it little-endian fixed-width.
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buffer_;
  }

  /// Writes magic (exactly 8 chars) + version + payload + checksum.
  void write_file(const std::string& path, std::string_view magic,
                  std::uint32_t version) const;

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Little-endian binary reader; every accessor throws SnapshotError on
/// truncation instead of reading past the end.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::vector<std::uint8_t> payload)
      : payload_(std::move(payload)) {}

  /// Reads and validates a framed file (magic, version range, checksum).
  static SnapshotReader read_file(const std::string& path,
                                  std::string_view magic,
                                  std::uint32_t min_version,
                                  std::uint32_t max_version);

  [[nodiscard]] std::uint32_t version() const { return version_; }

  std::uint8_t u8() {
    need(1);
    return payload_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(payload_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(payload_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  /// Raw byte blob (bounds-checked); counterpart of SnapshotWriter::bytes.
  void bytes(void* out, std::size_t size) {
    need(size);
    std::memcpy(out, payload_.data() + pos_, size);
    pos_ += size;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(payload_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Reads an element count that precedes `element_size`-byte records and
  /// validates it against the bytes actually remaining, so a corrupt or
  /// hostile count can neither drive an unbounded allocation nor pass a
  /// wrapped-around need() check — counts always fail as SnapshotError.
  std::uint64_t count(std::uint64_t element_size) {
    const std::uint64_t n = u64();
    if (element_size != 0 &&
        n > (payload_.size() - pos_) / element_size) {
      throw SnapshotError("snapshot count exceeds remaining payload");
    }
    return n;
  }

  [[nodiscard]] bool at_end() const { return pos_ == payload_.size(); }

  /// Payload bytes not yet consumed (plausibility bounds on size fields
  /// that precede variable-size data, e.g. the slab tail).
  [[nodiscard]] std::uint64_t remaining() const {
    return payload_.size() - pos_;
  }

  // Random access within the payload — the seekable-trace machinery
  // (sim/trace.hpp v2): a trace footer records byte offsets of embedded
  // checkpoint frames and replay jumps straight to one. Offsets are
  // validated here so a corrupt footer fails as SnapshotError, never as an
  // out-of-range read.
  [[nodiscard]] std::uint64_t pos() const { return pos_; }
  [[nodiscard]] std::uint64_t size() const { return payload_.size(); }
  void seek(std::uint64_t pos) {
    if (pos > payload_.size()) {
      throw SnapshotError("seek offset past end of payload");
    }
    pos_ = static_cast<std::size_t>(pos);
  }

 private:
  void need(std::uint64_t bytes) const {
    // pos_ <= size always holds, so the subtraction cannot underflow and
    // the comparison cannot be defeated by a wrapping pos_ + bytes.
    if (bytes > payload_.size() - pos_) {
      throw SnapshotError("snapshot truncated mid-record");
    }
  }

  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
  std::uint32_t version_ = 0;
};

/// FNV-1a 64 over a byte range (the frame checksum).
[[nodiscard]] std::uint64_t fnv1a64(const std::uint8_t* data,
                                    std::size_t size);

/// Serializes the behavior-relevant NowParams fields. resolve_mode is
/// deliberately excluded: every resolve strategy is bit-identical, so a
/// snapshot or trace may be resumed/replayed under any of them.
void save_params(const NowParams& params, SnapshotWriter& writer);

/// Reads params written by save_params (resolve_mode is left default).
[[nodiscard]] NowParams read_params(SnapshotReader& reader);

/// Reads params and throws SnapshotError naming the first field that
/// differs from `expected` (snapshots restore into a same-params system).
void check_params(const NowParams& expected, SnapshotReader& reader);

/// Serializes the complete deterministic state of `system` into `writer`
/// (the payload NowSystem::save frames into a file). Exposed so scenario
/// checkpoints can embed a system snapshot in a larger frame.
void save_system(const NowSystem& system, SnapshotWriter& writer);

/// Restores `system` (which must be freshly constructed with the same
/// NowParams — behavior-relevant parameter drift is rejected) from a
/// payload produced by save_system.
void load_system(NowSystem& system, SnapshotReader& reader);

}  // namespace now::core
