#include "core/now.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "agreement/discovery.hpp"
#include "agreement/quorum.hpp"
#include "cluster/intercluster.hpp"
#include "cluster/rand_num.hpp"
#include "common/math_util.hpp"
#include "core/plan_cache.hpp"
#include "core/snapshot.hpp"
#include "graph/connectivity.hpp"
#include "graph/erdos_renyi.hpp"
#include "obs/obs.hpp"

namespace now::core {

namespace {

// neighborhood_population lives in core/plan_cache.hpp — the same helper
// backs the live-state charging below and the cache maintenance, so the
// audience computation can never drift between them.

/// Charges the cost of cluster `c` multicasting `units` words to every node
/// of every neighboring cluster (each member sends, majority rule applies).
void charge_neighborhood_broadcast(const NowState& state, ClusterId c,
                                   std::uint64_t units, Metrics& metrics) {
  const auto senders =
      static_cast<std::uint64_t>(state.cluster_at(c).size());
  const auto audience =
      static_cast<std::uint64_t>(neighborhood_population(state, c));
  metrics.add_messages(senders * audience * units);
}

over::OverParams make_over_params(const NowParams& p) {
  over::OverParams op;
  op.max_size = p.max_size;
  op.alpha = p.alpha;
  op.degree_constant = p.over_degree_constant;
  op.cap_factor = p.over_cap_factor;
  return op;
}

}  // namespace

// ------------------------------------------------------- sharded batch plan
//
// The sharded engine splits every batch into a PLAN phase (random decisions
// + cost accounting against the frozen start-of-step state; runs
// concurrently, one shard per thread, each operation and each exchange wave
// on its own derived RNG stream) and a COMMIT phase (an optimistic parallel
// resolve + sequential conflict replay decides every membership move,
// stage 1 applies the per-cluster edits shard-parallel, stage 2 merges size
// deltas and runs the deferred splits/merges sequentially). Plans never
// touch NowState non-const — everything they decide is recorded here.
// The snapshot aggregates live in the persistent, incrementally maintained
// PlanCache (core/plan_cache.hpp).

/// One exchange swap decided during planning: x (member of the wave's
/// cluster) trades places with y (member of the partner). Both endpoints
/// are recorded by home-cluster SLOT and by SLAB POSITION
/// (MemberSlab::first(slot) + sorted member index — extents are frozen
/// between the snapshot and the commit, so positions are stable and
/// injective) at plan time, so the commit's conflict detection needs no
/// paged home lookups: a swap conflicts exactly when one of its slab
/// footprints is touched by more than one planned move.
struct PendingSwap {
  NodeId x;
  NodeId y;
  std::uint32_t from_slot = 0;
  std::uint32_t to_slot = 0;
  std::uint32_t x_flat = 0;
  std::uint32_t y_flat = 0;
};

/// One scheduled exchange wave (DESIGN.md §7): cluster `cluster` shuffles
/// all of its snapshot members once this time step, however many batch
/// operations touched it. Waves are collected in canonical order (first
/// touch by operation order; secondaries in partner order of their primary)
/// so their RNG streams, and therefore the committed state, are independent
/// of the shard count. The wave's swap and partner buffers live in the
/// per-cluster wave cache (BatchScratch::wave_cache), keyed by `slot` and
/// reused across time steps.
struct PlannedWave {
  ClusterId cluster = ClusterId::invalid();
  std::uint32_t slot = 0;
  /// Substream index: derive_stream(seed, batch, stream) — canonical.
  std::uint64_t stream = 0;
  /// A leave touched this cluster, so its partners get secondary waves.
  bool from_leave = false;
  std::uint64_t rounds = 0;
};

/// A cluster's wave buffers, persisting across time steps (keyed by slot):
/// steady-state churn shuffles the same clusters again and again, so the
/// swap/partner capacities from earlier steps are reused instead of
/// reallocated per wave.
struct ClusterWaveCache {
  std::vector<PendingSwap> swaps;
  std::vector<ClusterId> partners;
};

/// Per-shard wave-planning workspace: epoch-stamped partner dedup (O(1)
/// per draw instead of a linear scan of the wave's partner list).
struct WaveWorkspace {
  std::vector<std::uint32_t> partner_epoch;  // by dense cluster index
  std::uint32_t epoch = 0;
};

constexpr std::size_t kNoWave = static_cast<std::size_t>(-1);

/// Batch-engine state persisting across time steps (owned by NowSystem
/// through a unique_ptr; the header only forward-declares it). Everything
/// here is either a cache whose content survives batches (PlanCache, the
/// per-cluster wave caches) or scratch whose *capacity* survives (footprint
/// counters, per-slot edit buffers, per-shard workspaces) so steady-state
/// batches run allocation-free. Per-slot scratch is epoch-stamped
/// (DESIGN.md §11): `slot_epoch` bumps once per batch, every write stamps
/// it, and a read whose stamp is stale sees "untouched" — no per-batch
/// reset sweep is ever needed, for any slot count.
struct BatchScratch {
  /// Incrementally maintained snapshot aggregates (core/plan_cache.hpp).
  PlanCache cache;

  /// Per-cluster wave buffers, by slot, reused across steps.
  std::vector<ClusterWaveCache> wave_cache;
  /// Per-shard wave-planning workspaces.
  std::vector<WaveWorkspace> wave_ws;
  std::vector<PlannedWave> primaries;
  std::vector<PlannedWave> secondaries;

  /// Struct-of-arrays op plan, one entry per batch operation in canonical
  /// order (joins first, then leaves): kind, node, planned target (walk
  /// result / leave home), the target's slot, and the op's critical path.
  /// The plan, wave-collection and resolve passes stream these flat arrays
  /// instead of hopping per-op structs.
  std::vector<std::uint8_t> op_is_join;
  std::vector<NodeId> op_node;
  std::vector<ClusterId> op_target;
  std::vector<std::uint32_t> op_slot;
  std::vector<std::uint64_t> op_rounds;
  /// Bulk-derived RNG streams (Rng::derive_streams): one per op, then one
  /// per wave tier, reusing the same buffers every batch.
  std::vector<Rng> op_rng;
  std::vector<Rng> wave_rng;
  /// Per-shard op-index assignment (rebuilt per batch, capacities kept).
  std::vector<std::vector<std::size_t>> assignment;

  /// Batch epoch for the per-slot scratch below. Starts at 1 so the
  /// zero-initialized epoch arrays read as "never touched".
  std::uint64_t slot_epoch = 0;

  /// Batch leavers grouped by home slot; `leavers_by_slot[slot]` is only
  /// meaningful when `leaver_epoch_of_slot[slot] == slot_epoch` (read it
  /// through leavers_of()). `leaver_slots` lists this batch's slots.
  std::vector<std::vector<NodeId>> leavers_by_slot;
  std::vector<std::uint64_t> leaver_epoch_of_slot;
  std::vector<std::uint32_t> leaver_slots;
  /// Wave index per touched slot, epoch-stamped (read through wave_of()).
  std::vector<std::size_t> wave_of_slot;
  std::vector<std::uint64_t> wave_epoch_of_slot;
  /// First-touch dedup for the restructuring-candidate list (a live
  /// cluster's slot is as unique as its id within a batch).
  std::vector<std::uint64_t> candidate_epoch_of_slot;

  /// Epoch-stamped footprint counters over slab positions (sized to
  /// MemberSlab::tail(); epoch stamps absorb layout changes between
  /// batches): entry = (epoch << 4) | leaver_bit(8) | saturating move
  /// count (0..2). The commit's conflict detection keys on these — no
  /// per-batch clearing, no paged lookups.
  std::vector<std::uint64_t> foot;
  std::uint64_t foot_epoch = 0;

  /// Per-canonical-swap resolution outcome (kApply and friends below).
  std::vector<std::uint8_t> fate;
  /// Canonical wave listing (primaries then secondaries) and, in parallel
  /// resolve mode, each wave's prefix offset into `fate` — rebuilt every
  /// batch, capacities kept.
  std::vector<const PlannedWave*> all_waves;
  std::vector<std::size_t> wave_swap_offset;

  // Commit-engine scratch: the per-cluster-slot edit buffers (the resolve
  // passes append, the stage-1 worker that owns the slot empties them) and
  // the per-shard stage-1 workspaces (merge buffers + signed size-delta
  // arrays + swap-edit touch lists).
  std::vector<std::vector<NowState::MemberEdit>> edit_scratch;
  std::vector<NowState::EditScratch> edit_workspaces;
  std::vector<std::vector<std::pair<std::size_t, std::int64_t>>>
      delta_scratch;
  std::vector<std::vector<std::size_t>> touched_scratch;

  // Commit-phase scratch that used to be per-batch locals; hoisted so
  // steady-state batches stay allocation-free (capacities persist).
  std::vector<std::size_t> seq_touched;
  std::vector<ClusterId> candidates;
  std::vector<std::pair<std::size_t, std::int64_t>> all_deltas;
  std::vector<std::pair<std::size_t, const std::vector<NodeId>*>> spilled;
  std::vector<std::size_t> shard_drops;
  std::vector<std::size_t> shard_replays;

  /// Grows every per-slot scratch array to `slot_count` entries, with
  /// geometric over-allocation so total growth work stays amortized O(1)
  /// per batch (the arrays never shrink; epoch stamps make stale content
  /// invisible).
  void ensure_slot_capacity(std::size_t slot_count) {
    if (leavers_by_slot.size() >= slot_count) return;
    const std::size_t grown =
        std::max(slot_count, 2 * leavers_by_slot.size());
    leavers_by_slot.resize(grown);
    leaver_epoch_of_slot.resize(grown, 0);
    wave_of_slot.resize(grown, 0);
    wave_epoch_of_slot.resize(grown, 0);
    candidate_epoch_of_slot.resize(grown, 0);
    wave_cache.resize(grown);
    edit_scratch.resize(grown);
  }

  /// This batch's leavers homed at `slot` (empty when the slot was not
  /// touched this batch — stale buffer content is invisible).
  [[nodiscard]] std::span<const NodeId> leavers_of(std::size_t slot) const {
    if (leaver_epoch_of_slot[slot] != slot_epoch) return {};
    return leavers_by_slot[slot];
  }

  /// This batch's wave index for `slot`, or kNoWave.
  [[nodiscard]] std::size_t wave_of(std::size_t slot) const {
    return wave_epoch_of_slot[slot] == slot_epoch ? wave_of_slot[slot]
                                                  : kNoWave;
  }

  [[nodiscard]] std::uint64_t foot_value(std::uint64_t flat) const {
    const std::uint64_t entry = foot[flat];
    return (entry >> 4) == foot_epoch ? (entry & 0xF) : 0;
  }
  void foot_mark_leaver(std::uint64_t flat) {
    foot[flat] = (foot_epoch << 4) | foot_value(flat) | 0x8;
  }
  /// Epoch-aware saturating move count, callable concurrently from the
  /// wave planners: the footprint pass is folded into wave planning (both
  /// swap endpoints are known there), shaving the dedicated
  /// post-planning sweep the commit used to make. The final
  /// entry is order-independent — the count saturates at 2, the leaver
  /// bit is only OR-ed in sequentially before planning starts, and every
  /// writer stamps the same epoch — so the committed state stays
  /// bit-identical to the sequential sweep's.
  void foot_count_move_atomic(std::uint64_t flat) {
    std::atomic_ref<std::uint64_t> ref(foot[flat]);
    std::uint64_t cur = ref.load(std::memory_order_relaxed);
    while (true) {
      const std::uint64_t value =
          (cur >> 4) == foot_epoch ? (cur & 0xF) : 0;
      const std::uint64_t count = value & 0x3;
      const std::uint64_t next = (foot_epoch << 4) | (value & 0x8) |
                                 (count < 2 ? count + 1 : count);
      if (ref.compare_exchange_weak(cur, next,
                                    std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Resident bytes of the persistent batch-engine state: the PlanCache
  /// plus every scratch buffer, capacities included down one nesting level
  /// — the batch half of NowSystem::footprint_bytes().
  [[nodiscard]] std::size_t footprint_bytes() const {
    const auto vec_bytes = [](const auto& v) {
      return v.capacity() * sizeof(v[0]);
    };
    std::size_t bytes = cache.footprint_bytes();
    bytes += vec_bytes(wave_cache);
    for (const ClusterWaveCache& c : wave_cache) {
      bytes += vec_bytes(c.swaps) + vec_bytes(c.partners);
    }
    bytes += vec_bytes(wave_ws);
    for (const WaveWorkspace& w : wave_ws) bytes += vec_bytes(w.partner_epoch);
    bytes += vec_bytes(primaries) + vec_bytes(secondaries) +
             vec_bytes(op_is_join) + vec_bytes(op_node) +
             vec_bytes(op_target) + vec_bytes(op_slot) +
             vec_bytes(op_rounds) + vec_bytes(op_rng) + vec_bytes(wave_rng);
    bytes += vec_bytes(assignment);
    for (const auto& a : assignment) bytes += vec_bytes(a);
    bytes += vec_bytes(leavers_by_slot);
    for (const auto& l : leavers_by_slot) bytes += vec_bytes(l);
    bytes += vec_bytes(leaver_epoch_of_slot) + vec_bytes(leaver_slots) +
             vec_bytes(wave_of_slot) + vec_bytes(wave_epoch_of_slot) +
             vec_bytes(candidate_epoch_of_slot) + vec_bytes(foot) +
             vec_bytes(fate) + vec_bytes(all_waves) +
             vec_bytes(wave_swap_offset);
    bytes += vec_bytes(edit_scratch);
    for (const auto& e : edit_scratch) bytes += vec_bytes(e);
    bytes += vec_bytes(edit_workspaces);
    for (const NowState::EditScratch& w : edit_workspaces) {
      bytes += vec_bytes(w.adds) + vec_bytes(w.removes) +
               vec_bytes(w.merge) + vec_bytes(w.spills);
      for (const auto& [slot, members] : w.spills) {
        (void)slot;
        bytes += vec_bytes(members);
      }
    }
    bytes += vec_bytes(delta_scratch);
    for (const auto& d : delta_scratch) bytes += vec_bytes(d);
    bytes += vec_bytes(touched_scratch);
    for (const auto& t : touched_scratch) bytes += vec_bytes(t);
    bytes += vec_bytes(seq_touched) + vec_bytes(candidates) +
             vec_bytes(all_deltas) + vec_bytes(spilled) +
             vec_bytes(shard_drops) + vec_bytes(shard_replays);
    return bytes;
  }
};

/// Optimistic-resolve outcomes (BatchScratch::fate).
enum : std::uint8_t {
  kFateApply = 0,    // resolved in parallel: apply at the planned slots
  kFateDrop = 1,     // resolved in parallel: partner left, swap dropped
  kFateReplayed = 2  // handed to the sequential conflict pass
};

namespace {

/// randCl against the snapshot. kSampleExact: the endpoint draw (via the
/// cache's O(1) alias sampler — same |C|/n law as the live-state Fenwick
/// draw) plus the cached modeled cost (identical charges to run_rand_cl,
/// minus the per-call cost-model recomputation). kSimulate walks hop by hop
/// as usual.
RandClResult plan_rand_cl(const NowState& state, const NowParams& params,
                          ClusterId start, const PlanCache& cache,
                          Metrics& metrics, Rng& rng) {
  if (params.walk_mode == WalkMode::kSimulate) {
    return run_rand_cl(state, params, start, metrics, rng);
  }
  RandClResult result = cache.walk;
  result.cluster = cache.id_by_index[cache.draw_biased(rng)];
  metrics.add_messages(result.cost.messages);
  return result;
}

/// Plans one exchange wave for `wave.cluster` against the snapshot: the same
/// walk / notice / draw / broadcast cost sequence as the sequential
/// exchange_all, but the membership swaps are recorded into the cluster's
/// wave cache instead of applied. `skips` excludes the batch's departing
/// nodes homed in this cluster (a leaver must not be shuffled onward).
/// Partner notices are charged through cluster::cluster_send_charge —
/// planning never consumes the majority-rule outcome, so the per-call
/// Byzantine count is skipped while the charged cost stays identical to
/// cluster_send's.
///
/// When `foot` is non-null (the optimistic resolve is selected for this
/// batch), each planned swap's two flat endpoints are counted into the
/// footprint array right here — the endpoints are already at hand, so the
/// commit's separate footprint sweep over every wave's swap list is gone.
void plan_wave(const NowState& state, const NowParams& params,
               PlannedWave& wave, ClusterWaveCache& out,
               std::span<const NodeId> skips, const PlanCache& cache,
               WaveWorkspace& ws, BatchScratch* foot, Metrics& metrics,
               Rng& rng) {
  OpScope scope(metrics, "exchange");
  const ClusterId c = wave.cluster;
  const std::size_t c_index = cache.index_by_slot[wave.slot];
  ++ws.epoch;
  std::uint64_t rounds_max = 0;
  const std::size_t c_size = cache.cluster_by_index[c_index]->size();
  const std::uint64_t c_neighborhood = cache.neighborhood_by_index[c_index];
  const cluster::MemberSlab& slab = state.member_slab();
  const std::uint64_t c_flat = slab.first(wave.slot);
  const std::span<const NodeId> snapshot =
      cache.cluster_by_index[c_index]->members();
  const bool sampled = params.walk_mode == WalkMode::kSampleExact;
  for (std::size_t pos = 0; pos < snapshot.size(); ++pos) {
    const NodeId x = snapshot[pos];
    if (std::find(skips.begin(), skips.end(), x) != skips.end()) continue;
    // Pick the counterpart cluster with randCl (law |C'|/n); a walk landing
    // back home is re-run (bounded retries). The sampled mode draws through
    // the cache's O(1) alias sampler and charges the modeled walk cost; the
    // simulated mode runs the message-level walk against the snapshot.
    std::size_t partner_index = c_index;
    std::uint64_t chain_rounds = 0;
    for (int attempt = 0; attempt < 8 && partner_index == c_index;
         ++attempt) {
      if (sampled) {
        partner_index = cache.draw_biased(rng);
        metrics.add_messages(cache.walk.cost.messages);
        chain_rounds += cache.walk.cost.rounds;
      } else {
        const auto walk = run_rand_cl(state, params, c, metrics, rng);
        partner_index = cache.index_by_slot[state.slot_index(walk.cluster)];
        chain_rounds += walk.cost.rounds;
      }
    }
    if (partner_index != c_index) {
      if (ws.partner_epoch[partner_index] != ws.epoch) {
        ws.partner_epoch[partner_index] = ws.epoch;
        out.partners.push_back(cache.id_by_index[partner_index]);
      }
      // One extent-table read for the whole partner interaction: the span
      // carries base + size, and the slab is read-only for the entire plan
      // phase, so nothing below can invalidate it (the repeated size()/
      // member_at() calls this replaces each re-read the extent — the
      // intervening Metrics/Rng calls keep the compiler from hoisting).
      const std::uint32_t partner_slot = cache.slot_by_index[partner_index];
      const std::span<const NodeId> to_members = slab.members(partner_slot);
      const std::uint64_t to_size = to_members.size();
      chain_rounds += cluster::cluster_send_charge(c_size, to_size, 1, metrics);
      const auto draw = cluster::rand_num_value(
          to_size, to_size, params.rand_num_mode, metrics, rng);
      chain_rounds += draw.cost.rounds;
      const PendingSwap swap{
          x, to_members[static_cast<std::size_t>(draw.value)], wave.slot,
          partner_slot, static_cast<std::uint32_t>(c_flat + pos),
          static_cast<std::uint32_t>(slab.first(partner_slot) + draw.value)};
      out.swaps.push_back(swap);
      if (foot != nullptr) {
        foot->foot_count_move_atomic(swap.x_flat);
        foot->foot_count_move_atomic(swap.y_flat);
      }
      // One coalesced charge: the x <-> y handoff (2 units each way), the
      // composition deltas to both neighborhoods (2 units) and the overlay
      // info the newcomers receive — identical units to the sequential
      // exchange_all, in one Metrics call.
      const std::uint64_t p_neighborhood =
          cache.neighborhood_by_index[partner_index];
      const std::uint64_t handoff_units =
          static_cast<std::uint64_t>(c_size) + to_size;
      const std::uint64_t c_info = c_size + c_neighborhood;
      const std::uint64_t p_info = to_size + p_neighborhood;
      metrics.add_messages(2 * handoff_units +
                           2 * (c_size * c_neighborhood +
                                to_size * p_neighborhood) +
                           c_info * c_size + p_info * to_size);
      chain_rounds += 2;
    }
    rounds_max = std::max(rounds_max, chain_rounds);
  }
  wave.rounds = rounds_max;
  metrics.add_rounds(rounds_max);
}

/// Plans Algorithm 1 for a fresh node. Mirrors NowSystem::place_node except
/// that the joiner is absent from the snapshot, so it does not take part in
/// the induced exchange (it is shuffled from its next operation onward),
/// the induced exchange itself is scheduled by the wave scheduler (one wave
/// per touched cluster per time step) and the induced split is deferred to
/// commit.
void plan_join(const NowState& state, const NowParams& params, NodeId node,
               const PlanCache& cache, Metrics& metrics, Rng& rng,
               ClusterId& target_out, std::uint64_t& rounds_out) {
  (void)node;
  OpScope scope(metrics, "join");
  const ClusterId contact = state.random_cluster_uniform(rng);
  const auto walk = plan_rand_cl(state, params, contact, cache, metrics, rng);
  std::uint64_t rounds = walk.cost.rounds;
  target_out = walk.cluster;

  const auto& dest = state.cluster_at(target_out);
  const std::uint64_t neighborhood = cache.neighborhood(state, target_out);
  metrics.add_messages(dest.size() * neighborhood);  // announce x, 1 unit
  const std::uint64_t info_units =
      static_cast<std::uint64_t>(dest.size()) + neighborhood;
  metrics.add_messages(info_units *
                       (static_cast<std::uint64_t>(dest.size()) +
                        static_cast<std::uint64_t>(walk.hops)));
  rounds += 2;

  rounds_out = rounds;
  metrics.add_rounds(rounds);
}

/// Plans Algorithm 2 for the leaver homed at `slot`. The leave itself is
/// deterministic — its random decisions all live in the exchange wave the
/// scheduler plans separately — so with the home slot precomputed by the
/// partition pass it reduces to one streaming cost charge over the flat
/// per-slot tables (size from the slab extent, neighborhood from the
/// cache's dense array; identical values to the cluster_at path). The
/// induced exchange wave (plus the secondary waves of its partners) is
/// scheduled by the wave scheduler; the induced merge is deferred to
/// commit.
std::uint64_t plan_leave(const NowState& state, const PlanCache& cache,
                         std::uint32_t slot, Metrics& metrics) {
  OpScope scope(metrics, "leave");
  metrics.add_messages(state.member_slab().size(slot) *
                       cache.neighborhood_by_slot[slot]);  // drop x
  metrics.add_rounds(1);
  return 1;
}

}  // namespace

NowSystem::NowSystem(const NowParams& params, Metrics& metrics,
                     std::uint64_t seed)
    : params_(params),
      metrics_(metrics),
      seed_(seed),
      rng_(seed),
      state_(make_over_params(params)),
      batch_(std::make_unique<BatchScratch>()) {}

NowSystem::~NowSystem() = default;

void NowSystem::invalidate_plan_cache() { batch_->cache.invalidate(); }

std::size_t NowSystem::footprint_bytes() const {
  return state_.footprint_bytes() + batch_->footprint_bytes();
}

std::size_t NowSystem::debug_foot_capacity() const {
  return batch_->foot.capacity();
}

bool NowSystem::plan_cache_consistent() const {
  return !batch_->cache.valid || batch_->cache.consistent_with(state_);
}

// Snapshot glue for the PlanCache (core/snapshot.cpp drives these; they
// live here because BatchScratch is opaque outside this file). Only the
// alias sampler's OBSERVABLE state is written: the stale Vose weights and
// the dirty-overlay list, whose draw/rejection pattern shows through the
// per-op derived RNG streams. The dense tables, neighborhood populations
// and flat offsets are pure functions of the restored state, so load
// rebuilds them with build() and then re-marks the overlay.
void NowSystem::save_plan_cache(SnapshotWriter& writer) const {
  const PlanCache& cache = batch_->cache;
  writer.u8(cache.valid ? 1 : 0);
  if (!cache.valid) return;
  writer.u64(cache.table_weight.size());
  for (const std::uint64_t weight : cache.table_weight) writer.u64(weight);
  writer.u64(cache.dirty_list.size());
  for (const std::uint32_t index : cache.dirty_list) writer.u32(index);
}

void NowSystem::load_plan_cache(SnapshotReader& reader) {
  PlanCache& cache = batch_->cache;
  if (reader.u8() == 0) {
    cache.invalidate();
    return;
  }
  cache.build(state_, params_);
  const std::uint64_t stale_count = reader.count(8);
  if (stale_count != cache.current_weight.size()) {
    throw SnapshotError("plan-cache stale-weight table size mismatch");
  }
  std::vector<std::uint64_t> stale(stale_count);
  for (auto& weight : stale) weight = reader.u64();
  const std::uint64_t dirty_count = reader.count(4);
  std::vector<std::uint32_t> dirty;
  dirty.reserve(dirty_count);
  std::vector<std::uint8_t> seen(stale_count, 0);
  for (std::uint64_t i = 0; i < dirty_count; ++i) {
    const std::uint32_t index = reader.u32();
    if (index >= stale_count || seen[index] != 0) {
      throw SnapshotError("plan-cache dirty index out of range or "
                          "repeated");
    }
    seen[index] = 1;
    dirty.push_back(index);
  }
  cache.restore_alias(std::move(stale), dirty);
  assert(cache.consistent_with(state_));
}

InitReport NowSystem::initialize(std::size_t n0, std::size_t byzantine_count,
                                 InitTopology topology) {
  assert(!initialized_);
  assert(n0 >= 2 && byzantine_count < n0);
  OpScope scope(metrics_, "init");
  InitReport report;
  report.n0 = n0;

  // --- Create identities; the static adversary corrupts its fraction now.
  std::vector<NodeId> ids;
  ids.reserve(n0);
  for (std::size_t i = 0; i < n0; ++i) ids.push_back(state_.fresh_node_id());
  for (const std::size_t index : rng_.sample_distinct(n0, byzantine_count)) {
    state_.byzantine.insert(ids[index]);
  }

  // --- Phase 1: network discovery (all honest nodes learn all identities),
  // flooding over the initial knowledge topology.
  if (topology == InitTopology::kModeledSparse) {
    OpScope discovery_scope(metrics_, "init.discovery");
    const double nd = static_cast<double>(n0);
    const double degree = log_pow(nd, 2.0) + 3.0;
    const double edges = nd * degree / 2.0;
    metrics_.add_messages(static_cast<std::uint64_t>(nd * edges));
    metrics_.add_rounds(static_cast<std::uint64_t>(std::ceil(log_n(nd))));
    report.discovery = discovery_scope.cost();
    report.discovery_complete = true;
  } else {
    graph::Graph topo;
    std::vector<graph::Vertex> verts;
    verts.reserve(n0);
    for (const NodeId id : ids) verts.push_back(id.value());
    if (topology == InitTopology::kComplete) {
      graph::generate_erdos_renyi(topo, verts, 1.0, rng_);
    } else {
      const double degree =
          log_pow(static_cast<double>(n0), 2.0) + 3.0;  // polylog knowledge
      const double p = std::min(1.0, degree / static_cast<double>(n0 - 1));
      graph::generate_erdos_renyi(topo, verts, p, rng_);
      // The model assumes the honest nodes start connected; patch the rare
      // disconnected sample by bridging components.
      auto components = graph::connected_components(topo);
      for (std::size_t i = 1; i < components.size(); ++i) {
        topo.add_edge(components[0][0], components[i][0]);
      }
    }
    OpScope discovery_scope(metrics_, "init.discovery");
    const auto discovery =
        agreement::run_discovery(topo, state_.byzantine, metrics_);
    report.discovery = discovery_scope.cost();
    report.discovery_complete = discovery.complete;
  }

  // --- Phase 2: representative cluster via scalable BA ([19]; DESIGN.md §5).
  std::vector<NodeId> representative;
  {
    OpScope quorum_scope(metrics_, "init.quorum");
    const std::size_t rep_size =
        std::min(params_.cluster_size_target(n0), n0);
    auto quorum = agreement::build_representative_quorum(ids, rep_size,
                                                         metrics_, rng_);
    representative = std::move(quorum.committee);
    report.quorum = quorum_scope.cost();
  }

  // --- Phase 3: the representative cluster orders the nodes at random
  // (one randNum call per Fisher–Yates step) and cuts the order into
  // clusters of ~ k log N nodes.
  {
    OpScope partition_scope(metrics_, "init.partition");
    std::uint64_t rounds = 0;
    for (std::size_t i = 0; i < n0; ++i) {
      const auto draw = cluster::rand_num_value(
          representative.size(), std::max<std::uint64_t>(2, n0 - i),
          params_.rand_num_mode, metrics_, rng_);
      rounds += draw.cost.rounds;
    }
    rng_.shuffle(std::span<NodeId>(ids));

    const std::size_t target = params_.cluster_size_target(n0);
    const std::size_t num_clusters = std::max<std::size_t>(1, n0 / target);
    std::vector<ClusterId> cluster_ids;
    cluster_ids.reserve(num_clusters);
    for (std::size_t c = 0; c < num_clusters; ++c) {
      cluster_ids.push_back(state_.create_cluster());
    }
    for (std::size_t i = 0; i < n0; ++i) {
      const ClusterId cid = cluster_ids[i % num_clusters];
      state_.add_member(cid, ids[i]);
      state_.register_node(ids[i]);
    }

    // Overlay wiring: for each pair of clusters, the representative cluster
    // draws the ER coin (we charge one randNum per pair).
    state_.overlay.initialize(cluster_ids, rng_);
    const std::uint64_t pair_count =
        static_cast<std::uint64_t>(num_clusters) *
        std::max<std::uint64_t>(1, num_clusters - 1) / 2;
    const Cost coin =
        cluster::rand_num_cost_model(representative.size(),
                                     params_.rand_num_mode);
    metrics_.add_messages(coin.messages * pair_count);
    rounds += coin.rounds;

    // The representative cluster tells each node its cluster, the members,
    // and the adjacent clusters' compositions.
    std::uint64_t inform_messages = 0;
    for (const ClusterId cid : state_.cluster_ids()) {
      const auto& c = state_.cluster_at(cid);
      const std::uint64_t info_units =
          static_cast<std::uint64_t>(c.size()) +
          static_cast<std::uint64_t>(neighborhood_population(state_, cid));
      inform_messages += static_cast<std::uint64_t>(representative.size()) *
                         static_cast<std::uint64_t>(c.size()) * info_units;
    }
    metrics_.add_messages(inform_messages);
    rounds += 2;
    metrics_.add_rounds(rounds);
    report.partition = partition_scope.cost();
    report.num_clusters = num_clusters;
  }

  report.total = scope.cost();
  initialized_ = true;
  return report;
}

std::pair<std::vector<NodeId>, OpReport> NowSystem::step_parallel(
    std::size_t joins, const std::vector<NodeId>& leaves,
    bool byzantine_joiners, std::size_t shards) {
  assert(initialized_);
  if (shards > 1) {
    return step_parallel_sharded(joins, leaves, byzantine_joiners, shards);
  }

  OpScope scope(metrics_, "batch");
  OpReport combined;
  std::vector<NodeId> joined;
  joined.reserve(joins);

  std::uint64_t rounds_max = 0;
  for (std::size_t i = 0; i < joins; ++i) {
    const auto [node, report] = join(byzantine_joiners);
    joined.push_back(node);
    combined.splits += report.splits;
    combined.merges += report.merges;
    combined.rejoins += report.rejoins;
    rounds_max = std::max(rounds_max, report.cost.rounds);
  }
  for (const NodeId node : leaves) {
    const auto report = leave(node);
    combined.splits += report.splits;
    combined.merges += report.merges;
    combined.rejoins += report.rejoins;
    rounds_max = std::max(rounds_max, report.cost.rounds);
  }

  combined.cost = scope.cost();
  combined.cost.rounds = rounds_max;  // parallel in time: max, not sum
  return {std::move(joined), combined};
}

ThreadPool& NowSystem::pool_for(std::size_t shards) {
  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::size_t wanted = std::min(shards, hardware) - 1;
  // kOptimistic exists to exercise the parallel resolve; guarantee a real
  // worker thread even on single-core hosts so the threaded paths
  // (classification, edit gather) actually run threaded there — and so
  // TSan sees them regardless of the runner's core count.
  if (params_.resolve_mode == ResolveMode::kOptimistic && shards > 1) {
    wanted = std::max<std::size_t>(wanted, 1);
  }
  if (pool_ == nullptr || pool_->worker_count() < wanted) {
    pool_ = std::make_unique<ThreadPool>(wanted);
  }
  return *pool_;
}

std::pair<std::vector<NodeId>, OpReport> NowSystem::step_parallel_sharded(
    std::size_t joins, const std::vector<NodeId>& leaves,
    bool byzantine_joiners, std::size_t shards) {
  return step_parallel_mixed(joins, byzantine_joiners ? joins : 0, leaves,
                             shards);
}

std::pair<std::vector<NodeId>, OpReport> NowSystem::step_parallel_mixed(
    std::size_t joins, std::size_t byzantine_joins,
    const std::vector<NodeId>& leaves, std::size_t shards) {
  assert(initialized_);
  assert(byzantine_joins <= joins);
  shards = std::max<std::size_t>(1, shards);
  if (trace_sink_ != nullptr) {
    trace_sink_->on_batch(joins, byzantine_joins, leaves, shards);
  }
  OpScope scope(metrics_, "batch");
  OpReport combined;
  const std::uint64_t batch_id = batch_counter_++;
  obs::ScopedSpan batch_span(obs::Cat::kStep, "step.batch", nullptr,
                             batch_id, shards);
  BatchScratch& bs = *batch_;

  // --- Sequential setup: allocate joiner identities and corrupt the first
  // byzantine_joins of them, so ids and the Byzantine ground truth are
  // independent of the shard count.
  std::vector<NodeId> joined;
  joined.reserve(joins);
  for (std::size_t i = 0; i < joins; ++i) {
    const NodeId node = state_.fresh_node_id();
    if (i < byzantine_joins) state_.byzantine.insert(node);
    state_.register_node(node);
    joined.push_back(node);
  }

  // --- Snapshot aggregates: the persistent PlanCache is rebuilt only after
  // structural changes (splits/merges, legacy sequential operations);
  // otherwise the previous commits' incremental maintenance kept it exact
  // and only the cheap derived quantities (walk cost model, flat snapshot
  // offsets) refresh, O(k) with a trivial constant instead of the full
  // O(k + sum degrees) rebuild.
  PlanCache& cache = bs.cache;
  if (!cache.valid) {
    cache.build(state_, params_);
  } else {
    cache.refresh(state_, params_);
  }
  assert(cache.consistent_with(state_));

  // --- Partition: leaves by home-cluster slot, joins (homeless until their
  // walk lands) round-robin. The assignment balances work; it can never
  // change results because plans read only the snapshot + their own stream.
  // Leavers are also grouped by home slot: their cluster's wave must not
  // shuffle a departing node onward. The op plan is laid out as flat
  // struct-of-arrays (kind / node / target / home slot / rounds) so every
  // later pass over the batch streams sequential memory; the leave sweep
  // prefetches the next leaver's node_home line one op ahead.
  // Phase timing is the span layer's job: each phase opens a ScopedSpan
  // whose measured duration lands both in the trace ring (when recording)
  // and in the OpReport *_ns field — one timing source (DESIGN.md §13).
  obs::ScopedSpan plan_span(obs::Cat::kStep, "step.plan", &combined.plan_ns,
                            batch_id);
  const std::size_t slot_count = state_.slot_count();
  const std::size_t total_ops = joins + leaves.size();
  ++bs.slot_epoch;
  bs.ensure_slot_capacity(slot_count);
  bs.leaver_slots.clear();
  bs.op_is_join.resize(total_ops);
  bs.op_node.resize(total_ops);
  bs.op_target.resize(total_ops, ClusterId::invalid());
  bs.op_slot.resize(total_ops);
  bs.op_rounds.resize(total_ops);
  std::vector<Metrics> shard_metrics(shards);
  if (bs.assignment.size() < shards) bs.assignment.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) bs.assignment[s].clear();
  for (std::size_t i = 0; i < joins; ++i) {
    bs.op_is_join[i] = 1;
    bs.op_node[i] = joined[i];
    bs.assignment[i % shards].push_back(i);
  }
  for (std::size_t j = 0; j < leaves.size(); ++j) {
    if (j + 1 < leaves.size()) state_.prefetch_home(leaves[j + 1]);
    assert(state_.is_placed(leaves[j]) && "leave of an unplaced node");
    const ClusterId home = state_.home_of(leaves[j]);
    const std::size_t slot = state_.slot_index(home);
    const std::size_t index = joins + j;
    bs.op_is_join[index] = 0;
    bs.op_node[index] = leaves[j];
    bs.op_target[index] = home;
    bs.op_slot[index] = static_cast<std::uint32_t>(slot);
    bs.assignment[slot % shards].push_back(index);
    if (bs.leaver_epoch_of_slot[slot] != bs.slot_epoch) {
      bs.leaver_epoch_of_slot[slot] = bs.slot_epoch;
      bs.leavers_by_slot[slot].clear();
      bs.leaver_slots.push_back(static_cast<std::uint32_t>(slot));
    }
    bs.leavers_by_slot[slot].push_back(leaves[j]);
  }

  // --- Parallel planning against the frozen snapshot. NowState is only
  // read from here until the commit phase below.
  const NowState& snapshot = state_;
  ThreadPool& pool = pool_for(shards);

  // Resolve strategy, decided up front: the optimistic resolve's footprint
  // counters are populated by the wave planners in-flight (both endpoints
  // of a swap are known at plan time — the dedicated post-planning sweep
  // over every wave's swap list is gone), so the epoch bump, the array
  // sizing and the sequential leaver marks must all happen before the
  // planners start.
  const bool pooled = pool.worker_count() > 0 && shards > 1;
  const bool optimistic =
      params_.resolve_mode == ResolveMode::kOptimistic ||
      (params_.resolve_mode == ResolveMode::kAuto && pooled);
  if (optimistic) {
    ++bs.foot_epoch;
    const cluster::MemberSlab& slab = state_.member_slab();
    if (bs.foot.size() < slab.tail()) {
      // Geometric growth: the epoch stamps make old content invisible, so
      // only capacity matters and total resize work stays amortized O(1)
      // per batch instead of O(tail) on every tail advance.
      bs.foot.resize(
          std::max<std::size_t>(slab.tail(), 2 * bs.foot.size()), 0);
    }
    for (const std::uint32_t slot : bs.leaver_slots) {
      const std::size_t index = cache.index_by_slot[slot];
      const cluster::Cluster& home = *cache.cluster_by_index[index];
      for (const NodeId leaver : bs.leavers_by_slot[slot]) {
        bs.foot_mark_leaver(slab.first(slot) + home.index_of(leaver));
      }
    }
  }

  // Per-op RNG streams, derived in one bulk kernel (ops occupy substreams
  // [0, total_ops); the wave tiers continue the numbering below).
  bs.op_rng.resize(total_ops, Rng{0});
  Rng::derive_streams(seed_, batch_id, 0, total_ops, bs.op_rng.data());

  pool.parallel_for(shards, [&](std::size_t s) {
    for (const std::size_t index : bs.assignment[s]) {
      Rng op_rng = bs.op_rng[index];
      if (bs.op_is_join[index] != 0) {
        plan_join(snapshot, params_, bs.op_node[index], cache,
                  shard_metrics[s], op_rng, bs.op_target[index],
                  bs.op_rounds[index]);
        bs.op_slot[index] = static_cast<std::uint32_t>(
            snapshot.slot_index(bs.op_target[index]));
      } else {
        bs.op_rounds[index] =
            plan_leave(snapshot, cache, bs.op_slot[index], shard_metrics[s]);
      }
    }
  });

  obs::ScopedSpan wave_span(obs::Cat::kStep, "step.wave_schedule", nullptr,
                            batch_id);

  // --- Wave scheduler, tier 1: one primary exchange wave per cluster the
  // batch touched (join target or leave home), however many operations
  // landed on it — the paper's semantics, a cluster exchanges all of its
  // nodes once per time step. First-touch operation order makes the wave
  // list and the per-wave RNG streams (numbered after the operations)
  // canonical, i.e. independent of the shard count.
  bs.primaries.clear();
  bs.secondaries.clear();
  if (params_.shuffle_enabled) {
    for (std::size_t i = 0; i < total_ops; ++i) {
      const std::size_t slot = bs.op_slot[i];
      if (bs.wave_of(slot) == kNoWave) {
        // A cluster whose every snapshot member is leaving has nobody left
        // to shuffle; skip its wave (mirrors the sequential engine's
        // size > 1 guard on the post-removal exchange).
        if (snapshot.member_slab().size(slot) <= bs.leavers_of(slot).size()) {
          continue;
        }
        bs.wave_epoch_of_slot[slot] = bs.slot_epoch;
        bs.wave_of_slot[slot] = bs.primaries.size();
        PlannedWave wave;
        wave.cluster = bs.op_target[i];
        wave.slot = static_cast<std::uint32_t>(slot);
        wave.stream = static_cast<std::uint64_t>(total_ops) +
                      static_cast<std::uint64_t>(bs.primaries.size());
        bs.primaries.push_back(wave);
        bs.wave_cache[slot].swaps.clear();
        bs.wave_cache[slot].partners.clear();
      }
      if (bs.op_is_join[i] == 0 && bs.wave_of(slot) != kNoWave) {
        bs.primaries[bs.wave_of_slot[slot]].from_leave = true;
      }
    }
  }
  if (bs.wave_ws.size() < shards) bs.wave_ws.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    if (bs.wave_ws[s].partner_epoch.size() < cache.id_by_index.size()) {
      bs.wave_ws[s].partner_epoch.resize(cache.id_by_index.size(), 0);
    }
  }
  // Wave streams are numbered right after the ops (primaries[w].stream ==
  // total_ops + w by construction), so one bulk derivation covers the tier.
  bs.wave_rng.resize(bs.primaries.size(), Rng{0});
  Rng::derive_streams(seed_, batch_id, total_ops, bs.primaries.size(),
                      bs.wave_rng.data());
  pool.parallel_for(shards, [&](std::size_t s) {
    for (std::size_t w = 0; w < bs.primaries.size(); ++w) {
      PlannedWave& wave = bs.primaries[w];
      if (wave.slot % shards != s) continue;
      Rng wave_rng = bs.wave_rng[w];
      plan_wave(snapshot, params_, wave, bs.wave_cache[wave.slot],
                bs.leavers_of(wave.slot), cache, bs.wave_ws[s],
                optimistic ? &bs : nullptr, shard_metrics[s], wave_rng);
    }
  });

  // --- Wave scheduler, tier 2: every cluster that swapped with a
  // leave-induced primary wave exchanges all of its own nodes too (Theorem
  // 3's proof relies on this second wave), but again at most once per time
  // step — clusters already shuffled by a primary wave, or named by several
  // primaries, are not re-shuffled.
  for (const PlannedWave& primary : bs.primaries) {
    if (!primary.from_leave) continue;
    for (const ClusterId partner : bs.wave_cache[primary.slot].partners) {
      const std::size_t slot = state_.slot_index(partner);
      if (bs.wave_of(slot) != kNoWave) continue;
      // A partner can carry leavers only when its own primary wave was
      // skipped because everyone is leaving — nobody to shuffle, so no
      // secondary either (a partial-leaver cluster always has a primary).
      if (snapshot.member_slab().size(slot) <= bs.leavers_of(slot).size()) {
        continue;
      }
      bs.wave_epoch_of_slot[slot] = bs.slot_epoch;
      bs.wave_of_slot[slot] = bs.primaries.size() + bs.secondaries.size();
      PlannedWave wave;
      wave.cluster = partner;
      wave.slot = static_cast<std::uint32_t>(slot);
      wave.stream = static_cast<std::uint64_t>(total_ops) +
                    static_cast<std::uint64_t>(bs.primaries.size()) +
                    static_cast<std::uint64_t>(bs.secondaries.size());
      bs.secondaries.push_back(wave);
      bs.wave_cache[slot].swaps.clear();
      bs.wave_cache[slot].partners.clear();
    }
  }
  // Secondary streams continue the numbering: total_ops + |primaries| + w.
  bs.wave_rng.resize(bs.secondaries.size(), Rng{0});
  Rng::derive_streams(seed_, batch_id,
                      static_cast<std::uint64_t>(total_ops) +
                          static_cast<std::uint64_t>(bs.primaries.size()),
                      bs.secondaries.size(), bs.wave_rng.data());
  pool.parallel_for(shards, [&](std::size_t s) {
    for (std::size_t w = 0; w < bs.secondaries.size(); ++w) {
      PlannedWave& wave = bs.secondaries[w];
      if (wave.slot % shards != s) continue;
      Rng wave_rng = bs.wave_rng[w];
      plan_wave(snapshot, params_, wave, bs.wave_cache[wave.slot],
                bs.leavers_of(wave.slot), cache, bs.wave_ws[s],
                optimistic ? &bs : nullptr, shard_metrics[s], wave_rng);
    }
  });
  combined.wave_count = bs.primaries.size() + bs.secondaries.size();
  wave_span.stop();

  // --- Merge per-shard accounting into the caller's Metrics (inside the
  // open "batch" scope). Rounds: operations overlap in time (max), the two
  // wave tiers run after them (each tier internally parallel, so max again).
  std::uint64_t rounds_max = 0;
  for (auto& shard : shard_metrics) {
    combined.shard_costs.push_back(shard.total());
    metrics_.merge(shard);
  }
  for (const std::uint64_t rounds : bs.op_rounds) {
    rounds_max = std::max(rounds_max, rounds);
  }
  std::uint64_t primary_rounds = 0;
  for (const PlannedWave& wave : bs.primaries) {
    primary_rounds = std::max(primary_rounds, wave.rounds);
  }
  std::uint64_t secondary_rounds = 0;
  for (const PlannedWave& wave : bs.secondaries) {
    secondary_rounds = std::max(secondary_rounds, wave.rounds);
  }
  rounds_max += primary_rounds + secondary_rounds;
  plan_span.stop();

  // --- Commit (DESIGN.md §7): optimistic parallel resolve + conflict
  // replay, then the two parallel/sequential apply stages.
  std::uint64_t commit_rounds = 0;
  obs::ScopedSpan commit_span(obs::Cat::kStep, "step.commit",
                              &combined.commit_ns, batch_id);
  {
    OpScope commit(metrics_, "batch.commit");

    // Resolve, part 1 (sequential, O(ops)): the batch's operations, in
    // canonical order — join adds + home writes, leave removes + ground
    // truth erasure — into per-cluster-slot edit lists. node_home is
    // written directly as moves resolve, so it doubles as the within-batch
    // home map for the conflict replay below. Also collects the
    // restructuring candidates in first-touch order (swaps are
    // size-neutral, so only op targets can cross a threshold).
    obs::ScopedSpan resolve_span(obs::Cat::kStep, "step.resolve",
                                 &combined.resolve_ns, batch_id);
    std::vector<std::size_t>& seq_touched = bs.seq_touched;
    std::vector<ClusterId>& candidates = bs.candidates;
    seq_touched.clear();
    candidates.clear();  // resized clusters, first touch
    const auto record = [&](std::size_t slot, NodeId n, bool add) {
      if (bs.edit_scratch[slot].empty()) seq_touched.push_back(slot);
      bs.edit_scratch[slot].push_back(NowState::MemberEdit{n, add});
    };
    for (std::size_t i = 0; i < total_ops; ++i) {
      if (i + 1 < total_ops) state_.prefetch_home(bs.op_node[i + 1]);
      const std::size_t slot = bs.op_slot[i];
      // First-touch candidate dedup, epoch-stamped by slot: op targets are
      // live snapshot clusters, and a live cluster's slot is unique until
      // stage 2's restructuring, so slot identity == cluster identity here
      // (the linear std::find this replaces was O(ops^2) at 1e7).
      if (bs.candidate_epoch_of_slot[slot] != bs.slot_epoch) {
        bs.candidate_epoch_of_slot[slot] = bs.slot_epoch;
        candidates.push_back(bs.op_target[i]);
      }
      if (bs.op_is_join[i] != 0) {
        record(slot, bs.op_node[i], /*add=*/true);
        state_.commit_home(bs.op_node[i], bs.op_target[i]);
      } else {
        record(slot, bs.op_node[i], /*add=*/false);
        state_.byzantine.erase(bs.op_node[i]);
        state_.unregister_node(bs.op_node[i]);
        state_.clear_home(bs.op_node[i]);
      }
    }

    // Resolve, part 2 — OPTIMISTIC RESOLVE (DESIGN.md §7). A footprint
    // pass counts, per flat snapshot position, how many planned moves
    // touch each node (and marks the batch's leavers); swaps whose
    // endpoints are each touched exactly once resolve WITHOUT consulting
    // node_home — x is never relocated by an earlier move (a leaver x is
    // excluded from its wave; joiners are absent from the snapshot) and
    // y's home is its snapshot cluster unless y left, so the canonical
    // sequential outcome is: drop iff y is a leaver, apply at the planned
    // slots otherwise. The footprint-flagged remainder re-resolves
    // sequentially in canonical order at the nodes' *current* homes,
    // exactly like the historical sequential resolve. Three bit-identical
    // execution strategies (ResolveMode):
    //
    //   * PARALLEL (kAuto with pool workers, or kOptimistic): shard-
    //     parallel classification writes per-swap fates + disjoint
    //     node_home entries, the flagged remainder replays sequentially,
    //     and stage-1 workers gather their slots' edits from the fates.
    //   * SEQUENTIAL (kAuto without pool workers, or kSequential): the
    //     canonical resolve — every swap re-resolves at the nodes' current
    //     homes (resolve_replays stays 0 here). A planned-slot fast path
    //     (homes still match the plan, the overwhelmingly common case)
    //     skips the per-swap paged slot lookups; measured faster on one
    //     hardware thread than paying the footprint passes
    //     (BM_JoinLeaveCycle's resolve-mode axis tracks all three).
    //
    // Outcomes are provably identical swap by swap, so the committed state
    // is independent of both the strategy and the shard count.
    std::vector<const PlannedWave*>& all_waves = bs.all_waves;
    all_waves.clear();
    all_waves.reserve(bs.primaries.size() + bs.secondaries.size());
    for (const PlannedWave& wave : bs.primaries) all_waves.push_back(&wave);
    for (const PlannedWave& wave : bs.secondaries) {
      all_waves.push_back(&wave);
    }
    const bool parallel = optimistic;
    const bool gather = parallel && pooled;
    const auto cluster_of_slot = [&cache](std::uint32_t slot) {
      return cache.id_by_index[cache.index_by_slot[slot]];
    };
    /// The edit shape of one applied swap, shared by every strategy's
    /// recording site (sequential fast path, single-thread scatter,
    /// parallel gather) so it can never diverge between them: x moves
    /// from its planned home to the partner's, y the other way.
    const auto record_swap_edits = [](auto&& sink, const PendingSwap& swap) {
      sink(swap.from_slot, swap.x, /*add=*/false);
      sink(swap.to_slot, swap.x, /*add=*/true);
      sink(swap.to_slot, swap.y, /*add=*/false);
      sink(swap.from_slot, swap.y, /*add=*/true);
    };
    /// The historical per-swap rule, shared by the sequential strategy and
    /// the conflict replays: re-resolve at current homes, drop when an
    /// endpoint left or both collapsed into one cluster.
    const auto resolve_at_current_homes = [&](const PendingSwap& swap) {
      const ClusterId x_home = state_.home_of(swap.x);
      const ClusterId y_home = state_.home_of(swap.y);
      if (!x_home.valid() || !y_home.valid() || x_home == y_home) {
        ++combined.conflicts;
        return;
      }
      const std::size_t x_slot = state_.slot_index(x_home);
      const std::size_t y_slot = state_.slot_index(y_home);
      record(x_slot, swap.x, /*add=*/false);
      record(y_slot, swap.x, /*add=*/true);
      record(y_slot, swap.y, /*add=*/false);
      record(x_slot, swap.y, /*add=*/true);
      state_.commit_home(swap.x, y_home);
      state_.commit_home(swap.y, x_home);
    };
    std::vector<std::size_t>& wave_swap_offset = bs.wave_swap_offset;
    if (parallel) {
      wave_swap_offset.resize(all_waves.size());
      std::size_t total_swaps = 0;
      for (std::size_t w = 0; w < all_waves.size(); ++w) {
        wave_swap_offset[w] = total_swaps;
        total_swaps += bs.wave_cache[all_waves[w]->slot].swaps.size();
      }
      // Footprints were already counted by the wave planners (and the
      // leaver marks written before planning); no sweep needed here.
      bs.fate.resize(total_swaps);
      std::vector<std::size_t>& shard_drops = bs.shard_drops;
      std::vector<std::size_t>& shard_replays = bs.shard_replays;
      shard_drops.assign(shards, 0);
      shard_replays.assign(shards, 0);
      pool.parallel_for(shards, [&](std::size_t s) {
        std::size_t drops = 0;
        std::size_t replays = 0;
        for (std::size_t w = 0; w < all_waves.size(); ++w) {
          if (w % shards != s) continue;
          const auto& swaps = bs.wave_cache[all_waves[w]->slot].swaps;
          std::uint8_t* fate = bs.fate.data() + wave_swap_offset[w];
          for (std::size_t i = 0; i < swaps.size(); ++i) {
            const PendingSwap& swap = swaps[i];
            const std::uint64_t x_foot = bs.foot_value(swap.x_flat);
            const std::uint64_t y_foot = bs.foot_value(swap.y_flat);
            if ((x_foot & 0x3) > 1 || (y_foot & 0x3) > 1) {
              fate[i] = kFateReplayed;
              ++replays;
              continue;
            }
            if ((y_foot & 0x8) != 0) {  // the partner leaves this batch
              fate[i] = kFateDrop;
              ++drops;
              continue;
            }
            fate[i] = kFateApply;
            state_.commit_home(swap.x, cluster_of_slot(swap.to_slot));
            state_.commit_home(swap.y, cluster_of_slot(swap.from_slot));
          }
        }
        shard_drops[s] = drops;
        shard_replays[s] = replays;
      });
      for (std::size_t s = 0; s < shards; ++s) {
        combined.conflicts += shard_drops[s];
        combined.resolve_replays += shard_replays[s];
      }

      // Conflict replay (sequential, canonical order): the rare swaps
      // whose endpoints collide re-resolve at the nodes' *current* homes;
      // a swap is dropped only when an endpoint left in this batch or
      // both now share a cluster — the historical sequential-resolve rule.
      if (combined.resolve_replays > 0) {
        for (std::size_t w = 0; w < all_waves.size(); ++w) {
          const auto& swaps = bs.wave_cache[all_waves[w]->slot].swaps;
          const std::uint8_t* fate = bs.fate.data() + wave_swap_offset[w];
          for (std::size_t i = 0; i < swaps.size(); ++i) {
            if (fate[i] == kFateReplayed) resolve_at_current_homes(swaps[i]);
          }
        }
      }
    } else {
      for (const PlannedWave* wave : all_waves) {
        const auto& swaps = bs.wave_cache[wave->slot].swaps;
        for (std::size_t i = 0; i < swaps.size(); ++i) {
          const PendingSwap& swap = swaps[i];
          // Fast path: both endpoints still live at their planned homes
          // (no earlier move touched them — the overwhelmingly common
          // case), so the planned u32 slots apply directly and the paged
          // slot lookups are skipped. Identical outcome to the general
          // rule below, which re-reads the homes it needs.
          const ClusterId from_id = cluster_of_slot(swap.from_slot);
          const ClusterId to_id = cluster_of_slot(swap.to_slot);
          if (state_.home_of(swap.x) == from_id &&
              state_.home_of(swap.y) == to_id) {
            record_swap_edits(record, swap);
            state_.commit_home(swap.x, to_id);
            state_.commit_home(swap.y, from_id);
            continue;
          }
          resolve_at_current_homes(swap);
        }
      }
    }

    resolve_span.stop();
    obs::ScopedSpan stage1_span(obs::Cat::kStep, "step.stage1",
                                &combined.stage1_ns, batch_id);

    // Stage 1 (parallel): slots are partitioned into CONTIGUOUS blocks
    // (one per shard); each worker first GATHERS its block's share of the
    // optimistically applied swaps' edits from the fate array (scanning in
    // canonical order, so per-slot edit lists are identical whichever
    // strategy or worker produces them) and then applies its clusters'
    // member edits. Cluster size changes are accumulated per shard, not
    // written to the Fenwick mirror. Block (not mod-K) ownership keeps
    // each worker's stores in disjoint cache-line ranges of the slot
    // table. With no pool workers the K gather scans would run back to
    // back on one thread, so the single-threaded path scatters all edits
    // in one sequential pass instead — same lists, same results.
    const std::size_t slot_block = (slot_count + shards - 1) / shards;
    if (bs.edit_workspaces.size() < shards) {
      bs.edit_workspaces.resize(shards);
    }
    if (bs.delta_scratch.size() < shards) bs.delta_scratch.resize(shards);
    if (bs.touched_scratch.size() < shards) {
      bs.touched_scratch.resize(shards);
    }
    for (std::size_t s = 0; s < shards; ++s) {
      bs.delta_scratch[s].clear();
      bs.touched_scratch[s].clear();
    }
    if (parallel && !gather) {
      for (std::size_t w = 0; w < all_waves.size(); ++w) {
        const auto& swaps = bs.wave_cache[all_waves[w]->slot].swaps;
        const std::uint8_t* fate = bs.fate.data() + wave_swap_offset[w];
        for (std::size_t i = 0; i < swaps.size(); ++i) {
          if (fate[i] == kFateApply) record_swap_edits(record, swaps[i]);
        }
      }
    }
    pool.parallel_for(shards, [&](std::size_t s) {
      if (gather) {
        const std::size_t lo = s * slot_block;
        const std::size_t hi = lo + slot_block;
        auto& touched = bs.touched_scratch[s];
        const auto gather_edit = [&](std::uint32_t slot, NodeId n,
                                     bool add) {
          if (slot < lo || slot >= hi) return;
          if (bs.edit_scratch[slot].empty()) touched.push_back(slot);
          bs.edit_scratch[slot].push_back(NowState::MemberEdit{n, add});
        };
        for (std::size_t w = 0; w < all_waves.size(); ++w) {
          const auto& swaps = bs.wave_cache[all_waves[w]->slot].swaps;
          const std::uint8_t* fate = bs.fate.data() + wave_swap_offset[w];
          for (std::size_t i = 0; i < swaps.size(); ++i) {
            if (fate[i] == kFateApply) record_swap_edits(gather_edit, swaps[i]);
          }
        }
      }
      const auto apply = [&](std::size_t slot) {
        const std::int64_t delta = state_.apply_member_edits(
            slot, bs.edit_scratch[slot], bs.edit_workspaces[s]);
        if (delta != 0) bs.delta_scratch[s].emplace_back(slot, delta);
        bs.edit_scratch[slot].clear();
      };
      for (const std::size_t slot : seq_touched) {
        if (slot / slot_block == s) apply(slot);
      }
      for (const std::size_t slot : bs.touched_scratch[s]) apply(slot);
    });
    stage1_span.stop();
    obs::ScopedSpan stage2_span(obs::Cat::kStep, "step.stage2",
                                &combined.stage2_ns, batch_id);

    // Stage 2 (sequential), part 0: re-home the slots whose merged
    // membership outgrew their slab extent. The spill set is
    // shard-independent (canonical per-slot edits against deterministic
    // extent caps), so committing in ascending slot order makes the tail
    // allocation sequence — and the slab layout — canonical. Must precede
    // apply_size_deltas, whose debug contract checks final extent sizes.
    {
      bs.spilled.clear();
      for (std::size_t s = 0; s < shards; ++s) {
        for (const auto& [slot, members] : bs.edit_workspaces[s].spills) {
          bs.spilled.emplace_back(slot, &members);
        }
      }
      std::sort(bs.spilled.begin(), bs.spilled.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      combined.stage2_spills = bs.spilled.size();
      for (const auto& [slot, members] : bs.spilled) {
        state_.commit_spilled_members(slot, *members);
      }
      for (std::size_t s = 0; s < shards; ++s) {
        bs.edit_workspaces[s].spills.clear();
      }
    }

    // Stage 2 (sequential): merge the per-shard size deltas into the
    // Fenwick mirror in one O(k)-bounded pass, reconcile the placed-node
    // count, then run the deferred splits/merges on every cluster whose
    // size changed, in first-touch order.
    std::vector<std::pair<std::size_t, std::int64_t>>& all_deltas =
        bs.all_deltas;
    all_deltas.clear();
    for (std::size_t s = 0; s < shards; ++s) {
      all_deltas.insert(all_deltas.end(), bs.delta_scratch[s].begin(),
                        bs.delta_scratch[s].end());
    }
    // Canonical (ascending-slot) order: the concatenation above depends on
    // the shard count's slot-block partition, and while the Fenwick adds
    // commute, the PlanCache's alias dirty overlay records these slots in
    // a LIST whose order is observable through draw_biased's dirty-branch
    // linear scan — an order that must therefore be shard-count
    // independent. Slots are unique per batch (one owner each).
    std::sort(all_deltas.begin(), all_deltas.end());
    state_.apply_size_deltas(all_deltas, pooled ? &pool : nullptr, shards);
    state_.adjust_placed_count(static_cast<std::int64_t>(joins) -
                               static_cast<std::int64_t>(leaves.size()));
    for (const ClusterId c : candidates) {
      if (!state_.has_cluster(c)) continue;  // merged away earlier
      while (state_.has_cluster(c) &&
             state_.cluster_at(c).size() >
                 params_.split_threshold(state_.num_nodes())) {
        commit_rounds += do_split(c, combined);
      }
      if (state_.has_cluster(c) && state_.num_clusters() > 1 &&
          state_.cluster_at(c).size() <
              params_.merge_threshold(state_.num_nodes())) {
        commit_rounds += do_merge(c, combined);
      }
    }
    // Batch-boundary compaction opportunity: a batch of pure in-place
    // try_assigns never touches a sequential slab mutator, so the dead
    // space left by earlier relocations is bounded here. The trigger is a
    // pure function of (tail, live) — both shard-independent — so the
    // compaction schedule is canonical.
    state_.maybe_compact_slab();
    metrics_.add_rounds(commit_rounds);
    combined.commit_cost = commit.cost();

    // Cache maintenance: a structure-preserving batch folds the very size
    // deltas stage 2 just applied into the persistent PlanCache (patching
    // every overlay neighbor's neighborhood population and the alias
    // sampler's dirty overlay); any restructuring invalidates it and the
    // next batch rebuilds.
    if (combined.splits > 0 || combined.merges > 0 ||
        combined.rejoins > 0) {
      cache.invalidate();
    } else if (cache.valid) {
      for (const auto& [slot, delta] : all_deltas) {
        cache.apply_size_delta(state_, slot, delta);
      }
      cache.maybe_rebuild_alias();
    }
    stage2_span.stop();
  }
  commit_span.stop();

  // No per-batch scratch reset: the slot arrays (wave_of_slot,
  // leavers_by_slot, candidate marks) are epoch-stamped, so the next
  // batch's ++slot_epoch makes this batch's content invisible for free.

  combined.cost = scope.cost();
  // Planned operations and waves overlap in time (max within each tier);
  // the commit's restructuring runs after the batch on the critical path
  // (add).
  combined.cost.rounds = rounds_max + commit_rounds;
  return {std::move(joined), combined};
}

RandClResult NowSystem::rand_cl_from(ClusterId start) {
  return run_rand_cl(state_, params_, start, metrics_, rng_);
}

over::Overlay::Sampler NowSystem::overlay_sampler(std::uint64_t* rounds_max) {
  return [this, rounds_max](ClusterId requester, Rng& rng) -> ClusterId {
    (void)rng;  // walks draw from the system rng for reproducibility
    ClusterId start = requester;
    if (!state_.has_cluster(start) ||
        state_.overlay.degree(start) == 0) {
      // A vertex being wired for the first time cannot start a walk on its
      // own (no edges yet); its sponsor launches the walk instead. Fall back
      // to a uniformly chosen live cluster as the sponsor.
      start = state_.random_cluster_uniform(rng_);
    }
    const auto walk = rand_cl_from(start);
    if (rounds_max != nullptr) {
      *rounds_max = std::max(*rounds_max, walk.cost.rounds);
    }
    return walk.cluster;
  };
}

Cost NowSystem::exchange_all(ClusterId c,
                             std::vector<ClusterId>* partners_out) {
  OpScope scope(metrics_, "exchange");
  batch_->cache.invalidate();  // sequential mutation outside the batch path
  std::uint64_t rounds_max = 0;

  // Deep copy: the exchange below mutates membership (and may relocate
  // slab extents), so the frozen snapshot cannot be a span over the slab.
  const std::span<const NodeId> snapshot_view = state_.cluster_at(c).members();
  const std::vector<NodeId> snapshot(snapshot_view.begin(),
                                     snapshot_view.end());
  // Distinct partner clusters this exchange touched; linear dedup is fine —
  // a cluster has polylog members, so the list stays tiny.
  std::vector<ClusterId> partners;
  for (const NodeId x : snapshot) {
    // Pick the counterpart cluster with randCl (law |C'|/n). The paper
    // exchanges "with nodes chosen at random from other clusters", so a
    // walk that lands back home is re-run (bounded retries; with one
    // cluster there is nobody to swap with and the swap is skipped).
    ClusterId partner = c;
    std::uint64_t chain_rounds = 0;
    for (int attempt = 0; attempt < 8 && partner == c; ++attempt) {
      const auto walk = rand_cl_from(c);
      chain_rounds += walk.cost.rounds;
      partner = walk.cluster;
    }
    if (partner != c) {
      if (std::find(partners.begin(), partners.end(), partner) ==
          partners.end()) {
        partners.push_back(partner);
      }
      const auto& from = state_.cluster_at(c);
      const auto& to = state_.cluster_at(partner);
      // Tell C' it will receive x.
      const auto notice =
          cluster::cluster_send(from, to, 1, state_.byzantine, metrics_);
      chain_rounds += notice.cost.rounds;
      // C' picks the replacement uniformly via randNum.
      const auto draw = cluster::rand_num_value(
          to.size(), to.size(), params_.rand_num_mode, metrics_, rng_);
      chain_rounds += draw.cost.rounds;
      const NodeId y = to.member_at(draw.value);
      // Swap x <-> y; both sides hand over membership + overlay knowledge.
      state_.move_node(x, c, partner);
      state_.move_node(y, partner, c);
      const std::uint64_t handoff_units =
          static_cast<std::uint64_t>(from.size()) +
          static_cast<std::uint64_t>(to.size());
      metrics_.add_messages(2 * handoff_units);
      // Composition deltas to both neighborhoods (x <-> y swapped).
      charge_neighborhood_broadcast(state_, c, 2, metrics_);
      charge_neighborhood_broadcast(state_, partner, 2, metrics_);
      chain_rounds += 1;
      // Newcomers learn the local overlay structure from their new cluster.
      const std::uint64_t c_info =
          static_cast<std::uint64_t>(from.size()) +
          static_cast<std::uint64_t>(neighborhood_population(state_, c));
      const std::uint64_t p_info =
          static_cast<std::uint64_t>(to.size()) +
          static_cast<std::uint64_t>(
              neighborhood_population(state_, partner));
      metrics_.add_messages(c_info * from.size() + p_info * to.size());
      chain_rounds += 1;
    }
    rounds_max = std::max(rounds_max, chain_rounds);
  }

  if (partners_out != nullptr) *partners_out = std::move(partners);
  Cost cost = scope.cost();
  cost.rounds = rounds_max;
  return cost;
}

std::uint64_t NowSystem::place_node(NodeId node, OpReport& report) {
  // Algorithm 1. The node contacts an arbitrary cluster; that cluster picks
  // the destination with randCl.
  const ClusterId contact = state_.random_cluster_uniform(rng_);
  const auto walk = rand_cl_from(contact);
  std::uint64_t rounds = walk.cost.rounds;
  const ClusterId target = walk.cluster;

  state_.add_member(target, node);
  const auto& dest = state_.cluster_at(target);

  // Members of C' announce x to the neighboring clusters (1 unit delta).
  charge_neighborhood_broadcast(state_, target, 1, metrics_);
  // ... and send x its new neighborhood back along the walk's path.
  const std::uint64_t info_units =
      static_cast<std::uint64_t>(dest.size()) +
      static_cast<std::uint64_t>(neighborhood_population(state_, target));
  metrics_.add_messages(info_units *
                        (static_cast<std::uint64_t>(dest.size()) +
                         static_cast<std::uint64_t>(walk.hops)));
  rounds += 2;

  // Shuffle: the receiving cluster exchanges all of its nodes.
  if (params_.shuffle_enabled) {
    const Cost exchange_cost = exchange_all(target);
    rounds += exchange_cost.rounds;
  }

  // Induced split.
  if (state_.cluster_at(target).size() >
      params_.split_threshold(state_.num_nodes())) {
    rounds += do_split(target, report);
  }
  return rounds;
}

std::pair<NodeId, OpReport> NowSystem::join(bool byzantine_node) {
  assert(initialized_);
  OpScope scope(metrics_, "join");
  batch_->cache.invalidate();  // legacy path mutates outside the commit
  OpReport report;

  const NodeId node = state_.fresh_node_id();
  if (trace_sink_ != nullptr) trace_sink_->on_join(node, byzantine_node);
  if (byzantine_node) state_.byzantine.insert(node);
  state_.register_node(node);
  const std::uint64_t rounds = place_node(node, report);
  metrics_.add_rounds(rounds);

  report.cost = scope.cost();
  return {node, report};
}

OpReport NowSystem::leave(NodeId node) {
  assert(initialized_);
  if (trace_sink_ != nullptr) trace_sink_->on_leave(node);
  OpScope scope(metrics_, "leave");
  batch_->cache.invalidate();  // legacy path mutates outside the commit
  OpReport report;

  const ClusterId c = state_.home_of(node);
  assert(c.valid() && "leave() of a node that is not placed");
  state_.remove_member(c, node);
  state_.byzantine.erase(node);
  state_.unregister_node(node);

  // Members of C tell their neighbors to drop x (majority-accepted delta).
  charge_neighborhood_broadcast(state_, c, 1, metrics_);
  std::uint64_t rounds = 1;

  if (params_.shuffle_enabled && state_.cluster_at(c).size() > 0) {
    // C exchanges all of its nodes...
    std::vector<ClusterId> partners;
    const Cost primary = exchange_all(c, &partners);
    rounds += primary.rounds;
    // ... and every cluster that swapped with C exchanges all of its own
    // nodes too (Theorem 3's proof relies on this second wave). The waves
    // run in parallel: rounds combine by max.
    std::uint64_t secondary_max = 0;
    for (const ClusterId partner : partners) {
      if (!state_.has_cluster(partner)) continue;
      const Cost secondary = exchange_all(partner);
      secondary_max = std::max(secondary_max, secondary.rounds);
    }
    rounds += secondary_max;
  }

  // Induced merge.
  if (state_.num_clusters() > 1 &&
      state_.cluster_at(c).size() <
          params_.merge_threshold(state_.num_nodes())) {
    rounds += do_merge(c, report);
  }

  metrics_.add_rounds(rounds);
  report.cost = scope.cost();
  return report;
}

std::uint64_t NowSystem::do_split(ClusterId c, OpReport& report) {
  OpScope scope(metrics_, "split");
  report.splits += 1;
  std::uint64_t rounds = 0;

  // Random bisection: one randNum call per Fisher–Yates step. Deep copy —
  // the moves below carve the slab, invalidating spans over it.
  const std::span<const NodeId> member_view = state_.cluster_at(c).members();
  std::vector<NodeId> members(member_view.begin(), member_view.end());
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    const auto draw = cluster::rand_num_value(
        members.size(), members.size() - i, params_.rand_num_mode, metrics_,
        rng_);
    rounds += draw.cost.rounds;
  }
  rng_.shuffle(std::span<NodeId>(members));

  const ClusterId fresh = state_.create_cluster();
  const std::size_t half = members.size() / 2;
  for (std::size_t i = half; i < members.size(); ++i) {
    state_.move_node(members[i], c, fresh);
  }

  // C1 (= c) keeps its id and neighbors; C2 joins the overlay through
  // OVER's Add, drawing its neighbors with randCl (walks run in parallel).
  std::uint64_t wiring_rounds = 0;
  state_.overlay.add_vertex(fresh, overlay_sampler(&wiring_rounds), rng_);
  rounds += wiring_rounds;

  // The split is announced to C1's neighborhood; C2 exchanges composition
  // knowledge with its new neighbors.
  charge_neighborhood_broadcast(state_, c, 2, metrics_);
  const std::uint64_t c2_size = state_.cluster_at(fresh).size();
  const std::uint64_t c2_info =
      c2_size + static_cast<std::uint64_t>(
                    neighborhood_population(state_, fresh));
  metrics_.add_messages(c2_info * c2_size);
  rounds += 2;

  (void)scope;
  return rounds;
}

std::uint64_t NowSystem::do_merge(ClusterId c, OpReport& report) {
  OpScope scope(metrics_, "merge");
  report.merges += 1;
  std::uint64_t rounds = 0;

  if (params_.merge_policy == MergePolicy::kAbsorb) {
    // Figure-2 variant: absorb the members of a randCl-chosen victim
    // cluster (re-walking when the walk lands back home — the victim must
    // be a different cluster).
    ClusterId victim = c;
    for (int attempt = 0; attempt < 32 && victim == c; ++attempt) {
      const auto walk = rand_cl_from(c);
      rounds += walk.cost.rounds;
      victim = walk.cluster;
    }
    if (victim == c) return rounds;  // pathological: give up this step
    const std::span<const NodeId> moving_view =
        state_.cluster_at(victim).members();
    const std::vector<NodeId> moving(moving_view.begin(), moving_view.end());
    for (const NodeId x : moving) state_.move_node(x, victim, c);
    charge_neighborhood_broadcast(state_, victim, 1, metrics_);
    std::uint64_t repair_rounds = 0;
    state_.overlay.remove_vertex(victim, overlay_sampler(&repair_rounds),
                                 rng_);
    state_.destroy_cluster(victim);
    rounds += repair_rounds + 1;
    charge_neighborhood_broadcast(state_, c, moving.size(), metrics_);
    rounds += 1;
    if (state_.cluster_at(c).size() >
        params_.split_threshold(state_.num_nodes())) {
      rounds += do_split(c, report);
    }
    return rounds;
  }

  // Algorithm 2 variant: the undersized cluster dissolves; members re-join
  // (deep copy — the removals below edit the slab extent under the span).
  const std::span<const NodeId> member_view = state_.cluster_at(c).members();
  const std::vector<NodeId> members(member_view.begin(), member_view.end());
  charge_neighborhood_broadcast(state_, c, 1, metrics_);  // "C is removed"
  rounds += 1;
  for (const NodeId x : members) {
    state_.remove_member(c, x);
  }
  std::uint64_t repair_rounds = 0;
  state_.overlay.remove_vertex(c, overlay_sampler(&repair_rounds), rng_);
  state_.destroy_cluster(c);
  rounds += repair_rounds;

  // Members re-join via Algorithm 1 (the paper staggers them over the next
  // time steps; we run them back-to-back inside this operation and account
  // their rounds sequentially, which is the same critical path).
  for (const NodeId x : members) {
    OpScope rejoin_scope(metrics_, "rejoin");
    report.rejoins += 1;
    rounds += place_node(x, report);
  }
  (void)scope;
  return rounds;
}

}  // namespace now::core
