// NOW — Neighbors On Watch (Section 3): the paper's primary contribution.
//
// NowSystem owns the cluster partition, the node -> cluster map and the OVER
// overlay, and implements:
//   * the initialization phase (Section 3.2): network discovery + scalable
//     Byzantine agreement electing a representative cluster + random
//     partition + Erdős–Rényi overlay wiring;
//   * the maintenance phase (Section 3.3): Join / Leave (Algorithms 1–2)
//     with node shuffling (exchange), and the induced Split / Merge.
//
// All communication is charged to the injected Metrics sink (messages as
// they happen, rounds once per operation along the critical path — walks
// and per-member swaps inside an exchange run in parallel, so their rounds
// combine by max, not sum).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/invariants.hpp"
#include "core/params.hpp"
#include "core/rand_cl.hpp"
#include "core/state.hpp"

namespace now::core {

/// Shape of the initial knowledge graph the discovery phase floods over.
enum class InitTopology {
  /// Every node initially knows every other node: the dense worst case,
  /// where discovery costs O(n * e) = O(n^3) = O(N^{3/2}) (Figure 1).
  kComplete,
  /// Every node initially knows polylog(n) random nodes (the situation the
  /// paper's model describes outside initialization).
  kSparseRandom,
  /// Skip the message-level flood and charge its O(n * e) cost analytically
  /// for the sparse topology (e = n * polylog(n) / 2). The flood's outcome
  /// is deterministic — every honest node learns every identity — so large
  /// experiments that only need a working system use this; the Figure-1
  /// bench measures the real flood.
  kModeledSparse,
};

struct InitReport {
  std::size_t n0 = 0;
  std::size_t num_clusters = 0;
  Cost discovery;
  Cost quorum;
  Cost partition;
  Cost total;
  bool discovery_complete = false;
};

/// Outcome of one maintenance operation (join or leave plus everything it
/// induced).
struct OpReport {
  Cost cost;
  std::size_t splits = 0;
  std::size_t merges = 0;
  std::size_t rejoins = 0;
};

class NowSystem {
 public:
  NowSystem(const NowParams& params, Metrics& metrics, std::uint64_t seed);

  /// Runs the initialization phase with n0 nodes, of which `byzantine_count`
  /// (chosen uniformly — the static adversary corrupts before any protocol
  /// randomness exists, so a uniform choice is without loss of generality)
  /// are Byzantine. Must be called exactly once.
  InitReport initialize(std::size_t n0, std::size_t byzantine_count,
                        InitTopology topology = InitTopology::kSparseRandom);

  /// Join of a fresh node (Algorithm 1). The adversary decides whether the
  /// joining node is corrupted. Returns the new node's id.
  std::pair<NodeId, OpReport> join(bool byzantine_node);

  /// Leave of `node` (Algorithm 2) — voluntary departure, crash, or
  /// adversarially forced exit; the protocol reacts identically.
  OpReport leave(NodeId node);

  /// Several joins and leaves executed within ONE time step (the paper's
  /// footnote *: "the analysis can be generalized to several parallel join
  /// and leave operations"). State effects apply sequentially (the protocol
  /// serializes conflicting cluster updates), but the operations overlap in
  /// time, so the batch's round count is the max — not the sum — of the
  /// individual operations'. Returns the ids of the joined nodes plus the
  /// combined report. Leave targets must be live and distinct.
  std::pair<std::vector<NodeId>, OpReport> step_parallel(
      std::size_t joins, const std::vector<NodeId>& leaves,
      bool byzantine_joiners = false);

  /// randCl from `start` (exposed for tests and benches; charges costs).
  RandClResult rand_cl_from(ClusterId start);

  /// Full-cluster shuffle (Section 3.1 `exchange`); returns its cost and
  /// records the distinct partner clusters in `partners_out` when non-null.
  Cost exchange_all(ClusterId c,
                    std::vector<ClusterId>* partners_out = nullptr);

  [[nodiscard]] const NowState& state() const { return state_; }
  [[nodiscard]] const NowParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_nodes() const { return state_.num_nodes(); }
  [[nodiscard]] std::size_t num_clusters() const {
    return state_.num_clusters();
  }
  [[nodiscard]] bool initialized() const { return initialized_; }

  [[nodiscard]] InvariantReport check() const {
    return check_invariants(state_, params_, params_.shuffle_enabled);
  }

  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  /// Places an existing node into the partition via Algorithm 1 (used by
  /// both fresh joins and post-merge re-joins). Returns rounds consumed.
  std::uint64_t place_node(NodeId node, OpReport& report);

  /// Split of an oversized cluster (Section 3.3). Returns rounds consumed.
  std::uint64_t do_split(ClusterId c, OpReport& report);

  /// Merge/dissolution of an undersized cluster. Returns rounds consumed.
  std::uint64_t do_merge(ClusterId c, OpReport& report);

  /// Overlay sampler adapter: randCl walk on behalf of `requester`,
  /// accumulating the max parallel rounds into *rounds_max.
  over::Overlay::Sampler overlay_sampler(std::uint64_t* rounds_max);

  NowParams params_;
  Metrics& metrics_;
  Rng rng_;
  NowState state_;
  bool initialized_ = false;
};

}  // namespace now::core
