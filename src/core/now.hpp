// NOW — Neighbors On Watch (Section 3): the paper's primary contribution.
//
// NowSystem owns the cluster partition, the node -> cluster map and the OVER
// overlay, and implements:
//   * the initialization phase (Section 3.2): network discovery + scalable
//     Byzantine agreement electing a representative cluster + random
//     partition + Erdős–Rényi overlay wiring;
//   * the maintenance phase (Section 3.3): Join / Leave (Algorithms 1–2)
//     with node shuffling (exchange), and the induced Split / Merge.
//
// All communication is charged to the injected Metrics sink (messages as
// they happen, rounds once per operation along the critical path — walks
// and per-member swaps inside an exchange run in parallel, so their rounds
// combine by max, not sum).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/paged_index.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/invariants.hpp"
#include "core/params.hpp"
#include "core/rand_cl.hpp"
#include "core/state.hpp"

namespace now::core {

/// Shape of the initial knowledge graph the discovery phase floods over.
enum class InitTopology {
  /// Every node initially knows every other node: the dense worst case,
  /// where discovery costs O(n * e) = O(n^3) = O(N^{3/2}) (Figure 1).
  kComplete,
  /// Every node initially knows polylog(n) random nodes (the situation the
  /// paper's model describes outside initialization).
  kSparseRandom,
  /// Skip the message-level flood and charge its O(n * e) cost analytically
  /// for the sparse topology (e = n * polylog(n) / 2). The flood's outcome
  /// is deterministic — every honest node learns every identity — so large
  /// experiments that only need a working system use this; the Figure-1
  /// bench measures the real flood.
  kModeledSparse,
};

struct InitReport {
  std::size_t n0 = 0;
  std::size_t num_clusters = 0;
  Cost discovery;
  Cost quorum;
  Cost partition;
  Cost total;
  bool discovery_complete = false;
};

/// Outcome of one maintenance operation (join or leave plus everything it
/// induced). Batched steps reuse the same report; the sharded engine
/// additionally fills the per-shard accounting fields.
struct OpReport {
  Cost cost;
  std::size_t splits = 0;
  std::size_t merges = 0;
  std::size_t rejoins = 0;

  /// Sharded batches only: planned swaps dropped at commit — the
  /// cross-shard serialization point. Stale swaps are normally reconciled
  /// (applied at the nodes' *current* homes); a drop happens only when one
  /// of the two nodes left in this batch or both ended up in one cluster.
  std::size_t conflicts = 0;
  /// Sharded batches only: swaps the optimistic parallel resolve handed to
  /// the sequential conflict pass (an endpoint was touched by more than
  /// one planned move, so the swap must be re-resolved in canonical order
  /// at the nodes' then-current homes). Everything else resolved in
  /// parallel. Deterministic — identical for every shard count.
  std::size_t resolve_replays = 0;
  /// Sharded batches only: each shard's planning-phase cost (messages are
  /// exact; rounds are the shard's sequential sum, the batch's round count
  /// below combines per-op rounds by max). Sums to cost - commit_cost.
  std::vector<Cost> shard_costs;
  /// Sharded batches only: protocol cost of the commit phase (the deferred
  /// splits/merges; the membership moves themselves were charged while
  /// planning).
  Cost commit_cost;
  /// Sharded batches only: slots whose stage-1 merged membership outgrew
  /// their slab extent and were re-homed by the sequential stage-2 commit
  /// (MemberSlab::try_apply_edits returned false). Shard-independent — the
  /// spill set depends only on the canonical per-slot edits and the extent
  /// caps. The coverage-guided corpus (sim/corpus.hpp) treats "a spill
  /// happened" as an observed-behavior bit.
  std::size_t stage2_spills = 0;
  /// Sharded batches only: exchange waves the wave scheduler ran this step
  /// (primary waves on clusters touched by an operation, plus the deduped
  /// secondary waves on their leave-wave partners). Each touched cluster
  /// shuffles exactly once per time step, however many batch operations
  /// landed on it.
  std::size_t wave_count = 0;
  // The *_ns fields below are measured by the obs span layer
  // (obs/obs.hpp): each batch phase opens a ScopedSpan that writes its
  // duration here and, when recording is enabled, into the trace ring.
  // With NOW_OBS=OFF they read 0 (telemetry product, not protocol state).
  /// Sharded batches only: wall-clock nanoseconds of the commit phase
  /// (resolve + stage-1 parallel apply + stage-2 merge and restructuring)
  /// — the quantity BENCH_micro.json tracks as commit_ns.
  std::uint64_t commit_ns = 0;
  /// Sharded batches only: wall-clock nanoseconds of the plan phase
  /// (partition + per-op planning + both wave tiers + metrics merge).
  /// plan_ns + commit_ns covers the batch except for trace/setup glue;
  /// resolve/stage1/stage2 below partition commit_ns.
  std::uint64_t plan_ns = 0;
  /// Sharded batches only: wall-clock nanoseconds of the commit's resolve
  /// passes (sequential op edits + swap fate classification/replay).
  std::uint64_t resolve_ns = 0;
  /// Sharded batches only: wall-clock nanoseconds of the stage-1 parallel
  /// gather/scatter member-edit apply.
  std::uint64_t stage1_ns = 0;
  /// Sharded batches only: wall-clock nanoseconds of stage 2 (spill
  /// re-homing, Fenwick delta merge, deferred splits/merges, compaction
  /// check and cache maintenance).
  std::uint64_t stage2_ns = 0;
};

/// Opaque per-system batch-engine state (src/core/now.cpp): the persistent
/// incremental PlanCache, the per-cluster wave caches the wave scheduler
/// reuses across time steps, and the commit engine's scratch buffers.
struct BatchScratch;

class SnapshotReader;
class SnapshotWriter;

/// Observer of the scenario-level events a NowSystem executes — the
/// record half of the trace subsystem (sim/trace.hpp). The sink sees
/// exactly the inputs needed to re-drive an identical trajectory: which
/// operations ran, in which order, with which adversarial choices. All
/// protocol-internal randomness is derived from the system seed, so the
/// event stream plus the seed IS the full trajectory.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A sequential join completed; `node` is the id it was assigned.
  virtual void on_join(NodeId node, bool byzantine) = 0;
  /// A sequential leave of `node` is about to run.
  virtual void on_leave(NodeId node) = 0;
  /// A sharded batch is about to run with these exact inputs.
  virtual void on_batch(std::size_t joins, std::size_t byzantine_joins,
                        const std::vector<NodeId>& leaves,
                        std::size_t shards) = 0;
};

class NowSystem {
 public:
  NowSystem(const NowParams& params, Metrics& metrics, std::uint64_t seed);
  ~NowSystem();

  NowSystem(const NowSystem&) = delete;
  NowSystem& operator=(const NowSystem&) = delete;

  /// Runs the initialization phase with n0 nodes, of which `byzantine_count`
  /// (chosen uniformly — the static adversary corrupts before any protocol
  /// randomness exists, so a uniform choice is without loss of generality)
  /// are Byzantine. Must be called exactly once.
  InitReport initialize(std::size_t n0, std::size_t byzantine_count,
                        InitTopology topology = InitTopology::kSparseRandom);

  /// Join of a fresh node (Algorithm 1). The adversary decides whether the
  /// joining node is corrupted. Returns the new node's id.
  std::pair<NodeId, OpReport> join(bool byzantine_node);

  /// Leave of `node` (Algorithm 2) — voluntary departure, crash, or
  /// adversarially forced exit; the protocol reacts identically.
  OpReport leave(NodeId node);

  /// Several joins and leaves executed within ONE time step (the paper's
  /// footnote *: "the analysis can be generalized to several parallel join
  /// and leave operations"). State effects apply sequentially (the protocol
  /// serializes conflicting cluster updates), but the operations overlap in
  /// time, so the batch's round count is the max — not the sum — of the
  /// individual operations'. Returns the ids of the joined nodes plus the
  /// combined report. Leave targets must be live and distinct.
  ///
  /// `shards <= 1` runs the historical sequential engine (bit-compatible
  /// with the pre-sharding implementation — the tier-1 fixed-seed tests and
  /// the pre-PR BENCH trajectory key off this path). `shards >= 2` routes to
  /// step_parallel_sharded below.
  std::pair<std::vector<NodeId>, OpReport> step_parallel(
      std::size_t joins, const std::vector<NodeId>& leaves,
      bool byzantine_joiners = false, std::size_t shards = 1);

  /// The sharded batch engine (DESIGN.md §7). Operations are partitioned by
  /// home-cluster slot modulo `shards` and *planned* concurrently on a small
  /// thread pool against the frozen start-of-step state — each operation
  /// draws from its own RNG stream Rng::derive_stream(seed, batch, op) and
  /// charges a per-shard Metrics. Secondary to the operations, a per-step
  /// WAVE SCHEDULER collects the set of clusters the batch touched and runs
  /// exactly one full exchange wave per cluster per time step (the paper's
  /// semantics — a cluster shuffles all of its nodes once), each wave on its
  /// own derived stream; waves induced by a leave additionally schedule one
  /// deduplicated secondary wave per partner cluster. Planning reads the
  /// persistent PlanCache (core/plan_cache.hpp), maintained incrementally
  /// across batches. Commit resolves OPTIMISTICALLY: swaps whose endpoints
  /// are touched by exactly one planned move resolve in parallel against
  /// the snapshot (their outcome provably equals the canonical sequential
  /// one); the footprint-detected conflicting remainder is re-resolved
  /// sequentially in canonical order. Stage 1 then applies the per-cluster
  /// member edits shard-parallel against contiguous slot blocks, and
  /// stage 2 merges the per-shard size deltas into the Fenwick mirror and
  /// runs the deferred splits/merges sequentially. Because plans depend
  /// only on the snapshot and per-op/per-wave streams, the wave list is
  /// canonical, and the resolve outcome is order-equivalent to the
  /// canonical sequential pass, the resulting state is IDENTICAL for every
  /// shard count (shards = 1 included); the shard count only changes
  /// wall-clock. This entry point always uses the sharded engine, so
  /// `shards = 1` here is the equivalence baseline, while
  /// step_parallel(..., shards = 1) is the legacy sequential engine.
  std::pair<std::vector<NodeId>, OpReport> step_parallel_sharded(
      std::size_t joins, const std::vector<NodeId>& leaves,
      bool byzantine_joiners, std::size_t shards);

  /// Generalization of step_parallel_sharded for adversarial batches: the
  /// first `byzantine_joins` of the `joins` joiners are corrupted, the rest
  /// are honest (the batched join-leave attack corrupts a tau fraction of
  /// each wave of joiners rather than all or none). byzantine_joins must
  /// not exceed joins. The bool entry points above delegate here.
  std::pair<std::vector<NodeId>, OpReport> step_parallel_mixed(
      std::size_t joins, std::size_t byzantine_joins,
      const std::vector<NodeId>& leaves, std::size_t shards);

  /// randCl from `start` (exposed for tests and benches; charges costs).
  RandClResult rand_cl_from(ClusterId start);

  /// Full-cluster shuffle (Section 3.1 `exchange`); returns its cost and
  /// records the distinct partner clusters in `partners_out` when non-null.
  Cost exchange_all(ClusterId c,
                    std::vector<ClusterId>* partners_out = nullptr);

  [[nodiscard]] const NowState& state() const { return state_; }
  [[nodiscard]] const NowParams& params() const { return params_; }
  [[nodiscard]] std::size_t num_nodes() const { return state_.num_nodes(); }
  [[nodiscard]] std::size_t num_clusters() const {
    return state_.num_clusters();
  }
  [[nodiscard]] bool initialized() const { return initialized_; }

  [[nodiscard]] InvariantReport check() const {
    return check_invariants(state_, params_, params_.shuffle_enabled);
  }

  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Drops the persistent PlanCache; the next sharded batch rebuilds it
  /// from scratch. The cache is maintained incrementally and invalidated
  /// automatically on every structural change (split/merge, legacy
  /// sequential operations), so this hook exists for tests and benches
  /// that want to time or compare the full-rebuild path.
  void invalidate_plan_cache();

  // ------------------------------------------- snapshots & traces (§8)

  /// Writes a versioned binary snapshot of the full deterministic state
  /// (core/snapshot.hpp). Restore-then-continue is bit-identical to never
  /// having saved, for every shard count and ResolveMode.
  void save(const std::string& path) const;

  /// Restores a snapshot into this system, which must be freshly
  /// constructed with the same behavior-relevant NowParams (resolve_mode
  /// and shard counts may differ — they never change results). Throws
  /// core::SnapshotError on malformed files, version or parameter
  /// mismatch.
  void load(const std::string& path);

  /// Attaches (or detaches, with nullptr) a scenario-event observer. The
  /// sink outlives every subsequent operation until detached.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Resident bytes of the deterministic state plus the persistent batch
  /// scratch (capacities, not sizes — what the process actually holds).
  /// Feeds the bytes_per_node scalar BENCH_micro.json records for the
  /// huge-batch tier.
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Capacity of the optimistic commit's footprint array — a probe for the
  /// allocation-regression test: it must track the slab tail geometrically
  /// (amortized O(1) growth), never per-batch O(tail) work.
  [[nodiscard]] std::size_t debug_foot_capacity() const;

  /// Verifies the persistent PlanCache against a from-scratch rebuild
  /// (sizes, neighborhoods, alias-overlay totals). For the nightly
  /// large-n stress; O(k).
  [[nodiscard]] bool plan_cache_consistent() const;

 private:
  /// Places an existing node into the partition via Algorithm 1 (used by
  /// both fresh joins and post-merge re-joins). Returns rounds consumed.
  std::uint64_t place_node(NodeId node, OpReport& report);

  /// Split of an oversized cluster (Section 3.3). Returns rounds consumed.
  std::uint64_t do_split(ClusterId c, OpReport& report);

  /// Merge/dissolution of an undersized cluster. Returns rounds consumed.
  std::uint64_t do_merge(ClusterId c, OpReport& report);

  /// Overlay sampler adapter: randCl walk on behalf of `requester`,
  /// accumulating the max parallel rounds into *rounds_max.
  over::Overlay::Sampler overlay_sampler(std::uint64_t* rounds_max);

  /// Lazily (re)built pool with at least `shards - 1` workers, capped at
  /// the hardware concurrency. Worker count never affects results.
  ThreadPool& pool_for(std::size_t shards);

  /// Snapshot glue (core/snapshot.cpp reaches the private fields; the
  /// PlanCache blob lives behind the opaque BatchScratch, so its two
  /// halves are implemented in now.cpp).
  friend void save_system(const NowSystem& system, SnapshotWriter& writer);
  friend void load_system(NowSystem& system, SnapshotReader& reader);
  void save_plan_cache(SnapshotWriter& writer) const;
  void load_plan_cache(SnapshotReader& reader);

  NowParams params_;
  Metrics& metrics_;
  std::uint64_t seed_;
  Rng rng_;
  NowState state_;
  bool initialized_ = false;
  std::uint64_t batch_counter_ = 0;
  TraceSink* trace_sink_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;

  // Batch-engine state persisting across time steps (see now.cpp): the
  // incrementally maintained PlanCache, the per-cluster wave caches
  // (each cluster's swap/partner buffers, reused by the wave scheduler
  // across steps), the commit's footprint counters and the per-slot /
  // per-shard edit scratch.
  std::unique_ptr<BatchScratch> batch_;
};

}  // namespace now::core
