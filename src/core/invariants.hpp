// Invariant checking — the properties Theorem 3 and Properties 1–2 promise.
//
// Checked invariants:
//   I1 (Theorem 3 / Lemma 1): every cluster has > 2/3 honest members; we
//       also report the worst Byzantine fraction and compare it to the
//       analysis' drift ceiling tau * (1 + eps).
//   I2 (Split/Merge): every cluster size is within
//       [merge_threshold, split_threshold] at rest.
//   I3 (Property 2): overlay degrees are at most the cap.
//   I4 (Property 1, necessary part): the overlay is connected.
//   I5 (bookkeeping): the partition and the node->cluster map agree, and
//       every overlay vertex is a cluster and vice versa.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/state.hpp"

namespace now::core {

struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;

  std::size_t num_nodes = 0;
  std::size_t num_clusters = 0;
  std::size_t min_cluster_size = 0;
  std::size_t max_cluster_size = 0;
  /// Worst Byzantine fraction across clusters (max_C p_C).
  double worst_byz_fraction = 0.0;
  /// Number of clusters at or above 1/3 Byzantine (compromised).
  std::size_t compromised_clusters = 0;
  std::size_t overlay_max_degree = 0;
  std::size_t overlay_min_degree = 0;
  bool overlay_connected = true;
};

/// Runs all checks. `check_sizes` can be disabled for baselines that
/// deliberately violate the size bounds (static partition, no-shuffle).
[[nodiscard]] InvariantReport check_invariants(const NowState& state,
                                               const NowParams& params,
                                               bool check_sizes = true);

}  // namespace now::core
