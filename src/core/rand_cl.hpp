// randCl — random cluster selection by biased continuous-time random walk
// (Section 3.1 and its footnote ‡).
//
// Goal: pick a cluster with probability |C| / n (so that "pick a cluster
// with randCl, then a member with randNum" samples a *node* uniformly).
//
// Mechanism, as in the paper:
//   * run a CTRW on the overlay (one rate-1 clock per overlay edge). Its
//     stationary law is uniform over clusters, whatever the degrees — this
//     is why the walk is continuous-time;
//   * the walking token is held by a whole cluster; each hop the cluster
//     collectively draws the holding time + next neighbor via randNum and
//     forwards the token with an inter-cluster message (accepted only when
//     more than half of the sending cluster agrees);
//   * when the walk's duration expires at cluster C, draw u via randNum and
//     accept with probability |C| / max|C| (size-biasing); otherwise start a
//     fresh CTRW from C.
//
// Costs (paper): expected O(log^5 N) messages and O(log^4 N) rounds. Our
// measured counts (bench_randcl) sit below those bounds because the paper
// budgets O(log n) whp restarts where the expectation is O(1).
#pragma once

#include <cstddef>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "core/state.hpp"

namespace now::core {

struct RandClResult {
  ClusterId cluster = ClusterId::invalid();
  /// Clusters visited across all restarts.
  std::size_t hops = 0;
  /// Completed-but-rejected CTRWs before the accepted one.
  std::size_t restarts = 0;
  /// Messages charged / rounds on the walk's critical path.
  Cost cost;
};

/// Runs randCl from `start`. Charges messages to `metrics`; rounds are
/// returned in `cost` (walks run in parallel inside exchange, so the caller
/// owns round accounting). `start` must be a live cluster.
[[nodiscard]] RandClResult run_rand_cl(const NowState& state,
                                       const NowParams& params,
                                       ClusterId start, Metrics& metrics,
                                       Rng& rng);

/// Modeled cost + hop count of one WalkMode::kSampleExact walk — a pure
/// function of the aggregate state (#clusters, #nodes), with `cluster` left
/// invalid and nothing charged. kSampleExact draws the endpoint and charges
/// exactly this; the sharded batch planner computes it once per batch
/// (the aggregates are frozen while planning) instead of per walk.
[[nodiscard]] RandClResult rand_cl_cost_model(const NowState& state,
                                              const NowParams& params);

}  // namespace now::core
