// PlanCache — the frozen-snapshot aggregates shared read-only by every
// planner thread of the sharded batch engine (DESIGN.md §7), now a
// PERSISTENT, incrementally maintained structure instead of a per-batch
// O(k) rebuild.
//
// Clusters are addressed by their DENSE INDEX in the snapshot's
// cluster_ids() order: the wave planners draw partner clusters tens of
// thousands of times per batch, and flat arrays indexed by a dense id keep
// each draw to a couple of cache lines where the live-state accessors
// (paged slot lookup + slot table + Fenwick descend) are chains of
// dependent misses.
//
// Lifecycle:
//   * build(state, params) — the full O(k + sum degrees) construction
//     (dense tables, neighborhood populations, the exact integer Vose
//     alias table over cluster sizes);
//   * apply_size_delta(state, slot, delta) — called by the batch commit
//     for every per-slot size delta it just folded into the Fenwick
//     mirror, keeping the cache exact across batches without rebuilding:
//     neighborhood populations are patched through the overlay adjacency
//     and the alias sampler absorbs the change via a dirty overlay (below);
//   * invalidate() — any structural mutation (split/merge/create/destroy,
//     overlay rewiring, or a legacy sequential operation) throws the cache
//     away; the next batch rebuilds.
//
// Incremental alias sampling. A Vose alias table cannot absorb point
// weight updates, so the sampler keeps the STALE table plus an exact
// correction overlay: indices whose size changed since the table was built
// go on a dirty list. A draw first splits [0, n) by the dirty clusters'
// current mass — the clean branch samples the stale table and rejects
// dirty hits (acceptance >= 1 - dirty_table_mass / table_total), the dirty
// branch scans the short dirty list by current weight. All arithmetic is
// integer, so the law is exactly |C| / n for the CURRENT sizes, same as a
// freshly built table; only the RNG draw pattern differs. When the dirty
// overlay grows past its thresholds the table is rebuilt (amortized O(k)
// every few batches instead of every batch).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/params.hpp"
#include "core/rand_cl.hpp"
#include "core/state.hpp"

namespace now::core {

/// Sum of neighbor-cluster sizes — the audience of a composition update.
/// Reads the overlay's graph adjacency directly (allocation-free). Shared
/// by the live-state charging in now.cpp and the cache maintenance here,
/// so the two can never drift.
[[nodiscard]] std::uint64_t neighborhood_population(const NowState& state,
                                                    ClusterId c);

struct PlanCache {
  // ------------------------------------------------- dense snapshot tables
  std::vector<ClusterId> id_by_index;
  std::vector<const cluster::Cluster*> cluster_by_index;
  std::vector<std::uint64_t> neighborhood_by_index;
  /// Dense index of a live cluster, keyed by slot (and the inverse).
  std::vector<std::uint32_t> index_by_slot;
  std::vector<std::uint32_t> slot_by_index;
  /// Sum of neighbor-cluster sizes, keyed by cluster slot.
  std::vector<std::uint64_t> neighborhood_by_slot;
  /// Modeled kSampleExact walk (cluster unset); invalid under kSimulate.
  /// Refreshed every batch (n and k move), O(1).
  RandClResult walk;

  // The commit's conflict detection keys its footprint counters directly
  // on SLAB POSITIONS (MemberSlab::first(slot) + sorted member index):
  // extents are frozen between snapshot and commit, so the positions are
  // stable, injective, and known at plan time — no per-batch prefix-sum
  // flat-offset table and no paged home lookups are needed.

  // ------------------------------------------------------- alias sampler
  /// Stale Vose table (exact integer thresholds over table_total units).
  std::vector<std::uint64_t> alias_threshold;
  std::vector<std::uint32_t> alias_index;
  /// Weights the table was built on / current sizes, by dense index.
  std::vector<std::uint64_t> table_weight;
  std::vector<std::uint64_t> current_weight;
  std::uint64_t table_total = 0;
  /// Sum of current_weight == live node count n.
  std::uint64_t total_weight = 0;
  /// Dirty overlay: indices with current_weight != table_weight.
  std::vector<std::uint32_t> dirty_list;
  std::vector<std::uint8_t> dirty_flag;
  std::uint64_t dirty_table_mass = 0;
  std::uint64_t dirty_current_mass = 0;

  bool valid = false;

  /// Full construction from the live state (also clears the dirty overlay).
  void build(const NowState& state, const NowParams& params);

  void invalidate() { valid = false; }

  /// Per-batch refresh of the cheap derived quantities: the walk cost
  /// model (n and k move every batch), O(1).
  void refresh(const NowState& state, const NowParams& params);

  /// Folds one committed per-slot size delta (the same deltas stage 2
  /// hands FenwickTree::apply_deltas) into the cache: current weights,
  /// total mass, the dirty overlay, and every overlay neighbor's
  /// neighborhood population. Only valid between structure-preserving
  /// batches — callers must invalidate() instead when the commit split,
  /// merged, created or destroyed any cluster.
  void apply_size_delta(const NowState& state, std::size_t slot,
                        std::int64_t delta);

  /// Rebuilds the alias table when the dirty overlay crossed its mass or
  /// length threshold; call once after a batch's apply_size_delta calls.
  void maybe_rebuild_alias();

  /// Rebuilds the Vose table from current_weight (clears the overlay).
  void rebuild_alias();

  /// Snapshot restore (DESIGN.md §8): rebuilds the Vose table from the
  /// SAVED stale weights — not the current sizes — and re-marks the saved
  /// dirty overlay in its original order, reproducing draw_biased's exact
  /// draw/rejection pattern. Call right after build() on the restored
  /// state; `stale_weights` must have one entry per dense index.
  void restore_alias(std::vector<std::uint64_t> stale_weights,
                     const std::vector<std::uint32_t>& dirty);

  /// Dense index drawn with probability |C| / n (current sizes, exactly).
  [[nodiscard]] std::size_t draw_biased(Rng& rng) const;

  [[nodiscard]] std::uint64_t neighborhood(const NowState& state,
                                           ClusterId c) const {
    return neighborhood_by_slot[state.slot_index(c)];
  }

  /// Exhaustive consistency check against a fresh rebuild (sizes,
  /// neighborhood populations, dense index tables). Debug builds assert
  /// this at every batch start, so the sanitizer CI jobs verify the
  /// incremental maintenance on every batched test.
  [[nodiscard]] bool consistent_with(const NowState& state) const;

  /// Resident bytes of all dense tables and the alias sampler (capacities).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return id_by_index.capacity() * sizeof(ClusterId) +
           cluster_by_index.capacity() * sizeof(cluster_by_index[0]) +
           (neighborhood_by_index.capacity() +
            neighborhood_by_slot.capacity() + alias_threshold.capacity() +
            table_weight.capacity() + current_weight.capacity()) *
               sizeof(std::uint64_t) +
           (index_by_slot.capacity() + slot_by_index.capacity() +
            alias_index.capacity() + dirty_list.capacity()) *
               sizeof(std::uint32_t) +
           dirty_flag.capacity();
  }

 private:
  /// Vose construction over the already-set table_weight / table_total
  /// (shared by rebuild_alias and restore_alias).
  void build_alias_tables();
};

}  // namespace now::core
