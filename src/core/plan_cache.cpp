#include "core/plan_cache.hpp"

#include <algorithm>
#include <cassert>

namespace now::core {

std::uint64_t neighborhood_population(const NowState& state, ClusterId c) {
  std::uint64_t total = 0;
  for (const graph::Vertex v : state.overlay.graph().neighbors(c.value())) {
    total += state.cluster_at(ClusterId{v}).size();
  }
  return total;
}

void PlanCache::build(const NowState& state, const NowParams& params) {
  const std::size_t k = state.num_clusters();
  id_by_index.clear();
  cluster_by_index.clear();
  neighborhood_by_index.clear();
  slot_by_index.clear();
  current_weight.clear();
  id_by_index.reserve(k);
  cluster_by_index.reserve(k);
  neighborhood_by_index.reserve(k);
  slot_by_index.reserve(k);
  current_weight.reserve(k);
  index_by_slot.assign(state.slot_count(), 0);
  neighborhood_by_slot.assign(state.slot_count(), 0);
  total_weight = 0;
  for (const ClusterId c : state.cluster_ids()) {
    const std::size_t slot = state.slot_index(c);
    const std::uint64_t neighborhood = neighborhood_population(state, c);
    neighborhood_by_slot[slot] = neighborhood;
    const std::size_t index = id_by_index.size();
    index_by_slot[slot] = static_cast<std::uint32_t>(index);
    slot_by_index.push_back(static_cast<std::uint32_t>(slot));
    id_by_index.push_back(c);
    cluster_by_index.push_back(&state.cluster_at(c));
    neighborhood_by_index.push_back(neighborhood);
    const std::uint64_t size = state.cluster_at(c).size();
    current_weight.push_back(size);
    total_weight += size;
  }
  rebuild_alias();
  refresh(state, params);
  valid = true;
}

void PlanCache::refresh(const NowState& state, const NowParams& params) {
  if (params.walk_mode == WalkMode::kSampleExact) {
    walk = rand_cl_cost_model(state, params);
  }
}

void PlanCache::apply_size_delta(const NowState& state, std::size_t slot,
                                 std::int64_t delta) {
  if (delta == 0) return;
  const std::uint32_t index = index_by_slot[slot];
  const std::uint64_t updated = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(current_weight[index]) + delta);
  current_weight[index] = updated;
  total_weight = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(total_weight) + delta);
  if (dirty_flag[index] == 0) {
    dirty_flag[index] = 1;
    dirty_list.push_back(index);
    dirty_table_mass += table_weight[index];
    dirty_current_mass += updated;
  } else {
    dirty_current_mass = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(dirty_current_mass) + delta);
  }
  // A dirty entry whose size drifted back to the table weight could be
  // un-dirtied; not worth the bookkeeping — the rebuild threshold absorbs
  // the rare case.

  // Patch every overlay neighbor's neighborhood population. The overlay is
  // untouched between structure-preserving batches, so adjacency is
  // exactly what both the live state and the stale tables agree on.
  const ClusterId changed = id_by_index[index];
  for (const graph::Vertex v :
       state.overlay.graph().neighbors(changed.value())) {
    const std::size_t neighbor_slot = state.slot_index(ClusterId{v});
    neighborhood_by_slot[neighbor_slot] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(neighborhood_by_slot[neighbor_slot]) +
        delta);
    neighborhood_by_index[index_by_slot[neighbor_slot]] =
        neighborhood_by_slot[neighbor_slot];
  }
}

void PlanCache::maybe_rebuild_alias() {
  // Keep the clean-branch acceptance >= 15/16 and the dirty scan short
  // (every size-biased draw pays the dirty branch with probability
  // dirty_current_mass / n, and that branch scans the list linearly); a
  // rebuild is a cheap O(k) Vose pass, so the thresholds are tight — a
  // few batches still share one rebuild while draws stay ~O(1).
  if (dirty_table_mass * 16 >= table_total ||
      dirty_list.size() * 16 >= id_by_index.size()) {
    rebuild_alias();
  }
}

void PlanCache::rebuild_alias() {
  table_weight = current_weight;
  table_total = total_weight;
  dirty_list.clear();
  dirty_flag.assign(current_weight.size(), 0);
  dirty_table_mass = 0;
  dirty_current_mass = 0;
  build_alias_tables();
}

void PlanCache::restore_alias(std::vector<std::uint64_t> stale_weights,
                              const std::vector<std::uint32_t>& dirty) {
  assert(stale_weights.size() == current_weight.size());
  table_weight = std::move(stale_weights);
  table_total = 0;
  for (const std::uint64_t w : table_weight) table_total += w;
  dirty_list.clear();
  dirty_flag.assign(current_weight.size(), 0);
  dirty_table_mass = 0;
  dirty_current_mass = 0;
  build_alias_tables();
  for (const std::uint32_t i : dirty) {
    assert(i < current_weight.size() && dirty_flag[i] == 0);
    dirty_flag[i] = 1;
    dirty_list.push_back(i);
    dirty_table_mass += table_weight[i];
    dirty_current_mass += current_weight[i];
  }
}

void PlanCache::build_alias_tables() {
  const std::size_t k = table_weight.size();

  // Vose construction on integer weights (scaled by k so every column ends
  // with a threshold in [0, W] and one alias); exactness needs no floating
  // point.
  const std::uint64_t w = table_total;
  std::vector<std::uint64_t> scaled(k);  // |C| * k, summing to n * k
  for (std::size_t i = 0; i < k; ++i) scaled[i] = table_weight[i] * k;
  alias_threshold.assign(k, w);
  alias_index.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    alias_index[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < k; ++i) {
    (scaled[i] < w ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    alias_threshold[s] = scaled[s];
    alias_index[s] = l;
    scaled[l] -= w - scaled[s];
    (scaled[l] < w ? small : large).push_back(l);
  }
  // Leftover columns (all weight variance consumed) keep threshold = W.
}

std::size_t PlanCache::draw_biased(Rng& rng) const {
  if (dirty_list.empty()) {
    // Exact stale-free path: two uniform draws + two array loads.
    const std::size_t column = rng.uniform(alias_threshold.size());
    const std::uint64_t toss = rng.uniform(table_total);
    return toss < alias_threshold[column] ? column : alias_index[column];
  }
  const std::uint64_t clean_mass = total_weight - dirty_current_mass;
  std::uint64_t toss = rng.uniform(total_weight);
  if (toss < clean_mass) {
    // Clean branch: P(i | clean) = w_i / clean_mass via rejection on the
    // stale table (clean weights are unchanged since the table was built),
    // so P(i) = clean_mass / n * w_i / clean_mass = w_i / n exactly.
    while (true) {
      const std::size_t column = rng.uniform(alias_threshold.size());
      const std::uint64_t t2 = rng.uniform(table_total);
      const std::size_t i =
          t2 < alias_threshold[column] ? column : alias_index[column];
      if (dirty_flag[i] == 0) return i;
    }
  }
  // Dirty branch: short linear scan by current weight.
  toss -= clean_mass;
  for (const std::uint32_t i : dirty_list) {
    const std::uint64_t weight = current_weight[i];
    if (toss < weight) return i;
    toss -= weight;
  }
  assert(false && "dirty masses out of sync");
  return dirty_list.back();
}

bool PlanCache::consistent_with(const NowState& state) const {
  if (!valid) return false;
  if (id_by_index.size() != state.num_clusters()) return false;
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < id_by_index.size(); ++i) {
    const ClusterId c = id_by_index[i];
    if (!state.has_cluster(c)) return false;
    const std::size_t slot = state.slot_index(c);
    if (slot_by_index[i] != slot || index_by_slot[slot] != i) return false;
    if (cluster_by_index[i] != &state.cluster_at(c)) return false;
    if (current_weight[i] != state.cluster_at(c).size()) return false;
    if (neighborhood_by_slot[slot] != neighborhood_population(state, c)) {
      return false;
    }
    if (neighborhood_by_index[i] != neighborhood_by_slot[slot]) return false;
    mass += current_weight[i];
  }
  if (mass != total_weight || total_weight != state.num_nodes()) return false;
  std::uint64_t dirty_current = 0;
  std::uint64_t dirty_table = 0;
  for (const std::uint32_t i : dirty_list) {
    if (dirty_flag[i] == 0) return false;
    dirty_current += current_weight[i];
    dirty_table += table_weight[i];
  }
  return dirty_current == dirty_current_mass &&
         dirty_table == dirty_table_mass;
}

}  // namespace now::core
