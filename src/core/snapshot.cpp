#include "core/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <limits>
#include <span>
#include <type_traits>

#include "core/now.hpp"
#include "core/state.hpp"
#include "obs/obs.hpp"

namespace now::core {

namespace {

constexpr std::size_t kMagicSize = 8;

/// RAII stdio handle (no iostreams on the snapshot path: the writer
/// already owns a buffer, so one fwrite/fread round-trip is all the IO).
struct File {
  std::FILE* handle = nullptr;
  explicit File(std::FILE* f) : handle(f) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

/// Bulk little-endian NodeId block. On little-endian hosts (every CI
/// target) this is one memcpy of the slab extent; the portable fallback
/// writes per-element u64 in the identical byte layout.
void write_node_ids(SnapshotWriter& w, std::span<const NodeId> ids) {
  static_assert(sizeof(NodeId) == sizeof(std::uint64_t) &&
                std::is_trivially_copyable_v<NodeId>);
  if constexpr (std::endian::native == std::endian::little) {
    w.bytes(ids.data(), ids.size() * sizeof(NodeId));
  } else {
    for (const NodeId id : ids) w.u64(id.value());
  }
}

void read_node_ids(SnapshotReader& r, std::span<NodeId> out) {
  if constexpr (std::endian::native == std::endian::little) {
    r.bytes(out.data(), out.size() * sizeof(NodeId));
  } else {
    for (NodeId& id : out) id = NodeId{r.u64()};
  }
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

void SnapshotWriter::write_file(const std::string& path,
                                std::string_view magic,
                                std::uint32_t version) const {
  assert(magic.size() == kMagicSize && "magic must be exactly 8 bytes");
  SnapshotWriter frame;
  for (const char c : magic) frame.u8(static_cast<std::uint8_t>(c));
  frame.u32(version);
  const File file{std::fopen(path.c_str(), "wb")};
  if (file.handle == nullptr) {
    throw SnapshotError("cannot open for writing: " + path);
  }
  const auto put = [&](const std::vector<std::uint8_t>& bytes) {
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), file.handle) !=
            bytes.size()) {
      throw SnapshotError("short write: " + path);
    }
  };
  put(frame.buffer());
  put(buffer_);
  SnapshotWriter checksum;
  checksum.u64(fnv1a64(buffer_.data(), buffer_.size()));
  put(checksum.buffer());
}

SnapshotReader SnapshotReader::read_file(const std::string& path,
                                         std::string_view magic,
                                         std::uint32_t min_version,
                                         std::uint32_t max_version) {
  assert(magic.size() == kMagicSize);
  const File file{std::fopen(path.c_str(), "rb")};
  if (file.handle == nullptr) {
    throw SnapshotError("cannot open: " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  while (true) {
    const std::size_t got =
        std::fread(chunk, 1, sizeof(chunk), file.handle);
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  // Frame: magic(8) + version(4) + payload + checksum(8).
  if (bytes.size() < kMagicSize + 4 + 8) {
    throw SnapshotError("file too short to be a snapshot frame: " + path);
  }
  for (std::size_t i = 0; i < kMagicSize; ++i) {
    if (bytes[i] != static_cast<std::uint8_t>(magic[i])) {
      throw SnapshotError("bad magic (not a " + std::string(magic) +
                          " file): " + path);
    }
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(bytes[kMagicSize +
                                                static_cast<std::size_t>(i)])
               << (8 * i);
  }
  if (version < min_version || version > max_version) {
    throw SnapshotError("unsupported format version " +
                        std::to_string(version) + ": " + path);
  }
  const std::size_t payload_begin = kMagicSize + 4;
  const std::size_t payload_size = bytes.size() - payload_begin - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  bytes[payload_begin + payload_size +
                        static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (stored != fnv1a64(bytes.data() + payload_begin, payload_size)) {
    throw SnapshotError("checksum mismatch (corrupt file): " + path);
  }
  SnapshotReader reader{std::vector<std::uint8_t>(
      bytes.begin() + static_cast<std::ptrdiff_t>(payload_begin),
      bytes.begin() +
          static_cast<std::ptrdiff_t>(payload_begin + payload_size))};
  reader.version_ = version;
  return reader;
}

// ------------------------------------------------------------- NowState

void snapshot_save_state(const NowState& state, SnapshotWriter& w) {
  w.u64(state.next_node_id_);
  w.u64(state.next_cluster_id_);

  // Membership slab (format v2): the allocated tail is written explicitly —
  // it is NOT recomputable from the extents (the last-allocated extent may
  // have been released) and the compaction trigger reads it — then one
  // extent record + bulk member block per live slot. Gaps between extents
  // are dead bytes and are not serialized; load zero-fills them
  // (unobservable: no read ever leaves [first, first + size)).
  const cluster::MemberSlab& slab = *state.slab_;
  w.u64(state.slots_.size());
  w.u64(slab.tail());
  for (std::size_t slot = 0; slot < state.slots_.size(); ++slot) {
    if (!state.slots_[slot].has_value()) {
      w.u8(0);
      continue;
    }
    const cluster::MemberSlab::Extent& e = slab.extent(slot);
    w.u8(1);
    w.u64(state.slots_[slot]->id().value());
    w.u64(e.first);
    w.u64(e.cap);
    w.u64(e.size);
    write_node_ids(w, slab.members(slot));
  }
  w.u64(state.free_slots_.size());
  for (const std::uint32_t slot : state.free_slots_) w.u32(slot);
  w.u64(state.live_ids_.size());
  for (const ClusterId id : state.live_ids_) w.u64(id.value());

  w.u64(state.live_.size());
  for (const NodeId node : state.live_.items()) w.u64(node.value());
  w.u64(state.byzantine.size());
  for (const NodeId node : state.byzantine.items()) w.u64(node.value());

  const graph::Graph& g = state.overlay.graph();
  w.u64(g.vertex_order().size());
  for (const graph::Vertex v : g.vertex_order()) w.u64(v);
  for (const graph::Vertex v : g.vertex_order()) {
    const auto& neighbors = g.neighbors(v);
    w.u64(neighbors.size());
    for (const graph::Vertex n : neighbors) w.u64(n);
  }
}

void snapshot_load_state(NowState& state, SnapshotReader& r) {
  state.next_node_id_ = r.u64();
  state.next_cluster_id_ = r.u64();

  const std::uint64_t slot_count = r.count(1);
  state.slots_.clear();
  state.slots_.resize(slot_count);
  state.live_pos_.assign(slot_count, 0);
  state.free_slots_.clear();
  state.live_ids_.clear();
  state.cluster_slot_.clear();
  state.node_home_.clear();
  state.placed_count_ = 0;
  state.live_.clear();
  state.byzantine.clear();
  state.sizes_ = FenwickTree{};
  state.sizes_.resize(slot_count);

  // Slab tail. Every live member contributes 8 payload bytes below, and at
  // rest the slab honors tail <= 2 * live + slack (maybe_compact runs at
  // every sequential mutation and at each batch boundary), so a corrupt or
  // hostile tail that would drive an allocation far beyond the actual
  // payload size is rejected before the pool is sized.
  const std::uint64_t slab_tail = r.u64();
  if (slab_tail >
      2 * (r.remaining() / 8) + cluster::MemberSlab::kCompactSlack) {
    throw SnapshotError("slab tail exceeds plausible payload");
  }
  // The slab stores pool positions as u32 (MemberSlab::Extent); the
  // plausibility bound above keeps any honest tail far below that, so a
  // larger value can only be corruption.
  if (slab_tail > std::numeric_limits<std::uint32_t>::max()) {
    throw SnapshotError("slab tail exceeds pool position range");
  }
  state.slab_->restore_reset(static_cast<std::size_t>(slot_count), slab_tail);

  std::vector<NodeId> members;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;  // first,cap
  for (std::uint64_t slot = 0; slot < slot_count; ++slot) {
    if (r.u8() == 0) continue;
    const ClusterId id{r.u64()};
    const std::uint64_t first = r.u64();
    const std::uint64_t cap = r.u64();
    const std::uint64_t size = r.count(8);
    if (size > cap || cap > slab_tail || first > slab_tail - cap) {
      throw SnapshotError("slab extent out of bounds");
    }
    members.resize(static_cast<std::size_t>(size));
    read_node_ids(r, members);
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (!(members[i - 1] < members[i])) {
        throw SnapshotError("cluster member list not strictly sorted");
      }
    }
    state.slots_[slot].emplace(id, *state.slab_,
                               static_cast<std::size_t>(slot));
    state.slab_->restore_extent(static_cast<std::size_t>(slot), first, cap,
                                members);
    if (cap > 0) extents.emplace_back(first, cap);
    state.cluster_slot_.set(id.value(),
                            static_cast<std::uint32_t>(slot));
    for (const NodeId m : members) state.node_home_.set(m.value(), id);
    state.placed_count_ += members.size();
    state.sizes_.add(static_cast<std::size_t>(slot), size);
  }
  // Extents must be pairwise disjoint over their full [first, first + cap)
  // ranges — overlapping caps would let one slot's in-place edits corrupt
  // another's members after restore.
  std::sort(extents.begin(), extents.end());
  for (std::size_t i = 1; i < extents.size(); ++i) {
    if (extents[i - 1].first + extents[i - 1].second > extents[i].first) {
      throw SnapshotError("slab extents overlap");
    }
  }

  const std::uint64_t free_count = r.count(4);
  for (std::uint64_t i = 0; i < free_count; ++i) {
    const std::uint32_t slot = r.u32();
    if (slot >= slot_count || state.slots_[slot].has_value()) {
      throw SnapshotError("free-slot list names a live slot");
    }
    state.free_slots_.push_back(slot);
  }
  const std::uint64_t live_cluster_count = r.count(8);
  for (std::uint64_t i = 0; i < live_cluster_count; ++i) {
    const ClusterId id{r.u64()};
    if (!state.has_cluster(id)) {
      throw SnapshotError("live-cluster list names an unknown cluster");
    }
    state.live_pos_[state.slot_of(id)] =
        static_cast<std::uint32_t>(state.live_ids_.size());
    state.live_ids_.push_back(id);
  }
  if (state.live_ids_.size() + state.free_slots_.size() != slot_count) {
    throw SnapshotError("slot table does not partition into live + free");
  }

  const std::uint64_t live_node_count = r.count(8);
  for (std::uint64_t i = 0; i < live_node_count; ++i) {
    state.live_.insert(NodeId{r.u64()});
  }
  const std::uint64_t byz_count = r.count(8);
  for (std::uint64_t i = 0; i < byz_count; ++i) {
    state.byzantine.insert(NodeId{r.u64()});
  }

  graph::Graph& g = state.overlay.graph_for_restore();
  g.clear();
  const std::uint64_t vertex_count = r.count(8);
  std::vector<graph::Vertex> order;
  order.reserve(vertex_count);
  for (std::uint64_t i = 0; i < vertex_count; ++i) {
    const graph::Vertex v = r.u64();
    order.push_back(v);
    g.add_vertex(v);
  }
  for (const graph::Vertex v : order) {
    const std::uint64_t degree = r.count(8);
    for (std::uint64_t i = 0; i < degree; ++i) {
      const graph::Vertex n = r.u64();
      if (!g.has_vertex(n)) {
        throw SnapshotError("overlay edge to an unknown vertex");
      }
      if (v < n) g.add_edge(v, n);
    }
  }
}

// ------------------------------------------------------------ NowSystem

void save_params(const NowParams& p, SnapshotWriter& w) {
  w.u64(p.max_size);
  w.f64(p.tau);
  w.i64(p.k);
  w.f64(p.l);
  w.f64(p.alpha);
  w.f64(p.over_degree_constant);
  w.f64(p.over_cap_factor);
  w.f64(p.walk_factor);
  w.u32(static_cast<std::uint32_t>(p.walk_mode));
  w.u32(static_cast<std::uint32_t>(p.merge_policy));
  w.u32(static_cast<std::uint32_t>(p.rand_num_mode));
  w.u32(static_cast<std::uint32_t>(p.robustness));
  w.u32(static_cast<std::uint32_t>(p.threshold_mode));
  w.u8(p.shuffle_enabled ? 1 : 0);
}

NowParams read_params(SnapshotReader& r) {
  NowParams p;
  p.max_size = r.u64();
  p.tau = r.f64();
  p.k = static_cast<int>(r.i64());
  p.l = r.f64();
  p.alpha = r.f64();
  p.over_degree_constant = r.f64();
  p.over_cap_factor = r.f64();
  p.walk_factor = r.f64();
  p.walk_mode = static_cast<WalkMode>(r.u32());
  p.merge_policy = static_cast<MergePolicy>(r.u32());
  p.rand_num_mode = static_cast<cluster::RandNumMode>(r.u32());
  p.robustness = static_cast<Robustness>(r.u32());
  p.threshold_mode = static_cast<ThresholdMode>(r.u32());
  p.shuffle_enabled = r.u8() != 0;
  return p;
}

void check_params(const NowParams& expected, SnapshotReader& r) {
  const NowParams got = read_params(r);
  const auto fail = [](const char* field) {
    throw SnapshotError(std::string("snapshot parameter mismatch: ") +
                        field);
  };
  if (got.max_size != expected.max_size) fail("max_size");
  if (got.tau != expected.tau) fail("tau");
  if (got.k != expected.k) fail("k");
  if (got.l != expected.l) fail("l");
  if (got.alpha != expected.alpha) fail("alpha");
  if (got.over_degree_constant != expected.over_degree_constant) {
    fail("over_degree_constant");
  }
  if (got.over_cap_factor != expected.over_cap_factor) {
    fail("over_cap_factor");
  }
  if (got.walk_factor != expected.walk_factor) fail("walk_factor");
  if (got.walk_mode != expected.walk_mode) fail("walk_mode");
  if (got.merge_policy != expected.merge_policy) fail("merge_policy");
  if (got.rand_num_mode != expected.rand_num_mode) fail("rand_num_mode");
  if (got.robustness != expected.robustness) fail("robustness");
  if (got.threshold_mode != expected.threshold_mode) {
    fail("threshold_mode");
  }
  if (got.shuffle_enabled != expected.shuffle_enabled) {
    fail("shuffle_enabled");
  }
}

void save_system(const NowSystem& system, SnapshotWriter& w) {
  w.u64(system.seed_);
  w.u8(system.initialized_ ? 1 : 0);
  w.u64(system.batch_counter_);
  for (const std::uint64_t word : system.rng_.state()) w.u64(word);
  save_params(system.params_, w);
  snapshot_save_state(system.state_, w);
  system.save_plan_cache(w);
}

void load_system(NowSystem& system, SnapshotReader& r) {
  if (system.initialized_) {
    throw SnapshotError(
        "snapshots load into a freshly constructed NowSystem only");
  }
  system.seed_ = r.u64();
  const bool initialized = r.u8() != 0;
  system.batch_counter_ = r.u64();
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) word = r.u64();
  system.rng_.restore_state(rng_state);
  check_params(system.params_, r);
  snapshot_load_state(system.state_, r);
  system.initialized_ = initialized;
  system.load_plan_cache(r);
}

void NowSystem::save(const std::string& path) const {
  obs::ScopedSpan span(obs::Cat::kSnapshot, "snapshot.save");
  SnapshotWriter writer;
  save_system(*this, writer);
  writer.write_file(path, "NOWSNAP1", kSnapshotFormatVersion);
}

void NowSystem::load(const std::string& path) {
  obs::ScopedSpan span(obs::Cat::kSnapshot, "snapshot.load");
  SnapshotReader reader = SnapshotReader::read_file(
      path, "NOWSNAP1", kSnapshotFormatVersion, kSnapshotFormatVersion);
  load_system(*this, reader);
  if (!reader.at_end()) {
    throw SnapshotError("trailing bytes after snapshot payload: " + path);
  }
}

}  // namespace now::core
