#include "core/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "graph/connectivity.hpp"

namespace now::core {

namespace {

void violate(InvariantReport& report, const std::string& message) {
  report.ok = false;
  report.violations.push_back(message);
}

}  // namespace

InvariantReport check_invariants(const NowState& state,
                                 const NowParams& params, bool check_sizes) {
  InvariantReport report;
  report.num_nodes = state.num_nodes();
  report.num_clusters = state.num_clusters();

  // --- I5: bookkeeping consistency.
  std::size_t members_total = 0;
  for (const ClusterId id : state.cluster_ids()) {
    const auto& c = state.cluster_at(id);
    members_total += c.size();
    for (const NodeId m : c.members()) {
      if (state.home_of(m) != id) {
        std::ostringstream os;
        os << "node " << m << " member of cluster " << id
           << " but node_home disagrees";
        violate(report, os.str());
      }
    }
    if (!state.overlay.has(id)) {
      std::ostringstream os;
      os << "cluster " << id << " missing from overlay";
      violate(report, os.str());
    }
  }
  if (members_total != state.num_nodes()) {
    std::ostringstream os;
    os << "partition covers " << members_total << " nodes, map has "
       << state.num_nodes();
    violate(report, os.str());
  }
  // Independent witness: the live-node registry is maintained by different
  // mutators than the placement counter, so a double-add/double-remove in
  // one of them cannot fool both checks.
  if (members_total != state.live_nodes().size()) {
    std::ostringstream os;
    os << "partition covers " << members_total << " nodes, live registry has "
       << state.live_nodes().size();
    violate(report, os.str());
  }
  if (state.overlay.num_clusters() != state.num_clusters()) {
    violate(report, "overlay vertex set differs from cluster set");
  }

  // --- I1: honest supermajorities (threshold 1/3, or 1/2 in the
  // authenticated regime of Remark 1). One sorted copy of the Byzantine
  // ids up front (NodeSet dense order is not id order) lets every
  // cluster's count stream its slab extent against a binary search
  // instead of a paged NodeSet lookup per member.
  const double compromise_line = params.compromise_threshold();
  std::vector<NodeId> sorted_byz(state.byzantine.begin(),
                                 state.byzantine.end());
  std::sort(sorted_byz.begin(), sorted_byz.end());
  bool first = true;
  for (const ClusterId id : state.cluster_ids()) {
    const auto& c = state.cluster_at(id);
    const std::size_t size = c.size();
    if (first) {
      report.min_cluster_size = report.max_cluster_size = size;
      first = false;
    } else {
      report.min_cluster_size = std::min(report.min_cluster_size, size);
      report.max_cluster_size = std::max(report.max_cluster_size, size);
    }
    const double p = cluster::byzantine_fraction(c, sorted_byz);
    report.worst_byz_fraction = std::max(report.worst_byz_fraction, p);
    if (size > 0 && p >= compromise_line - 1e-12) {
      ++report.compromised_clusters;
      std::ostringstream os;
      os << "cluster " << id << " compromised: byz fraction " << p;
      violate(report, os.str());
    }
  }

  // --- I2: size window (keyed to the current n in dynamic-threshold mode).
  if (check_sizes) {
    const std::size_t n_now = state.num_nodes();
    for (const ClusterId id : state.cluster_ids()) {
      const auto& c = state.cluster_at(id);
      if (state.num_clusters() > 1 &&
          c.size() < params.merge_threshold(n_now)) {
        std::ostringstream os;
        os << "cluster " << id << " under-populated: " << c.size() << " < "
           << params.merge_threshold(n_now);
        violate(report, os.str());
      }
      if (c.size() > params.split_threshold(n_now)) {
        std::ostringstream os;
        os << "cluster " << id << " over-populated: " << c.size() << " > "
           << params.split_threshold(n_now);
        violate(report, os.str());
      }
    }
  }

  // --- I3 / I4: overlay properties.
  report.overlay_max_degree = state.overlay.graph().max_degree();
  report.overlay_min_degree = state.overlay.graph().min_degree();
  if (report.overlay_max_degree > state.overlay.degree_cap()) {
    std::ostringstream os;
    os << "overlay degree " << report.overlay_max_degree << " exceeds cap "
       << state.overlay.degree_cap();
    violate(report, os.str());
  }
  report.overlay_connected = graph::is_connected(state.overlay.graph());
  if (!report.overlay_connected) violate(report, "overlay disconnected");

  return report;
}

}  // namespace now::core
