// Shared mutable state of a NOW deployment: the cluster partition, the
// node -> cluster map, the OVER overlay, and the (simulation-only) ground
// truth of which nodes the adversary controls.
//
// Protocol code never *reads* the byzantine set to make decisions — honest
// logic is oblivious to it. It is consulted only (a) by primitives whose
// outcome genuinely depends on adversarial membership (e.g. the inter-
// cluster majority rule) and (b) by invariant checks and experiment metrics,
// mirroring the role of the adversary's full knowledge in the paper's model.
#pragma once

#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "over/overlay.hpp"

namespace now::core {

struct NowState {
  explicit NowState(const over::OverParams& over_params)
      : overlay(over_params) {}

  std::map<ClusterId, cluster::Cluster> clusters;
  std::map<NodeId, ClusterId> node_home;
  std::set<NodeId> byzantine;
  over::Overlay overlay;

  /// Flat index of live nodes for O(1) uniform sampling (swap-and-pop on
  /// removal). Maintained by register_node / unregister_node.
  std::vector<NodeId> node_list;
  std::map<NodeId, std::size_t> node_pos;

  NodeId::value_type next_node_id = 0;
  ClusterId::value_type next_cluster_id = 0;

  [[nodiscard]] std::size_t num_nodes() const { return node_home.size(); }
  [[nodiscard]] std::size_t num_clusters() const { return clusters.size(); }

  [[nodiscard]] NodeId fresh_node_id() { return NodeId{next_node_id++}; }
  [[nodiscard]] ClusterId fresh_cluster_id() {
    return ClusterId{next_cluster_id++};
  }

  [[nodiscard]] const cluster::Cluster& cluster_at(ClusterId id) const {
    return clusters.at(id);
  }
  [[nodiscard]] cluster::Cluster& cluster_at(ClusterId id) {
    return clusters.at(id);
  }

  [[nodiscard]] ClusterId home_of(NodeId node) const {
    return node_home.at(node);
  }

  /// Uniformly random cluster (used for join contact points; any cluster of
  /// the overlay may be contacted).
  [[nodiscard]] ClusterId random_cluster_uniform(Rng& rng) const {
    assert(!clusters.empty());
    auto it = clusters.begin();
    std::advance(it,
                 static_cast<std::ptrdiff_t>(rng.uniform(clusters.size())));
    return it->first;
  }

  /// Cluster drawn with probability |C| / n — the biased CTRW's limit law.
  [[nodiscard]] ClusterId random_cluster_size_biased(Rng& rng) const {
    assert(num_nodes() > 0);
    std::uint64_t target = rng.uniform(num_nodes());
    for (const auto& [id, c] : clusters) {
      const auto size = static_cast<std::uint64_t>(c.size());
      if (target < size) return id;
      target -= size;
    }
    assert(false && "cluster sizes inconsistent with node count");
    return clusters.begin()->first;
  }

  /// Moves a node between clusters, keeping node_home consistent.
  void move_node(NodeId node, ClusterId from, ClusterId to) {
    assert(home_of(node) == from);
    cluster_at(from).remove_member(node);
    cluster_at(to).add_member(node);
    node_home[node] = to;
  }

  /// Total number of nodes that are Byzantine.
  [[nodiscard]] std::size_t byzantine_total() const {
    return byzantine.size();
  }

  /// Adds a node to the sampling index (on join / initialization).
  void register_node(NodeId node) {
    node_pos[node] = node_list.size();
    node_list.push_back(node);
  }

  /// Removes a node from the sampling index (on leave).
  void unregister_node(NodeId node) {
    const auto it = node_pos.find(node);
    assert(it != node_pos.end());
    const std::size_t pos = it->second;
    const NodeId last = node_list.back();
    node_list[pos] = last;
    node_pos[last] = pos;
    node_list.pop_back();
    node_pos.erase(it);
  }

  /// Uniformly random live node.
  [[nodiscard]] NodeId random_node(Rng& rng) const {
    assert(!node_list.empty());
    return node_list[rng.uniform(node_list.size())];
  }

  /// Uniformly random *honest* live node (rejection sampling; cheap while
  /// the honest fraction is bounded away from zero).
  [[nodiscard]] NodeId random_honest_node(Rng& rng) const {
    assert(node_list.size() > byzantine.size());
    while (true) {
      const NodeId candidate = random_node(rng);
      if (!byzantine.contains(candidate)) return candidate;
    }
  }
};

}  // namespace now::core
