// Shared mutable state of a NOW deployment: the cluster partition, the
// node -> cluster map, the OVER overlay, and the (simulation-only) ground
// truth of which nodes the adversary controls.
//
// Protocol code never *reads* the byzantine set to make decisions — honest
// logic is oblivious to it. It is consulted only (a) by primitives whose
// outcome genuinely depends on adversarial membership (e.g. the inter-
// cluster majority rule) and (b) by invariant checks and experiment metrics,
// mirroring the role of the adversary's full knowledge in the paper's model.
//
// Storage layout (the flat-state refactor + the membership slab): every
// container on the join/leave/exchange hot path is O(1) or O(log k)
// amortized.
//   * clusters — a slot table (vector + free list) addressed through a paged
//     ClusterId -> slot index, with a dense list of live ids for O(1)
//     uniform sampling;
//   * member lists — ONE flat NodeId pool (cluster/member_slab.hpp) carved
//     into per-slot extents with amortized headroom; each Cluster is a thin
//     view over its extent, so stage-1 member-edit workers stream
//     sequential memory instead of chasing k separate vectors. The slab
//     lives behind a unique_ptr so the Cluster views' slab pointer survives
//     NowState moves;
//   * cluster sizes — mirrored in a Fenwick tree over slots, making the
//     size-biased draw (randCl's limit law) O(log k) instead of O(k);
//   * node_home / the live-node registry — paged arrays keyed by the
//     sequential NodeId values;
//   * byzantine — a flat NodeSet (dense vector + paged positions).
// All membership mutations MUST flow through add_member / remove_member /
// move_node so the Fenwick mirror stays consistent; Cluster objects are
// only handed out const. Two sanctioned exceptions:
//   * corrupt_home_for_test, for invariant tests that need to break the
//     bookkeeping on purpose;
//   * the parallel-commit primitives (apply_member_edits / commit_home /
//     commit_spilled_members / apply_size_deltas / adjust_placed_count),
//     the stage-1/stage-2 split of the sharded batch commit (DESIGN.md §7):
//     member-extent edits and node_home writes happen shard-parallel
//     against disjoint slots, slots whose merged membership outgrew their
//     extent are spilled to a sequential stage-2 commit, and the Fenwick
//     mirror and the placed-node count are reconciled afterwards in one
//     sequential merge. Their contracts spell out exactly which shared
//     structure each one may touch.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/member_slab.hpp"
#include "common/fenwick.hpp"
#include "common/node_set.hpp"
#include "common/paged_index.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "over/overlay.hpp"

namespace now::core {

class SnapshotReader;
class SnapshotWriter;

class NowState {
 public:
  explicit NowState(const over::OverParams& over_params)
      : overlay(over_params),
        cluster_slot_(kNoSlot),
        slab_(std::make_unique<cluster::MemberSlab>()),
        node_home_(ClusterId::invalid()) {}

  /// The OVER overlay (vertices are the live ClusterIds).
  over::Overlay overlay;

  /// Ground truth of adversarial control (see the header comment).
  NodeSet byzantine;

  // ------------------------------------------------------------- identities

  [[nodiscard]] NodeId fresh_node_id() { return NodeId{next_node_id_++}; }

  // --------------------------------------------------------------- clusters

  /// Creates an empty cluster with a fresh id and returns the id.
  ClusterId create_cluster() {
    const ClusterId id{next_cluster_id_++};
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slab_->acquire_slot(slot);
      slots_[slot].emplace(id, *slab_, slot);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slab_->acquire_slot(slot);
      slots_.emplace_back(std::in_place, id, *slab_, slot);
      live_pos_.push_back(0);
      if (sizes_.size() < slots_.size()) {
        sizes_.resize(std::max<std::size_t>(16, 2 * slots_.size()));
      }
    }
    cluster_slot_.set(id.value(), slot);
    live_pos_[slot] = static_cast<std::uint32_t>(live_ids_.size());
    live_ids_.push_back(id);
    return id;
  }

  /// Removes an (empty) cluster. The members must have been moved out or
  /// removed first — destroying a populated cluster would silently strand
  /// node_home entries.
  void destroy_cluster(ClusterId id) {
    const std::uint32_t slot = slot_of(id);
    assert(slots_[slot]->size() == 0 && "destroying a populated cluster");
    const std::uint32_t at = live_pos_[slot];
    const ClusterId moved = live_ids_.back();
    live_ids_[at] = moved;
    live_pos_[slot_of(moved)] = at;
    live_ids_.pop_back();
    slab_->release_slot(slot);
    slots_[slot].reset();
    cluster_slot_.unset(id.value());
    free_slots_.push_back(slot);
  }

  [[nodiscard]] bool has_cluster(ClusterId id) const {
    return cluster_slot_.get(id.value()) != kNoSlot;
  }

  [[nodiscard]] const cluster::Cluster& cluster_at(ClusterId id) const {
    return *slots_[slot_of(id)];
  }

  /// Live cluster ids, densely packed. Deterministic but unspecified order
  /// (ids move on destroy); do not assume id order.
  [[nodiscard]] std::span<const ClusterId> cluster_ids() const {
    return live_ids_;
  }

  [[nodiscard]] std::size_t num_clusters() const { return live_ids_.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return placed_count_; }

  /// Stable slot index of a live cluster — the sharded batch step's
  /// partition key (operations are grouped by home-cluster slot modulo the
  /// shard count, see DESIGN.md §7). Slots are reused after destroy, so the
  /// value is only meaningful while the cluster is alive.
  [[nodiscard]] std::size_t slot_index(ClusterId id) const {
    return slot_of(id);
  }

  /// The shared membership arena (read-only). The batch commit keys its
  /// conflict footprints on slab positions (first(slot) + member index) and
  /// sizes its footprint array to tail().
  [[nodiscard]] const cluster::MemberSlab& member_slab() const {
    return *slab_;
  }

  // ------------------------------------------------------------- membership

  /// Adds `node` to cluster `c` and records the home mapping.
  void add_member(ClusterId c, NodeId node) {
    const std::uint32_t slot = slot_of(c);
    slots_[slot]->add_member(node);
    node_home_.set(node.value(), c);
    sizes_.add(slot, 1);
    ++placed_count_;
  }

  /// Removes `node` from cluster `c` and clears the home mapping.
  void remove_member(ClusterId c, NodeId node) {
    const std::uint32_t slot = slot_of(c);
    slots_[slot]->remove_member(node);
    node_home_.unset(node.value());
    sizes_.subtract(slot, 1);
    assert(placed_count_ > 0);
    --placed_count_;
  }

  /// Moves a node between clusters, keeping node_home consistent.
  void move_node(NodeId node, ClusterId from, ClusterId to) {
    assert(home_of(node) == from);
    const std::uint32_t from_slot = slot_of(from);
    const std::uint32_t to_slot = slot_of(to);
    slots_[from_slot]->remove_member(node);
    slots_[to_slot]->add_member(node);
    node_home_.set(node.value(), to);
    sizes_.subtract(from_slot, 1);
    sizes_.add(to_slot, 1);
  }

  /// Home cluster of `node`, or ClusterId::invalid() when the node is not
  /// currently placed in any cluster.
  [[nodiscard]] ClusterId home_of(NodeId node) const {
    return node_home_.get(node.value());
  }

  [[nodiscard]] bool is_placed(NodeId node) const {
    return home_of(node).valid();
  }

  /// Hints the cache that `node`'s home entry is about to be read — the
  /// batch partition and resolve sweeps issue this one op ahead so the
  /// paged-index line is in flight while the current op is processed.
  void prefetch_home(NodeId node) const { node_home_.prefetch(node.value()); }

  /// Deliberately mis-points a node's home entry without touching cluster
  /// membership — invariant tests use this to fabricate broken bookkeeping.
  void corrupt_home_for_test(NodeId node, ClusterId wrong) {
    node_home_.set(node.value(), wrong);
  }

  // ------------------------------------------------- parallel commit (§7)
  //
  // The sharded batch commit resolves membership moves OPTIMISTICALLY:
  // conflict-free swaps resolve shard-parallel (commit_home writes to
  // disjoint nodes), the footprint-flagged remainder replays sequentially
  // (commit_home / clear_home keep node_home current as it goes), then
  // stage 1 partitions the touched cluster slots into contiguous blocks and
  // lets each shard apply its clusters' member edits concurrently — writing
  // each slot's merged membership in place into its slab extent, or
  // spilling the slot when the merge outgrew the extent's cap (the spill
  // set depends only on canonical per-slot edits and extent caps, so it is
  // shard-independent). These primitives deliberately do NOT maintain the
  // Fenwick size mirror or the placed-node count — each shard accumulates
  // signed size deltas privately and stage 2 first re-homes the spilled
  // slots (commit_spilled_members, ascending slot order), then folds the
  // deltas back in sequentially. Between the resolve pass and the matching
  // apply_size_deltas/adjust_placed_count calls, the size-dependent
  // samplers (random_cluster_size_biased, num_nodes) and the member extents
  // are out of sync with node_home and must not be consulted.

  /// One ordered membership edit of a cluster slot: add (true) or remove
  /// (false) `node`. Per-slot edit sequences are built sequentially in
  /// canonical batch order, so the member extent's final layout is
  /// independent of how slots are distributed over shards.
  struct MemberEdit {
    NodeId node;
    bool add = false;
  };

  /// Reusable buffers of one stage-1 worker (capacities persist across
  /// apply_member_edits calls; contents are ignored on entry). `spills`
  /// collects the slots whose merged membership did not fit their extent —
  /// the caller commits them sequentially in stage 2 and clears the list.
  struct EditScratch {
    std::vector<NodeId> adds;
    std::vector<NodeId> removes;
    std::vector<NodeId> merge;
    std::vector<std::pair<std::size_t, std::vector<NodeId>>> spills;
  };

  /// Applies `edits` to the cluster in `slot` and returns the net size
  /// delta. The member extent is sorted, so the final content depends only
  /// on the net effect, not the edit order: the edits are netted (a node
  /// added and removed within the batch cancels) and merged directly inside
  /// the slot's extent via MemberSlab::try_apply_edits — one
  /// O(|members| + |edits|) in-place pass touching ONLY that slot's extent,
  /// so the call is safe to run concurrently for distinct slots with
  /// per-worker scratch. When the merge outgrew the extent, the merged run
  /// is built in scratch and the slot parked on scratch.spills for the
  /// sequential stage-2 commit instead (the returned delta already accounts
  /// for it). The Fenwick mirror and placed_count are intentionally left
  /// stale (see above).
  std::int64_t apply_member_edits(std::size_t slot,
                                  std::span<const MemberEdit> edits,
                                  EditScratch& scratch) {
    assert(slot < slots_.size() && slots_[slot].has_value());
    scratch.adds.clear();
    scratch.removes.clear();
    for (const MemberEdit& edit : edits) {
      (edit.add ? scratch.adds : scratch.removes).push_back(edit.node);
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(scratch.adds.size()) -
        static_cast<std::int64_t>(scratch.removes.size());
    std::sort(scratch.adds.begin(), scratch.adds.end());
    std::sort(scratch.removes.begin(), scratch.removes.end());
    // Cancel add/remove pairs of the same node (sorted multiset
    // difference; per node the net count is -1, 0 or +1).
    std::size_t a = 0;
    std::size_t r = 0;
    std::size_t a_out = 0;
    std::size_t r_out = 0;
    while (a < scratch.adds.size() && r < scratch.removes.size()) {
      if (scratch.adds[a] == scratch.removes[r]) {
        ++a;
        ++r;
      } else if (scratch.adds[a] < scratch.removes[r]) {
        scratch.adds[a_out++] = scratch.adds[a++];
      } else {
        scratch.removes[r_out++] = scratch.removes[r++];
      }
    }
    while (a < scratch.adds.size()) scratch.adds[a_out++] = scratch.adds[a++];
    while (r < scratch.removes.size()) {
      scratch.removes[r_out++] = scratch.removes[r++];
    }
    scratch.adds.resize(a_out);
    scratch.removes.resize(r_out);
    if (!slab_->try_apply_edits(slot, scratch.removes, scratch.adds)) {
      cluster::merge_sorted_edits(slots_[slot]->members(), scratch.removes,
                                  scratch.adds, scratch.merge);
      scratch.spills.emplace_back(slot, scratch.merge);
    }
    return delta;
  }

  /// Stage 2 (sequential): re-homes a stage-1 spilled slot into a fresh
  /// tail extent. Callers commit spills in ascending slot order so the tail
  /// allocation sequence — and hence the slab layout — is canonical. Must
  /// run before apply_size_deltas (which checks sizes against the extents).
  void commit_spilled_members(std::size_t slot,
                              std::span<const NodeId> members) {
    assert(slot < slots_.size() && slots_[slot].has_value());
    slab_->assign(slot, members);
  }

  /// Stage 2 (sequential): gives the slab a compaction opportunity at the
  /// batch boundary, so dead space from relocations is bounded even when a
  /// batch triggers no sequential slab mutation of its own.
  void maybe_compact_slab() { slab_->maybe_compact(); }

  /// Writes a node's home as the resolve decides its move — node_home
  /// doubles as the commit's within-batch home map, so no separate scratch
  /// structure (or deferred write pass) is needed. Safe to call from the
  /// optimistic resolve's parallel workers because conflict-free swaps
  /// touch disjoint nodes (distinct, pre-existing page entries); never
  /// called concurrently for a node the sequential replay will read.
  void commit_home(NodeId node, ClusterId home) {
    node_home_.set(node.value(), home);
  }

  /// Clears a departing node's home mapping (sequential resolve phase).
  void clear_home(NodeId node) { node_home_.unset(node.value()); }

  /// Stage 2: folds the per-shard signed size deltas into the Fenwick
  /// mirror (slots must be live; a slot appears at most once per call since
  /// each slot is owned by exactly one shard).
  /// When `pool` is non-null the rebuild branch (delta count ~ slot count)
  /// runs the blocked shard-parallel Fenwick build — bit-identical to the
  /// sequential one (see FenwickTree::apply_deltas).
  void apply_size_deltas(
      std::span<const std::pair<std::size_t, std::int64_t>> deltas,
      ThreadPool* pool = nullptr, std::size_t blocks = 1) {
#ifndef NDEBUG
    for (const auto& [slot, delta] : deltas) {
      assert(slot < slots_.size() && slots_[slot].has_value());
      assert(static_cast<std::int64_t>(sizes_.value_at(slot)) + delta ==
             static_cast<std::int64_t>(slots_[slot]->size()));
    }
#endif
    sizes_.apply_deltas(deltas, pool, blocks);
  }

  /// Stage 2: reconciles the placed-node count with the batch's net
  /// join/leave balance (swaps are size-neutral).
  void adjust_placed_count(std::int64_t delta) {
    assert(delta >= 0 ||
           placed_count_ >= static_cast<std::size_t>(-delta));
    placed_count_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(placed_count_) + delta);
  }

  /// Number of slots in the cluster slot table (live or free) — the bound
  /// commit engines size their per-slot scratch arrays to.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  // ------------------------------------------------------ live-node registry

  /// Adds a node to the sampling index (on join / initialization).
  void register_node(NodeId node) {
    const bool inserted = live_.insert(node);
    assert(inserted && "node already registered");
    (void)inserted;
  }

  /// Removes a node from the sampling index (on leave).
  void unregister_node(NodeId node) {
    const bool erased = live_.erase(node);
    assert(erased && "node was not registered");
    (void)erased;
  }

  /// Live nodes, densely packed (swap-and-pop order, not id order).
  [[nodiscard]] std::span<const NodeId> live_nodes() const {
    return live_.items();
  }

  /// Uniformly random live node.
  [[nodiscard]] NodeId random_node(Rng& rng) const {
    assert(!live_.empty());
    return live_.at_index(rng.uniform(live_.size()));
  }

  /// `count` distinct live nodes drawn uniformly (Floyd's algorithm, O(count)
  /// expected). Requires count <= the number of live nodes. The shared
  /// victim picker of batched churn drivers and tests.
  [[nodiscard]] std::vector<NodeId> sample_distinct_nodes(
      Rng& rng, std::size_t count) const {
    assert(count <= live_.size());
    std::vector<NodeId> result;
    result.reserve(count);
    for (const std::size_t index : rng.sample_distinct(live_.size(), count)) {
      result.push_back(live_.at_index(index));
    }
    return result;
  }

  /// Uniformly random *honest* live node (rejection sampling; cheap while
  /// the honest fraction is bounded away from zero).
  [[nodiscard]] NodeId random_honest_node(Rng& rng) const {
    assert(live_.size() > byzantine.size());
    while (true) {
      const NodeId candidate = random_node(rng);
      if (!byzantine.contains(candidate)) return candidate;
    }
  }

  // ----------------------------------------------------------- sampling laws

  /// Uniformly random cluster (used for join contact points; any cluster of
  /// the overlay may be contacted). O(1).
  [[nodiscard]] ClusterId random_cluster_uniform(Rng& rng) const {
    assert(!live_ids_.empty());
    return live_ids_[rng.uniform(live_ids_.size())];
  }

  /// Cluster drawn with probability |C| / n — the biased CTRW's limit law.
  /// O(log k) via the Fenwick size mirror.
  [[nodiscard]] ClusterId random_cluster_size_biased(Rng& rng) const {
    assert(num_nodes() > 0 && sizes_.total() == num_nodes());
    const std::size_t slot = sizes_.find(rng.uniform(sizes_.total()));
    return slots_[slot]->id();
  }

  /// Total number of nodes that are Byzantine.
  [[nodiscard]] std::size_t byzantine_total() const {
    return byzantine.size();
  }

  /// Resident bytes of the deterministic state: slot table, live/free
  /// lists, both paged indices, the Fenwick mirror, the membership slab
  /// and the node registries. Capacities, not sizes — this is what the
  /// process holds, the quantity the bytes_per_node bench scalar tracks.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(slots_[0]) +
           live_pos_.capacity() * sizeof(std::uint32_t) +
           free_slots_.capacity() * sizeof(std::uint32_t) +
           live_ids_.capacity() * sizeof(ClusterId) +
           cluster_slot_.footprint_bytes() + sizes_.footprint_bytes() +
           slab_->footprint_bytes() + node_home_.footprint_bytes() +
           live_.footprint_bytes() + byzantine.footprint_bytes();
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Snapshot serialization (core/snapshot.cpp): the slot table, the slab
  /// geometry (extents + tail — compaction triggers are a function of it),
  /// the free list and every dense order (live_ids_, live_, byzantine) are
  /// observable through sampling or slab positions, so they are written and
  /// reconstructed verbatim; the derived containers (cluster_slot_,
  /// node_home_, sizes_, live_pos_, placed_count_) are rebuilt from them.
  friend void snapshot_save_state(const NowState& state,
                                  SnapshotWriter& writer);
  friend void snapshot_load_state(NowState& state, SnapshotReader& reader);

  [[nodiscard]] std::uint32_t slot_of(ClusterId id) const {
    const std::uint32_t slot = cluster_slot_.get(id.value());
    // Keep the old ordered-map contract (at() threw) rather than turning a
    // stale id into an out-of-bounds slot read in release builds.
    if (slot == kNoSlot) throw std::out_of_range("cluster does not exist");
    return slot;
  }

  NodeId::value_type next_node_id_ = 0;
  ClusterId::value_type next_cluster_id_ = 0;

  // Slot table for clusters; sizes_ mirrors each slot's |C| for the biased
  // draw. slots_ and live_pos_ are parallel (sizes_ over-allocates). The
  // slab holds every slot's member extent; it sits behind a unique_ptr so
  // the Cluster views' raw slab pointers survive NowState moves.
  std::vector<std::optional<cluster::Cluster>> slots_;
  std::vector<std::uint32_t> live_pos_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<ClusterId> live_ids_;
  PagedIndex<std::uint32_t> cluster_slot_;
  FenwickTree sizes_;
  std::unique_ptr<cluster::MemberSlab> slab_;

  PagedIndex<ClusterId> node_home_;
  std::size_t placed_count_ = 0;

  NodeSet live_;
};

}  // namespace now::core
