// Shared mutable state of a NOW deployment: the cluster partition, the
// node -> cluster map, the OVER overlay, and the (simulation-only) ground
// truth of which nodes the adversary controls.
//
// Protocol code never *reads* the byzantine set to make decisions — honest
// logic is oblivious to it. It is consulted only (a) by primitives whose
// outcome genuinely depends on adversarial membership (e.g. the inter-
// cluster majority rule) and (b) by invariant checks and experiment metrics,
// mirroring the role of the adversary's full knowledge in the paper's model.
//
// Storage layout (the flat-state refactor): every container on the
// join/leave/exchange hot path is O(1) or O(log k) amortized.
//   * clusters — a slot table (vector + free list) addressed through a paged
//     ClusterId -> slot index, with a dense list of live ids for O(1)
//     uniform sampling;
//   * cluster sizes — mirrored in a Fenwick tree over slots, making the
//     size-biased draw (randCl's limit law) O(log k) instead of O(k);
//   * node_home / the live-node registry — paged arrays keyed by the
//     sequential NodeId values;
//   * byzantine — a flat NodeSet (dense vector + paged positions).
// All membership mutations MUST flow through add_member / remove_member /
// move_node so the Fenwick mirror stays consistent; Cluster objects are
// only handed out const. corrupt_home_for_test exists for invariant tests
// that need to break the bookkeeping on purpose.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/fenwick.hpp"
#include "common/node_set.hpp"
#include "common/paged_index.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "over/overlay.hpp"

namespace now::core {

class NowState {
 public:
  explicit NowState(const over::OverParams& over_params)
      : overlay(over_params),
        cluster_slot_(kNoSlot),
        node_home_(ClusterId::invalid()) {}

  /// The OVER overlay (vertices are the live ClusterIds).
  over::Overlay overlay;

  /// Ground truth of adversarial control (see the header comment).
  NodeSet byzantine;

  // ------------------------------------------------------------- identities

  [[nodiscard]] NodeId fresh_node_id() { return NodeId{next_node_id_++}; }

  // --------------------------------------------------------------- clusters

  /// Creates an empty cluster with a fresh id and returns the id.
  ClusterId create_cluster() {
    const ClusterId id{next_cluster_id_++};
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot].emplace(id);
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back(std::in_place, id);
      live_pos_.push_back(0);
      if (sizes_.size() < slots_.size()) {
        sizes_.resize(std::max<std::size_t>(16, 2 * slots_.size()));
      }
    }
    cluster_slot_.set(id.value(), slot);
    live_pos_[slot] = static_cast<std::uint32_t>(live_ids_.size());
    live_ids_.push_back(id);
    return id;
  }

  /// Removes an (empty) cluster. The members must have been moved out or
  /// removed first — destroying a populated cluster would silently strand
  /// node_home entries.
  void destroy_cluster(ClusterId id) {
    const std::uint32_t slot = slot_of(id);
    assert(slots_[slot]->size() == 0 && "destroying a populated cluster");
    const std::uint32_t at = live_pos_[slot];
    const ClusterId moved = live_ids_.back();
    live_ids_[at] = moved;
    live_pos_[slot_of(moved)] = at;
    live_ids_.pop_back();
    slots_[slot].reset();
    cluster_slot_.unset(id.value());
    free_slots_.push_back(slot);
  }

  [[nodiscard]] bool has_cluster(ClusterId id) const {
    return cluster_slot_.get(id.value()) != kNoSlot;
  }

  [[nodiscard]] const cluster::Cluster& cluster_at(ClusterId id) const {
    return *slots_[slot_of(id)];
  }

  /// Live cluster ids, densely packed. Deterministic but unspecified order
  /// (ids move on destroy); do not assume id order.
  [[nodiscard]] std::span<const ClusterId> cluster_ids() const {
    return live_ids_;
  }

  [[nodiscard]] std::size_t num_clusters() const { return live_ids_.size(); }
  [[nodiscard]] std::size_t num_nodes() const { return placed_count_; }

  /// Stable slot index of a live cluster — the sharded batch step's
  /// partition key (operations are grouped by home-cluster slot modulo the
  /// shard count, see DESIGN.md §7). Slots are reused after destroy, so the
  /// value is only meaningful while the cluster is alive.
  [[nodiscard]] std::size_t slot_index(ClusterId id) const {
    return slot_of(id);
  }

  // ------------------------------------------------------------- membership

  /// Adds `node` to cluster `c` and records the home mapping.
  void add_member(ClusterId c, NodeId node) {
    const std::uint32_t slot = slot_of(c);
    slots_[slot]->add_member(node);
    node_home_.set(node.value(), c);
    sizes_.add(slot, 1);
    ++placed_count_;
  }

  /// Removes `node` from cluster `c` and clears the home mapping.
  void remove_member(ClusterId c, NodeId node) {
    const std::uint32_t slot = slot_of(c);
    slots_[slot]->remove_member(node);
    node_home_.unset(node.value());
    sizes_.subtract(slot, 1);
    assert(placed_count_ > 0);
    --placed_count_;
  }

  /// Moves a node between clusters, keeping node_home consistent.
  void move_node(NodeId node, ClusterId from, ClusterId to) {
    assert(home_of(node) == from);
    const std::uint32_t from_slot = slot_of(from);
    const std::uint32_t to_slot = slot_of(to);
    slots_[from_slot]->remove_member(node);
    slots_[to_slot]->add_member(node);
    node_home_.set(node.value(), to);
    sizes_.subtract(from_slot, 1);
    sizes_.add(to_slot, 1);
  }

  /// Home cluster of `node`, or ClusterId::invalid() when the node is not
  /// currently placed in any cluster.
  [[nodiscard]] ClusterId home_of(NodeId node) const {
    return node_home_.get(node.value());
  }

  [[nodiscard]] bool is_placed(NodeId node) const {
    return home_of(node).valid();
  }

  /// Deliberately mis-points a node's home entry without touching cluster
  /// membership — invariant tests use this to fabricate broken bookkeeping.
  void corrupt_home_for_test(NodeId node, ClusterId wrong) {
    node_home_.set(node.value(), wrong);
  }

  // ------------------------------------------------------ live-node registry

  /// Adds a node to the sampling index (on join / initialization).
  void register_node(NodeId node) {
    const bool inserted = live_.insert(node);
    assert(inserted && "node already registered");
    (void)inserted;
  }

  /// Removes a node from the sampling index (on leave).
  void unregister_node(NodeId node) {
    const bool erased = live_.erase(node);
    assert(erased && "node was not registered");
    (void)erased;
  }

  /// Live nodes, densely packed (swap-and-pop order, not id order).
  [[nodiscard]] std::span<const NodeId> live_nodes() const {
    return live_.items();
  }

  /// Uniformly random live node.
  [[nodiscard]] NodeId random_node(Rng& rng) const {
    assert(!live_.empty());
    return live_.at_index(rng.uniform(live_.size()));
  }

  /// `count` distinct live nodes drawn uniformly (Floyd's algorithm, O(count)
  /// expected). Requires count <= the number of live nodes. The shared
  /// victim picker of batched churn drivers and tests.
  [[nodiscard]] std::vector<NodeId> sample_distinct_nodes(
      Rng& rng, std::size_t count) const {
    assert(count <= live_.size());
    std::vector<NodeId> result;
    result.reserve(count);
    for (const std::size_t index : rng.sample_distinct(live_.size(), count)) {
      result.push_back(live_.at_index(index));
    }
    return result;
  }

  /// Uniformly random *honest* live node (rejection sampling; cheap while
  /// the honest fraction is bounded away from zero).
  [[nodiscard]] NodeId random_honest_node(Rng& rng) const {
    assert(live_.size() > byzantine.size());
    while (true) {
      const NodeId candidate = random_node(rng);
      if (!byzantine.contains(candidate)) return candidate;
    }
  }

  // ----------------------------------------------------------- sampling laws

  /// Uniformly random cluster (used for join contact points; any cluster of
  /// the overlay may be contacted). O(1).
  [[nodiscard]] ClusterId random_cluster_uniform(Rng& rng) const {
    assert(!live_ids_.empty());
    return live_ids_[rng.uniform(live_ids_.size())];
  }

  /// Cluster drawn with probability |C| / n — the biased CTRW's limit law.
  /// O(log k) via the Fenwick size mirror.
  [[nodiscard]] ClusterId random_cluster_size_biased(Rng& rng) const {
    assert(num_nodes() > 0 && sizes_.total() == num_nodes());
    const std::size_t slot = sizes_.find(rng.uniform(sizes_.total()));
    return slots_[slot]->id();
  }

  /// Total number of nodes that are Byzantine.
  [[nodiscard]] std::size_t byzantine_total() const {
    return byzantine.size();
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  [[nodiscard]] std::uint32_t slot_of(ClusterId id) const {
    const std::uint32_t slot = cluster_slot_.get(id.value());
    // Keep the old ordered-map contract (at() threw) rather than turning a
    // stale id into an out-of-bounds slot read in release builds.
    if (slot == kNoSlot) throw std::out_of_range("cluster does not exist");
    return slot;
  }

  NodeId::value_type next_node_id_ = 0;
  ClusterId::value_type next_cluster_id_ = 0;

  // Slot table for clusters; sizes_ mirrors each slot's |C| for the biased
  // draw. slots_ and live_pos_ are parallel (sizes_ over-allocates).
  std::vector<std::optional<cluster::Cluster>> slots_;
  std::vector<std::uint32_t> live_pos_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<ClusterId> live_ids_;
  PagedIndex<std::uint32_t> cluster_slot_;
  FenwickTree sizes_;

  PagedIndex<ClusterId> node_home_;
  std::size_t placed_count_ = 0;

  NodeSet live_;
};

}  // namespace now::core
