// NOW protocol parameters (Sections 2–3).
//
// The paper's free parameters and the knobs our reconstruction adds:
//   N      — maximum network size; the live size n stays in [sqrt(N), N];
//   tau    — fraction of nodes the (static) adversary controls,
//            tau <= 1/3 - epsilon;
//   k      — security parameter: clusters hold ~ k log N nodes; larger k
//            sharpens every whp bound (Lemma 1);
//   l      — split/merge hysteresis (> sqrt(2)): split above l*k*log N,
//            merge (dissolve) below k*log N / l;
//   alpha  — the overlay degree/expansion exponent log^{1+alpha} N.
#pragma once

#include <cstdint>

#include "cluster/rand_num.hpp"
#include "common/math_util.hpp"

namespace now::core {

/// How randCl produces its cluster sample.
enum class WalkMode {
  /// Simulate the biased CTRW hop by hop (faithful; used by all cost
  /// benches and correctness tests).
  kSimulate,
  /// Draw the endpoint directly from the walk's limit law (P[C] = |C|/n)
  /// and charge the modeled cost. Statistically equivalent up to the
  /// O(n^-c) walk bias the analysis discards (Section 4); used for
  /// long-horizon statistical experiments.
  kSampleExact,
};

/// Robustness regime (Remarks 1-2 of the paper).
enum class Robustness {
  /// Information-theoretic setting: tau <= 1/3 - eps, clusters sound while
  /// > 2/3 honest (a cluster is compromised at 1/3 Byzantine).
  kPlain,
  /// "One can tolerate a fraction of Byzantine nodes up to 1/2 - eps, but
  /// then we need to use cryptographic tools to allow for broadcast and
  /// Byzantine agreement" (Remark 1). With unforgeable signatures the
  /// cluster primitives stay sound up to an honest *majority*, so the
  /// compromise line moves to 1/2.
  kAuthenticated,
};

/// How the split/merge thresholds are computed. The paper's prose
/// (Section 3.3) uses log N; Algorithms 1-2 use log n (the *current* size).
/// Both are Theta(log N) while n is in [sqrt(N), N]; kDynamicCurrentN keeps
/// clusters proportionally smaller at small n.
enum class ThresholdMode { kStaticN, kDynamicCurrentN };

/// How the sharded batch commit resolves the planned membership moves
/// (DESIGN.md §7). Every mode produces IDENTICAL results — the optimistic
/// resolve provably reproduces the canonical sequential outcome swap by
/// swap — so this is purely a wall-clock strategy knob (plus a test hook).
enum class ResolveMode {
  /// Optimistic parallel resolve when the thread pool has workers and
  /// shards >= 2; the canonical sequential resolve (with its planned-slot
  /// fast path) otherwise — on one hardware thread the footprint passes
  /// cost more than they parallelize (BM_JoinLeaveCycle's resolve-mode
  /// axis tracks the comparison).
  kAuto,
  /// Always the canonical sequential resolve (reference implementation;
  /// OpReport::resolve_replays stays 0).
  kSequential,
  /// Always the multi-pass parallel form, with at least one real pool
  /// worker even on single-core hosts — lets any test box (and TSan)
  /// exercise the threaded classification/gather paths.
  kOptimistic,
};

/// Which variant of the under-populated-cluster rule to run (DESIGN.md §5).
enum class MergePolicy {
  /// Algorithm 2: the cluster dissolves, is removed from the overlay, and
  /// its members re-join via Algorithm 1 (the variant the Section 4
  /// analysis models).
  kDissolve,
  /// Figure 2 prose: absorb the members of a randCl-chosen victim cluster
  /// instead.
  kAbsorb,
};

struct NowParams {
  std::uint64_t max_size = 1 << 14;  // N
  double tau = 0.15;
  int k = 3;
  double l = 1.5;
  double alpha = 0.1;

  double over_degree_constant = 1.0;
  double over_cap_factor = 3.0;

  /// Walk duration multiplier: a CTRW runs for ~ walk_factor * ln^2(#C)
  /// expected hops (the paper's O(log^2 n) walk length).
  double walk_factor = 1.0;
  WalkMode walk_mode = WalkMode::kSimulate;
  ResolveMode resolve_mode = ResolveMode::kAuto;
  MergePolicy merge_policy = MergePolicy::kDissolve;
  cluster::RandNumMode rand_num_mode = cluster::RandNumMode::kFast;
  Robustness robustness = Robustness::kPlain;
  ThresholdMode threshold_mode = ThresholdMode::kStaticN;

  /// Disabling shuffling turns the system into the no-shuffle baseline the
  /// paper argues against in Section 3.3 (join-leave attacks then win).
  bool shuffle_enabled = true;

  /// The Byzantine fraction at which a cluster stops being trustworthy:
  /// 1/3 in the plain model, 1/2 with signatures (Remark 1).
  [[nodiscard]] double compromise_threshold() const {
    return robustness == Robustness::kPlain ? 1.0 / 3.0 : 1.0 / 2.0;
  }

  /// The size the thresholds are keyed to: N, or the current n in the
  /// Algorithms-1/2 variant. `current_n == 0` means "unknown, use N".
  [[nodiscard]] double threshold_base(std::size_t current_n = 0) const {
    if (threshold_mode == ThresholdMode::kDynamicCurrentN && current_n > 0) {
      return static_cast<double>(current_n);
    }
    return static_cast<double>(max_size);
  }

  /// Target cluster size k * ln(base).
  [[nodiscard]] std::size_t cluster_size_target(
      std::size_t current_n = 0) const {
    return ceil_log_pow(threshold_base(current_n), 1.0, 2) *
           static_cast<std::size_t>(k);
  }

  /// Split strictly above this size (l * k * ln(base)).
  [[nodiscard]] std::size_t split_threshold(std::size_t current_n = 0) const {
    const double t =
        l * static_cast<double>(k) * log_n(threshold_base(current_n));
    return static_cast<std::size_t>(t);
  }

  /// Merge strictly below this size (k * ln(base) / l).
  [[nodiscard]] std::size_t merge_threshold(std::size_t current_n = 0) const {
    const double t =
        static_cast<double>(k) * log_n(threshold_base(current_n)) / l;
    return static_cast<std::size_t>(t) + 1;  // merge when size < this
  }

  /// Upper bound on any cluster's size at any instant (a freshly joined
  /// node can push a cluster one past the split threshold before the split
  /// runs). Used as the denominator of randCl's acceptance step. Always
  /// keyed to N — it must upper-bound sizes across the whole run.
  [[nodiscard]] std::size_t cluster_size_bound() const {
    const double t =
        l * static_cast<double>(k) * log_n(static_cast<double>(max_size));
    return static_cast<std::size_t>(t) + 1;
  }
};

}  // namespace now::core
