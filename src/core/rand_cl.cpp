#include "core/rand_cl.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cluster/intercluster.hpp"
#include "cluster/rand_num.hpp"
#include "common/math_util.hpp"

namespace now::core {

namespace {

/// Walk duration chosen so that the expected number of jumps is
/// ~ walk_factor * ln^2(#clusters) — the paper's O(log^2 n) walk length.
/// (A CTRW with per-edge rate 1 jumps at rate deg(v), so expected jumps over
/// duration T are ~ T * avg_degree.)
double walk_duration(const NowState& state, const NowParams& params) {
  const double m = static_cast<double>(std::max<std::size_t>(
      state.overlay.num_clusters(), 2));
  const double avg_degree = std::max(
      1.0, 2.0 * static_cast<double>(state.overlay.graph().num_edges()) / m);
  return params.walk_factor * log_pow(m, 2.0) / avg_degree;
}

/// randNum draw shared by every hop: the cluster holding the token
/// collectively samples (holding time, next neighbor). One randNum call per
/// visited cluster, as the paper charges.
Cost charge_hop_rand_num(const NowState& state, const NowParams& params,
                         ClusterId at, Metrics& metrics, Rng& rng) {
  const std::size_t size = state.cluster_at(at).size();
  const auto draw = cluster::rand_num_value(
      size, /*r=*/std::max<std::uint64_t>(2, state.overlay.degree(at) + 1),
      params.rand_num_mode, metrics, rng);
  return draw.cost;
}

RandClResult simulate_walk(const NowState& state, const NowParams& params,
                           ClusterId start, Metrics& metrics, Rng& rng) {
  RandClResult result;
  const double duration = walk_duration(state, params);
  const std::uint64_t size_bound = params.cluster_size_bound();
  const std::size_t restart_cap =
      20 + 20 * static_cast<std::size_t>(
                    log_n(static_cast<double>(state.num_clusters())));

  ClusterId current = start;
  while (true) {
    // --- One CTRW of length `duration`.
    double remaining = duration;
    while (true) {
      const std::size_t deg = state.overlay.degree(current);
      if (deg == 0) break;  // isolated vertex (single-cluster overlay)
      const Cost hop_rand = charge_hop_rand_num(state, params, current,
                                                metrics, rng);
      const double hold = rng.exponential(static_cast<double>(deg));
      if (hold >= remaining) {
        result.cost.rounds += hop_rand.rounds;  // the expiry draw still ran
        break;
      }
      remaining -= hold;
      const ClusterId next =
          state.overlay.neighbors(current)[rng.uniform(deg)];
      const auto transfer = cluster::cluster_send(
          state.cluster_at(current), state.cluster_at(next), 1,
          state.byzantine, metrics);
      result.cost.rounds += hop_rand.rounds + transfer.cost.rounds;
      current = next;
      ++result.hops;
    }

    // --- Acceptance step: u < |C| / max|C| keeps the endpoint.
    const std::size_t here = state.cluster_at(current).size();
    const auto acceptance = cluster::rand_num_value(
        here, size_bound, params.rand_num_mode, metrics, rng);
    result.cost.rounds += acceptance.cost.rounds;
    if (acceptance.value < here || result.restarts >= restart_cap) {
      result.cluster = current;
      break;
    }
    ++result.restarts;
  }
  return result;
}

RandClResult sample_exact(const NowState& state, const NowParams& params,
                          ClusterId /*start*/, Metrics& metrics, Rng& rng) {
  // Charge the modeled cost of the walk that kSimulate would have run.
  RandClResult result = rand_cl_cost_model(state, params);
  result.cluster = state.random_cluster_size_biased(rng);
  metrics.add_messages(result.cost.messages);
  return result;
}

}  // namespace

RandClResult rand_cl_cost_model(const NowState& state,
                                const NowParams& params) {
  RandClResult result;
  const std::size_t m = std::max<std::size_t>(state.num_clusters(), 2);
  const auto hops = static_cast<std::uint64_t>(std::ceil(
      params.walk_factor * log_pow(static_cast<double>(m), 2.0)));
  const std::size_t avg_size =
      std::max<std::size_t>(1, state.num_nodes() / state.num_clusters());
  const Cost rand_num =
      cluster::rand_num_cost_model(avg_size, params.rand_num_mode);
  const Cost transfer = cluster::cluster_send_cost(avg_size, avg_size, 1);
  result.hops = hops;
  result.cost.messages =
      hops * (rand_num.messages + transfer.messages) + rand_num.messages;
  result.cost.rounds =
      hops * (rand_num.rounds + transfer.rounds) + rand_num.rounds;
  return result;
}

RandClResult run_rand_cl(const NowState& state, const NowParams& params,
                         ClusterId start, Metrics& metrics, Rng& rng) {
  assert(state.has_cluster(start));
  assert(state.num_clusters() > 0);
  switch (params.walk_mode) {
    case WalkMode::kSimulate:
      return simulate_walk(state, params, start, metrics, rng);
    case WalkMode::kSampleExact:
      return sample_exact(state, params, start, metrics, rng);
  }
  return {};
}

}  // namespace now::core
