// Inter-cluster communication with the majority rule (Sections 3.1–3.2).
//
// "A node receiving a message from all the nodes of a particular cluster
//  considers this message valid if and only if it receives the same message
//  from more than half of the nodes of this cluster."
//
// Sending one logical message of `units` words from cluster C to cluster D
// therefore costs |C| * |D| * units unit messages and one round. The message
// is accepted iff > |C|/2 members say the same thing — guaranteed while C has
// an honest majority; conversely a Byzantine-majority cluster can forge.
#pragma once

#include <cstdint>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "cluster/cluster.hpp"

namespace now::cluster {

struct ClusterSendOutcome {
  /// The honest payload reached the majority threshold and was accepted.
  bool accepted = false;
  /// The Byzantine members alone could have forged an accepted message.
  bool forgeable = false;
  /// Full cost (messages already charged to metrics; rounds returned for the
  /// caller's critical-path accounting, always 1).
  Cost cost;
};

/// Cost of one logical cluster-to-cluster message.
[[nodiscard]] Cost cluster_send_cost(std::size_t from_size,
                                     std::size_t to_size, std::uint64_t units);

/// Cost-only send: charges the messages of one logical cluster-to-cluster
/// message to `metrics` and returns its round count, without evaluating the
/// majority rule. For planners that never consume the outcome — the sharded
/// engine's exchange waves charge their partner notices through this — the
/// charges are identical to cluster_send's (tests assert it), so swapping
/// one for the other never moves a cost trajectory.
std::uint64_t cluster_send_charge(std::size_t from_size, std::size_t to_size,
                                  std::uint64_t units, Metrics& metrics);

/// Performs one logical message from `from` to `to`: charges the messages to
/// `metrics` and reports acceptance under the > 1/2 rule.
ClusterSendOutcome cluster_send(const Cluster& from, const Cluster& to,
                                std::uint64_t units,
                                const NodeSet& byzantine,
                                Metrics& metrics);

}  // namespace now::cluster
