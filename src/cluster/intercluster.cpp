#include "cluster/intercluster.hpp"

namespace now::cluster {

Cost cluster_send_cost(std::size_t from_size, std::size_t to_size,
                       std::uint64_t units) {
  return Cost{static_cast<std::uint64_t>(from_size) *
                  static_cast<std::uint64_t>(to_size) * units,
              1};
}

std::uint64_t cluster_send_charge(std::size_t from_size, std::size_t to_size,
                                  std::uint64_t units, Metrics& metrics) {
  const Cost cost = cluster_send_cost(from_size, to_size, units);
  metrics.add_messages(cost.messages);
  return cost.rounds;
}

ClusterSendOutcome cluster_send(const Cluster& from, const Cluster& to,
                                std::uint64_t units,
                                const NodeSet& byzantine,
                                Metrics& metrics) {
  const Cost cost = cluster_send_cost(from.size(), to.size(), units);
  metrics.add_messages(cost.messages);

  const std::size_t byz = byzantine_count(from, byzantine);
  const std::size_t honest = from.size() - byz;
  const std::size_t majority = from.size() / 2 + 1;
  return ClusterSendOutcome{honest >= majority, byz >= majority, cost};
}

}  // namespace now::cluster
