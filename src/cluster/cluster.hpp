// Cluster membership (Section 3.1).
//
// A cluster is a set of nodes that are pairwise connected and know each
// other's identities; it is also a vertex of the OVER overlay. All protocol
// decisions of a cluster are taken collectively (randNum) and all statements
// a cluster makes to the outside are believed only when more than half of
// its members say the same thing (cluster/intercluster.hpp) — which is sound
// exactly while > 2/3 of the members are honest, the invariant NOW maintains.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace now::cluster {

class Cluster {
 public:
  explicit Cluster(ClusterId id) : id_(id) {}

  [[nodiscard]] ClusterId id() const { return id_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  [[nodiscard]] bool contains(NodeId node) const {
    return std::binary_search(members_.begin(), members_.end(), node);
  }

  void add_member(NodeId node) {
    const auto it = std::lower_bound(members_.begin(), members_.end(), node);
    assert((it == members_.end() || *it != node) && "member already present");
    members_.insert(it, node);
  }

  void remove_member(NodeId node) {
    const auto it = std::lower_bound(members_.begin(), members_.end(), node);
    assert(it != members_.end() && *it == node && "member not present");
    members_.erase(it);
  }

  /// Bulk membership update in one merge pass: drops `removals` and splices
  /// in `additions` (both sorted; removals must all be present, additions
  /// all absent). O(|members| + |edits|) where one add/remove_member call
  /// each is O(|members|) — the batch commit applies a cluster's whole
  /// step's worth of edits through this. `scratch` is the caller's reusable
  /// buffer (capacity persists across calls, contents ignored).
  void apply_sorted_edits(std::span<const NodeId> removals,
                          std::span<const NodeId> additions,
                          std::vector<NodeId>& scratch) {
    scratch.clear();
    scratch.reserve(members_.size() - removals.size() + additions.size());
    auto removal = removals.begin();
    auto addition = additions.begin();
    for (const NodeId m : members_) {
      while (addition != additions.end() && *addition < m) {
        scratch.push_back(*addition++);
      }
      if (removal != removals.end() && *removal == m) {
        ++removal;
        continue;
      }
      scratch.push_back(m);
    }
    assert(removal == removals.end() && "removal of a non-member");
    while (addition != additions.end()) scratch.push_back(*addition++);
    members_.swap(scratch);
  }

  /// Member at sorted position `index` (used with randNum for uniform picks).
  [[nodiscard]] NodeId member_at(std::size_t index) const {
    assert(index < members_.size());
    return members_[index];
  }

  /// Sorted position of `node` (the inverse of member_at; O(log size)).
  /// The batch commit keys its conflict-detection footprints on these.
  [[nodiscard]] std::size_t index_of(NodeId node) const {
    const auto it = std::lower_bound(members_.begin(), members_.end(), node);
    assert(it != members_.end() && *it == node && "member not present");
    return static_cast<std::size_t>(it - members_.begin());
  }

  /// Uniformly random member.
  [[nodiscard]] NodeId random_member(Rng& rng) const {
    assert(!members_.empty());
    return members_[rng.uniform(members_.size())];
  }

 private:
  ClusterId id_;
  std::vector<NodeId> members_;  // sorted
};

/// Number of `cluster`'s members that belong to `byzantine`.
[[nodiscard]] inline std::size_t byzantine_count(const Cluster& cluster,
                                                 const NodeSet& byzantine) {
  std::size_t count = 0;
  for (const NodeId m : cluster.members())
    if (byzantine.contains(m)) ++count;
  return count;
}

/// Fraction of Byzantine members (p_C in the paper's analysis, Section 4).
[[nodiscard]] inline double byzantine_fraction(const Cluster& cluster,
                                               const NodeSet& byzantine) {
  if (cluster.size() == 0) return 0.0;
  return static_cast<double>(byzantine_count(cluster, byzantine)) /
         static_cast<double>(cluster.size());
}

}  // namespace now::cluster
