// Cluster membership (Section 3.1).
//
// A cluster is a set of nodes that are pairwise connected and know each
// other's identities; it is also a vertex of the OVER overlay. All protocol
// decisions of a cluster are taken collectively (randNum) and all statements
// a cluster makes to the outside are believed only when more than half of
// its members say the same thing (cluster/intercluster.hpp) — which is sound
// exactly while > 2/3 of the members are honest, the invariant NOW maintains.
//
// Storage: a Cluster is a thin view (id + slot) over the deployment's shared
// MemberSlab (member_slab.hpp) — its sorted member list is the slab extent
// of its slot. The slab outlives and never moves relative to its clusters
// (NowState owns it behind a unique_ptr), so the raw pointer is stable.
#pragma once

#include <algorithm>
#include <cassert>
#include <span>
#include <stdexcept>
#include <vector>

#include "cluster/member_slab.hpp"
#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace now::cluster {

/// Merges sorted `removals` out of and sorted `additions` into the sorted
/// `members` run, writing the result into `out` (cleared first; capacity
/// persists across calls). O(|members| + |edits|). Additions must all be
/// absent from `members`; a removal that is not present — a stale removal
/// list — throws std::invalid_argument instead of silently corrupting the
/// membership (the old debug-only assert let the reserve below underflow
/// and wrap in release builds).
inline void merge_sorted_edits(std::span<const NodeId> members,
                               std::span<const NodeId> removals,
                               std::span<const NodeId> additions,
                               std::vector<NodeId>& out) {
  if (removals.size() > members.size()) {
    throw std::invalid_argument(
        "merge_sorted_edits: more removals than members");
  }
  out.clear();
  out.reserve(members.size() - removals.size() + additions.size());
  auto removal = removals.begin();
  auto addition = additions.begin();
  for (const NodeId m : members) {
    while (addition != additions.end() && *addition < m) {
      out.push_back(*addition++);
    }
    if (removal != removals.end() && *removal == m) {
      ++removal;
      continue;
    }
    out.push_back(m);
  }
  if (removal != removals.end()) {
    throw std::invalid_argument("merge_sorted_edits: removal of a non-member");
  }
  while (addition != additions.end()) out.push_back(*addition++);
}

class Cluster {
 public:
  Cluster(ClusterId id, MemberSlab& slab, std::size_t slot)
      : id_(id), slab_(&slab), slot_(static_cast<std::uint32_t>(slot)) {}

  [[nodiscard]] ClusterId id() const { return id_; }
  [[nodiscard]] std::span<const NodeId> members() const {
    return slab_->members(slot_);
  }
  [[nodiscard]] std::size_t size() const { return slab_->size(slot_); }

  [[nodiscard]] bool contains(NodeId node) const {
    const auto m = members();
    return std::binary_search(m.begin(), m.end(), node);
  }

  void add_member(NodeId node) { slab_->insert_sorted(slot_, node); }

  void remove_member(NodeId node) { slab_->erase_sorted(slot_, node); }

  /// Bulk membership update in one merge pass: drops `removals` and splices
  /// in `additions` (both sorted; removals must all be present — enforced —
  /// additions all absent). O(|members| + |edits|) where one
  /// add/remove_member call each is O(|members|). `scratch` is the caller's
  /// reusable buffer (capacity persists across calls, contents ignored).
  /// Sequential only: the extent may relocate. The batch commit's parallel
  /// stage 1 instead pairs merge_sorted_edits with MemberSlab::try_assign.
  void apply_sorted_edits(std::span<const NodeId> removals,
                          std::span<const NodeId> additions,
                          std::vector<NodeId>& scratch) {
    merge_sorted_edits(members(), removals, additions, scratch);
    slab_->assign(slot_, scratch);
  }

  /// Member at sorted position `index` (used with randNum for uniform picks).
  [[nodiscard]] NodeId member_at(std::size_t index) const {
    assert(index < size());
    return members()[index];
  }

  /// Sorted position of `node` (the inverse of member_at; O(log size)).
  /// The batch commit keys its conflict-detection footprints on the slab
  /// position slab.first(slot) + index_of(node).
  [[nodiscard]] std::size_t index_of(NodeId node) const {
    const auto m = members();
    const auto it = std::lower_bound(m.begin(), m.end(), node);
    assert(it != m.end() && *it == node && "member not present");
    return static_cast<std::size_t>(it - m.begin());
  }

  /// Uniformly random member.
  [[nodiscard]] NodeId random_member(Rng& rng) const {
    const auto m = members();
    assert(!m.empty());
    return m[rng.uniform(m.size())];
  }

 private:
  ClusterId id_;
  MemberSlab* slab_;
  std::uint32_t slot_;
};

/// Number of `cluster`'s members that belong to `byzantine`.
[[nodiscard]] inline std::size_t byzantine_count(const Cluster& cluster,
                                                 const NodeSet& byzantine) {
  std::size_t count = 0;
  for (const NodeId m : cluster.members())
    if (byzantine.contains(m)) ++count;
  return count;
}

/// byzantine_count for callers that already hold the Byzantine ids SORTED:
/// streams the slab extent once with a binary search per member instead of
/// a paged NodeSet lookup — the shape every invariant / adversary sweep
/// wants, since it builds one sorted copy and scans all clusters.
[[nodiscard]] inline std::size_t byzantine_count(
    const Cluster& cluster, std::span<const NodeId> sorted_byzantine) {
  assert(std::is_sorted(sorted_byzantine.begin(), sorted_byzantine.end()));
  std::size_t count = 0;
  for (const NodeId m : cluster.members()) {
    if (std::binary_search(sorted_byzantine.begin(), sorted_byzantine.end(),
                           m)) {
      ++count;
    }
  }
  return count;
}

/// Fraction of Byzantine members (p_C in the paper's analysis, Section 4).
[[nodiscard]] inline double byzantine_fraction(const Cluster& cluster,
                                               const NodeSet& byzantine) {
  if (cluster.size() == 0) return 0.0;
  return static_cast<double>(byzantine_count(cluster, byzantine)) /
         static_cast<double>(cluster.size());
}

/// byzantine_fraction over a sorted Byzantine id span (see byzantine_count).
[[nodiscard]] inline double byzantine_fraction(
    const Cluster& cluster, std::span<const NodeId> sorted_byzantine) {
  if (cluster.size() == 0) return 0.0;
  return static_cast<double>(byzantine_count(cluster, sorted_byzantine)) /
         static_cast<double>(cluster.size());
}

}  // namespace now::cluster
