// randNum — the distributed random number generator of a cluster
// (Section 3.1: "enabling the nodes of a cluster to agree on a common
// integer chosen uniformly at random from the interval (0, r)").
//
// Protocol (reconstruction; the long version [16] has the original):
//   round 1 (commit): every member picks a contribution c_i uniform in
//       [0, r) and broadcasts a binding commitment inside the cluster;
//   round 2 (reveal): members open their commitments;
//   round 3 (echo, kRobust mode only): members re-broadcast the set of
//       openings they received; a contribution is accepted iff more than
//       half of the members vouch for one consistent opening.
// The agreed value is (sum of accepted contributions) mod r.
//
// Unbiasedness: rounds are synchronous without rushing (a message sent in
// round t depends only on state before t), so a Byzantine member must decide
// whether/what to reveal before seeing any honest opening; since at least one
// honest contribution is always accepted, the sum is uniform.
//
// Modes:
//   * kFast — commit + reveal only; 2 rounds, 2|C|(|C|-1) unit messages =
//     O(log^2 N), the cost the paper states. Sound against silent/lying
//     Byzantine members but an *equivocating* member (revealing to only some
//     honest members) can make honest views diverge.
//   * kRobust — adds the echo round (O(|C|^3) units) and, when the echo
//     tallies straddle the majority threshold, a phase-king fallback per
//     contested contribution. Never diverges while honest members are a
//     strict majority. The bench_ablation binary quantifies the price.
#pragma once

#include <cstdint>
#include <span>

#include "common/metrics.hpp"
#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace now::cluster {

enum class RandNumMode { kFast, kRobust };

/// Byzantine behavior inside randNum.
enum class RandNumByz {
  kFollow,           // behave correctly (still counted Byzantine elsewhere)
  kSilent,           // commit nothing, reveal nothing
  kBiased,           // always contribute 0 (tries to bias the sum)
  kSelectiveReveal,  // reveal to a random half of the members only
};

struct RandNumResult {
  /// The value honest members computed, in [0, r). When views diverge
  /// (possible only in kFast mode under equivocation) this is the value of
  /// the lowest-id honest member.
  std::uint64_t value = 0;
  /// True iff every honest member computed the same value.
  bool agreement = false;
  std::size_t rounds = 0;
  std::uint64_t messages = 0;
};

/// Message-level randNum among `members`. Requires at least one honest
/// member. Charges all messages and rounds to `metrics`.
[[nodiscard]] RandNumResult run_rand_num(std::span<const NodeId> members,
                                         const NodeSet& byzantine,
                                         std::uint64_t r, RandNumMode mode,
                                         RandNumByz behavior, Metrics& metrics,
                                         Rng& rng);

/// Cost charged by the bulk-accounting path for one randNum call in a
/// cluster of `size` members (matches the message-level fast/robust counts;
/// tests assert this).
[[nodiscard]] Cost rand_num_cost_model(std::size_t size, RandNumMode mode);

struct BulkDraw {
  std::uint64_t value = 0;
  Cost cost;  // rounds are *returned*, not charged (see below)
};

/// Bulk-accounting randNum: draws the value with the same distribution the
/// message-level protocol produces for honest-majority clusters (uniform),
/// charges rand_num_cost_model's *messages* to `metrics`, and returns the
/// full cost. Rounds are returned rather than charged because callers
/// compose sub-protocols both sequentially (sum of rounds) and in parallel
/// (max of rounds); the enclosing NOW operation charges the critical path.
/// This is what the NOW core calls on every hop of every walk.
[[nodiscard]] BulkDraw rand_num_value(std::size_t cluster_size,
                                      std::uint64_t r, RandNumMode mode,
                                      Metrics& metrics, Rng& rng);

}  // namespace now::cluster
