// Flat extent-based membership arena (DESIGN.md §9).
//
// All cluster member lists live in ONE contiguous NodeId pool, partitioned
// into per-slot extents [first, first + size) with amortized headroom
// (cap >= size). Cluster becomes a thin view over its extent, so the batch
// commit's stage-1 workers stream sequential memory over contiguous slot
// blocks instead of chasing one heap allocation per cluster, and a snapshot
// of the whole membership is one bulk write of the pool plus the extent
// table.
//
// Layout determinism contract: the extent table (and therefore every slab
// position, which the optimistic resolve keys its conflict footprints on)
// must be bit-identical across shard counts and resolve modes. That holds
// because the pool is only ever reshaped at sequential points:
//   * insert_sorted / erase_sorted / assign — the sequential engine and the
//     stage-2 split/merge/spill paths;
//   * compact() — triggered by a fixed threshold on (tail_, live_), both of
//     which evolve through the same canonical mutation sequence everywhere
//     (try_assign adjusts live_ with a relaxed atomic add, an
//     order-independent sum over per-slot deltas that are themselves
//     shard-independent).
// The only parallel mutator is try_assign, which writes strictly inside its
// slot's pre-existing extent (disjoint byte ranges across slots) and never
// moves anything.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace now::cluster {

class MemberSlab {
 public:
  /// One slot's range of the pool: members occupy
  /// [first, first + size), the slot owns [first, first + cap).
  /// 32-bit fields keep the extent table half the size a size_t layout
  /// would be — it is read on every members() access, so it competes for
  /// L1 with the pool itself. Pool positions are bounded by ~2x the live
  /// membership (compaction trigger), far below 2^32 for any simulated
  /// deployment; relocate() asserts the bound anyway.
  struct Extent {
    std::uint32_t first = 0;
    std::uint32_t size = 0;
    std::uint32_t cap = 0;
  };

  /// Headroom policy: ~25% slack plus a constant, so steady churn edits the
  /// extent in place and relocations stay O(amortized) under growth.
  [[nodiscard]] static constexpr std::uint64_t cap_for(std::uint64_t size) {
    return size + size / 4 + 8;
  }

  /// Compaction trigger: more than half of the allocated prefix is dead
  /// space (beyond a fixed slack that keeps small deployments from
  /// compacting constantly). A pure function of (tail_, live_), hence
  /// layout-deterministic — see the header comment.
  static constexpr std::uint64_t kCompactSlack = 1024;

  // ----------------------------------------------------------------- slots

  /// Registers `slot` with an empty extent (no pool space until members
  /// arrive). Grows the extent table as needed.
  void acquire_slot(std::size_t slot) {
    if (slot >= extents_.size()) extents_.resize(slot + 1);
    assert(extents_[slot].size == 0 && "acquiring a populated slot");
    extents_[slot] = Extent{};
  }

  /// Releases an (empty) slot; its dead cap is reclaimed at the next
  /// compaction.
  void release_slot(std::size_t slot) {
    assert(slot < extents_.size());
    assert(extents_[slot].size == 0 && "releasing a populated slot");
    extents_[slot] = Extent{};
  }

  [[nodiscard]] std::span<const NodeId> members(std::size_t slot) const {
    const Extent& e = extents_[slot];
    return {pool_.data() + e.first, static_cast<std::size_t>(e.size)};
  }

  [[nodiscard]] std::size_t size(std::size_t slot) const {
    return static_cast<std::size_t>(extents_[slot].size);
  }

  /// Slab position of the slot's first member — the base the batch commit's
  /// conflict footprints key member positions on (first + index_of(node)).
  [[nodiscard]] std::uint64_t first(std::size_t slot) const {
    return extents_[slot].first;
  }

  [[nodiscard]] const Extent& extent(std::size_t slot) const {
    return extents_[slot];
  }

  [[nodiscard]] std::size_t slot_count() const { return extents_.size(); }

  // ----------------------------------------- sequential mutators (see top)

  void insert_sorted(std::size_t slot, NodeId node) {
    if (extents_[slot].size == extents_[slot].cap) {
      relocate(slot, cap_for(extents_[slot].size + 1));
    }
    Extent& e = extents_[slot];
    NodeId* base = pool_.data() + e.first;
    NodeId* last = base + e.size;
    NodeId* it = std::lower_bound(base, last, node);
    assert((it == last || *it != node) && "member already present");
    std::copy_backward(it, last, last + 1);
    *it = node;
    ++e.size;
    live_.fetch_add(1, std::memory_order_relaxed);
    maybe_compact();
  }

  void erase_sorted(std::size_t slot, NodeId node) {
    Extent& e = extents_[slot];
    NodeId* base = pool_.data() + e.first;
    NodeId* last = base + e.size;
    NodeId* it = std::lower_bound(base, last, node);
    assert(it != last && *it == node && "member not present");
    (void)std::copy(it + 1, last, it);
    --e.size;
    live_.fetch_sub(1, std::memory_order_relaxed);
    maybe_compact();
  }

  /// Replaces the slot's members with `members` (sorted), relocating the
  /// extent to a fresh tail range when the current cap is too small.
  void assign(std::size_t slot, std::span<const NodeId> members) {
    if (members.size() > extents_[slot].cap) {
      relocate(slot, cap_for(members.size()));
    }
    Extent& e = extents_[slot];
    std::copy(members.begin(), members.end(),
              pool_.begin() + static_cast<std::ptrdiff_t>(e.first));
    live_.fetch_add(members.size() - e.size, std::memory_order_relaxed);
    e.size = static_cast<std::uint32_t>(members.size());
    maybe_compact();
  }

  // ------------------------------------------------- parallel-safe mutators

  /// In-place assign for the stage-1 workers: succeeds only when `members`
  /// fits the slot's existing cap (never relocates, never touches tail_ or
  /// another slot's range — distinct slots write disjoint pool bytes).
  /// Returns false when the caller must spill the slot to the sequential
  /// stage-2 commit. live_ is adjusted with a relaxed atomic add: the total
  /// is an order-independent sum, so it stays deterministic.
  [[nodiscard]] bool try_assign(std::size_t slot,
                                std::span<const NodeId> members) {
    Extent& e = extents_[slot];
    if (members.size() > e.cap) return false;
    std::copy(members.begin(), members.end(),
              pool_.begin() + static_cast<std::ptrdiff_t>(e.first));
    live_.fetch_add(members.size() - e.size, std::memory_order_relaxed);
    e.size = static_cast<std::uint32_t>(members.size());
    return true;
  }

  /// In-place merge of sorted edits for the stage-1 workers: drops
  /// `removals` and splices in `additions` directly inside the slot's
  /// extent, no scratch copy — a forward compaction pass for the removals
  /// (write index trails the read index) followed by a backward merge for
  /// the additions (write index leads the read index), producing exactly
  /// merge_sorted_edits' output. Same concurrency contract as try_assign
  /// (in-place only, disjoint slots, relaxed live_ adjust); returns false
  /// untouched when the merged size outgrows the cap, and throws the same
  /// std::invalid_argument as merge_sorted_edits on a stale removal list
  /// BEFORE mutating anything.
  [[nodiscard]] bool try_apply_edits(std::size_t slot,
                                     std::span<const NodeId> removals,
                                     std::span<const NodeId> additions) {
    Extent& e = extents_[slot];
    if (removals.size() > e.size) {
      throw std::invalid_argument(
          "merge_sorted_edits: more removals than members");
    }
    const std::size_t merged =
        e.size - removals.size() + additions.size();
    if (merged > e.cap) return false;
    NodeId* const base = pool_.data() + e.first;
    // Validate before the first write: members are unique and sorted, so a
    // sorted removal multiset is consumable iff every entry is present and
    // no two entries repeat (removals are tiny — a binary search each).
    for (std::size_t i = 0; i < removals.size(); ++i) {
      if ((i > 0 && removals[i] == removals[i - 1]) ||
          !std::binary_search(base, base + e.size, removals[i])) {
        throw std::invalid_argument(
            "merge_sorted_edits: removal of a non-member");
      }
    }
    // Forward compaction: shift the survivors left over the removals.
    std::size_t kept = e.size;
    if (!removals.empty()) {
      NodeId* write = std::lower_bound(base, base + e.size, removals.front());
      std::size_t rem = 0;
      for (NodeId* read = write; read != base + e.size; ++read) {
        if (rem < removals.size() && *read == removals[rem]) {
          ++rem;
          continue;
        }
        *write++ = *read;
      }
      kept = static_cast<std::size_t>(write - base);
    }
    // Backward merge of the additions: write >= read throughout (the run
    // only grows), and a tie takes the addition first so it lands AFTER the
    // equal member — the mirror of merge_sorted_edits' `*addition < m`.
    std::size_t write = merged;
    std::size_t read = kept;
    std::size_t add = additions.size();
    while (add > 0) {
      if (read > 0 && additions[add - 1] < base[read - 1]) {
        base[--write] = base[--read];
      } else {
        base[--write] = additions[--add];
      }
    }
    live_.fetch_add(merged - e.size, std::memory_order_relaxed);
    e.size = static_cast<std::uint32_t>(merged);
    return true;
  }

  // ------------------------------------------------------------ compaction

  [[nodiscard]] std::uint64_t tail() const { return tail_; }
  [[nodiscard]] std::uint64_t live() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t compaction_count() const { return compactions_; }

  /// Resident bytes: the member pool plus the extent table (capacities).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return pool_.capacity() * sizeof(NodeId) +
           extents_.capacity() * sizeof(Extent);
  }

  [[nodiscard]] bool compaction_due() const {
    return tail_ > 2 * live() + kCompactSlack;
  }

  void maybe_compact() {
    if (compaction_due()) compact();
  }

  /// Repacks every populated extent in ascending slot order with fresh
  /// cap_for headroom; empty extents reset to zero. Gap bytes between the
  /// old extents are dead (no read ever leaves [first, first + size)), so
  /// compaction is unobservable except through the extent table itself —
  /// which is layout-deterministic, see the header comment.
  void compact() {
    std::uint64_t packed = 0;
    for (const Extent& e : extents_) {
      if (e.size > 0) packed += cap_for(e.size);
    }
    std::vector<NodeId> fresh(static_cast<std::size_t>(packed));
    std::uint64_t offset = 0;
    for (Extent& e : extents_) {
      if (e.size == 0) {
        e = Extent{};
        continue;
      }
      std::copy(pool_.begin() + static_cast<std::ptrdiff_t>(e.first),
                pool_.begin() + static_cast<std::ptrdiff_t>(e.first + e.size),
                fresh.begin() + static_cast<std::ptrdiff_t>(offset));
      e.first = static_cast<std::uint32_t>(offset);
      e.cap = static_cast<std::uint32_t>(cap_for(e.size));
      offset += e.cap;
    }
    pool_ = std::move(fresh);
    tail_ = offset;
    ++compactions_;
  }

  // ------------------------------------------------------ snapshot restore

  /// Wipes the slab and sizes the pool for exactly `tail` positions over
  /// `slot_count` extents. Gap positions are zero-filled — gap content is
  /// unobservable, only the extent geometry (restored verbatim next) feeds
  /// back into behavior via compaction triggers and slab positions.
  void restore_reset(std::size_t slot_count, std::uint64_t tail) {
    assert(tail <= std::numeric_limits<std::uint32_t>::max() &&
           "caller validates the tail fits u32 pool positions");
    extents_.assign(slot_count, Extent{});
    pool_.assign(static_cast<std::size_t>(tail), NodeId{});
    tail_ = tail;
    live_.store(0, std::memory_order_relaxed);
  }

  /// Restores one live extent verbatim; the caller has validated that
  /// [first, first + cap) is in bounds and disjoint from other extents.
  void restore_extent(std::size_t slot, std::uint64_t first_pos,
                      std::uint64_t cap, std::span<const NodeId> members) {
    assert(slot < extents_.size());
    assert(members.size() <= cap && first_pos + cap <= tail_);
    Extent& e = extents_[slot];
    e.first = static_cast<std::uint32_t>(first_pos);
    e.cap = static_cast<std::uint32_t>(cap);
    e.size = static_cast<std::uint32_t>(members.size());
    std::copy(members.begin(), members.end(),
              pool_.begin() + static_cast<std::ptrdiff_t>(first_pos));
    live_.fetch_add(members.size(), std::memory_order_relaxed);
  }

 private:
  /// Moves the slot's members to a fresh extent of `new_cap` at the tail.
  /// The old range becomes dead space until the next compaction.
  void relocate(std::size_t slot, std::uint64_t new_cap) {
    const std::uint64_t new_first = tail_;
    assert(new_first + new_cap <= std::numeric_limits<std::uint32_t>::max() &&
           "pool position overflows the u32 extent fields");
    if (pool_.size() < new_first + new_cap) {
      pool_.resize(std::max<std::size_t>(
          static_cast<std::size_t>(new_first + new_cap), 2 * pool_.size()));
    }
    Extent& e = extents_[slot];
    // Old extent ends at or below tail_ == new_first, so the ranges are
    // disjoint.
    std::copy(pool_.begin() + static_cast<std::ptrdiff_t>(e.first),
              pool_.begin() + static_cast<std::ptrdiff_t>(e.first + e.size),
              pool_.begin() + static_cast<std::ptrdiff_t>(new_first));
    e.first = static_cast<std::uint32_t>(new_first);
    e.cap = static_cast<std::uint32_t>(new_cap);
    tail_ = new_first + new_cap;
  }

  std::vector<NodeId> pool_;
  std::vector<Extent> extents_;
  std::uint64_t tail_ = 0;  // allocated prefix of pool_
  std::atomic<std::uint64_t> live_{0};  // sum of extent sizes
  std::uint64_t compactions_ = 0;
};

}  // namespace now::cluster
