#include "cluster/rand_num.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "agreement/phase_king.hpp"

namespace now::cluster {

namespace {

using Opening = std::pair<NodeId, std::uint64_t>;  // (contributor, value)

}  // namespace

RandNumResult run_rand_num(std::span<const NodeId> members,
                           const NodeSet& byzantine,
                           std::uint64_t r, RandNumMode mode,
                           RandNumByz behavior, Metrics& metrics, Rng& rng) {
  assert(r > 0);
  std::vector<NodeId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t s = sorted.size();

  std::vector<NodeId> honest;
  for (const NodeId id : sorted)
    if (!byzantine.contains(id)) honest.push_back(id);
  assert(!honest.empty() && "randNum requires at least one honest member");

  RandNumResult result;
  if (s == 1) {
    result.value = rng.uniform(r);
    result.agreement = true;
    return result;
  }

  // --- Round 1: commit. Contributions are fixed here (no rushing: reveal
  // decisions later cannot depend on honest values).
  std::map<NodeId, std::uint64_t> contribution;
  std::map<NodeId, bool> committed;
  for (const NodeId id : sorted) {
    const bool is_byz = byzantine.contains(id);
    bool participates = true;
    std::uint64_t c = rng.uniform(r);
    if (is_byz) {
      switch (behavior) {
        case RandNumByz::kFollow:
          break;
        case RandNumByz::kSilent:
          participates = false;
          break;
        case RandNumByz::kBiased:
          c = 0;
          break;
        case RandNumByz::kSelectiveReveal:
          break;
      }
    }
    committed[id] = participates;
    if (participates) {
      contribution[id] = c;
      metrics.add_messages(s - 1);  // broadcast commitment
      result.messages += s - 1;
    }
  }
  metrics.add_rounds(1);
  result.rounds += 1;

  // --- Round 2: reveal. view[i] = openings member i received (incl. own).
  std::map<NodeId, std::vector<Opening>> view;
  for (const NodeId id : sorted) view[id] = {};
  for (const NodeId id : sorted) {
    if (!committed.at(id)) continue;
    const bool selective = byzantine.contains(id) &&
                           behavior == RandNumByz::kSelectiveReveal;
    view.at(id).emplace_back(id, contribution.at(id));
    for (const NodeId peer : sorted) {
      if (peer == id) continue;
      if (selective && !rng.bernoulli(0.5)) continue;  // withhold from peer
      metrics.add_messages(1);
      result.messages += 1;
      view.at(peer).emplace_back(id, contribution.at(id));
    }
  }
  metrics.add_rounds(1);
  result.rounds += 1;

  // --- Per-member accepted sets.
  std::map<NodeId, std::vector<Opening>> accepted;
  if (mode == RandNumMode::kFast) {
    // Fast path: accept exactly what you saw.
    for (const NodeId id : honest) {
      accepted[id] = view.at(id);
      std::sort(accepted[id].begin(), accepted[id].end());
    }
  } else {
    // --- Round 3: echo. Honest members re-broadcast their views; Byzantine
    // members echo only when following the protocol.
    std::map<NodeId, std::vector<std::vector<Opening>>> echoes_received;
    for (const NodeId id : sorted) echoes_received[id] = {};
    for (const NodeId id : sorted) {
      const bool echoes = !byzantine.contains(id) ||
                          behavior == RandNumByz::kFollow;
      if (!echoes) continue;
      const auto& own_view = view.at(id);
      for (const NodeId peer : sorted) {
        if (peer == id) continue;
        const auto units =
            static_cast<std::uint64_t>(
                std::max<std::size_t>(1, own_view.size()));
        metrics.add_messages(units);
        result.messages += units;
        echoes_received.at(peer).push_back(own_view);
      }
    }
    metrics.add_rounds(1);
    result.rounds += 1;

    const std::size_t majority = s / 2 + 1;
    for (const NodeId id : honest) {
      std::map<Opening, std::size_t> tally;
      for (const Opening& o : view.at(id)) tally[o] += 1;  // own view counts
      for (const auto& echo : echoes_received.at(id)) {
        for (const Opening& o : echo) tally[o] += 1;
      }
      auto& acc = accepted[id];
      for (const auto& [opening, count] : tally) {
        if (count >= majority) acc.push_back(opening);
      }
      std::sort(acc.begin(), acc.end());
    }
  }

  // --- Local values + agreement check.
  std::map<NodeId, std::uint64_t> values;
  for (const NodeId id : honest) {
    std::uint64_t sum = 0;
    for (const auto& [who, c] : accepted.at(id)) sum = (sum + c) % r;
    values[id] = sum;
  }
  result.value = values.at(honest.front());
  result.agreement = std::all_of(
      honest.begin(), honest.end(),
      [&](NodeId id) { return values.at(id) == result.value; });

  // Robust mode resolves any residual divergence (possible only with
  // echo-equivocation, which the behaviors above do not produce, but the
  // fallback is part of the protocol): one Byzantine agreement per contested
  // contribution, charged at the phase-king bound.
  if (mode == RandNumMode::kRobust && !result.agreement) {
    std::set<Opening> all_openings;
    std::map<Opening, std::size_t> support;
    for (const NodeId id : honest) {
      for (const Opening& o : accepted.at(id)) {
        all_openings.insert(o);
        support[o] += 1;
      }
    }
    std::uint64_t sum = 0;
    for (const Opening& o : all_openings) {
      bool contested = false;
      for (const NodeId id : honest) {
        const auto& acc = accepted.at(id);
        if (!std::binary_search(acc.begin(), acc.end(), o)) contested = true;
      }
      if (contested) {
        const Cost ba = agreement::phase_king_cost_bound(s);
        metrics.add_messages(ba.messages);
        metrics.add_rounds(ba.rounds);
        result.messages += ba.messages;
        result.rounds += ba.rounds;
      }
      if (2 * support.at(o) > honest.size()) sum = (sum + o.second) % r;
    }
    result.value = sum;
    result.agreement = true;
  }
  return result;
}

Cost rand_num_cost_model(std::size_t size, RandNumMode mode) {
  if (size <= 1) return Cost{0, 0};
  const auto s = static_cast<std::uint64_t>(size);
  Cost cost;
  cost.messages = 2 * s * (s - 1);  // commit + reveal
  cost.rounds = 2;
  if (mode == RandNumMode::kRobust) {
    cost.messages += s * (s - 1) * s;  // echo of full views
    cost.rounds += 1;
  }
  return cost;
}

BulkDraw rand_num_value(std::size_t cluster_size, std::uint64_t r,
                        RandNumMode mode, Metrics& metrics, Rng& rng) {
  assert(r > 0);
  BulkDraw draw;
  draw.cost = rand_num_cost_model(cluster_size, mode);
  metrics.add_messages(draw.cost.messages);
  draw.value = rng.uniform(r);
  return draw;
}

}  // namespace now::cluster
