// Dynamic undirected graph used for the OVER overlay and its analysis.
//
// Vertices are stable 64-bit keys (the NOW layer uses ClusterId values), so
// vertex additions/removals never invalidate other vertices. Determinism
// matters (whole experiments replay from one seed), so adjacency is kept in
// ordered containers and iteration order is well defined.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"

namespace now::graph {

using Vertex = std::uint64_t;

/// Undirected simple graph with O(log V) vertex lookup and O(deg) edge ops.
class Graph {
 public:
  /// Adds an isolated vertex. Returns false if it already exists.
  bool add_vertex(Vertex v);

  /// Removes a vertex and all incident edges. Returns false if absent.
  bool remove_vertex(Vertex v);

  /// Adds edge {u, v}. Both endpoints must exist; u != v (no self-loops).
  /// Returns false if the edge already exists.
  bool add_edge(Vertex u, Vertex v);

  /// Removes edge {u, v}. Returns false if absent.
  bool remove_edge(Vertex u, Vertex v);

  [[nodiscard]] bool has_vertex(Vertex v) const;
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t num_vertices() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Degree of v. Requires v to exist.
  [[nodiscard]] std::size_t degree(Vertex v) const;
  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] std::size_t min_degree() const;

  /// Sorted neighbors of v. Requires v to exist.
  [[nodiscard]] const std::vector<Vertex>& neighbors(Vertex v) const;

  /// All vertices in ascending key order.
  [[nodiscard]] std::vector<Vertex> vertices() const;

  /// Uniformly random neighbor of v. Requires degree(v) > 0.
  [[nodiscard]] Vertex random_neighbor(Vertex v, Rng& rng) const;

  /// Uniformly random vertex. Requires the graph to be non-empty.
  /// O(V) — used only by tests and small-graph analysis.
  [[nodiscard]] Vertex random_vertex(Rng& rng) const;

 private:
  std::map<Vertex, std::vector<Vertex>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace now::graph
