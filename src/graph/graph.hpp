// Dynamic undirected graph used for the OVER overlay and its analysis.
//
// Vertices are stable 64-bit keys (the NOW layer uses ClusterId values), so
// vertex additions/removals never invalidate other vertices. Determinism
// matters (whole experiments replay from one seed), so neighbor lists are
// kept sorted and vertices() reports ascending key order; vertex lookup is
// O(1) via hashing (every walk hop reads degree + neighbors, so the ordered
// map this replaces put an O(log V) factor under the protocol's hot path),
// and random_vertex is O(1) over a dense swap-and-pop vertex list.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace now::graph {

using Vertex = std::uint64_t;

/// Undirected simple graph with O(1) vertex lookup and O(deg) edge ops.
class Graph {
 public:
  /// Adds an isolated vertex. Returns false if it already exists.
  bool add_vertex(Vertex v);

  /// Removes a vertex and all incident edges. Returns false if absent.
  bool remove_vertex(Vertex v);

  /// Adds edge {u, v}. Both endpoints must exist; u != v (no self-loops).
  /// Returns false if the edge already exists.
  bool add_edge(Vertex u, Vertex v);

  /// Removes edge {u, v}. Returns false if absent.
  bool remove_edge(Vertex u, Vertex v);

  [[nodiscard]] bool has_vertex(Vertex v) const;
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t num_vertices() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return num_edges_; }

  /// Degree of v. Requires v to exist.
  [[nodiscard]] std::size_t degree(Vertex v) const;
  [[nodiscard]] std::size_t max_degree() const;
  [[nodiscard]] std::size_t min_degree() const;

  /// Sorted neighbors of v. Requires v to exist.
  [[nodiscard]] const std::vector<Vertex>& neighbors(Vertex v) const;

  /// All vertices in ascending key order.
  [[nodiscard]] std::vector<Vertex> vertices() const;

  /// Vertices in the internal dense (swap-and-pop) order — the order
  /// random_vertex indexes into. Snapshot serialization must preserve it:
  /// re-adding vertices in exactly this order reproduces the draw sequence.
  [[nodiscard]] const std::vector<Vertex>& vertex_order() const {
    return vertex_list_;
  }

  /// Drops every vertex and edge (snapshot restore starts from empty).
  void clear() {
    adjacency_.clear();
    vertex_list_.clear();
    num_edges_ = 0;
  }

  /// Uniformly random neighbor of v. Requires degree(v) > 0.
  [[nodiscard]] Vertex random_neighbor(Vertex v, Rng& rng) const;

  /// Uniformly random vertex. Requires the graph to be non-empty. O(1).
  [[nodiscard]] Vertex random_vertex(Rng& rng) const;

 private:
  struct VertexEntry {
    std::vector<Vertex> neighbors;  // sorted
    std::size_t list_pos = 0;       // position in vertex_list_
  };

  std::unordered_map<Vertex, VertexEntry> adjacency_;
  std::vector<Vertex> vertex_list_;  // dense, swap-and-pop order
  std::size_t num_edges_ = 0;
};

}  // namespace now::graph
