#include "graph/erdos_renyi.hpp"

#include <cassert>
#include <cmath>

namespace now::graph {

void generate_erdos_renyi(Graph& g, std::span<const Vertex> vertices, double p,
                          Rng& rng) {
  assert(p >= 0.0 && p <= 1.0);
  for (const Vertex v : vertices) g.add_vertex(v);
  if (p <= 0.0 || vertices.size() < 2) return;

  if (p >= 1.0) {
    for (std::size_t i = 0; i < vertices.size(); ++i)
      for (std::size_t j = i + 1; j < vertices.size(); ++j)
        g.add_edge(vertices[i], vertices[j]);
    return;
  }

  // Geometric skip sampling over the linearized strict upper triangle:
  // index k enumerates pairs (i, j), i < j; the gap between successive edges
  // is geometric with parameter p.
  const double log1mp = std::log1p(-p);
  const std::size_t n = vertices.size();
  const std::size_t total_pairs = n * (n - 1) / 2;
  std::size_t k = 0;
  while (true) {
    const double u = 1.0 - rng.uniform01();  // in (0, 1]
    const auto skip = static_cast<std::size_t>(std::log(u) / log1mp);
    k += skip;
    if (k >= total_pairs) break;
    // Decode pair index k -> (i, j). Row i starts at offset i*n - i*(i+3)/2...
    // simpler: walk rows; rows shrink, so use closed form via quadratic.
    const double nd = static_cast<double>(n);
    const double kd = static_cast<double>(k);
    auto i = static_cast<std::size_t>(
        nd - 2 - std::floor(std::sqrt(-8.0 * kd + 4.0 * nd * (nd - 1) - 7.0) /
                                2.0 -
                            0.5));
    // Guard against floating point off-by-one at row boundaries.
    auto row_start = [n](std::size_t row) {
      return row * (2 * n - row - 1) / 2;
    };
    while (i > 0 && row_start(i) > k) --i;
    while (row_start(i + 1) <= k) ++i;
    const std::size_t j = i + 1 + (k - row_start(i));
    g.add_edge(vertices[i], vertices[j]);
    ++k;
  }
}

}  // namespace now::graph
