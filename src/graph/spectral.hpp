// Spectral expansion estimation for the OVER overlay.
//
// Property 1 of the paper asks for an isoperimetric constant
//   I(G) = min_{S, |S| <= n/2} E(S, S-bar) / |S|  >=  log^{1+alpha}(N) / 2.
// Computing I(G) exactly is NP-hard, so benches combine:
//   * a *lower* bound from the spectral gap of the random-walk matrix
//     (discrete Cheeger inequality:  conductance >= gap / 2, and
//      I(G) >= conductance * d_min), and
//   * an *upper* bound from the best sweep cut of the Fiedler-like vector.
// Tests validate both bounds against the exact value on small graphs
// (graph/isoperimetric.hpp).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace now::graph {

struct ExpansionEstimate {
  /// Second-largest eigenvalue of the (non-lazy) random-walk matrix.
  double lambda2 = 0.0;
  /// 1 - lambda2.
  double spectral_gap = 0.0;
  /// Cheeger lower bound on conductance: gap / 2.
  double conductance_lower = 0.0;
  /// Best sweep-cut conductance (an upper bound on the true conductance).
  double sweep_conductance = 1.0;
  /// Lower bound on the isoperimetric constant: conductance_lower * d_min.
  double edge_expansion_lower = 0.0;
  /// Upper bound on the isoperimetric constant from the same sweep cut.
  double sweep_edge_expansion = 0.0;
};

/// Estimates the expansion of a connected graph with >= 2 vertices.
/// Power iteration on the lazy walk matrix (so eigenvalues are nonnegative),
/// deflated against the stationary direction; `iterations` controls accuracy.
[[nodiscard]] ExpansionEstimate estimate_expansion(const Graph& g, Rng& rng,
                                                   std::size_t iterations =
                                                       300);

}  // namespace now::graph
