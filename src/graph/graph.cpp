#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace now::graph {

namespace {

/// Inserts value into a sorted vector; returns false if already present.
bool sorted_insert(std::vector<Vertex>& vec, Vertex value) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), value);
  if (it != vec.end() && *it == value) return false;
  vec.insert(it, value);
  return true;
}

/// Erases value from a sorted vector; returns false if absent.
bool sorted_erase(std::vector<Vertex>& vec, Vertex value) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), value);
  if (it == vec.end() || *it != value) return false;
  vec.erase(it);
  return true;
}

}  // namespace

bool Graph::add_vertex(Vertex v) {
  return adjacency_.emplace(v, std::vector<Vertex>{}).second;
}

bool Graph::remove_vertex(Vertex v) {
  const auto it = adjacency_.find(v);
  if (it == adjacency_.end()) return false;
  for (const Vertex u : it->second) {
    sorted_erase(adjacency_.at(u), v);
    --num_edges_;
  }
  adjacency_.erase(it);
  return true;
}

bool Graph::add_edge(Vertex u, Vertex v) {
  assert(u != v && "self-loops are not allowed");
  auto u_it = adjacency_.find(u);
  auto v_it = adjacency_.find(v);
  assert(u_it != adjacency_.end() && v_it != adjacency_.end() &&
         "both endpoints must exist");
  if (!sorted_insert(u_it->second, v)) return false;
  sorted_insert(v_it->second, u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  auto u_it = adjacency_.find(u);
  auto v_it = adjacency_.find(v);
  if (u_it == adjacency_.end() || v_it == adjacency_.end()) return false;
  if (!sorted_erase(u_it->second, v)) return false;
  sorted_erase(v_it->second, u);
  --num_edges_;
  return true;
}

bool Graph::has_vertex(Vertex v) const { return adjacency_.contains(v); }

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto it = adjacency_.find(u);
  if (it == adjacency_.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), v);
}

std::size_t Graph::degree(Vertex v) const { return adjacency_.at(v).size(); }

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& [v, nbrs] : adjacency_) best = std::max(best, nbrs.size());
  return best;
}

std::size_t Graph::min_degree() const {
  if (adjacency_.empty()) return 0;
  std::size_t best = adjacency_.begin()->second.size();
  for (const auto& [v, nbrs] : adjacency_) best = std::min(best, nbrs.size());
  return best;
}

const std::vector<Vertex>& Graph::neighbors(Vertex v) const {
  return adjacency_.at(v);
}

std::vector<Vertex> Graph::vertices() const {
  std::vector<Vertex> result;
  result.reserve(adjacency_.size());
  for (const auto& [v, nbrs] : adjacency_) result.push_back(v);
  return result;
}

Vertex Graph::random_neighbor(Vertex v, Rng& rng) const {
  const auto& nbrs = adjacency_.at(v);
  assert(!nbrs.empty());
  return nbrs[rng.uniform(nbrs.size())];
}

Vertex Graph::random_vertex(Rng& rng) const {
  assert(!adjacency_.empty());
  auto it = adjacency_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform(adjacency_.size())));
  return it->first;
}

}  // namespace now::graph
