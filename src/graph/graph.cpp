#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace now::graph {

namespace {

/// Inserts value into a sorted vector; returns false if already present.
bool sorted_insert(std::vector<Vertex>& vec, Vertex value) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), value);
  if (it != vec.end() && *it == value) return false;
  vec.insert(it, value);
  return true;
}

/// Erases value from a sorted vector; returns false if absent.
bool sorted_erase(std::vector<Vertex>& vec, Vertex value) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), value);
  if (it == vec.end() || *it != value) return false;
  vec.erase(it);
  return true;
}

}  // namespace

bool Graph::add_vertex(Vertex v) {
  const auto [it, inserted] = adjacency_.try_emplace(v);
  if (!inserted) return false;
  it->second.list_pos = vertex_list_.size();
  vertex_list_.push_back(v);
  return true;
}

bool Graph::remove_vertex(Vertex v) {
  const auto it = adjacency_.find(v);
  if (it == adjacency_.end()) return false;
  for (const Vertex u : it->second.neighbors) {
    sorted_erase(adjacency_.at(u).neighbors, v);
    --num_edges_;
  }
  const std::size_t pos = it->second.list_pos;
  const Vertex last = vertex_list_.back();
  vertex_list_[pos] = last;
  adjacency_.at(last).list_pos = pos;
  vertex_list_.pop_back();
  adjacency_.erase(it);
  return true;
}

bool Graph::add_edge(Vertex u, Vertex v) {
  assert(u != v && "self-loops are not allowed");
  auto u_it = adjacency_.find(u);
  auto v_it = adjacency_.find(v);
  assert(u_it != adjacency_.end() && v_it != adjacency_.end() &&
         "both endpoints must exist");
  if (!sorted_insert(u_it->second.neighbors, v)) return false;
  sorted_insert(v_it->second.neighbors, u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  auto u_it = adjacency_.find(u);
  auto v_it = adjacency_.find(v);
  if (u_it == adjacency_.end() || v_it == adjacency_.end()) return false;
  if (!sorted_erase(u_it->second.neighbors, v)) return false;
  sorted_erase(v_it->second.neighbors, u);
  --num_edges_;
  return true;
}

bool Graph::has_vertex(Vertex v) const { return adjacency_.contains(v); }

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto it = adjacency_.find(u);
  if (it == adjacency_.end()) return false;
  return std::binary_search(it->second.neighbors.begin(),
                            it->second.neighbors.end(), v);
}

std::size_t Graph::degree(Vertex v) const {
  return adjacency_.at(v).neighbors.size();
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (const auto& [v, entry] : adjacency_) {
    best = std::max(best, entry.neighbors.size());
  }
  return best;
}

std::size_t Graph::min_degree() const {
  if (adjacency_.empty()) return 0;
  std::size_t best = adjacency_.begin()->second.neighbors.size();
  for (const auto& [v, entry] : adjacency_) {
    best = std::min(best, entry.neighbors.size());
  }
  return best;
}

const std::vector<Vertex>& Graph::neighbors(Vertex v) const {
  return adjacency_.at(v).neighbors;
}

std::vector<Vertex> Graph::vertices() const {
  std::vector<Vertex> result = vertex_list_;
  std::sort(result.begin(), result.end());
  return result;
}

Vertex Graph::random_neighbor(Vertex v, Rng& rng) const {
  const auto& nbrs = adjacency_.at(v).neighbors;
  assert(!nbrs.empty());
  return nbrs[rng.uniform(nbrs.size())];
}

Vertex Graph::random_vertex(Rng& rng) const {
  assert(!vertex_list_.empty());
  return vertex_list_[rng.uniform(vertex_list_.size())];
}

}  // namespace now::graph
