// Exact isoperimetric constant for small graphs (ground truth for tests).
//
//   I(G) = min over nonempty S with |S| <= n/2 of  E(S, S-bar) / |S|
//
// (Property 1 of the paper). Exponential-time subset enumeration — only for
// n <= ~24, used to validate the spectral bounds in graph/spectral.hpp.
#pragma once

#include "graph/graph.hpp"

namespace now::graph {

/// Exact I(G). Requires 2 <= n <= 24. Returns 0 for disconnected graphs.
[[nodiscard]] double exact_isoperimetric_constant(const Graph& g);

}  // namespace now::graph
