#include "graph/mixing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/random_walk.hpp"
#include "graph/spectral.hpp"

namespace now::graph {

MixingEstimate estimate_mixing(const Graph& g, Rng& rng, double epsilon) {
  assert(g.num_vertices() >= 2);
  MixingEstimate est;
  const auto expansion = estimate_expansion(g, rng);
  // lambda_2(D - A) >= d_min * (1 - lambda_2(walk)) for near-regular
  // graphs; we use the conservative d_min scaling.
  est.generator_gap =
      static_cast<double>(g.min_degree()) * expansion.spectral_gap;
  if (est.generator_gap <= 0.0) return est;
  est.relaxation_time = 1.0 / est.generator_gap;
  const double n = static_cast<double>(g.num_vertices());
  est.t_mix_bound = est.relaxation_time * std::log(n / epsilon);
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) / n;
  est.expected_hops = est.t_mix_bound * avg_degree;
  return est;
}

double empirical_mixing_time(const Graph& g, double epsilon) {
  assert(g.num_vertices() >= 2);
  const auto verts = g.vertices();

  const auto worst_tv = [&](double t) {
    double worst = 0.0;
    for (const Vertex v : verts) {
      worst = std::max(worst,
                       tv_distance_from_uniform(g, ctrw_distribution(g, v, t)));
    }
    return worst;
  };

  // Exponential search for an upper bracket, then bisection.
  double hi = 1.0;
  while (worst_tv(hi) > epsilon && hi < 1e6) hi *= 2.0;
  double lo = hi / 2.0;
  if (hi >= 1e6) return hi;  // effectively does not mix (disconnected)
  for (int iter = 0; iter < 30 && (hi - lo) > 1e-3 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (worst_tv(mid) > epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace now::graph
