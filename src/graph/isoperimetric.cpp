#include "graph/isoperimetric.hpp"

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

namespace now::graph {

double exact_isoperimetric_constant(const Graph& g) {
  const auto verts = g.vertices();
  const std::size_t n = verts.size();
  assert(n >= 2 && n <= 24 && "exact enumeration limited to small graphs");

  // Neighbor bitmasks over the vertex indexing.
  std::vector<std::uint32_t> nbr_mask(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Vertex u : g.neighbors(verts[i])) {
      const auto it = std::lower_bound(verts.begin(), verts.end(), u);
      nbr_mask[i] |= 1u << static_cast<std::size_t>(it - verts.begin());
    }
  }

  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t s = 1; s < limit - 1; ++s) {
    const auto size = static_cast<std::size_t>(std::popcount(s));
    if (2 * size > n) continue;
    std::size_t cut = 0;
    std::uint32_t rest = s;
    while (rest != 0) {
      const int i = std::countr_zero(rest);
      rest &= rest - 1;
      cut += static_cast<std::size_t>(
          std::popcount(nbr_mask[static_cast<std::size_t>(i)] & ~s));
    }
    const double ratio = static_cast<double>(cut) / static_cast<double>(size);
    best = std::min(best, ratio);
    if (best == 0.0) return 0.0;
  }
  return best;
}

}  // namespace now::graph
