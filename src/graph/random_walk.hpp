// Random walks on graphs, in particular the continuous-time random walk
// (CTRW) the paper uses for uniform sampling.
//
// With one independent rate-1 Poisson clock per edge (equivalently: at vertex
// v wait Exp(d_v), then jump to a uniform neighbor), the CTRW's stationary
// distribution is *uniform over vertices* on any connected graph — regular or
// not (Aldous & Fill, ch. 3). That is exactly why NOW walks on the cluster
// overlay: clusters are picked uniformly even though OVER's degrees are only
// near-regular. The biased acceptance step that turns "uniform cluster" into
// "cluster with probability |C|/n" lives in core/rand_cl.*, not here.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace now::graph {

/// Result of simulating one CTRW trajectory.
struct CtrwResult {
  Vertex endpoint = 0;
  /// Number of jumps taken (each jump crosses one edge).
  std::size_t hops = 0;
};

/// Simulates a CTRW from `start` for `duration` units of continuous time.
/// Requires the start vertex to exist and every visited vertex to have
/// degree >= 1.
[[nodiscard]] CtrwResult ctrw_walk(const Graph& g, Vertex start,
                                   double duration, Rng& rng);

/// Endpoint of a simple discrete-time random walk after `steps` steps.
[[nodiscard]] Vertex discrete_walk(const Graph& g, Vertex start,
                                   std::size_t steps, Rng& rng);

/// Exact CTRW endpoint distribution at time t from `start`, computed by
/// uniformization of exp(t * (A - D)). O(V^2 * terms) — small graphs only
/// (used by tests to verify uniform stationarity and mixing speed).
[[nodiscard]] std::map<Vertex, double> ctrw_distribution(const Graph& g,
                                                         Vertex start,
                                                         double t);

/// Total-variation distance between a distribution over vertices and the
/// uniform distribution on g's vertex set.
[[nodiscard]] double tv_distance_from_uniform(
    const Graph& g, const std::map<Vertex, double>& dist);

}  // namespace now::graph
