// Erdős–Rényi random graph generation.
//
// NOW's initialization wires the overlay "for each pair of clusters ... with
// probability p" (Section 3.2); OVER keeps the evolving graph close to this
// ensemble. We provide the exact G(V, p) sampler plus the skip-sampling
// variant that is O(E) instead of O(V^2) for sparse p.
#pragma once

#include <span>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace now::graph {

/// Samples G(vertices, p): every unordered pair becomes an edge independently
/// with probability p. Vertices are added to `g` (which should be empty).
/// Uses geometric skip-sampling, O(V + E) expected time.
void generate_erdos_renyi(Graph& g, std::span<const Vertex> vertices, double p,
                          Rng& rng);

}  // namespace now::graph
