// Mixing-time estimation for CTRWs — the quantity NOW's walk length is
// calibrated against.
//
// The paper runs CTRWs "of length O(log^2 n)" and discards the residual
// bias as O(n^-c) (Section 4). Both facts follow from the walk's mixing
// time: for a CTRW with per-edge rate 1 the generator is L = D - A, the
// relaxation time is 1/lambda_2(L), and
//     t_mix(eps) <= relaxation_time * ln(n / eps).
// These helpers expose (a) the spectral estimate of that bound and (b) the
// exact empirical mixing time on small graphs (via uniformization), so the
// walk_factor ablation can be grounded instead of folklore.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace now::graph {

struct MixingEstimate {
  /// Smallest positive eigenvalue of L = D - A (the spectral gap of the
  /// CTRW generator), estimated as d_min-scaled walk gap.
  double generator_gap = 0.0;
  /// 1 / generator_gap.
  double relaxation_time = 0.0;
  /// relaxation_time * ln(n / epsilon): the classic upper bound on the
  /// time to come within total-variation epsilon of uniform.
  double t_mix_bound = 0.0;
  /// Expected number of jumps a CTRW takes in t_mix_bound time
  /// (~ t_mix_bound * average degree).
  double expected_hops = 0.0;
};

/// Spectral mixing estimate for a connected graph with >= 2 vertices.
/// `epsilon` is the target total-variation distance.
[[nodiscard]] MixingEstimate estimate_mixing(const Graph& g, Rng& rng,
                                             double epsilon = 1e-3);

/// Exact continuous time at which the CTRW from the worst-case start is
/// within `epsilon` total variation of uniform, found by bisection over
/// ctrw_distribution. O(V^2 * terms * log range) — small graphs only.
[[nodiscard]] double empirical_mixing_time(const Graph& g,
                                           double epsilon = 1e-3);

}  // namespace now::graph
