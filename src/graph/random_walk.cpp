#include "graph/random_walk.hpp"

#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace now::graph {

CtrwResult ctrw_walk(const Graph& g, Vertex start, double duration, Rng& rng) {
  assert(g.has_vertex(start));
  CtrwResult result;
  result.endpoint = start;
  double remaining = duration;
  while (true) {
    const std::size_t deg = g.degree(result.endpoint);
    assert(deg > 0 && "CTRW requires positive degrees");
    const double hold = rng.exponential(static_cast<double>(deg));
    if (hold >= remaining) break;
    remaining -= hold;
    result.endpoint = g.random_neighbor(result.endpoint, rng);
    ++result.hops;
  }
  return result;
}

Vertex discrete_walk(const Graph& g, Vertex start, std::size_t steps,
                     Rng& rng) {
  assert(g.has_vertex(start));
  Vertex current = start;
  for (std::size_t i = 0; i < steps; ++i) {
    assert(g.degree(current) > 0);
    current = g.random_neighbor(current, rng);
  }
  return current;
}

std::map<Vertex, double> ctrw_distribution(const Graph& g, Vertex start,
                                           double t) {
  assert(g.has_vertex(start));
  const auto verts = g.vertices();
  const std::size_t n = verts.size();
  std::unordered_map<Vertex, std::size_t> index;
  for (std::size_t i = 0; i < n; ++i) index[verts[i]] = i;

  // Uniformization: exp(tQ) = sum_k Poisson(Lambda*t; k) * P^k with
  // P = I + Q / Lambda, Q = A - D, Lambda >= max degree.
  const double lambda = static_cast<double>(g.max_degree()) + 1.0;
  const double lt = lambda * t;
  // Enough terms for the Poisson tail to be negligible.
  const auto terms = static_cast<std::size_t>(
      std::ceil(lt + 12.0 * std::sqrt(lt + 1.0) + 30.0));

  std::vector<double> v(n, 0.0);
  v[index.at(start)] = 1.0;
  std::vector<double> result(n, 0.0);
  std::vector<double> next(n, 0.0);

  // Running Poisson weight, computed in log space for stability.
  double log_weight = -lt;  // k = 0
  for (std::size_t k = 0; k <= terms; ++k) {
    const double w = std::exp(log_weight);
    for (std::size_t i = 0; i < n; ++i) result[i] += w * v[i];
    // v <- P v  (row-stochastic P acts on distributions from the left; P is
    // symmetric here because Q is symmetric).
    for (std::size_t i = 0; i < n; ++i) {
      const double deg = static_cast<double>(g.degree(verts[i]));
      double acc = (1.0 - deg / lambda) * v[i];
      for (const Vertex u : g.neighbors(verts[i])) {
        acc += v[index.at(u)] / lambda;
      }
      next[i] = acc;
    }
    v.swap(next);
    log_weight += std::log(lt) - std::log(static_cast<double>(k) + 1.0);
  }

  std::map<Vertex, double> dist;
  for (std::size_t i = 0; i < n; ++i) dist[verts[i]] = result[i];
  return dist;
}

double tv_distance_from_uniform(const Graph& g,
                                const std::map<Vertex, double>& dist) {
  const double uniform = 1.0 / static_cast<double>(g.num_vertices());
  double tv = 0.0;
  for (const Vertex v : g.vertices()) {
    const auto it = dist.find(v);
    const double p = it == dist.end() ? 0.0 : it->second;
    tv += std::fabs(p - uniform);
  }
  return tv / 2.0;
}

}  // namespace now::graph
