#include "graph/spectral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace now::graph {

namespace {

struct IndexedGraph {
  std::vector<Vertex> verts;
  std::unordered_map<Vertex, std::size_t> index;
  std::vector<std::vector<std::size_t>> adj;
  std::vector<double> degree;
};

IndexedGraph index_graph(const Graph& g) {
  IndexedGraph ig;
  ig.verts = g.vertices();
  ig.index.reserve(ig.verts.size());
  for (std::size_t i = 0; i < ig.verts.size(); ++i) ig.index[ig.verts[i]] = i;
  ig.adj.resize(ig.verts.size());
  ig.degree.resize(ig.verts.size());
  for (std::size_t i = 0; i < ig.verts.size(); ++i) {
    const auto& nbrs = g.neighbors(ig.verts[i]);
    ig.adj[i].reserve(nbrs.size());
    for (const Vertex u : nbrs) ig.adj[i].push_back(ig.index.at(u));
    ig.degree[i] = static_cast<double>(nbrs.size());
  }
  return ig;
}

// y = M x where M = (I + N) / 2 and N = D^{-1/2} A D^{-1/2} is the symmetric
// normalized adjacency (similar to the walk matrix, same spectrum).
void apply_lazy(const IndexedGraph& ig, const std::vector<double>& x,
                std::vector<double>& y) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (const std::size_t j : ig.adj[i]) {
      acc += x[j] / std::sqrt(ig.degree[i] * ig.degree[j]);
    }
    y[i] = 0.5 * (x[i] + acc);
  }
}

void orthogonalize(std::vector<double>& x, const std::vector<double>& phi) {
  const double dot = std::inner_product(x.begin(), x.end(), phi.begin(), 0.0);
  const double norm2 =
      std::inner_product(phi.begin(), phi.end(), phi.begin(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] -= dot / norm2 * phi[i];
}

void normalize(std::vector<double>& x) {
  const double norm =
      std::sqrt(std::inner_product(x.begin(), x.end(), x.begin(), 0.0));
  if (norm > 0.0)
    for (auto& v : x) v /= norm;
}

}  // namespace

ExpansionEstimate estimate_expansion(const Graph& g, Rng& rng,
                                     std::size_t iterations) {
  assert(g.num_vertices() >= 2);
  const IndexedGraph ig = index_graph(g);
  const std::size_t n = ig.verts.size();

  // Isolated vertices make the walk matrix undefined; treat as zero expansion.
  if (g.min_degree() == 0) {
    ExpansionEstimate zero;
    zero.lambda2 = 1.0;
    return zero;
  }

  // Top eigenvector of N is phi_i = sqrt(d_i).
  std::vector<double> phi(n);
  for (std::size_t i = 0; i < n; ++i) phi[i] = std::sqrt(ig.degree[i]);

  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform01() - 0.5;
  orthogonalize(x, phi);
  normalize(x);

  std::vector<double> y(n);
  double lazy_lambda2 = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    apply_lazy(ig, x, y);
    orthogonalize(y, phi);  // re-deflate to fight numerical drift
    const double norm =
        std::sqrt(std::inner_product(y.begin(), y.end(), y.begin(), 0.0));
    if (norm == 0.0) break;  // x was (numerically) in the span of phi
    lazy_lambda2 = norm;     // Rayleigh growth factor after orthogonalization
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
  }

  ExpansionEstimate est;
  est.lambda2 = std::clamp(2.0 * lazy_lambda2 - 1.0, -1.0, 1.0);
  est.spectral_gap = 1.0 - est.lambda2;
  est.conductance_lower = est.spectral_gap / 2.0;
  est.edge_expansion_lower =
      est.conductance_lower * static_cast<double>(g.min_degree());

  // Sweep cut over the embedding x_i / sqrt(d_i) (the walk-matrix
  // eigenvector); gives upper bounds on conductance and edge expansion.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return x[a] / phi[a] < x[b] / phi[b];
  });

  std::vector<char> in_s(n, 0);
  const double total_volume =
      std::accumulate(ig.degree.begin(), ig.degree.end(), 0.0);
  double vol_s = 0.0;
  double cut = 0.0;
  for (std::size_t pos = 0; pos + 1 < n; ++pos) {
    const std::size_t v = order[pos];
    in_s[v] = 1;
    vol_s += ig.degree[v];
    // Adding v moves its edges: edges to S leave the cut, others enter.
    for (const std::size_t u : ig.adj[v]) cut += in_s[u] ? -1.0 : 1.0;
    const std::size_t size_s = pos + 1;
    const std::size_t size_min = std::min(size_s, n - size_s);
    const double vol_min = std::min(vol_s, total_volume - vol_s);
    if (vol_min > 0.0) {
      est.sweep_conductance = std::min(est.sweep_conductance, cut / vol_min);
    }
    if (size_min > 0) {
      const double expansion = cut / static_cast<double>(size_min);
      if (pos == 0 || expansion < est.sweep_edge_expansion ||
          est.sweep_edge_expansion == 0.0) {
        est.sweep_edge_expansion =
            (pos == 0) ? expansion : std::min(est.sweep_edge_expansion,
                                              expansion);
      }
    }
  }
  return est;
}

}  // namespace now::graph
