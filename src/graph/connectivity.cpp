#include "graph/connectivity.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

namespace now::graph {

std::vector<std::vector<Vertex>> connected_components(const Graph& g) {
  std::set<Vertex> unvisited;
  for (const Vertex v : g.vertices()) unvisited.insert(v);

  std::vector<std::vector<Vertex>> components;
  while (!unvisited.empty()) {
    const Vertex root = *unvisited.begin();
    std::vector<Vertex> component;
    std::deque<Vertex> frontier{root};
    unvisited.erase(root);
    while (!frontier.empty()) {
      const Vertex v = frontier.front();
      frontier.pop_front();
      component.push_back(v);
      for (const Vertex u : g.neighbors(v)) {
        if (unvisited.erase(u) > 0) frontier.push_back(u);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).size() == 1;
}

std::map<Vertex, std::size_t> bfs_distances(const Graph& g, Vertex source) {
  std::map<Vertex, std::size_t> dist;
  dist[source] = 0;
  std::deque<Vertex> frontier{source};
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop_front();
    const std::size_t d = dist.at(v);
    for (const Vertex u : g.neighbors(v)) {
      if (dist.emplace(u, d + 1).second) frontier.push_back(u);
    }
  }
  return dist;
}

std::size_t diameter(const Graph& g) {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  const auto verts = g.vertices();
  if (verts.empty()) return kInf;
  std::size_t best = 0;
  for (const Vertex v : verts) {
    const auto dist = bfs_distances(g, v);
    if (dist.size() != verts.size()) return kInf;  // disconnected
    for (const auto& [u, d] : dist) best = std::max(best, d);
  }
  return best;
}

}  // namespace now::graph
