// Connectivity and distance analysis.
//
// Used by (a) the discovery protocol, whose round complexity is the diameter
// of the honest-adjacent subgraph, and (b) the overlay property checks
// (Property 1 implies connectivity).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"

namespace now::graph {

/// Connected components; each component is a sorted vertex list; components
/// are ordered by smallest member.
[[nodiscard]] std::vector<std::vector<Vertex>> connected_components(
    const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// BFS distances from `source` (unreachable vertices are absent).
[[nodiscard]] std::map<Vertex, std::size_t> bfs_distances(const Graph& g,
                                                          Vertex source);

/// Largest eccentricity over all vertices; SIZE_MAX if disconnected or empty.
/// O(V * E) — intended for overlay-sized graphs.
[[nodiscard]] std::size_t diameter(const Graph& g);

}  // namespace now::graph
