// Flat set of NodeIds with O(1) insert / erase / contains and O(1) uniform
// indexing.
//
// Replaces the ordered std::set<NodeId> that used to represent the Byzantine
// ground truth: membership tests sit inside every cluster_send majority check
// and every honest-node rejection sample, so they must be constant time.
// Layout: a dense vector of members (swap-and-pop on erase) plus a paged
// position index keyed by the node id. Iteration order is the deterministic
// insertion/erase order of the dense vector, not id order.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/paged_index.hpp"
#include "common/types.hpp"

namespace now {

class NodeSet {
 public:
  using const_iterator = std::vector<NodeId>::const_iterator;

  NodeSet() : pos_(kAbsent) {}
  NodeSet(std::initializer_list<NodeId> ids) : NodeSet() {
    for (const NodeId id : ids) insert(id);
  }
  template <typename It>
  NodeSet(It first, It last) : NodeSet() {
    for (; first != last; ++first) insert(*first);
  }

  [[nodiscard]] bool contains(NodeId id) const {
    return pos_.get(id.value()) != kAbsent;
  }

  /// Inserts `id`; returns false if it was already present.
  bool insert(NodeId id) {
    if (contains(id)) return false;
    pos_.set(id.value(), static_cast<std::uint32_t>(dense_.size()));
    dense_.push_back(id);
    return true;
  }

  /// Erases `id`; returns false if it was absent.
  bool erase(NodeId id) {
    const std::uint32_t at = pos_.get(id.value());
    if (at == kAbsent) return false;
    const NodeId last = dense_.back();
    dense_[at] = last;
    pos_.set(last.value(), at);
    dense_.pop_back();
    pos_.unset(id.value());
    return true;
  }

  /// Erases the member at `it` (swap-and-pop). Returns an iterator at the
  /// same dense position, which now holds the previously-last member — valid
  /// for erase-while-scanning loops that do not require id order.
  const_iterator erase(const_iterator it) {
    assert(it != dense_.end());
    const auto index = static_cast<std::size_t>(it - dense_.begin());
    erase(*it);
    return dense_.begin() + static_cast<std::ptrdiff_t>(index);
  }

  /// Member at dense position `index` (uniform sampling: draw the index).
  [[nodiscard]] NodeId at_index(std::size_t index) const {
    assert(index < dense_.size());
    return dense_[index];
  }

  [[nodiscard]] std::size_t size() const { return dense_.size(); }
  [[nodiscard]] bool empty() const { return dense_.empty(); }

  /// The members as a dense span (swap-and-pop order, not id order).
  [[nodiscard]] std::span<const NodeId> items() const { return dense_; }

  void clear() {
    dense_.clear();
    pos_.clear();
  }

  [[nodiscard]] const_iterator begin() const { return dense_.begin(); }
  [[nodiscard]] const_iterator end() const { return dense_.end(); }

  /// Resident bytes: the dense member vector plus the paged position index.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return dense_.capacity() * sizeof(NodeId) + pos_.footprint_bytes();
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

  std::vector<NodeId> dense_;
  PagedIndex<std::uint32_t> pos_;
};

}  // namespace now
