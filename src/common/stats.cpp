#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace now {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStat::max() const { return count_ == 0 ? 0.0 : max_; }

double quantile(std::vector<double> samples, double q) {
  assert(!samples.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected_probs) {
  assert(observed.size() == expected_probs.size());
  std::uint64_t total = 0;
  for (const auto o : observed) total += o;
  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probs[i] * static_cast<double>(total);
    if (expected <= 0.0) continue;  // impossible bin, skip (observed must be 0)
    const double diff = static_cast<double>(observed[i]) - expected;
    statistic += diff * diff / expected;
  }
  return statistic;
}

namespace {

// Regularized upper incomplete gamma Q(a, x) via series / continued fraction
// (Numerical Recipes style). Accurate enough for p-value thresholds.
double gamma_q(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  constexpr int kMaxIter = 500;
  constexpr double kEps = 1e-12;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series for P(a,x); Q = 1 - P.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < kMaxIter; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * kEps) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - gln);
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a,x) (modified Lentz).
  double b = x + 1.0 - a;
  double c = 1.0 / std::numeric_limits<double>::min();
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < std::numeric_limits<double>::min())
      d = std::numeric_limits<double>::min();
    c = b + an / c;
    if (std::fabs(c) < std::numeric_limits<double>::min())
      c = std::numeric_limits<double>::min();
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return std::clamp(q, 0.0, 1.0);
}

}  // namespace

double chi_square_p_value(double statistic, std::size_t dof) {
  if (dof == 0) return 1.0;
  if (statistic <= 0.0) return 1.0;
  return gamma_q(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

namespace {

LinearFit fit_on_transformed(std::span<const double> n_values,
                             std::span<const double> costs,
                             double (*x_transform)(double)) {
  assert(n_values.size() == costs.size());
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(n_values.size());
  ys.reserve(n_values.size());
  for (std::size_t i = 0; i < n_values.size(); ++i) {
    if (n_values[i] <= 1.0 || costs[i] <= 0.0) continue;
    xs.push_back(x_transform(n_values[i]));
    ys.push_back(std::log(costs[i]));
  }
  if (xs.size() < 2) return {};
  return linear_fit(xs, ys);
}

}  // namespace

LinearFit polylog_fit(std::span<const double> n_values,
                      std::span<const double> costs) {
  return fit_on_transformed(n_values, costs,
                            [](double n) { return std::log(std::log(n)); });
}

LinearFit powerlaw_fit(std::span<const double> n_values,
                       std::span<const double> costs) {
  return fit_on_transformed(n_values, costs,
                            [](double n) { return std::log(n); });
}

}  // namespace now
