#include "common/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace now {

void Metrics::add_messages(std::uint64_t count) {
  total_.messages += count;
  for (auto& frame : stack_) frame.cost.messages += count;
}

void Metrics::add_rounds(std::uint64_t count) {
  total_.rounds += count;
  for (auto& frame : stack_) frame.cost.rounds += count;
}

OperationId Metrics::intern(std::string_view label) {
  if (const auto it = id_by_label_.find(label); it != id_by_label_.end()) {
    return it->second;
  }
  const auto id = static_cast<OperationId>(label_by_id_.size());
  label_by_id_.emplace_back(label);
  completed_.emplace_back();
  id_by_label_.emplace(label_by_id_.back(), id);
  return id;
}

OperationId Metrics::find(std::string_view label) const {
  const auto it = id_by_label_.find(label);
  return it == id_by_label_.end() ? kNoOperation : it->second;
}

Cost Metrics::operation_total(OperationId id) const {
  Cost sum;
  for (const auto& cost : operation_samples(id)) sum += cost;
  return sum;
}

std::span<const Cost> Metrics::operation_samples(OperationId id) const {
  if (id >= completed_.size()) return {};
  return completed_[id];
}

std::string_view Metrics::label_of(OperationId id) const {
  if (id >= label_by_id_.size()) return {};
  return label_by_id_[id];
}

std::vector<std::string> Metrics::labels() const {
  std::vector<std::string> result;
  for (OperationId id = 0; id < completed_.size(); ++id) {
    if (!completed_[id].empty()) result.push_back(label_by_id_[id]);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t Metrics::operation_count(OperationId id) const {
  return operation_samples(id).size();
}

void Metrics::merge(const Metrics& other) {
  assert(other.stack_.empty() && "merge() of a Metrics with open scopes");
  add_messages(other.total_.messages);
  add_rounds(other.total_.rounds);
  for (OperationId id = 0; id < other.completed_.size(); ++id) {
    const auto& samples = other.completed_[id];
    if (samples.empty()) continue;
    const OperationId mine = intern(other.label_by_id_[id]);
    completed_[mine].insert(completed_[mine].end(), samples.begin(),
                            samples.end());
  }
}

void Metrics::reset() {
  assert(stack_.empty() && "reset() while operations are in flight");
  total_ = Cost{};
  // Interned ids survive reset (OperationId handles stay valid); only the
  // recorded samples are dropped.
  for (auto& samples : completed_) samples.clear();
}

OpScope::OpScope(Metrics& metrics, std::string_view label)
    : metrics_(metrics), index_(metrics.stack_.size()) {
  metrics_.stack_.push_back({metrics_.intern(label), Cost{}});
}

OpScope::~OpScope() {
  assert(metrics_.stack_.size() == index_ + 1 &&
         "OpScopes must be destroyed in LIFO order");
  const Metrics::Frame frame = metrics_.stack_.back();
  metrics_.stack_.pop_back();
  metrics_.completed_[frame.op].push_back(frame.cost);
}

const Cost& OpScope::cost() const { return metrics_.stack_[index_].cost; }

}  // namespace now
