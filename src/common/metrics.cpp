#include "common/metrics.hpp"

#include <cassert>
#include <utility>

namespace now {

void Metrics::add_messages(std::uint64_t count) {
  total_.messages += count;
  for (auto& frame : stack_) frame.cost.messages += count;
}

void Metrics::add_rounds(std::uint64_t count) {
  total_.rounds += count;
  for (auto& frame : stack_) frame.cost.rounds += count;
}

Cost Metrics::operation_total(const std::string& label) const {
  Cost sum;
  if (const auto it = completed_.find(label); it != completed_.end()) {
    for (const auto& cost : it->second) sum += cost;
  }
  return sum;
}

std::vector<Cost> Metrics::operation_samples(const std::string& label) const {
  if (const auto it = completed_.find(label); it != completed_.end()) {
    return it->second;
  }
  return {};
}

std::vector<std::string> Metrics::labels() const {
  std::vector<std::string> result;
  result.reserve(completed_.size());
  for (const auto& [label, samples] : completed_) result.push_back(label);
  return result;
}

std::size_t Metrics::operation_count(const std::string& label) const {
  const auto it = completed_.find(label);
  return it == completed_.end() ? 0 : it->second.size();
}

void Metrics::reset() {
  assert(stack_.empty() && "reset() while operations are in flight");
  total_ = Cost{};
  completed_.clear();
}

OpScope::OpScope(Metrics& metrics, std::string label)
    : metrics_(metrics), index_(metrics.stack_.size()) {
  metrics_.stack_.push_back({std::move(label), Cost{}});
}

OpScope::~OpScope() {
  assert(metrics_.stack_.size() == index_ + 1 &&
         "OpScopes must be destroyed in LIFO order");
  auto frame = std::move(metrics_.stack_.back());
  metrics_.stack_.pop_back();
  metrics_.completed_[frame.label].push_back(frame.cost);
}

const Cost& OpScope::cost() const { return metrics_.stack_[index_].cost; }

}  // namespace now
