// Small numeric helpers used when translating the paper's asymptotic
// parameters (k log N cluster sizes, log^{1+alpha} N degrees, ...) into
// concrete integers at finite N.
//
// Convention: "log" in the paper is asymptotic, so any fixed base works; we
// use the natural logarithm throughout and document constants relative to it.
#pragma once

#include <cstddef>
#include <cstdint>

namespace now {

/// Natural log of n, floored at 1.0 so that k*log N is never degenerate at
/// tiny N (the paper assumes N large; benches start at N = 2^8).
[[nodiscard]] double log_n(double n);

/// (log n)^exponent with the same flooring.
[[nodiscard]] double log_pow(double n, double exponent);

/// Ceiling of log_pow as a size, at least `floor_value`.
[[nodiscard]] std::size_t ceil_log_pow(double n, double exponent,
                                       std::size_t floor_value = 1);

/// Integer ceiling division.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Integer square root (floor).
[[nodiscard]] std::uint64_t isqrt(std::uint64_t n);

}  // namespace now
