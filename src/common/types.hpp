// Strong identifier types shared across the NOW reproduction.
//
// The paper assumes every node carries an unforgeable unique identifier and
// that clusters (the vertices of the OVER overlay) are addressable entities.
// We model both as strongly typed integers so that a NodeId can never be
// passed where a ClusterId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace now {

/// Tagged integer id. Distinct Tag types produce unrelated, non-convertible
/// identifier types with value semantics and total ordering.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint64_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

  /// Sentinel used for "no such node/cluster".
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  static constexpr Id invalid() { return Id{kInvalid}; }

 private:
  value_type value_ = kInvalid;
};

struct NodeTag {};
struct ClusterTag {};

/// Identity of a process in the dynamic network. Never reused.
using NodeId = Id<NodeTag>;
/// Identity of a cluster / OVER overlay vertex. Never reused.
using ClusterId = Id<ClusterTag>;

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

/// Discrete protocol time. One TimeStep hosts one join or leave operation
/// (plus the split/merge it induces); a step is made of polylog(N) rounds.
using TimeStep = std::uint64_t;

}  // namespace now

template <typename Tag>
struct std::hash<now::Id<Tag>> {
  std::size_t operator()(const now::Id<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
