#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace now {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0 && "uniform() requires a positive bound");
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // range == 0 means the full 64-bit span: any value works.
  if (range == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(uniform(range));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform on [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  assert(rate > 0.0);
  // Inverse CDF on (0,1]: avoid log(0) by flipping the uniform.
  const double u = 1.0 - uniform01();
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_distinct(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm produces a uniform k-subset; we then shuffle so the
  // order is also uniform (callers use the first element as "the" choice).
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform(j + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  shuffle(std::span<std::size_t>(result));
  return result;
}

Rng Rng::fork() { return Rng{next() ^ 0xD1B54A32D192ED03ULL}; }

Rng Rng::derive_stream(std::uint64_t seed, std::uint64_t stream,
                       std::uint64_t substream) {
  std::uint64_t state = seed;
  std::uint64_t acc = splitmix64(state);
  state = acc ^ (stream + 0xA0761D6478BD642FULL);
  acc = splitmix64(state);
  state = acc ^ (substream + 0xE7037ED1A0B428DBULL);
  return Rng{splitmix64(state)};
}

void Rng::derive_streams(std::uint64_t seed, std::uint64_t stream,
                         std::uint64_t first, std::size_t count, Rng* out) {
  // The first two splitmix64 rounds of derive_stream depend only on
  // (seed, stream); hoist them so the loop body is pure per-substream mix.
  std::uint64_t state = seed;
  std::uint64_t acc = splitmix64(state);
  state = acc ^ (stream + 0xA0761D6478BD642FULL);
  acc = splitmix64(state);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t sub = acc ^ (first + i + 0xE7037ED1A0B428DBULL);
    out[i] = Rng{splitmix64(sub)};
  }
}

}  // namespace now
