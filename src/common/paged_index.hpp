// Sparse array keyed by sequentially allocated 64-bit ids.
//
// NodeId / ClusterId values are handed out by incrementing counters and never
// reused, so a direct array would be ideal — except that long-lived
// deployments allocate ids far past the number of *live* entities. PagedIndex
// allocates fixed-size pages on demand: dense id ranges cost one array, holes
// cost nothing, and every access is O(1) (shift + mask + load), unlike the
// O(log n) ordered maps it replaces on the join/leave hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace now {

template <typename T>
class PagedIndex {
 public:
  /// `empty` is returned for keys that were never set (and stored in the
  /// unset slots of allocated pages).
  explicit PagedIndex(T empty = T{}) : empty_(empty) {}

  PagedIndex(const PagedIndex& other) : empty_(other.empty_) {
    pages_.reserve(other.pages_.size());
    for (const auto& page : other.pages_) {
      pages_.push_back(page ? std::make_unique<Page>(*page) : nullptr);
    }
  }
  PagedIndex& operator=(const PagedIndex& other) {
    if (this != &other) *this = PagedIndex(other);
    return *this;
  }
  PagedIndex(PagedIndex&&) noexcept = default;
  PagedIndex& operator=(PagedIndex&&) noexcept = default;
  ~PagedIndex() = default;

  /// Value at `key`, or the empty sentinel when unset. Never allocates.
  [[nodiscard]] T get(std::uint64_t key) const {
    const std::size_t page = page_of(key);
    if (page >= pages_.size() || pages_[page] == nullptr) return empty_;
    return (*pages_[page])[slot_of(key)];
  }

  /// True iff `key` holds a non-sentinel value.
  [[nodiscard]] bool contains(std::uint64_t key) const {
    return get(key) != empty_;
  }

  void set(std::uint64_t key, T value) {
    const std::size_t page = page_of(key);
    if (page >= pages_.size()) pages_.resize(page + 1);
    if (pages_[page] == nullptr) {
      pages_[page] = std::make_unique<Page>();
      pages_[page]->fill(empty_);
    }
    (*pages_[page])[slot_of(key)] = value;
  }

  /// Resets `key` to the empty sentinel. Never allocates.
  void unset(std::uint64_t key) {
    const std::size_t page = page_of(key);
    if (page >= pages_.size() || pages_[page] == nullptr) return;
    (*pages_[page])[slot_of(key)] = empty_;
  }

  void clear() { pages_.clear(); }

  [[nodiscard]] T empty_value() const { return empty_; }

  /// Requests the cache line holding `key`'s entry (no-op for unset
  /// pages). Batch sweeps issue this one key ahead so the load overlaps
  /// the current element's work.
  void prefetch(std::uint64_t key) const {
    const std::size_t page = page_of(key);
    if (page >= pages_.size() || pages_[page] == nullptr) return;
    __builtin_prefetch(&(*pages_[page])[slot_of(key)]);
  }

  /// Resident bytes: the page-pointer vector plus every allocated page.
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = pages_.capacity() * sizeof(pages_[0]);
    for (const auto& page : pages_) {
      if (page != nullptr) bytes += sizeof(Page);
    }
    return bytes;
  }

 private:
  static constexpr std::size_t kPageBits = 10;  // 1024 entries per page
  static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;
  using Page = std::array<T, kPageSize>;

  static constexpr std::size_t page_of(std::uint64_t key) {
    return static_cast<std::size_t>(key >> kPageBits);
  }
  static constexpr std::size_t slot_of(std::uint64_t key) {
    return static_cast<std::size_t>(key & (kPageSize - 1));
  }

  T empty_;
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace now
