// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component of the reproduction (adversary choices, CTRW
// trajectories, randNum contributions, Erdős–Rényi wiring, ...) draws from
// an explicitly passed Rng so whole experiments are reproducible from a
// single seed. The generator is xoshiro256** seeded via splitmix64, which is
// fast, has 256-bit state, and passes BigCrush — adequate for simulation
// statistics (this is not a cryptographic RNG; randNum's *security* argument
// lives in the protocol, not in this generator).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace now {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic xoshiro256** generator with convenience sampling helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> and
  /// std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given rate (> 0). Used for CTRW holding
  /// times (per-edge rate-1 clocks).
  double exponential(double rate);

  /// Fisher–Yates shuffle of an entire span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). Requires k <= n.
  /// Floyd's algorithm: O(k) expected work independent of n.
  [[nodiscard]] std::vector<std::size_t> sample_distinct(std::size_t n,
                                                         std::size_t k);

  /// Deterministically derive an independent child generator. Used to give
  /// each protocol entity its own stream without sharing state.
  [[nodiscard]] Rng fork();

  /// Stateless stream derivation for parallel stepping: the generator is a
  /// pure function of (seed, stream, substream), so any worker can recreate
  /// the stream for operation `substream` of batch `stream` without touching
  /// shared RNG state. Nearby triples land in unrelated states (each word is
  /// passed through splitmix64 before mixing in the next).
  [[nodiscard]] static Rng derive_stream(std::uint64_t seed,
                                         std::uint64_t stream,
                                         std::uint64_t substream);

  /// Bulk stream derivation: fills `out[0..count)` with exactly the
  /// generators `derive_stream(seed, stream, first + i)` would produce
  /// (byte-identical states). The (seed, stream)-dependent prefix of the
  /// mix is hoisted out of the loop, so a whole batch costs 5 splitmix64
  /// rounds per stream instead of 7 plus per-call overhead — the plan
  /// phase derives one stream per op and per wave, which makes this the
  /// hot generator-init path at n=1e7.
  static void derive_streams(std::uint64_t seed, std::uint64_t stream,
                             std::uint64_t first, std::size_t count, Rng* out);

  /// Raw 256-bit generator state — the snapshot subsystem serializes and
  /// restores generators mid-stream so a resumed run continues the exact
  /// draw sequence (DESIGN.md §8).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const { return state_; }
  void restore_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace now
