// Minimal fork-join thread pool for the sharded batch planner.
//
// parallel_for(tasks, fn) runs fn(0), ..., fn(tasks - 1) across the pool's
// workers plus the calling thread and blocks until every task has returned.
// Tasks are expected to be coarse (one shard of a batch each), so scheduling
// is a plain shared counter under one mutex — no work stealing, no futures.
// Determinism note: the pool only decides *which thread* runs a task, never
// task inputs or ordering-sensitive state; sharded stepping stays bit-
// reproducible regardless of worker count (see DESIGN.md §7).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace now {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is valid: parallel_for then runs inline).
  explicit ThreadPool(std::size_t workers) {
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(0..tasks-1), the caller acting as one more worker; returns when
  /// all tasks completed. Not reentrant: one parallel_for at a time.
  void parallel_for(std::size_t tasks,
                    const std::function<void(std::size_t)>& fn) {
    if (tasks == 0) return;
    if (workers_.empty() || tasks == 1) {
      for (std::size_t i = 0; i < tasks; ++i) fn(i);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      next_task_ = 0;
      task_limit_ = tasks;
      pending_ = tasks;
      ++generation_;
    }
    wake_.notify_all();
    run_tasks();
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  /// Claims tasks until the batch is drained. Every claimed index is matched
  /// by exactly one pending_ decrement, so the caller's done_ wait cannot
  /// return while any task body is still running.
  void run_tasks() {
    while (true) {
      std::size_t index;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (next_task_ >= task_limit_) return;
        index = next_task_++;
      }
      (*fn_)(index);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
        if (pending_ == 0) done_.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock,
                   [this, seen] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_tasks();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t next_task_ = 0;
  std::size_t task_limit_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace now
