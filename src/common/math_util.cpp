#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

namespace now {

double log_n(double n) { return std::max(1.0, std::log(std::max(n, 1.0))); }

double log_pow(double n, double exponent) {
  return std::pow(log_n(n), exponent);
}

std::size_t ceil_log_pow(double n, double exponent, std::size_t floor_value) {
  const auto value = static_cast<std::size_t>(std::ceil(log_pow(n, exponent)));
  return std::max(value, floor_value);
}

std::uint64_t isqrt(std::uint64_t n) {
  if (n == 0) return 0;
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(n)));
  // Correct the float estimate in both directions.
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return r;
}

}  // namespace now
