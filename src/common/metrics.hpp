// Communication-cost accounting.
//
// The paper measures two quantities (Section 2, "Notations"):
//   * communication cost — the number of unit-size messages exchanged
//     ("we consider messages of identical size. Hence the communication cost
//      is proportional to the number of bits sent"), and
//   * round complexity — the number of successive communication rounds.
//
// Protocol code charges costs to a Metrics sink as it executes. Nested
// OpScope objects attribute the charges to named operations (join, leave,
// split, merge, randCl, exchange, ...) so benches can report per-operation
// cost distributions exactly as Figure 2 tabulates them.
//
// Operation labels are interned: the first time a label is seen it is mapped
// to a small dense OperationId; every subsequent scope open/close and sample
// append works on the integer id. Queries are id-keyed too — call sites
// intern (or find()) a label once and hold the id; the PR-1 string-keyed
// query shim is gone.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace now {

/// Cost of one (sub-)operation: unit messages sent and rounds consumed.
struct Cost {
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;

  Cost& operator+=(const Cost& other) {
    messages += other.messages;
    rounds += other.rounds;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend bool operator==(const Cost&, const Cost&) = default;
};

/// Dense id of an interned operation label.
using OperationId = std::uint32_t;

/// Sentinel returned by Metrics::find for labels never interned. Every
/// id-keyed query accepts it and reports "no samples", mirroring how the
/// old string-keyed queries treated unknown labels.
inline constexpr OperationId kNoOperation = 0xFFFFFFFFu;

/// Accumulates protocol costs, globally and per named operation.
///
/// Rounds compose differently from messages: sub-protocols that run
/// sequentially add their rounds, sub-protocols that run in parallel in the
/// same rounds must not double-count. Protocol code expresses this by calling
/// add_messages for every unit message but add_rounds only on the sequential
/// critical path.
class Metrics {
 public:
  /// Charge `count` unit messages to the enclosing operation (if any) and to
  /// the global totals.
  void add_messages(std::uint64_t count);

  /// Charge `count` communication rounds on the critical path.
  void add_rounds(std::uint64_t count);

  [[nodiscard]] const Cost& total() const { return total_; }

  /// Interns `label`, returning its dense id (stable for the Metrics
  /// lifetime, including across reset()). O(1) amortized; one hash of the
  /// label on the first call per distinct string.
  OperationId intern(std::string_view label);

  /// Id of `label` if it was ever interned, else kNoOperation. The const
  /// counterpart of intern() for pure readers.
  [[nodiscard]] OperationId find(std::string_view label) const;

  /// Sum of costs of all completed operations with this id.
  [[nodiscard]] Cost operation_total(OperationId id) const;
  /// Costs of each completed operation with this id, in completion order.
  /// The span is invalidated by the next completed scope, merge or reset.
  [[nodiscard]] std::span<const Cost> operation_samples(OperationId id) const;
  /// Number of completed operations with this id.
  [[nodiscard]] std::size_t operation_count(OperationId id) const;
  /// Label interned as `id` (empty for kNoOperation / out of range).
  [[nodiscard]] std::string_view label_of(OperationId id) const;
  /// Labels with at least one completed operation, sorted.
  [[nodiscard]] std::vector<std::string> labels() const;

  /// Folds another Metrics instance into this one: `other`'s total is
  /// charged through add_messages/add_rounds (so it propagates into any
  /// OpScope currently open on *this*) and its completed per-operation
  /// samples are appended under the same labels. Used by the sharded batch
  /// step, where each shard accumulates into a private Metrics off-thread
  /// and the results are merged back on commit. `other` must have no
  /// in-flight scopes.
  void merge(const Metrics& other);

  void reset();

 private:
  friend class OpScope;

  struct Frame {
    OperationId op;
    Cost cost;
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  Cost total_;
  std::vector<Frame> stack_;
  std::unordered_map<std::string, OperationId, StringHash, std::equal_to<>>
      id_by_label_;
  std::vector<std::string> label_by_id_;
  std::vector<std::vector<Cost>> completed_;  // indexed by OperationId
};

/// RAII scope attributing all costs charged during its lifetime to `label`.
/// Scopes nest; a nested scope's cost is *also* charged to its ancestors,
/// mirroring how e.g. a join's cost includes the randCl and exchange calls it
/// makes.
class OpScope {
 public:
  OpScope(Metrics& metrics, std::string_view label);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Cost charged so far inside this scope.
  [[nodiscard]] const Cost& cost() const;

 private:
  Metrics& metrics_;
  std::size_t index_;
};

}  // namespace now
