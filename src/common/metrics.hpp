// Communication-cost accounting.
//
// The paper measures two quantities (Section 2, "Notations"):
//   * communication cost — the number of unit-size messages exchanged
//     ("we consider messages of identical size. Hence the communication cost
//      is proportional to the number of bits sent"), and
//   * round complexity — the number of successive communication rounds.
//
// Protocol code charges costs to a Metrics sink as it executes. Nested
// OpScope objects attribute the charges to named operations (join, leave,
// split, merge, randCl, exchange, ...) so benches can report per-operation
// cost distributions exactly as Figure 2 tabulates them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace now {

/// Cost of one (sub-)operation: unit messages sent and rounds consumed.
struct Cost {
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;

  Cost& operator+=(const Cost& other) {
    messages += other.messages;
    rounds += other.rounds;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend bool operator==(const Cost&, const Cost&) = default;
};

/// Accumulates protocol costs, globally and per named operation.
///
/// Rounds compose differently from messages: sub-protocols that run
/// sequentially add their rounds, sub-protocols that run in parallel in the
/// same rounds must not double-count. Protocol code expresses this by calling
/// add_messages for every unit message but add_rounds only on the sequential
/// critical path.
class Metrics {
 public:
  /// Charge `count` unit messages to the enclosing operation (if any) and to
  /// the global totals.
  void add_messages(std::uint64_t count);

  /// Charge `count` communication rounds on the critical path.
  void add_rounds(std::uint64_t count);

  [[nodiscard]] const Cost& total() const { return total_; }

  /// Sum of costs of all completed operations with this label.
  [[nodiscard]] Cost operation_total(const std::string& label) const;
  /// Costs of each completed operation with this label, in completion order.
  [[nodiscard]] std::vector<Cost> operation_samples(
      const std::string& label) const;
  /// Labels seen so far, sorted.
  [[nodiscard]] std::vector<std::string> labels() const;

  /// Number of completed operations with this label.
  [[nodiscard]] std::size_t operation_count(const std::string& label) const;

  void reset();

 private:
  friend class OpScope;

  struct Frame {
    std::string label;
    Cost cost;
  };

  Cost total_;
  std::vector<Frame> stack_;
  std::map<std::string, std::vector<Cost>> completed_;
};

/// RAII scope attributing all costs charged during its lifetime to `label`.
/// Scopes nest; a nested scope's cost is *also* charged to its ancestors,
/// mirroring how e.g. a join's cost includes the randCl and exchange calls it
/// makes.
class OpScope {
 public:
  OpScope(Metrics& metrics, std::string label);
  ~OpScope();

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Cost charged so far inside this scope.
  [[nodiscard]] const Cost& cost() const;

 private:
  Metrics& metrics_;
  std::size_t index_;
};

}  // namespace now
