// Statistics helpers for the experiment harness.
//
// The benches validate distributional claims (Lemma 1's tail bound, randCl's
// size-biased output law, polylog cost growth), so we need running moments,
// quantiles, a chi-square goodness-of-fit test, and least-squares fits on
// transformed axes (cost vs (log N)^b).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace now {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact empirical quantile (linear interpolation). q in [0,1].
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Pearson chi-square statistic of observed counts against expected
/// probabilities. `expected_probs` must sum to ~1 and have the same size.
[[nodiscard]] double chi_square_statistic(
    std::span<const std::uint64_t> observed,
    std::span<const double> expected_probs);

/// Upper-tail p-value of the chi-square distribution with `dof` degrees of
/// freedom (via the regularized upper incomplete gamma function).
[[nodiscard]] double chi_square_p_value(double statistic, std::size_t dof);

/// Ordinary least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Fit cost(N) = a * (ln N)^b by OLS of ln(cost) on ln(ln N).
/// Returns {ln a, b, r2}. A good fit (r2 close to 1) with moderate exponent b
/// is the empirical signature of "polylog(N)" cost.
[[nodiscard]] LinearFit polylog_fit(std::span<const double> n_values,
                                    std::span<const double> costs);

/// Fit cost(N) = a * N^b by OLS on log-log axes. Returns {ln a, b, r2}.
/// Used to check *polynomial* growth (e.g. the O(N^{3/2} log N) init cost and
/// the baselines' O(n^2) broadcast).
[[nodiscard]] LinearFit powerlaw_fit(std::span<const double> n_values,
                                     std::span<const double> costs);

}  // namespace now
