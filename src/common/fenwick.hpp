// Fenwick (binary indexed) tree over unsigned counts.
//
// Backs NowState's size-biased cluster sampling: the tree holds one entry per
// cluster slot with the cluster's current size, so drawing a cluster with
// probability |C| / n is one uniform draw plus an O(log k) descend instead of
// the O(k) linear scan the ordered-map state needed. Point updates (a member
// joining/leaving a cluster) are O(log k).
//
// The sharded batch commit (DESIGN.md §7) accumulates per-shard signed
// deltas off-thread and folds them in afterwards through apply_deltas, which
// picks between point updates and one O(k) rebuild — the tree itself is
// never written concurrently.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace now {

class FenwickTree {
 public:
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Value currently stored at `index`.
  [[nodiscard]] std::uint64_t value_at(std::size_t index) const {
    assert(index < values_.size());
    return values_[index];
  }

  /// Grows to `n` entries (new entries are zero). Shrinking is not supported;
  /// callers reuse slots instead. O(n) rebuild, amortized away by doubling.
  void resize(std::size_t n) {
    assert(n >= values_.size());
    values_.resize(n, 0);
    rebuild();
  }

  void add(std::size_t index, std::uint64_t delta) {
    assert(index < values_.size());
    values_[index] += delta;
    total_ += delta;
    for (std::size_t i = index + 1; i <= values_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  void subtract(std::size_t index, std::uint64_t delta) {
    assert(index < values_.size() && values_[index] >= delta);
    values_[index] -= delta;
    total_ -= delta;
    for (std::size_t i = index + 1; i <= values_.size(); i += i & (~i + 1)) {
      tree_[i] -= delta;
    }
  }

  /// Folds a batch of signed point deltas (distinct or repeated indices; a
  /// net-negative delta must not underflow its entry). Small batches take
  /// the O(log k) point-update path; once the batch is large enough that
  /// point updates would cost more than rebuilding, the whole prefix-sum
  /// tree is rebuilt in one O(k) pass — the merge step of the sharded batch
  /// commit, where every shard's delta array lands here at once.
  void apply_deltas(
      std::span<const std::pair<std::size_t, std::int64_t>> deltas) {
    const std::size_t logk =
        std::bit_width(values_.size() | std::size_t{1});
    if (deltas.size() * logk < values_.size()) {
      for (const auto& [index, delta] : deltas) {
        if (delta >= 0) {
          add(index, static_cast<std::uint64_t>(delta));
        } else {
          subtract(index, static_cast<std::uint64_t>(-delta));
        }
      }
      return;
    }
    for (const auto& [index, delta] : deltas) {
      assert(index < values_.size());
      assert(delta >= 0 ||
             values_[index] >= static_cast<std::uint64_t>(-delta));
      values_[index] += static_cast<std::uint64_t>(delta);  // wraps as signed
    }
    rebuild();
  }

  /// Sum of values at indices [0, count).
  [[nodiscard]] std::uint64_t prefix_sum(std::size_t count) const {
    assert(count <= values_.size());
    std::uint64_t sum = 0;
    for (std::size_t i = count; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  /// Smallest index i with prefix_sum(i + 1) > target; requires
  /// target < total(). This maps a uniform draw in [0, total) to an index
  /// with probability proportional to its value.
  [[nodiscard]] std::size_t find(std::uint64_t target) const {
    assert(target < total_);
    std::size_t pos = 0;
    std::uint64_t remaining = target;
    for (std::size_t step = std::bit_floor(values_.size()); step > 0;
         step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= values_.size() && tree_[next] <= remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    assert(pos < values_.size());
    return pos;
  }

 private:
  void rebuild() {
    tree_.assign(values_.size() + 1, 0);
    total_ = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      total_ += values_[i];
      tree_[i + 1] += values_[i];
      const std::size_t parent = (i + 1) + ((i + 1) & (~(i + 1) + 1));
      if (parent <= values_.size()) tree_[parent] += tree_[i + 1];
    }
  }

  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> tree_;  // 1-indexed
  std::uint64_t total_ = 0;
};

}  // namespace now
