// Fenwick (binary indexed) tree over unsigned counts.
//
// Backs NowState's size-biased cluster sampling: the tree holds one entry per
// cluster slot with the cluster's current size, so drawing a cluster with
// probability |C| / n is one uniform draw plus an O(log k) descend instead of
// the O(k) linear scan the ordered-map state needed. Point updates (a member
// joining/leaving a cluster) are O(log k).
//
// The sharded batch commit (DESIGN.md §7) accumulates per-shard signed
// deltas off-thread and folds them in afterwards through apply_deltas, which
// picks between point updates and one O(k) rebuild — the tree itself is
// never written concurrently.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace now {

class FenwickTree {
 public:
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Value currently stored at `index`.
  [[nodiscard]] std::uint64_t value_at(std::size_t index) const {
    assert(index < values_.size());
    return values_[index];
  }

  /// Grows to `n` entries (new entries are zero). Shrinking is not supported;
  /// callers reuse slots instead. O(n) rebuild, amortized away by doubling.
  void resize(std::size_t n) {
    assert(n >= values_.size());
    values_.resize(n, 0);
    rebuild();
  }

  void add(std::size_t index, std::uint64_t delta) {
    assert(index < values_.size());
    values_[index] += delta;
    total_ += delta;
    for (std::size_t i = index + 1; i <= values_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  void subtract(std::size_t index, std::uint64_t delta) {
    assert(index < values_.size() && values_[index] >= delta);
    values_[index] -= delta;
    total_ -= delta;
    for (std::size_t i = index + 1; i <= values_.size(); i += i & (~i + 1)) {
      tree_[i] -= delta;
    }
  }

  /// Folds a batch of signed point deltas (distinct or repeated indices; a
  /// net-negative delta must not underflow its entry). Small batches take
  /// the O(log k) point-update path; once the batch is large enough that
  /// point updates would cost more than rebuilding, the whole prefix-sum
  /// tree is rebuilt in one O(k) pass — the merge step of the sharded batch
  /// commit, where every shard's delta array lands here at once.
  /// When `pool` is non-null the rebuild branch runs as a blocked
  /// shard-parallel build (see rebuild_blocked); the point-update branch and
  /// the resulting tree are identical either way.
  void apply_deltas(
      std::span<const std::pair<std::size_t, std::int64_t>> deltas,
      ThreadPool* pool = nullptr, std::size_t blocks = 1) {
    const std::size_t logk =
        std::bit_width(values_.size() | std::size_t{1});
    if (deltas.size() * logk < values_.size()) {
      for (const auto& [index, delta] : deltas) {
        if (delta >= 0) {
          add(index, static_cast<std::uint64_t>(delta));
        } else {
          subtract(index, static_cast<std::uint64_t>(-delta));
        }
      }
      return;
    }
    for (const auto& [index, delta] : deltas) {
      assert(index < values_.size());
      assert(delta >= 0 ||
             values_[index] >= static_cast<std::uint64_t>(-delta));
      values_[index] += static_cast<std::uint64_t>(delta);  // wraps as signed
    }
    if (pool != nullptr && blocks > 1 &&
        values_.size() >= kParallelRebuildMin) {
      rebuild_blocked(*pool, blocks);
    } else {
      rebuild();
    }
  }

  /// Sum of values at indices [0, count).
  [[nodiscard]] std::uint64_t prefix_sum(std::size_t count) const {
    assert(count <= values_.size());
    std::uint64_t sum = 0;
    for (std::size_t i = count; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  /// Smallest index i with prefix_sum(i + 1) > target; requires
  /// target < total(). This maps a uniform draw in [0, total) to an index
  /// with probability proportional to its value.
  [[nodiscard]] std::size_t find(std::uint64_t target) const {
    assert(target < total_);
    std::size_t pos = 0;
    std::uint64_t remaining = target;
    for (std::size_t step = std::bit_floor(values_.size()); step > 0;
         step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= values_.size() && tree_[next] <= remaining) {
        remaining -= tree_[next];
        pos = next;
      }
    }
    assert(pos < values_.size());
    return pos;
  }

  /// Resident bytes: value mirror, tree and the blocked-rebuild scratch.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return (values_.capacity() + tree_.capacity() + prefix_.capacity()) *
           sizeof(std::uint64_t);
  }

  /// Bulk rebuild from current values with an explicit pool — the parallel
  /// twin of resize()'s implicit rebuild, exposed for tests.
  void rebuild_bulk(ThreadPool& pool, std::size_t blocks) {
    if (blocks > 1 && values_.size() >= kParallelRebuildMin) {
      rebuild_blocked(pool, blocks);
    } else {
      rebuild();
    }
  }

 private:
  // Below this size the sequential O(k) pass wins over fork-join overhead.
  static constexpr std::size_t kParallelRebuildMin = 4096;

  void rebuild() {
    tree_.assign(values_.size() + 1, 0);
    total_ = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
      total_ += values_[i];
      tree_[i + 1] += values_[i];
      const std::size_t parent = (i + 1) + ((i + 1) & (~(i + 1) + 1));
      if (parent <= values_.size()) tree_[parent] += tree_[i + 1];
    }
  }

  /// Blocked shard-parallel rebuild. The sequential rebuild's invariant is
  /// tree_[i] = sum of values_[j-1] for j in (i - lowbit(i), i], which is
  /// P[i] - P[i - lowbit(i)] for the inclusive prefix-sum array P. Both P
  /// (two-pass blocked scan: per-block totals, sequential offset scan,
  /// parallel fill) and the tree fill are exact unsigned-integer sums, so
  /// the result is bit-identical to rebuild() for every block count.
  void rebuild_blocked(ThreadPool& pool, std::size_t blocks) {
    const std::size_t n = values_.size();
    blocks =
        std::min(blocks, (n + kParallelRebuildMin - 1) / kParallelRebuildMin);
    if (blocks < 2) {
      rebuild();
      return;
    }
    prefix_.resize(n + 1);
    prefix_[0] = 0;
    std::vector<std::uint64_t> block_total(blocks, 0);
    const auto lo_of = [&](std::size_t b) { return b * n / blocks; };
    pool.parallel_for(blocks, [&](std::size_t b) {
      std::uint64_t sum = 0;
      for (std::size_t i = lo_of(b); i < lo_of(b + 1); ++i) sum += values_[i];
      block_total[b] = sum;
    });
    std::vector<std::uint64_t> base(blocks, 0);
    for (std::size_t b = 1; b < blocks; ++b) {
      base[b] = base[b - 1] + block_total[b - 1];
    }
    total_ = base[blocks - 1] + block_total[blocks - 1];
    pool.parallel_for(blocks, [&](std::size_t b) {
      std::uint64_t running = base[b];
      for (std::size_t i = lo_of(b); i < lo_of(b + 1); ++i) {
        running += values_[i];
        prefix_[i + 1] = running;
      }
    });
    tree_.resize(n + 1);
    tree_[0] = 0;
    pool.parallel_for(blocks, [&](std::size_t b) {
      for (std::size_t i = lo_of(b) + 1; i <= lo_of(b + 1); ++i) {
        tree_[i] = prefix_[i] - prefix_[i & (i - 1)];
      }
    });
  }

  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> tree_;    // 1-indexed
  std::vector<std::uint64_t> prefix_;  // scratch for rebuild_blocked
  std::uint64_t total_ = 0;
};

}  // namespace now
