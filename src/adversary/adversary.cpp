#include "adversary/adversary.hpp"

#include <algorithm>

#include "cluster/cluster.hpp"
#include "core/snapshot.hpp"

namespace now::adversary {

void Adversary::save_state(core::SnapshotWriter& /*writer*/) const {}
void Adversary::load_state(core::SnapshotReader& /*reader*/) {}

void JoinLeaveAdversary::save_state(core::SnapshotWriter& writer) const {
  writer.u64(target_.value());
}
void JoinLeaveAdversary::load_state(core::SnapshotReader& reader) {
  target_ = ClusterId{reader.u64()};
}

void ForcedLeaveAdversary::save_state(core::SnapshotWriter& writer) const {
  writer.u64(target_.value());
}
void ForcedLeaveAdversary::load_state(core::SnapshotReader& reader) {
  target_ = ClusterId{reader.u64()};
}

void ThrashAdversary::save_state(core::SnapshotWriter& writer) const {
  writer.u8(draining_ ? 1 : 0);
  writer.u64(splits_triggered_);
  writer.u64(merges_triggered_);
}
void ThrashAdversary::load_state(core::SnapshotReader& reader) {
  draining_ = reader.u8() != 0;
  splits_triggered_ = reader.u64();
  merges_triggered_ = reader.u64();
}

void RandomChurnAdversary::do_leave(core::NowSystem& system, Rng& rng) {
  const auto& state = system.state();
  if (state.num_nodes() <= 2) return;
  // The budget is a fraction of the *current* size (Section 2): when the
  // network shrinks the adversary must retire its own nodes too, or
  // byzantine_total would exceed tau * n. Within budget it sacrifices
  // honest nodes only (the strongest allowed choice).
  const double budget_after =
      tau() * static_cast<double>(state.num_nodes() - 1);
  const bool over_budget =
      static_cast<double>(state.byzantine_total()) > budget_after;
  NodeId victim = NodeId::invalid();
  if (over_budget && state.byzantine_total() > 0) {
    victim = state.byzantine.at_index(rng.uniform(state.byzantine_total()));
  } else if (protect_byzantine_ &&
             state.num_nodes() > state.byzantine_total()) {
    victim = state.random_honest_node(rng);
  } else {
    victim = state.random_node(rng);
  }
  system.leave(victim);
}

void RandomChurnAdversary::step(core::NowSystem& system, std::size_t t,
                                Rng& rng) {
  const std::size_t n = system.num_nodes();
  const std::size_t target = schedule_.target(t);
  if (n < target) {
    system.join(corrupt_next_join(system));
  } else if (n > target) {
    do_leave(system, rng);
  } else {
    // Steady state: keep churning (one out, next step one in).
    if (t % 2 == 0) {
      do_leave(system, rng);
    } else {
      system.join(corrupt_next_join(system));
    }
  }
}

void JoinLeaveAdversary::retarget(const core::NowSystem& system) {
  // Full knowledge: aim at the cluster we already pollute the most.
  const auto& state = system.state();
  if (target_.valid() && state.has_cluster(target_)) return;
  double best = -1.0;
  // Sort the Byzantine ids once; the sweep below then streams each
  // cluster's slab extent (cluster.hpp's sorted-span overload) instead of
  // paying a paged NodeSet lookup per member.
  std::vector<NodeId> sorted_byz(state.byzantine.begin(),
                                 state.byzantine.end());
  std::sort(sorted_byz.begin(), sorted_byz.end());
  for (const ClusterId id : state.cluster_ids()) {
    const double p =
        cluster::byzantine_fraction(state.cluster_at(id), sorted_byz);
    if (p > best) {
      best = p;
      target_ = id;
    }
  }
}

void JoinLeaveAdversary::step(core::NowSystem& system, std::size_t t,
                              Rng& rng) {
  retarget(system);
  if (rng.uniform01() < background_churn_) {
    fallback_.step(system, t, rng);
    retarget(system);
    return;
  }

  const auto& state = system.state();
  // Find one of our nodes sitting outside the target cluster and cycle it:
  // leave now; the matching (Byzantine) join happens on the next attack
  // step because the budget freed by this leave.
  NodeId outsider = NodeId::invalid();
  for (const NodeId b : state.byzantine) {
    if (state.home_of(b) != target_) {
      outsider = b;
      break;
    }
  }
  if (outsider.valid() && state.num_nodes() > 2) {
    system.leave(outsider);
    system.join(/*byzantine_node=*/corrupt_next_join(system));
    retarget(system);
  } else {
    // Everything already in the target (or nothing to move): churn instead.
    fallback_.step(system, t, rng);
    retarget(system);
  }
}

void ForcedLeaveAdversary::retarget(const core::NowSystem& system) {
  const auto& state = system.state();
  if (target_.valid() && state.has_cluster(target_)) return;
  double best = -1.0;
  // Sort the Byzantine ids once; the sweep below then streams each
  // cluster's slab extent (cluster.hpp's sorted-span overload) instead of
  // paying a paged NodeSet lookup per member.
  std::vector<NodeId> sorted_byz(state.byzantine.begin(),
                                 state.byzantine.end());
  std::sort(sorted_byz.begin(), sorted_byz.end());
  for (const ClusterId id : state.cluster_ids()) {
    const double p =
        cluster::byzantine_fraction(state.cluster_at(id), sorted_byz);
    if (p > best) {
      best = p;
      target_ = id;
    }
  }
}

void ForcedLeaveAdversary::step(core::NowSystem& system, std::size_t t,
                                Rng& rng) {
  retarget(system);
  const auto& state = system.state();

  if (t % 2 == 0 && state.num_nodes() > 2) {
    // DoS an honest member of the victim cluster (a forced exit is a
    // regular leave as far as the protocol can tell).
    const auto& c = state.cluster_at(target_);
    std::vector<NodeId> honest;
    for (const NodeId m : c.members()) {
      if (!state.byzantine.contains(m)) honest.push_back(m);
    }
    if (!honest.empty()) {
      system.leave(honest[rng.uniform(honest.size())]);
      retarget(system);
      return;
    }
  }
  system.join(corrupt_next_join(system));
  retarget(system);
}

void ThrashAdversary::step(core::NowSystem& system, std::size_t /*t*/,
                           Rng& rng) {
  const auto& state = system.state();
  // Full knowledge: find the cluster closest to a threshold and push it
  // over. Join-pressure needs no target (randCl lands in the largest
  // cluster with the highest probability by itself); drain-pressure removes
  // members of the smallest one directly (forced leaves).
  const ClusterId min_id = [&] {
    ClusterId min_c = state.cluster_ids().front();
    std::size_t min_size = state.cluster_at(min_c).size();
    for (const ClusterId id : state.cluster_ids()) {
      const std::size_t size = state.cluster_at(id).size();
      if (size < min_size) {
        min_c = id;
        min_size = size;
      }
    }
    return min_c;
  }();

  if (draining_) {
    if (state.num_nodes() <= 3) {
      draining_ = false;
      return;
    }
    const auto& smallest = state.cluster_at(min_id);
    const NodeId victim = smallest.random_member(rng);
    const auto report = system.leave(victim);
    merges_triggered_ += report.merges;
    if (report.merges > 0) draining_ = false;  // merge fired: flip to growth
  } else {
    const auto [node, report] = system.join(corrupt_next_join(system));
    (void)node;
    splits_triggered_ += report.splits;
    if (report.splits > 0) draining_ = true;  // split fired: flip to drain
  }
}

}  // namespace now::adversary
