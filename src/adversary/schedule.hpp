// Network-size schedules — the "highly dynamic" part of the paper's title.
//
// The model (Section 2) lets the live size n move anywhere in [sqrt(N), N]
// (polynomial variance), one join/leave per time step. A ChurnSchedule maps
// the time step to a target size; adversaries steer the system toward it.
#pragma once

#include <algorithm>
#include <cstddef>

namespace now::adversary {

class ChurnSchedule {
 public:
  /// Constant size (pure shuffling churn: alternating join/leave).
  static ChurnSchedule hold(std::size_t size) {
    return ChurnSchedule{size, size, 0, /*grow_first=*/true};
  }

  /// Linear ramp from `from` to `to` over |to - from| steps, then hold.
  static ChurnSchedule ramp(std::size_t from, std::size_t to) {
    return ChurnSchedule{from, to, 0, to >= from};
  }

  /// Triangle wave between low and high: grow for (high - low) steps,
  /// shrink back, repeat — the sqrt(N) <-> N oscillation of the POLY bench.
  static ChurnSchedule oscillate(std::size_t low, std::size_t high) {
    return ChurnSchedule{low, high, high - low, /*grow_first=*/true};
  }

  /// Target network size at time step t.
  [[nodiscard]] std::size_t target(std::size_t t) const {
    if (period_ == 0) {
      // ramp / hold
      const std::size_t span = from_ <= to_ ? to_ - from_ : from_ - to_;
      const std::size_t progress = std::min(t, span);
      return from_ <= to_ ? from_ + progress : from_ - progress;
    }
    const std::size_t phase = t % (2 * period_);
    return phase < period_ ? from_ + phase : to_ - (phase - period_);
  }

 private:
  ChurnSchedule(std::size_t from, std::size_t to, std::size_t period,
                bool /*grow_first*/)
      : from_(from), to_(to), period_(period) {}

  std::size_t from_;
  std::size_t to_;
  std::size_t period_;
};

}  // namespace now::adversary
