// Adversary strategies (Section 2, "Adversary model").
//
// The adversary is static and Byzantine: it corrupts a fraction
// tau <= 1/3 - eps of the nodes up front, may corrupt each *joining* node
// (subject to the same global budget), has full knowledge of the network
// (it sees the entire NowState, including every cluster's composition), and
// can induce churn — join-leave attacks and forcing honest nodes out (DoS).
// It cannot corrupt an existing honest node later (not adaptive).
//
// Strategies implemented:
//   * RandomChurnAdversary    — steers n along a ChurnSchedule; greedily
//     corrupts joiners up to the budget and (optionally) never removes its
//     own nodes, keeping the global Byzantine fraction pinned at tau. This
//     is the baseline workload of Theorem 3's experiments.
//   * JoinLeaveAdversary      — Section 3.3's attack: pick a victim cluster
//     and cycle Byzantine nodes through join/leave until they land in it.
//     Defeated by shuffling; defeats the no-shuffle baseline.
//   * ForcedLeaveAdversary    — DoS flavor: force honest members of the
//     victim cluster out (each forced exit is a protocol-visible leave) and
//     re-inject Byzantine joiners.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "adversary/schedule.hpp"
#include "common/rng.hpp"
#include "core/now.hpp"

namespace now::adversary {

class Adversary {
 public:
  explicit Adversary(double tau) : tau_(tau) {}
  virtual ~Adversary() = default;

  /// Executes one time step (at most one join or leave plus what the
  /// protocol induces).
  virtual void step(core::NowSystem& system, std::size_t t, Rng& rng) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Scenario-checkpoint hooks (core/snapshot.hpp, DESIGN.md §8):
  /// strategies with internal state — a chosen victim cluster, an attack
  /// phase — serialize it so a resumed scenario continues the exact
  /// trajectory. Stateless strategies keep the no-op defaults.
  virtual void save_state(core::SnapshotWriter& writer) const;
  virtual void load_state(core::SnapshotReader& reader);

  [[nodiscard]] double tau() const { return tau_; }

 protected:
  /// Greedy corruption: corrupt the joiner iff the budget tau * (n + 1)
  /// allows it — the strongest choice available to a static adversary.
  [[nodiscard]] bool corrupt_next_join(const core::NowSystem& system) const {
    const double budget =
        tau_ * static_cast<double>(system.num_nodes() + 1);
    return static_cast<double>(system.state().byzantine_total() + 1) <=
           budget;
  }

 private:
  double tau_;
};

class RandomChurnAdversary final : public Adversary {
 public:
  RandomChurnAdversary(double tau, ChurnSchedule schedule,
                       bool protect_byzantine = true)
      : Adversary(tau),
        schedule_(schedule),
        protect_byzantine_(protect_byzantine) {}

  void step(core::NowSystem& system, std::size_t t, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "random-churn"; }

 private:
  void do_leave(core::NowSystem& system, Rng& rng);

  ChurnSchedule schedule_;
  bool protect_byzantine_;
};

class JoinLeaveAdversary final : public Adversary {
 public:
  /// `background_churn` in [0,1]: fraction of steps spent on schedule-
  /// following churn instead of the attack (the network keeps living).
  JoinLeaveAdversary(double tau, ChurnSchedule schedule,
                     double background_churn = 0.25)
      : Adversary(tau),
        fallback_(tau, schedule, /*protect_byzantine=*/true),
        background_churn_(background_churn) {}

  void step(core::NowSystem& system, std::size_t t, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "join-leave"; }
  void save_state(core::SnapshotWriter& writer) const override;
  void load_state(core::SnapshotReader& reader) override;

  [[nodiscard]] ClusterId target() const { return target_; }

 private:
  void retarget(const core::NowSystem& system);

  RandomChurnAdversary fallback_;
  double background_churn_;
  ClusterId target_ = ClusterId::invalid();
};

class ForcedLeaveAdversary final : public Adversary {
 public:
  explicit ForcedLeaveAdversary(double tau) : Adversary(tau) {}

  void step(core::NowSystem& system, std::size_t t, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "forced-leave"; }
  void save_state(core::SnapshotWriter& writer) const override;
  void load_state(core::SnapshotReader& reader) override;

  [[nodiscard]] ClusterId target() const { return target_; }

 private:
  void retarget(const core::NowSystem& system);

  ClusterId target_ = ClusterId::invalid();
};

/// Cost-amplification (restructuring-thrash) attack: instead of chasing a
/// takeover, the adversary tries to maximize the *price* of membership
/// maintenance by parking the population right at the split/merge
/// thresholds — joining until a split fires, then draining until the merge
/// undoes it, forever. The hysteresis l > sqrt(2) exists precisely so that
/// one operation cannot re-trigger the opposite one; this adversary
/// measures how much amplification survives the hysteresis.
class ThrashAdversary final : public Adversary {
 public:
  explicit ThrashAdversary(double tau) : Adversary(tau) {}

  void step(core::NowSystem& system, std::size_t t, Rng& rng) override;
  [[nodiscard]] std::string name() const override { return "thrash"; }
  void save_state(core::SnapshotWriter& writer) const override;
  void load_state(core::SnapshotReader& reader) override;

  [[nodiscard]] std::size_t splits_triggered() const {
    return splits_triggered_;
  }
  [[nodiscard]] std::size_t merges_triggered() const {
    return merges_triggered_;
  }

 private:
  bool draining_ = false;
  std::size_t splits_triggered_ = 0;
  std::size_t merges_triggered_ = 0;
};

}  // namespace now::adversary
