#include "obs/json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace now::obs::json {

const Value* Value::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : it->second.get();
}

const std::string& Value::as_string() const {
  if (kind != Kind::kString) throw ParseError("JSON value is not a string");
  return string;
}

double Value::as_number() const {
  if (kind != Kind::kNumber) throw ParseError("JSON value is not a number");
  return number;
}

std::uint64_t Value::as_u64() const {
  if (kind != Kind::kNumber) throw ParseError("JSON value is not a number");
  // Prefer the source token: u64 values above 2^53 are exact there.
  if (!raw.empty() && raw.find_first_of(".eE-") == std::string::npos) {
    return std::strtoull(raw.c_str(), nullptr, 10);
  }
  const double n = number;
  if (n < 0 || std::floor(n) != n) {
    throw ParseError("JSON number is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

std::int64_t Value::as_i64() const {
  const double n = as_number();
  if (std::floor(n) != n) throw ParseError("JSON number is not an integer");
  return static_cast<std::int64_t>(n);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ValuePtr parse_document() {
    ValuePtr value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto value = std::make_unique<Value>();
    const char c = peek();
    switch (c) {
      case '{':
        parse_object(*value);
        break;
      case '[':
        parse_array(*value);
        break;
      case '"':
        value->kind = Kind::kString;
        value->string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value->kind = Kind::kBool;
        value->boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value->kind = Kind::kBool;
        value->boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value->kind = Kind::kNull;
        break;
      default:
        parse_number(*value);
    }
    return value;
  }

  void parse_object(Value& value) {
    value.kind = Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  void parse_array(Value& value) {
    value.kind = Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // the telemetry writers never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  void parse_number(Value& value) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    value.kind = Kind::kNumber;
    value.raw = std::string(text_.substr(start, pos_ - start));
    value.number = std::strtod(value.raw.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

ValuePtr parse(std::string_view text) {
  return Parser(text).parse_document();
}

ValuePtr parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace now::obs::json
