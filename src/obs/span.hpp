// Ring-buffer phase-span recorder emitting Chrome/Perfetto trace_event
// JSON (DESIGN.md §13).
//
// Spans are (category, interned name, steady_clock start, duration, two
// integer args); instants are zero-duration markers (fault decisions,
// respawns, retransmits). Events land in a fixed-capacity ring buffer —
// when full, the oldest events are overwritten, so recording cost is flat
// no matter how long the run is. A wall-clock anchor captured at process
// start lets tools/now_obs align rings recorded in different processes
// onto one timeline.
//
// Same determinism contract as the registry: the recorder reads clocks
// but never feeds protocol state (obs/registry.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace now::obs {

/// Span categories; serialized as the trace-event "cat" field.
enum class Cat : std::uint8_t {
  kStep,      // NowSystem batch step phases
  kNet,       // RoundEngine rounds, transport send/recv
  kFault,     // FaultyTransport decisions
  kShard,     // shard worker/coordinator lifecycle
  kSnapshot,  // snapshot/checkpoint save/load
};

[[nodiscard]] std::string_view cat_name(Cat cat);

class SpanRecorder {
 public:
  struct Event {
    std::uint64_t ts_ns;   // steady_clock, relative to process epoch
    std::uint64_t dur_ns;  // 0 for instants
    std::uint64_t arg0;
    std::uint64_t arg1;
    std::uint32_t name;  // interned via intern()
    std::uint32_t tid;   // dense per-process thread id
    Cat cat;
    bool is_span;  // span ("ph":"X") vs instant ("ph":"i")
  };

  static SpanRecorder& instance();

  /// Toggles event recording (process-wide). Interning and the clock
  /// helpers work regardless.
  static void set_enabled(bool enabled);
  [[nodiscard]] static bool enabled();

  /// Interns an event name; ids are stable for the process lifetime
  /// (reset() keeps them — call sites cache ids in statics).
  std::uint32_t intern(std::string_view name);
  [[nodiscard]] std::string name_of(std::uint32_t id) const;

  /// Nanoseconds on the steady clock since the process obs epoch.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Wall-clock microseconds (system_clock since Unix epoch) at the obs
  /// epoch — the cross-process alignment anchor.
  [[nodiscard]] std::uint64_t epoch_wall_us() const;

  /// Records a completed span. No-op when disabled.
  void complete(Cat cat, std::uint32_t name, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);

  /// Records an instant event at now_ns(). No-op when disabled.
  void instant(Cat cat, std::uint32_t name, std::uint64_t arg0 = 0,
               std::uint64_t arg1 = 0);

  /// Resizes the ring (dropping recorded events). Default 65536 events.
  void set_capacity(std::size_t events);

  /// Recorded events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Drops recorded events; interned names stay valid.
  void reset();

  /// Writes {"traceEvents":[...]} with a process_name metadata record,
  /// "ph":"X" complete events and "ph":"i" instants (ts/dur in
  /// microseconds). Directly loadable in Perfetto / chrome://tracing.
  void write_trace_json(std::ostream& out, std::string_view process_label,
                        std::uint64_t pid) const;

  /// Writes just the contents of the traceEvents array (no brackets):
  /// the process_name metadata record followed by one record per event.
  void write_trace_events(std::ostream& out, std::string_view process_label,
                          std::uint64_t pid) const;

 private:
  SpanRecorder();

  static std::uint64_t steady_now_raw();

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static std::atomic<bool> enabled_;

  std::uint64_t epoch_steady_ns_;  // raw steady_clock ns at construction
  std::uint64_t epoch_wall_us_;

  mutable std::mutex mu_;  // guards ring + intern table
  std::vector<Event> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t next_ = 0;   // ring slot for the next event
  std::size_t count_ = 0;  // events recorded (saturates at capacity_)
  std::unordered_map<std::string, std::uint32_t> id_by_name_;
  std::vector<std::string> names_;
};

/// Dense per-process id of the calling thread (0 for the first caller).
[[nodiscard]] std::uint32_t this_thread_id();

}  // namespace now::obs
