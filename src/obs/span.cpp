#include "obs/span.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace now::obs {

std::atomic<bool> SpanRecorder::enabled_{false};

std::string_view cat_name(Cat cat) {
  switch (cat) {
    case Cat::kStep:
      return "step";
    case Cat::kNet:
      return "net";
    case Cat::kFault:
      return "fault";
    case Cat::kShard:
      return "shard";
    case Cat::kSnapshot:
      return "snapshot";
  }
  return "?";
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next_id{0};
  thread_local std::uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t SpanRecorder::steady_now_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SpanRecorder::SpanRecorder()
    : epoch_steady_ns_(steady_now_raw()),
      epoch_wall_us_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())) {
  ring_.resize(capacity_);
}

SpanRecorder& SpanRecorder::instance() {
  static SpanRecorder recorder;
  return recorder;
}

void SpanRecorder::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool SpanRecorder::enabled() {
  return enabled_.load(std::memory_order_relaxed);
}

std::uint32_t SpanRecorder::intern(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = id_by_name_.find(std::string(name));
      it != id_by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  id_by_name_.emplace(std::string(name), id);
  return id;
}

std::string SpanRecorder::name_of(std::uint32_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return id < names_.size() ? names_[id] : std::string("?");
}

std::uint64_t SpanRecorder::now_ns() {
  // Touch the singleton FIRST: if this is the process's first obs call,
  // instance() fixes the epoch now, and the reading below can never
  // precede it (the subtraction must not underflow).
  const std::uint64_t epoch = instance().epoch_steady_ns_;
  return steady_now_raw() - epoch;
}

std::uint64_t SpanRecorder::epoch_wall_us() const { return epoch_wall_us_; }

void SpanRecorder::complete(Cat cat, std::uint32_t name, std::uint64_t ts_ns,
                            std::uint64_t dur_ns, std::uint64_t arg0,
                            std::uint64_t arg1) {
  if (!enabled()) return;
  const std::uint32_t tid = this_thread_id();
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = Event{ts_ns, dur_ns, arg0, arg1, name, tid, cat, true};
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

void SpanRecorder::instant(Cat cat, std::uint32_t name, std::uint64_t arg0,
                           std::uint64_t arg1) {
  if (!enabled()) return;
  const std::uint64_t ts = now_ns();
  const std::uint32_t tid = this_thread_id();
  const std::lock_guard<std::mutex> lock(mu_);
  ring_[next_] = Event{ts, 0, arg0, arg1, name, tid, cat, false};
  next_ = (next_ + 1) % capacity_;
  if (count_ < capacity_) ++count_;
}

void SpanRecorder::set_capacity(std::size_t events) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = events == 0 ? 1 : events;
  ring_.assign(capacity_, Event{});
  next_ = 0;
  count_ = 0;
}

std::vector<SpanRecorder::Event> SpanRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> events;
  events.reserve(count_);
  const std::size_t start = (next_ + capacity_ - count_) % capacity_;
  for (std::size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % capacity_]);
  }
  return events;
}

void SpanRecorder::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

// Trace-event timestamps are microseconds; keep nanosecond precision with
// a fixed-point fraction rather than double formatting.
void write_us(std::ostream& out, std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out << buf;
}

}  // namespace

void SpanRecorder::write_trace_json(std::ostream& out,
                                    std::string_view process_label,
                                    std::uint64_t pid) const {
  out << "{\"traceEvents\":[";
  write_trace_events(out, process_label, pid);
  out << "]}";
}

void SpanRecorder::write_trace_events(std::ostream& out,
                                      std::string_view process_label,
                                      std::uint64_t pid) const {
  const auto events = snapshot();
  out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":";
  write_json_string(out, process_label);
  out << "}}";
  for (const Event& e : events) {
    out << ",\n{\"ph\":\"" << (e.is_span ? 'X' : 'i') << "\",\"name\":";
    write_json_string(out, name_of(e.name));
    out << ",\"cat\":\"" << cat_name(e.cat) << "\",\"pid\":" << pid
        << ",\"tid\":" << e.tid << ",\"ts\":";
    write_us(out, e.ts_ns);
    if (e.is_span) {
      out << ",\"dur\":";
      write_us(out, e.dur_ns);
    } else {
      out << ",\"s\":\"p\"";
    }
    out << ",\"args\":{\"a0\":" << e.arg0 << ",\"a1\":" << e.arg1 << "}}";
  }
}

}  // namespace now::obs
