// Process-wide runtime telemetry registry (DESIGN.md §13).
//
// Counters, gauges and log-bucketed histograms behind dense interned ids —
// the same interning idiom as Metrics, but for *operational* quantities
// (transport sends per tag, fault decisions per kind, checkpoint bytes)
// rather than paper-cost accounting. Writes go to per-thread shards of
// relaxed atomics and are merged at read time, so the hot path is one
// atomic increment on thread-owned memory; reads are O(shards) sums.
//
// Determinism contract: the registry observes, it never feeds state. No
// protocol code may branch on a registry value, and the registry draws no
// randomness — run digests, RNG streams, snapshots and bench fidelity are
// bit-identical with telemetry enabled, disabled, or compiled out
// (NOW_OBS=OFF reduces every hook in protocol code to a no-op; the
// registry class itself stays available for tools and tests).
//
// Recording is off by default; obs::set_enabled (obs/obs.hpp) switches the
// whole subsystem on. Disabled add/observe calls drop their value after
// one relaxed atomic flag load.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace now::obs {

/// Dense id of an interned metric. Also usable as an array index.
using MetricId = std::uint32_t;

/// Sentinel for "no metric" (returned when the metric table is full);
/// every write accepts it and does nothing.
inline constexpr MetricId kNoMetric = 0xFFFFFFFFu;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Histogram buckets are log2: bucket 0 holds the value 0, bucket b >= 1
/// holds values in [2^(b-1), 2^b - 1] (i.e. bucket = bit_width(value)).
inline constexpr std::size_t kHistogramBuckets = 65;

class Registry {
 public:
  static Registry& instance();

  /// Toggles recording for every registry write (process-wide).
  static void set_enabled(bool enabled);
  [[nodiscard]] static bool enabled();

  /// Interns a metric of the given kind, returning its dense id (stable
  /// for the process lifetime, including across reset()). Re-interning an
  /// existing name returns the same id; the kind must match.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name);

  /// Adds `delta` to a counter. O(1): one relaxed fetch_add on this
  /// thread's shard. No-op when disabled or id == kNoMetric.
  void add(MetricId id, std::uint64_t delta);

  /// Sets a gauge (process-wide last-write-wins; gauges are rare writes
  /// and live centrally, not in the per-thread shards).
  void set(MetricId id, std::int64_t value);

  /// Records `value` into a histogram's log2 bucket. O(1) like add().
  void observe(MetricId id, std::uint64_t value);

  // ---- read-time merge (sums every thread shard; O(shards)) ----
  [[nodiscard]] std::uint64_t counter_value(MetricId id) const;
  [[nodiscard]] std::int64_t gauge_value(MetricId id) const;
  [[nodiscard]] std::array<std::uint64_t, kHistogramBuckets>
  histogram_buckets(MetricId id) const;
  /// Total number of observations recorded into a histogram.
  [[nodiscard]] std::uint64_t histogram_count(MetricId id) const;

  [[nodiscard]] std::size_t num_metrics() const;
  [[nodiscard]] std::string_view name_of(MetricId id) const;
  [[nodiscard]] MetricKind kind_of(MetricId id) const;

  /// Zeroes every recorded value. Interned ids stay valid (call sites
  /// cache them in statics), and existing thread shards are reused.
  void reset();

  /// Writes the merged registry content as a JSON object:
  /// {"counters": [{"name","value"}...], "gauges": [...],
  ///  "histograms": [{"name","count","buckets":[[bucket,count]...]}...]}
  /// in intern order (deterministic for a fixed execution).
  void write_json(std::ostream& out) const;

 private:
  Registry();

  // Metric capacity is fixed so meta_ never reallocates: writers read
  // meta_[id] without a lock while intern() appends under intern_mu_.
  static constexpr std::size_t kMaxMetrics = 1024;
  // Cells per shard: counters take one cell, histograms take
  // kHistogramBuckets consecutive cells, gauges take none.
  static constexpr std::size_t kShardCells = 8192;

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kShardCells> cells{};
  };

  struct Meta {
    std::string name;
    MetricKind kind;
    std::uint32_t cell_base;  // first shard cell (gauges: central index)
  };

  MetricId intern(std::string_view name, MetricKind kind,
                  std::size_t cells_needed);
  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] std::uint64_t sum_cell(std::size_t cell) const;

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;  // guards shards_, gauges_, intern tables
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
  std::unordered_map<std::string, MetricId> id_by_name_;
  std::vector<Meta> meta_;  // reserved kMaxMetrics up front, append-only
  std::atomic<std::uint32_t> num_metrics_{0};
  std::uint32_t next_cell_ = 0;
};

}  // namespace now::obs
