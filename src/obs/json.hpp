// Minimal recursive-descent JSON parser for the telemetry toolchain
// (tools/now_obs and the obs tests). Parses the subset the OBS_*.json
// files use — objects, arrays, strings with the common escapes, numbers,
// true/false/null — into an owning tree. Not a general-purpose library;
// the runtime emits JSON with hand-rolled writers, this is only the read
// side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace now::obs::json {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value;
using ValuePtr = std::unique_ptr<Value>;

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject
};

class Value {
 public:
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  // Number literals keep their source token so 64-bit integers (digests,
  // packed args) survive re-serialization without double rounding.
  std::string raw;
  std::string string;
  std::vector<ValuePtr> array;
  // std::map keeps object iteration deterministic for the tools' output.
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const;

  /// Typed accessors that throw ParseError on kind mismatch.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] std::int64_t as_i64() const;
};

/// Parses one JSON document; throws ParseError (with offset) on malformed
/// input or trailing non-whitespace.
[[nodiscard]] ValuePtr parse(std::string_view text);

/// Reads and parses a JSON file; throws ParseError if unreadable.
[[nodiscard]] ValuePtr parse_file(const std::string& path);

}  // namespace now::obs::json
