// Umbrella header for the runtime telemetry layer (DESIGN.md §13).
//
// NOW_OBS_ENABLED is the compile-time kill switch (CMake option NOW_OBS,
// default ON). When it is 0 every inline hook in this header — ScopedSpan,
// counter_add, observe, instant — compiles to nothing, so protocol code
// carries zero telemetry cost. The Registry / SpanRecorder classes
// themselves always compile (tools and tests link them either way).
//
// ScopedSpan doubles as the single timing source for OpReport's phase
// nanosecond fields: pass `out_ns` and the measured duration is written
// there on stop() even when span recording is disabled, so
// BENCH_micro.json rows stay byte-compatible with the pre-obs plumbing.
// With NOW_OBS=OFF those fields read 0 (the bench counters are a
// telemetry product, not protocol state).
#pragma once

#ifndef NOW_OBS_ENABLED
#define NOW_OBS_ENABLED 1
#endif

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace now::obs {

inline constexpr bool kCompiledIn = NOW_OBS_ENABLED != 0;

/// Switches the whole subsystem (registry + span recorder) on or off at
/// runtime. Off (the default) leaves one relaxed flag load per hook.
void set_enabled(bool enabled);
[[nodiscard]] bool is_enabled();

/// Writes this process's telemetry as one Perfetto-loadable JSON file:
/// {"displayTimeUnit","traceEvents":[...],"nowObs":{label,pid,
///  epoch_wall_us,registry:{counters,gauges,histograms}}}.
/// tools/now_obs merges several of these onto one timeline.
/// Returns false (after best-effort write) on I/O failure.
bool write_obs_file(const std::string& path, std::string_view label);

#if NOW_OBS_ENABLED

/// RAII phase span: starts on construction, records on stop()/destruction.
/// The steady clock is read only when recording is enabled or `out_ns`
/// is non-null; a disabled span with no out_ns costs two flag loads.
class ScopedSpan {
 public:
  ScopedSpan(Cat cat, std::string_view name, std::uint64_t* out_ns = nullptr,
             std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
      : out_ns_(out_ns),
        arg0_(arg0),
        arg1_(arg1),
        cat_(cat),
        live_(SpanRecorder::enabled()) {
    if (live_ || out_ns_ != nullptr) {
      start_ = SpanRecorder::now_ns();
      measuring_ = true;
      if (live_) name_ = SpanRecorder::instance().intern(name);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { stop(); }

  /// Ends the span early (idempotent; the destructor then no-ops).
  void stop() {
    if (!measuring_) return;
    measuring_ = false;
    const std::uint64_t dur = SpanRecorder::now_ns() - start_;
    if (out_ns_ != nullptr) *out_ns_ = dur;
    if (live_) {
      SpanRecorder::instance().complete(cat_, name_, start_, dur, arg0_,
                                        arg1_);
    }
  }

  void set_args(std::uint64_t arg0, std::uint64_t arg1) {
    arg0_ = arg0;
    arg1_ = arg1;
  }

 private:
  std::uint64_t* out_ns_;
  std::uint64_t start_ = 0;
  std::uint64_t arg0_;
  std::uint64_t arg1_;
  std::uint32_t name_ = 0;
  Cat cat_;
  bool live_;
  bool measuring_ = false;
};

/// Interns a counter/histogram/span name once (call sites keep the id in
/// a function-local static).
inline MetricId counter_id(std::string_view name) {
  return Registry::instance().counter(name);
}
inline MetricId histogram_id(std::string_view name) {
  return Registry::instance().histogram(name);
}
inline std::uint32_t span_name_id(std::string_view name) {
  return SpanRecorder::instance().intern(name);
}

inline void counter_add(MetricId id, std::uint64_t delta = 1) {
  Registry::instance().add(id, delta);
}
inline void observe(MetricId id, std::uint64_t value) {
  Registry::instance().observe(id, value);
}
inline void instant(Cat cat, std::uint32_t name, std::uint64_t arg0 = 0,
                    std::uint64_t arg1 = 0) {
  SpanRecorder::instance().instant(cat, name, arg0, arg1);
}

#else  // NOW_OBS_ENABLED == 0: every hook is a no-op the optimizer erases.

class ScopedSpan {
 public:
  ScopedSpan(Cat, std::string_view, std::uint64_t* = nullptr,
             std::uint64_t = 0, std::uint64_t = 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void stop() {}
  void set_args(std::uint64_t, std::uint64_t) {}
};

inline MetricId counter_id(std::string_view) { return kNoMetric; }
inline MetricId histogram_id(std::string_view) { return kNoMetric; }
inline std::uint32_t span_name_id(std::string_view) { return 0; }
inline void counter_add(MetricId, std::uint64_t = 1) {}
inline void observe(MetricId, std::uint64_t) {}
inline void instant(Cat, std::uint32_t, std::uint64_t = 0,
                    std::uint64_t = 0) {}

#endif  // NOW_OBS_ENABLED

}  // namespace now::obs
