#include "obs/registry.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace now::obs {

std::atomic<bool> Registry::enabled_{false};

namespace {

// Dense cell offset of a histogram observation: 0 for the value 0, else
// bit_width (1..64).
std::size_t bucket_of(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

Registry::Registry() { meta_.reserve(kMaxMetrics); }

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::set_enabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool Registry::enabled() {
  return enabled_.load(std::memory_order_relaxed);
}

MetricId Registry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter, 1);
}

MetricId Registry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge, 0);
}

MetricId Registry::histogram(std::string_view name) {
  return intern(name, MetricKind::kHistogram, kHistogramBuckets);
}

MetricId Registry::intern(std::string_view name, MetricKind kind,
                          std::size_t cells_needed) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = id_by_name_.find(std::string(name));
      it != id_by_name_.end()) {
    if (meta_[it->second].kind != kind) {
      throw std::logic_error("obs metric re-interned with different kind: " +
                             std::string(name));
    }
    return it->second;
  }
  if (meta_.size() >= kMaxMetrics ||
      next_cell_ + cells_needed > kShardCells) {
    return kNoMetric;  // table full: writes to kNoMetric are dropped
  }
  std::uint32_t cell_base = 0;
  if (kind == MetricKind::kGauge) {
    cell_base = static_cast<std::uint32_t>(gauges_.size());
    gauges_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  } else {
    cell_base = next_cell_;
    next_cell_ += static_cast<std::uint32_t>(cells_needed);
  }
  const auto id = static_cast<MetricId>(meta_.size());
  meta_.push_back(Meta{std::string(name), kind, cell_base});
  id_by_name_.emplace(std::string(name), id);
  // Publish after the Meta entry is fully written; lock-free writers
  // acquire-load num_metrics_ before touching meta_[id].
  num_metrics_.store(static_cast<std::uint32_t>(meta_.size()),
                     std::memory_order_release);
  return id;
}

Registry::Shard& Registry::local_shard() {
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    const std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  return *shard;
}

void Registry::add(MetricId id, std::uint64_t delta) {
  if (!enabled() || id >= num_metrics_.load(std::memory_order_acquire)) {
    return;
  }
  const Meta& meta = meta_[id];
  assert(meta.kind == MetricKind::kCounter);
  local_shard().cells[meta.cell_base].fetch_add(delta,
                                                std::memory_order_relaxed);
}

void Registry::set(MetricId id, std::int64_t value) {
  if (!enabled() || id >= num_metrics_.load(std::memory_order_acquire)) {
    return;
  }
  const Meta& meta = meta_[id];
  assert(meta.kind == MetricKind::kGauge);
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[meta.cell_base]->store(value, std::memory_order_relaxed);
}

void Registry::observe(MetricId id, std::uint64_t value) {
  if (!enabled() || id >= num_metrics_.load(std::memory_order_acquire)) {
    return;
  }
  const Meta& meta = meta_[id];
  assert(meta.kind == MetricKind::kHistogram);
  local_shard().cells[meta.cell_base + bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Registry::sum_cell(std::size_t cell) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cells[cell].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Registry::counter_value(MetricId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sum_cell(meta_[id].cell_base);
}

std::int64_t Registry::gauge_value(MetricId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_[meta_[id].cell_base]->load(std::memory_order_relaxed);
}

std::array<std::uint64_t, kHistogramBuckets> Registry::histogram_buckets(
    MetricId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] = sum_cell(meta_[id].cell_base + b);
  }
  return buckets;
}

std::uint64_t Registry::histogram_count(MetricId id) const {
  const auto buckets = histogram_buckets(id);
  std::uint64_t total = 0;
  for (const auto count : buckets) {
    total += count;
  }
  return total;
}

std::size_t Registry::num_metrics() const {
  return num_metrics_.load(std::memory_order_acquire);
}

std::string_view Registry::name_of(MetricId id) const { return meta_[id].name; }

MetricKind Registry::kind_of(MetricId id) const { return meta_[id].kind; }

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    for (auto& cell : shard->cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& gauge : gauges_) {
    gauge->store(0, std::memory_order_relaxed);
  }
}

void Registry::write_json(std::ostream& out) const {
  const auto count = num_metrics();
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{\"counters\":[";
  bool first = true;
  for (MetricId id = 0; id < count; ++id) {
    if (meta_[id].kind != MetricKind::kCounter) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_json_string(out, meta_[id].name);
    out << ",\"value\":" << sum_cell(meta_[id].cell_base) << '}';
  }
  out << "],\"gauges\":[";
  first = true;
  for (MetricId id = 0; id < count; ++id) {
    if (meta_[id].kind != MetricKind::kGauge) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_json_string(out, meta_[id].name);
    out << ",\"value\":"
        << gauges_[meta_[id].cell_base]->load(std::memory_order_relaxed)
        << '}';
  }
  out << "],\"histograms\":[";
  first = true;
  for (MetricId id = 0; id < count; ++id) {
    if (meta_[id].kind != MetricKind::kHistogram) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":";
    write_json_string(out, meta_[id].name);
    std::uint64_t total = 0;
    out << ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t bucket = sum_cell(meta_[id].cell_base + b);
      total += bucket;
      if (bucket == 0) continue;
      if (!first_bucket) out << ',';
      first_bucket = false;
      out << '[' << b << ',' << bucket << ']';
    }
    out << "],\"count\":" << total << '}';
  }
  out << "]}";
}

}  // namespace now::obs
