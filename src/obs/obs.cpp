#include "obs/obs.hpp"

#include <unistd.h>

#include <fstream>

namespace now::obs {

void set_enabled(bool enabled) {
  Registry::set_enabled(enabled);
  SpanRecorder::set_enabled(enabled);
}

bool is_enabled() {
  return Registry::enabled() || SpanRecorder::enabled();
}

bool write_obs_file(const std::string& path, std::string_view label) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto& recorder = SpanRecorder::instance();
  const auto pid = static_cast<std::uint64_t>(::getpid());
  out << "{\"displayTimeUnit\":\"ms\",\n\"nowObs\":{\"obs_format\":1,"
      << "\"label\":\"" << std::string(label) << "\",\"pid\":" << pid
      << ",\"epoch_wall_us\":" << recorder.epoch_wall_us()
      << ",\"registry\":";
  Registry::instance().write_json(out);
  out << "},\n\"traceEvents\":[";
  recorder.write_trace_events(out, label, pid);
  out << "]}\n";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace now::obs
