// Cluster-tree broadcast (Section 6: "A broadcast algorithm using our
// technique would have O~(n) message complexity as compared to O(n^2)
// without the clustering").
//
// The source hands the value to its cluster; the value then floods the OVER
// overlay along a BFS tree. Every inter-cluster hop is one logical cluster
// message (|C|*|D| unit messages, accepted under the > 1/2 rule), so a
// cluster with a Byzantine majority cannot forge the payload and a cluster
// with an honest majority cannot be silenced. Total cost:
// #C * (k log N)^2 = O~(n).
#pragma once

#include <cstdint>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::apps {

struct BroadcastReport {
  /// Value as delivered (honest clusters relay it unmodified).
  std::uint64_t value = 0;
  /// Clusters reached through honest-majority relays.
  std::size_t clusters_reached = 0;
  /// True iff every node of every cluster received the value.
  bool delivered_everywhere = false;
  Cost cost;
};

/// Broadcasts `value` from `source` to the whole network. Charges messages
/// to the system's metrics and rounds along the BFS critical path.
BroadcastReport broadcast(core::NowSystem& system, NodeId source,
                          std::uint64_t value);

/// Cost of the naive clusterless broadcast the paper compares against:
/// every node relays to every other node once.
[[nodiscard]] Cost naive_broadcast_cost(std::size_t n);

}  // namespace now::apps
