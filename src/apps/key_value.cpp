#include "apps/key_value.hpp"

#include <deque>
#include <limits>

#include "cluster/intercluster.hpp"

namespace now::apps {

namespace {

/// Stateless mix for rendezvous weights.
std::uint64_t weight(std::uint64_t key, ClusterId cluster) {
  std::uint64_t x = key ^ (cluster.value() * 0x9E3779B97F4A7C15ULL);
  return splitmix64(x);
}

}  // namespace

ClusterId KeyValueService::key_home(std::uint64_t key) const {
  ClusterId best = ClusterId::invalid();
  std::uint64_t best_weight = 0;
  for (const ClusterId id : system_.state().cluster_ids()) {
    const std::uint64_t w = weight(key, id);
    if (!best.valid() || w > best_weight) {
      best = id;
      best_weight = w;
    }
  }
  return best;
}

std::size_t KeyValueService::charge_route(ClusterId from, ClusterId to,
                                          std::uint64_t units) {
  const auto& state = system_.state();
  if (from == to) return 0;
  // BFS parents toward `to`.
  std::map<ClusterId, ClusterId> parent;
  std::deque<ClusterId> frontier{from};
  parent[from] = from;
  while (!frontier.empty() && !parent.contains(to)) {
    const ClusterId c = frontier.front();
    frontier.pop_front();
    for (const ClusterId nb : state.overlay.neighbors(c)) {
      if (parent.try_emplace(nb, c).second) frontier.push_back(nb);
    }
  }
  if (!parent.contains(to)) return std::numeric_limits<std::size_t>::max();
  // Walk back to count hops, charging each inter-cluster transfer.
  std::size_t hops = 0;
  ClusterId cursor = to;
  while (cursor != from) {
    const ClusterId prev = parent.at(cursor);
    cluster::cluster_send(state.cluster_at(prev), state.cluster_at(cursor),
                          units, state.byzantine, system_.metrics());
    cursor = prev;
    ++hops;
  }
  return hops;
}

KeyValueService::PutResult KeyValueService::put(std::uint64_t key,
                                                std::uint64_t value) {
  OpScope scope(system_.metrics(), "kv.put");
  PutResult result;
  result.home = key_home(key);
  if (!result.home.valid()) return result;

  const auto& state = system_.state();
  const ClusterId contact = state.random_cluster_uniform(system_.rng());
  const std::size_t hops = charge_route(contact, result.home, /*units=*/2);
  if (hops == std::numeric_limits<std::size_t>::max()) return result;

  // The home quorum certifies the write back to the client's contact.
  const auto ack =
      charge_route(result.home, contact, /*units=*/1) !=
      std::numeric_limits<std::size_t>::max();
  const std::size_t byz =
      cluster::byzantine_count(state.cluster_at(result.home),
                               state.byzantine);
  result.certified = ack && 2 * byz < state.cluster_at(result.home).size();
  shards_[result.home][key] = value;
  result.stored = true;
  system_.metrics().add_rounds(2 * hops + 1);
  result.cost = scope.cost();
  return result;
}

KeyValueService::GetResult KeyValueService::get(std::uint64_t key) {
  OpScope scope(system_.metrics(), "kv.get");
  GetResult result;
  result.home = key_home(key);
  if (!result.home.valid()) return result;

  const auto& state = system_.state();
  const ClusterId contact = state.random_cluster_uniform(system_.rng());
  const std::size_t hops = charge_route(contact, result.home, /*units=*/1);
  if (hops == std::numeric_limits<std::size_t>::max()) return result;
  charge_route(result.home, contact, /*units=*/2);  // response

  const auto shard = shards_.find(result.home);
  if (shard != shards_.end()) {
    const auto entry = shard->second.find(key);
    if (entry != shard->second.end()) {
      result.found = true;
      result.value = entry->second;
    }
  }
  const std::size_t byz = cluster::byzantine_count(
      state.cluster_at(result.home), state.byzantine);
  result.authentic = 2 * byz < state.cluster_at(result.home).size();
  system_.metrics().add_rounds(2 * hops);
  result.cost = scope.cost();
  return result;
}

std::size_t KeyValueService::repair() {
  OpScope scope(system_.metrics(), "kv.repair");
  const auto& state = system_.state();
  std::size_t moved = 0;

  std::map<ClusterId, std::map<std::uint64_t, std::uint64_t>> next;
  for (const auto& [cluster, entries] : shards_) {
    const bool cluster_alive = state.has_cluster(cluster);
    for (const auto& [key, value] : entries) {
      const ClusterId home = key_home(key);
      if (!home.valid()) continue;
      if (home == cluster) {
        next[cluster].emplace(key, value);
        continue;
      }
      // Migrate: the old quorum transfers the entry (or, if it dissolved,
      // the new quorum reconstructs it from the re-joined members).
      if (cluster_alive) {
        charge_route(cluster, home, /*units=*/2);
      } else {
        system_.metrics().add_messages(state.cluster_at(home).size());
      }
      next[home][key] = value;
      ++moved;
    }
  }
  shards_ = std::move(next);
  if (moved > 0) system_.metrics().add_rounds(1);
  return moved;
}

std::size_t KeyValueService::stored_entries() const {
  std::size_t total = 0;
  for (const auto& [cluster, entries] : shards_) total += entries.size();
  return total;
}

}  // namespace now::apps
