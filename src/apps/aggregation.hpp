// Aggregation over the cluster overlay (Section 6 lists aggregation among
// the services the clustering makes efficient and robust).
//
// Sum of one value per node: members share values inside their cluster
// (all-to-all), each cluster computes a partial sum, and partial sums
// convergecast along a BFS tree of the overlay to the root cluster. Every
// tree edge carries one logical cluster message, so the total cost is
// O~(n), and honest-majority clusters cannot have their partial sums forged
// in transit.
#pragma once

#include <cstdint>
#include <functional>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::apps {

struct AggregationReport {
  /// Sum of the submitted values, as computed at the root cluster.
  std::uint64_t total = 0;
  /// True iff every cluster's contribution reached the root through
  /// honest-majority relays.
  bool complete = false;
  Cost cost;
};

/// Aggregates value(node) over all live nodes toward the cluster of `root`.
/// Byzantine nodes may submit arbitrary values for themselves (they cannot
/// affect anyone else's contribution); `byzantine_value` supplies what they
/// submit (default: 0).
AggregationReport aggregate_sum(
    core::NowSystem& system, NodeId root,
    const std::function<std::uint64_t(NodeId)>& value,
    std::uint64_t byzantine_value = 0);

}  // namespace now::apps
