#include "apps/broadcast.hpp"

#include <deque>
#include <map>

#include "cluster/intercluster.hpp"

namespace now::apps {

BroadcastReport broadcast(core::NowSystem& system, NodeId source,
                          std::uint64_t value) {
  OpScope scope(system.metrics(), "broadcast");
  BroadcastReport report;
  report.value = value;

  const auto& state = system.state();
  const ClusterId root = state.home_of(source);

  // Source shares the value with its own cluster.
  system.metrics().add_messages(state.cluster_at(root).size());
  std::uint64_t rounds = 1;

  // BFS flood over the overlay. A cluster is reached when some already-
  // reached honest-majority neighbor relays to it.
  std::map<ClusterId, std::size_t> depth;
  depth[root] = 0;
  std::deque<ClusterId> frontier{root};
  std::size_t max_depth = 0;
  while (!frontier.empty()) {
    const ClusterId c = frontier.front();
    frontier.pop_front();
    const std::size_t d = depth.at(c);
    for (const ClusterId nb : state.overlay.neighbors(c)) {
      if (depth.contains(nb)) continue;
      const auto outcome = cluster::cluster_send(
          state.cluster_at(c), state.cluster_at(nb), 1, state.byzantine,
          system.metrics());
      if (!outcome.accepted) continue;  // relay lacked an honest majority
      depth[nb] = d + 1;
      max_depth = std::max(max_depth, d + 1);
      frontier.push_back(nb);
    }
  }

  rounds += max_depth;
  system.metrics().add_rounds(rounds);

  report.clusters_reached = depth.size();
  report.delivered_everywhere = depth.size() == state.num_clusters();
  report.cost = scope.cost();
  return report;
}

Cost naive_broadcast_cost(std::size_t n) {
  // Flooding without structure: every node forwards the value to every
  // other node once; diameter-many rounds collapse to O(1) on the complete
  // knowledge graph.
  const auto nn = static_cast<std::uint64_t>(n);
  return Cost{nn * (nn - 1), 2};
}

}  // namespace now::apps
