// System-wide Byzantine agreement on top of the clustering (Section 6 and
// the King–Saia question quoted there: "can we 1) do Byzantine agreement;
// and 2) maintain small quorums of mostly good processors?").
//
// Every node holds a bit. Clusters agree internally by majority (all-to-all
// inside the cluster), cluster verdicts convergecast to a root cluster
// weighted by cluster size, the root decides the global majority, and the
// decision is broadcast back. Total cost O~(n), versus Theta(n^2)-or-worse
// for running flat Byzantine agreement among all n nodes (the paper's
// single-reliable-process strawman; see baseline/single_cluster.hpp).
#pragma once

#include <cstdint>
#include <functional>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::apps {

struct AgreementReport {
  /// The decided bit.
  bool decision = false;
  /// True iff every cluster verdict reached the root through honest-majority
  /// relays and the decision reached every cluster on the way back.
  bool sound = false;
  Cost cost;
};

/// Decides the majority of input(node) over all live honest nodes.
/// Byzantine nodes vote `byzantine_vote` (their worst case: always the
/// minority side — callers can probe both).
AgreementReport decide_majority(core::NowSystem& system,
                                const std::function<bool(NodeId)>& input,
                                bool byzantine_vote);

}  // namespace now::apps
