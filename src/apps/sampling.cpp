#include "apps/sampling.hpp"

#include "cluster/rand_num.hpp"

namespace now::apps {

SampleReport sample_node(core::NowSystem& system, ClusterId start) {
  OpScope scope(system.metrics(), "sample");
  SampleReport report;

  const auto walk = system.rand_cl_from(start);
  const auto& chosen = system.state().cluster_at(walk.cluster);
  const auto draw = cluster::rand_num_value(
      chosen.size(), chosen.size(), system.params().rand_num_mode,
      system.metrics(), system.rng());
  report.node = chosen.member_at(draw.value);

  system.metrics().add_rounds(walk.cost.rounds + draw.cost.rounds);
  report.cost = scope.cost();
  return report;
}

}  // namespace now::apps
