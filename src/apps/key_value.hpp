// Quorum-backed key-value storage on top of NOW.
//
// The line of work NOW improves on ([6, 7]: "Towards a scalable and robust
// DHT") uses exactly this service as its motivation: keys are assigned to
// clusters (quorums), reads and writes are certified by the > 1/2
// inter-cluster rule, and the storage stays sound while every quorum keeps
// its honest supermajority — which is what NOW maintains under churn.
//
// Key placement uses rendezvous (highest-random-weight) hashing over the
// *current* cluster ids, so splits and merges only move the keys whose
// winning cluster changed; `repair()` re-homes those after topology changes
// (in a real deployment the clusters involved in a split/merge would do
// this inline; the cost charged is the same).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::apps {

class KeyValueService {
 public:
  explicit KeyValueService(core::NowSystem& system) : system_(system) {}

  struct PutResult {
    bool stored = false;
    /// Cluster the key was routed to.
    ClusterId home = ClusterId::invalid();
    /// True iff the home quorum could certify the write (honest majority).
    bool certified = false;
    Cost cost;
  };

  struct GetResult {
    bool found = false;
    /// True iff the answer is attested by an honest-majority quorum (a
    /// Byzantine-majority home could forge it — ground truth check).
    bool authentic = false;
    std::uint64_t value = 0;
    ClusterId home = ClusterId::invalid();
    Cost cost;
  };

  /// Stores key -> value at the rendezvous cluster, routing from a random
  /// contact cluster over the overlay.
  PutResult put(std::uint64_t key, std::uint64_t value);

  /// Looks the key up at its current rendezvous cluster.
  GetResult get(std::uint64_t key);

  /// Re-homes every entry whose rendezvous winner changed (after splits,
  /// merges, or cluster membership drift). Returns the number of moved
  /// entries; migration messages are charged to the system's metrics.
  std::size_t repair();

  [[nodiscard]] std::size_t stored_entries() const;

 private:
  /// Rendezvous winner among live clusters for this key.
  [[nodiscard]] ClusterId key_home(std::uint64_t key) const;

  /// Overlay BFS route cost from `from` to `to`, charged to metrics.
  /// Returns the hop count (SIZE_MAX if unreachable).
  std::size_t charge_route(ClusterId from, ClusterId to,
                           std::uint64_t units);

  core::NowSystem& system_;
  /// shard[cluster][key] = value. Simulation-level truth of what each
  /// cluster's members jointly store.
  std::map<ClusterId, std::map<std::uint64_t, std::uint64_t>> shards_;
};

}  // namespace now::apps
