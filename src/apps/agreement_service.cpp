#include "apps/agreement_service.hpp"

#include <algorithm>

#include "apps/aggregation.hpp"
#include "apps/broadcast.hpp"

namespace now::apps {

AgreementReport decide_majority(core::NowSystem& system,
                                const std::function<bool(NodeId)>& input,
                                bool byzantine_vote) {
  OpScope scope(system.metrics(), "agreement");
  AgreementReport report;

  // Root: the lowest-id live node's cluster (any deterministic rule works —
  // all honest nodes can compute it from their views).
  const auto& state = system.state();
  const auto live = state.live_nodes();
  const NodeId root = *std::min_element(live.begin(), live.end());

  // Count the ones (aggregation charges its own costs into our scope).
  const auto ones = aggregate_sum(
      system, root,
      [&](NodeId id) { return input(id) ? std::uint64_t{1} : 0; },
      byzantine_vote ? std::uint64_t{1} : 0);

  report.decision = 2 * ones.total > state.num_nodes();

  // Broadcast the decision back.
  const auto echo = broadcast(system, root, report.decision ? 1 : 0);

  report.sound = ones.complete && echo.delivered_everywhere;
  report.cost = scope.cost();
  return report;
}

}  // namespace now::apps
