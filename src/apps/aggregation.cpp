#include "apps/aggregation.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "cluster/intercluster.hpp"

namespace now::apps {

AggregationReport aggregate_sum(
    core::NowSystem& system, NodeId root,
    const std::function<std::uint64_t(NodeId)>& value,
    std::uint64_t byzantine_value) {
  OpScope scope(system.metrics(), "aggregate");
  AggregationReport report;

  const auto& state = system.state();
  const ClusterId root_cluster = state.home_of(root);

  // BFS tree rooted at the root cluster.
  std::map<ClusterId, ClusterId> parent;
  std::vector<ClusterId> order;  // BFS order (parents before children)
  parent[root_cluster] = root_cluster;
  std::deque<ClusterId> frontier{root_cluster};
  std::size_t max_depth = 0;
  std::map<ClusterId, std::size_t> depth;
  depth[root_cluster] = 0;
  while (!frontier.empty()) {
    const ClusterId c = frontier.front();
    frontier.pop_front();
    order.push_back(c);
    for (const ClusterId nb : state.overlay.neighbors(c)) {
      if (parent.contains(nb)) continue;
      parent[nb] = c;
      depth[nb] = depth.at(c) + 1;
      max_depth = std::max(max_depth, depth.at(nb));
      frontier.push_back(nb);
    }
  }
  report.complete = order.size() == state.num_clusters();

  // Local phase: members exchange values all-to-all inside each cluster.
  std::map<ClusterId, std::uint64_t> partial;
  for (const ClusterId c : order) {
    const auto members = state.cluster_at(c).members();
    const auto s = static_cast<std::uint64_t>(members.size());
    system.metrics().add_messages(s * (s - 1));
    std::uint64_t sum = 0;
    for (const NodeId m : members) {
      sum += state.byzantine.contains(m) ? byzantine_value : value(m);
    }
    partial[c] = sum;
  }

  // Convergecast: children before parents (reverse BFS order).
  bool all_relays_honest = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const ClusterId c = *it;
    if (c == root_cluster) continue;
    const ClusterId p = parent.at(c);
    const auto outcome = cluster::cluster_send(
        state.cluster_at(c), state.cluster_at(p), 1, state.byzantine,
        system.metrics());
    if (!outcome.accepted) all_relays_honest = false;
    partial[p] += partial[c];
  }
  report.complete = report.complete && all_relays_honest;
  report.total = partial.at(root_cluster);

  system.metrics().add_rounds(1 + max_depth);
  report.cost = scope.cost();
  return report;
}

}  // namespace now::apps
