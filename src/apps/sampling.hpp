// Uniform node sampling (Section 6: "a sampling algorithm relying on our
// protocol would have a polylog(n) message complexity per sample").
//
// randCl picks a cluster with probability |C|/n; randNum inside the chosen
// cluster picks a member uniformly — the composition is a uniform node.
#pragma once

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::apps {

struct SampleReport {
  NodeId node = NodeId::invalid();
  Cost cost;
};

/// Draws one uniformly random live node, charging polylog cost. `start` is
/// the cluster initiating the walk (any live cluster; e.g. the caller's).
SampleReport sample_node(core::NowSystem& system, ClusterId start);

}  // namespace now::apps
