#include "agreement/quorum.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.hpp"

namespace now::agreement {

QuorumResult build_representative_quorum(std::span<const NodeId> nodes,
                                         std::size_t size, Metrics& metrics,
                                         Rng& rng) {
  assert(size > 0 && size <= nodes.size());
  QuorumResult result;
  const auto picks = rng.sample_distinct(nodes.size(), size);
  result.committee.reserve(size);
  for (const std::size_t index : picks) {
    result.committee.push_back(nodes[index]);
  }
  std::sort(result.committee.begin(), result.committee.end());

  result.charged = quorum_cost_model(nodes.size());
  metrics.add_messages(result.charged.messages);
  metrics.add_rounds(result.charged.rounds);
  return result;
}

Cost quorum_cost_model(std::size_t n) {
  if (n <= 1) return Cost{1, 1};
  const double nd = static_cast<double>(n);
  const double messages = std::pow(nd, 1.5) * log_n(nd);
  const double rounds = log_pow(nd, 2.0);
  return Cost{static_cast<std::uint64_t>(std::ceil(messages)),
              static_cast<std::uint64_t>(std::ceil(rounds))};
}

}  // namespace now::agreement
