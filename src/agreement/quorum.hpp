// Representative-cluster selection (second half of NOW's initialization).
//
// The paper delegates this step to the scalable Byzantine agreement protocol
// of King, Lonargan, Saia and Trehan [19], which — against a full-information
// static adversary controlling < 1/3 - eps of the nodes — elects a
// "representative" committee of logarithmic size containing > 2/3 honest
// members whp, at communication cost O~(n * sqrt(n)).
//
// SUBSTITUTION (see DESIGN.md §5): [19] is an external protocol the paper
// cites as a black box; re-deriving it is out of scope, so we model its
// *guarantee*: the committee is a uniformly random subset of the given size
// (which is > 2/3 honest whp by Chernoff when tau <= 1/3 - eps), and we
// charge its published cost. The downstream NOW logic is unaffected: it only
// consumes the committee plus the cost.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace now::agreement {

struct QuorumResult {
  std::vector<NodeId> committee;  // sorted
  Cost charged;
};

/// Elects a representative committee of `size` members from `nodes`,
/// uniformly at random, charging [19]'s O~(n sqrt n) message cost and
/// polylog(n) rounds to `metrics`.
[[nodiscard]] QuorumResult build_representative_quorum(
    std::span<const NodeId> nodes, std::size_t size, Metrics& metrics,
    Rng& rng);

/// The cost model charged by build_representative_quorum (exposed for the
/// initialization-cost bench): ceil(n^{3/2} * ln n) messages,
/// ceil(ln^2 n) rounds.
[[nodiscard]] Cost quorum_cost_model(std::size_t n);

}  // namespace now::agreement
