#include "agreement/discovery.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/transport.hpp"

namespace now::agreement {

namespace {

using net::Message;
using net::Outbox;
using net::Tag;

/// One discovery participant: floods identities it learned last round to
/// every topology neighbor (delta-gossip). Byzantine nodes run the same
/// actor with forwarding disabled — their worst allowed behavior is
/// withholding (identity forging is excluded by assumption), and they still
/// receive and record identities.
class DiscoveryActor final : public net::Actor {
 public:
  DiscoveryActor(NodeId self, std::vector<NodeId> neighbors, bool forwards)
      : self_(self), neighbors_(std::move(neighbors)), forwards_(forwards) {
    known_.insert(self_);
    for (const NodeId peer : neighbors_) known_.insert(peer);
    fresh_.assign(known_.begin(), known_.end());
  }

  [[nodiscard]] const std::set<NodeId>& known() const { return known_; }
  [[nodiscard]] bool learned_last_round() const { return learned_; }

  void on_round(std::size_t /*round*/, std::span<const Message> inbox,
                Outbox& out) override {
    learned_ = false;
    // Rounds after the first replace the initial fresh set (self +
    // neighbors) with whatever last round's messages taught us.
    if (!first_round_) fresh_.clear();
    first_round_ = false;
    for (const Message& m : inbox) {
      if (m.tag != Tag::kDiscovery) continue;
      for (std::size_t i = 0; i < net::word_count(m.payload); ++i) {
        const NodeId id{net::word(m.payload, i)};
        if (known_.insert(id).second) {
          fresh_.push_back(id);
          learned_ = true;
        }
      }
    }
    if (!forwards_ || fresh_.empty()) return;
    std::vector<std::uint64_t> words;
    words.reserve(fresh_.size());
    for (const NodeId id : fresh_) words.push_back(id.value());
    // One unit message per identity transferred over each edge.
    out.multicast(neighbors_, Tag::kDiscovery, net::pack_words(words));
  }

 private:
  NodeId self_;
  std::vector<NodeId> neighbors_;
  bool forwards_;
  bool first_round_ = true;
  bool learned_ = false;
  std::set<NodeId> known_;
  std::vector<NodeId> fresh_;  // learned last round, forwarded this round
};

}  // namespace

DiscoveryResult run_discovery(const graph::Graph& topology,
                              const NodeSet& byzantine, Metrics& metrics) {
  const auto verts = topology.vertices();

  // The flood runs on the round engine against a scratch metrics sink: the
  // engine charges one round per run_round, but the historical accounting
  // (which the cost benches and Figure-1 fits are keyed to) charges a round
  // only when some node learned something new. The mapping is exact: the
  // actor run takes one extra leading round (initial sends, nothing to
  // learn yet) and one extra trailing round (the final messages are
  // processed a round after the last learning), so engine rounds = charged
  // rounds + 2, while unit messages match one for one.
  Metrics scratch;
  net::InProcTransport transport;
  net::RoundEngine engine{scratch, transport};
  std::vector<std::pair<NodeId, const DiscoveryActor*>> actors;
  for (const auto v : verts) {
    const NodeId id{v};
    std::vector<NodeId> neighbors;
    for (const auto u : topology.neighbors(v)) neighbors.emplace_back(u);
    auto actor = std::make_unique<DiscoveryActor>(
        id, std::move(neighbors), /*forwards=*/!byzantine.contains(id));
    actors.emplace_back(id, actor.get());
    engine.add_actor(id, std::move(actor));
  }

  const auto any_learned = [&] {
    for (const auto& [id, actor] : actors) {
      if (actor->learned_last_round()) return true;
    }
    return false;
  };
  engine.run_round();  // initial flood; inboxes are empty, nothing learned
  do {
    engine.run_round();
  } while (any_learned());

  metrics.add_messages(scratch.total().messages);
  metrics.add_rounds(engine.round() - 2);

  DiscoveryResult result;
  result.messages = scratch.total().messages;
  result.rounds = engine.round() - 2;
  for (const auto& [id, actor] : actors) result.knowledge[id] = actor->known();
  result.complete = true;
  for (const auto v : verts) {
    const NodeId id{v};
    if (byzantine.contains(id)) continue;
    if (result.knowledge.at(id).size() != verts.size()) {
      result.complete = false;
      break;
    }
  }
  return result;
}

}  // namespace now::agreement
