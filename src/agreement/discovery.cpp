#include "agreement/discovery.hpp"

#include <vector>

namespace now::agreement {

DiscoveryResult run_discovery(const graph::Graph& topology,
                              const NodeSet& byzantine,
                              Metrics& metrics) {
  DiscoveryResult result;
  const auto verts = topology.vertices();

  // knowledge = everything known; fresh = learned last round (to forward).
  std::map<NodeId, std::set<NodeId>> fresh;
  for (const auto v : verts) {
    const NodeId id{v};
    auto& known = result.knowledge[id];
    known.insert(id);
    for (const auto u : topology.neighbors(v)) known.insert(NodeId{u});
    fresh[id] = known;
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::map<NodeId, std::set<NodeId>> incoming;
    for (const auto v : verts) {
      const NodeId id{v};
      if (byzantine.contains(id)) continue;  // worst case: withhold
      const auto fresh_it = fresh.find(id);
      if (fresh_it == fresh.end() || fresh_it->second.empty()) continue;
      const auto& to_send = fresh_it->second;
      for (const auto u : topology.neighbors(v)) {
        const NodeId peer{u};
        // One unit message per identity transferred over this edge.
        metrics.add_messages(to_send.size());
        result.messages += to_send.size();
        auto& box = incoming[peer];
        box.insert(to_send.begin(), to_send.end());
      }
    }
    std::map<NodeId, std::set<NodeId>> next_fresh;
    for (auto& [id, received] : incoming) {
      auto& known = result.knowledge.at(id);
      auto& nf = next_fresh[id];
      for (const NodeId learned : received) {
        if (known.insert(learned).second) {
          nf.insert(learned);
          progressed = true;
        }
      }
    }
    fresh = std::move(next_fresh);
    if (progressed) {
      metrics.add_rounds(1);
      ++result.rounds;
    }
  }

  result.complete = true;
  for (const auto v : verts) {
    const NodeId id{v};
    if (byzantine.contains(id)) continue;
    if (result.knowledge.at(id).size() != verts.size()) {
      result.complete = false;
      break;
    }
  }
  return result;
}

}  // namespace now::agreement
