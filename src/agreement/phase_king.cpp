#include "agreement/phase_king.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "net/network.hpp"
#include "net/transport.hpp"

namespace now::agreement {

namespace {

using net::make_words;
using net::Message;
using net::Outbox;
using net::Tag;
using net::word;

std::size_t max_faults(std::size_t n) { return n == 0 ? 0 : (n - 1) / 3; }

/// Members other than self (send targets; own value is counted locally).
std::vector<NodeId> peers_of(std::span<const NodeId> members, NodeId self) {
  std::vector<NodeId> peers;
  peers.reserve(members.size() - 1);
  for (const NodeId m : members)
    if (m != self) peers.push_back(m);
  return peers;
}

class HonestKingActor final : public net::Actor {
 public:
  HonestKingActor(NodeId self, std::vector<NodeId> members,
                  std::uint64_t input)
      : self_(self),
        members_(std::move(members)),
        peers_(peers_of(members_, self)),
        n_(members_.size()),
        f_(max_faults(members_.size())),
        x_(input) {}

  [[nodiscard]] std::uint64_t value() const { return x_; }

  void on_round(std::size_t round, std::span<const Message> inbox,
                Outbox& out) override {
    const std::size_t phases = f_ + 1;
    const std::size_t phase = round / 3;
    const std::size_t sub = round % 3;
    if (phase > phases) return;  // protocol over

    switch (sub) {
      case 0: {
        // Apply the previous phase's king value, then (if the protocol is
        // still running) broadcast value(x). Only the *designated* king of
        // that phase is listened to — anyone can put kKing on the wire, but
        // channels are private and authenticated, so impersonation fails.
        if (phase > 0) {
          const NodeId king = members_[(phase - 1) % n_];
          std::uint64_t king_value = 0;
          bool king_seen = false;
          for (const auto& m : inbox) {
            if (m.tag == Tag::kKing && m.from == king) {
              king_value = word(m.payload, 0);
              king_seen = true;
            }
          }
          if (proposals_seen_ < n_ - f_ && king_seen) x_ = king_value;
        }
        if (phase < phases) out.multicast(peers_, Tag::kValue, make_words({x_}));
        break;
      }
      case 1: {
        // Tally value(y) votes — one per sender (dedup models authenticated
        // channels), own value included; propose the value that reached the
        // n - f threshold, if any. At most one value can.
        std::map<NodeId, std::uint64_t> votes;
        for (const auto& m : inbox)
          if (m.tag == Tag::kValue) votes[m.from] = word(m.payload, 0);
        std::map<std::uint64_t, std::size_t> counts;
        counts[x_] += 1;
        for (const auto& [from, value] : votes) counts[value] += 1;
        proposed_.reset();
        for (const auto& [value, count] : counts) {
          if (count >= n_ - f_) {
            proposed_ = value;
            break;
          }
        }
        if (proposed_) out.multicast(peers_, Tag::kPropose, make_words({*proposed_}));
        break;
      }
      case 2: {
        // Tally proposals (one per sender, own included); adopt a value
        // proposed more than f times — at most one value can be (honest
        // proposals never conflict and the f Byzantine members alone cannot
        // clear the bar). The king check below must count proposals *for
        // the adopted value*: counting all proposals would let equivocators
        // inflate the total and keep a minority-supported value alive past
        // an honest king's phase.
        std::map<NodeId, std::uint64_t> votes;
        for (const auto& m : inbox)
          if (m.tag == Tag::kPropose) votes[m.from] = word(m.payload, 0);
        std::map<std::uint64_t, std::size_t> counts;
        if (proposed_) counts[*proposed_] += 1;
        for (const auto& [from, value] : votes) counts[value] += 1;
        for (const auto& [value, count] : counts) {
          if (count > f_) {
            x_ = value;
            break;
          }
        }
        const auto support = counts.find(x_);
        proposals_seen_ = support == counts.end() ? 0 : support->second;
        if (members_[phase % n_] == self_) {
          out.multicast(peers_, Tag::kKing, make_words({x_}));
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  NodeId self_;
  std::vector<NodeId> members_;
  std::vector<NodeId> peers_;
  std::size_t n_;
  std::size_t f_;
  std::uint64_t x_;
  std::optional<std::uint64_t> proposed_;
  std::size_t proposals_seen_ = 0;
};

class ByzantineKingActor final : public net::Actor {
 public:
  ByzantineKingActor(NodeId self, std::vector<NodeId> members,
                     ByzBehavior behavior, Rng rng)
      : self_(self),
        members_(std::move(members)),
        peers_(peers_of(members_, self)),
        behavior_(behavior),
        rng_(rng) {}

  void on_round(std::size_t round, std::span<const Message> /*inbox*/,
                Outbox& out) override {
    const std::size_t n = members_.size();
    const std::size_t phases = max_faults(n) + 1;
    const std::size_t phase = round / 3;
    const std::size_t sub = round % 3;
    if (phase >= phases && !(phase == phases && sub == 0)) return;
    if (behavior_ == ByzBehavior::kSilent) return;

    const Tag tag = sub == 0   ? Tag::kValue
                    : sub == 1 ? Tag::kPropose
                               : Tag::kKing;
    // Only the scheduled king's kKing messages matter, but flooding extra
    // king messages is exactly the kind of misbehavior we want to exercise.
    switch (behavior_) {
      case ByzBehavior::kRandomLies: {
        const std::uint64_t v = rng_.uniform(8);
        out.multicast(peers_, tag, make_words({v}));
        break;
      }
      case ByzBehavior::kEquivocate: {
        for (const NodeId peer : peers_) {
          out.send(peer, tag, make_words({rng_.uniform(8)}));
        }
        break;
      }
      case ByzBehavior::kCollude: {
        out.multicast(peers_, tag, make_words({kColludeValue}));
        break;
      }
      case ByzBehavior::kSilent:
        break;
    }
  }

  static constexpr std::uint64_t kColludeValue = 0xBADull;

 private:
  NodeId self_;
  std::vector<NodeId> members_;
  std::vector<NodeId> peers_;
  ByzBehavior behavior_;
  Rng rng_;
};

}  // namespace

PhaseKingResult run_phase_king(std::span<const NodeId> members,
                               const NodeSet& byzantine,
                               const std::map<NodeId, std::uint64_t>& inputs,
                               ByzBehavior behavior, Metrics& metrics,
                               Rng& rng) {
  assert(!members.empty());
  std::vector<NodeId> sorted(members.begin(), members.end());
  std::sort(sorted.begin(), sorted.end());

  const std::uint64_t messages_before = metrics.total().messages;

  net::InProcTransport transport;
  net::RoundEngine network{metrics, transport};
  std::vector<std::pair<NodeId, const HonestKingActor*>> honest;
  for (const NodeId id : sorted) {
    if (byzantine.contains(id)) {
      network.add_actor(id, std::make_unique<ByzantineKingActor>(
                                id, sorted, behavior, rng.fork()));
    } else {
      auto actor =
          std::make_unique<HonestKingActor>(id, sorted, inputs.at(id));
      honest.emplace_back(id, actor.get());
      network.add_actor(id, std::move(actor));
    }
  }

  const std::size_t phases = max_faults(sorted.size()) + 1;
  const std::size_t total_rounds = 3 * phases + 1;
  network.run_rounds(total_rounds);

  PhaseKingResult result;
  result.rounds = total_rounds;
  result.messages = metrics.total().messages - messages_before;
  for (const auto& [id, actor] : honest) result.decisions[id] = actor->value();
  return result;
}

Cost phase_king_cost_bound(std::size_t n) {
  if (n <= 1) return Cost{0, 1};
  const std::size_t phases = max_faults(n) + 1;
  const std::uint64_t rounds = 3 * phases + 1;
  return Cost{rounds * static_cast<std::uint64_t>(n) *
                  static_cast<std::uint64_t>(n - 1),
              rounds};
}

}  // namespace now::agreement
