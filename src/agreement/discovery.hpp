// Network discovery (first half of NOW's initialization, Section 3.2).
//
// Starting from local knowledge (each node knows its neighbors in the
// initial topology), nodes flood identity sets until every honest node knows
// the identifiers of all nodes. The paper's guarantees, which we reproduce:
//   * terminates after at most the diameter of the subgraph induced by edges
//     adjacent to at least one honest node (Byzantine nodes may stay silent
//     but cannot forge identities or disconnect the honest component);
//   * communication cost O(n * e), worst case O(n^3) = O(N^{3/2}) at
//     n = sqrt(N) on dense topologies (Figure 1).
//
// Implemented as delta-gossip actors on net::RoundEngine (each round a node
// forwards only identities it learned last round — each id crosses each
// edge at most once per direction, giving the O(n * e) bound). Unit cost:
// one message unit per identity transferred; the charged message/round
// totals are bit-identical to the historical direct-loop implementation
// (tests/agreement/discovery_test.cpp pins golden values).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/metrics.hpp"
#include "common/node_set.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace now::agreement {

struct DiscoveryResult {
  /// Identity sets learned by each node (honest semantics; Byzantine nodes
  /// also appear as keys but their sets are whatever they chose to track).
  std::map<NodeId, std::set<NodeId>> knowledge;
  /// Rounds until global quiescence.
  std::size_t rounds = 0;
  /// Unit messages (identities) transferred.
  std::uint64_t messages = 0;
  /// True iff every honest node learned every identity.
  bool complete = false;
};

/// Runs discovery on `topology` (vertices are NodeId values). Byzantine nodes
/// never forward anything (their worst allowed behavior: withholding —
/// identity forging is excluded by assumption). Charges cost to `metrics`.
[[nodiscard]] DiscoveryResult run_discovery(const graph::Graph& topology,
                                            const NodeSet& byzantine,
                                            Metrics& metrics);

}  // namespace now::agreement
