// Byzantine agreement via the King algorithm (Berman–Garay–Perry style),
// tolerating f < n/3 Byzantine members — the resilience the paper assumes for
// its intra-cluster agreement and initialization ("any Byzantine agreement
// protocol can be used", Section 3.2).
//
// One phase (3 rounds), f+1 phases with distinct kings:
//   round 1: broadcast value(x).
//   round 2: if some y was received >= n - f times, broadcast propose(y).
//   round 3: if some z was proposed  >  f times, adopt x = z; the phase's
//            king broadcasts king(x).
//   phase end: nodes that saw fewer than n - f proposals adopt the king's
//            value.
// With n > 3f at most one value can gather n - f value-votes, so honest
// proposals never conflict; any phase with an honest king ends in agreement,
// and agreement persists.
//
// The message-level implementation runs on net::RoundEngine over an
// InProcTransport with injectable Byzantine behaviors;
// `phase_king_cost_bound` gives the closed-form cost the bulk-accounting
// path charges, and tests assert the measured cost never exceeds it.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/node_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace now::agreement {

/// How Byzantine members misbehave inside the agreement protocol.
enum class ByzBehavior {
  kSilent,      // never send anything
  kRandomLies,  // consistent but random values each round
  kEquivocate,  // different random value per recipient (worst for thresholds)
  kCollude,     // all byzantine members push one common adversarial value
};

struct PhaseKingResult {
  /// Decision of every honest member (tests assert they are all equal).
  std::map<NodeId, std::uint64_t> decisions;
  /// Rounds consumed (also charged to the metrics sink).
  std::size_t rounds = 0;
  /// Unit messages sent by all members (honest and Byzantine).
  std::uint64_t messages = 0;
};

/// Runs the King algorithm among `members` (ids must be distinct; kings are
/// taken in ascending id order). `inputs` must contain a value for every
/// member; Byzantine members ignore theirs. Requires |byzantine| < n/3 for
/// the agreement guarantee (the function itself runs for any split and lets
/// tests observe the failure mode).
[[nodiscard]] PhaseKingResult run_phase_king(
    std::span<const NodeId> members, const NodeSet& byzantine,
    const std::map<NodeId, std::uint64_t>& inputs, ByzBehavior behavior,
    Metrics& metrics, Rng& rng);

/// Closed-form upper bound on the cost of one King-algorithm run with n
/// members: 3(f+1) + 1 rounds and <= n(n-1) unit messages per round.
[[nodiscard]] Cost phase_king_cost_bound(std::size_t n);

}  // namespace now::agreement
