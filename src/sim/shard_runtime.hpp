// Multi-process sharded runtime (DESIGN.md §12).
//
// Hosts one independent NowSystem per SHARD and drives all shards in
// lockstep time steps through a coordinator, over any net::Transport — the
// same actor code runs single-process (InProcTransport, the reference
// deployment) and multi-process (one worker process per shard over
// SocketTransport). Each shard runs a fixed churn schedule (batch_ops
// joins + as many leaves per step, victims drawn from a per-shard driver
// stream) and after every step reports a CHAINED DIGEST of its full
// deterministic trajectory: fnv64 over (previous digest, step, invariant
// sample, cumulative costs, driver and system RNG states). The coordinator
// merges per-step digests from all shards into one run digest, so two
// deployments agree on the run digest iff every shard's whole trajectory
// is bit-identical — the equivalence the transport layer must preserve.
//
// The step protocol is self-stabilizing under message faults and worker
// crash/restore: a worker runs step s only once the coordinator has
// acknowledged step s (GO watermark), retransmits its newest digest until
// acknowledged, and a worker respawned from a checkpoint simply replays
// steps from the checkpoint forward — replayed digests are bit-equal, and
// the coordinator deduplicates (and cross-checks) repeated reports. Fault
// free, a step costs exactly 2 rounds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/now.hpp"
#include "core/params.hpp"
#include "net/faulty_transport.hpp"
#include "net/network.hpp"
#include "net/socket_transport.hpp"

namespace now::sim {

/// Static description of a sharded run. All processes must be handed an
/// identical spec (the digest covers everything the spec influences).
struct ShardSpec {
  std::size_t num_shards = 2;
  std::size_t steps = 12;      // lockstep time steps per shard
  std::size_t batch_ops = 3;   // joins (and leaves) per shard per step
  std::size_t n0 = 48;         // initial nodes per shard
  double byz_fraction = 0.05;  // initial Byzantine fraction per shard
  std::uint64_t seed = 1;
  core::NowParams params;

  std::size_t checkpoint_every = 0;  // steps between checkpoints; 0 = off
  std::string checkpoint_dir;        // required when checkpoint_every > 0

  /// Barrier-round backstop; 0 derives a generous default from `steps`.
  std::size_t round_cap = 0;

  [[nodiscard]] std::size_t effective_round_cap() const {
    return round_cap != 0 ? round_cap : 10 * steps + 200;
  }
};

/// Per-step statistics merged across shards (sums, except min/max fields).
struct ShardStepStats {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_clusters = 0;
  std::uint64_t min_cluster = 0;
  std::uint64_t max_cluster = 0;
  std::uint64_t compromised = 0;
  double worst_byz = 0.0;
  std::uint64_t messages = 0;  // cumulative protocol cost, all shards
  std::uint64_t rounds = 0;
};

struct ShardRunResult {
  std::uint64_t run_digest = 0;
  std::vector<std::uint64_t> step_digests;  // merged digest per step
  std::size_t steps_completed = 0;
  std::size_t engine_rounds = 0;  // rounds the coordinator's engine ran
  ShardStepStats final_stats;
};

/// One shard's simulation state: a private NowSystem + metrics + churn
/// driver, the digest chain, and checkpoint/restore.
class ShardSim {
 public:
  ShardSim(const ShardSpec& spec, std::size_t shard);

  /// Executes the next time step and returns the digest report payload
  /// (the words a ShardWorkerActor sends as Tag::kShardDigest).
  void run_step();

  /// Steps completed so far.
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::size_t shard() const { return shard_; }

  /// Digest report for the newest completed step (empty before step 0
  /// completes). Layout: shard, completed, digest, num_nodes,
  /// num_clusters, min_cluster, max_cluster, compromised,
  /// bit_cast(worst_byz), messages, rounds.
  [[nodiscard]] const std::vector<std::uint64_t>& report() const {
    return report_;
  }

  /// Atomically (write + rename) checkpoints the full shard state to
  /// `<dir>/shard_<shard>.ckpt`.
  void save_checkpoint(const std::string& dir) const;

  /// Restores a shard from save_checkpoint output. Throws
  /// core::SnapshotError if absent/corrupt or the spec's params differ.
  [[nodiscard]] static std::unique_ptr<ShardSim> load_checkpoint(
      const ShardSpec& spec, std::size_t shard, const std::string& dir);

 private:
  ShardSpec spec_;
  std::size_t shard_;
  Metrics metrics_;
  core::NowSystem system_;
  Rng driver_rng_;
  std::size_t completed_ = 0;
  std::uint64_t digest_ = 0;
  // Cost totals carried across checkpoint restore (metrics_ restarts at
  // zero after a restore; the digest needs cumulative values).
  std::uint64_t messages_base_ = 0;
  std::uint64_t rounds_base_ = 0;
  std::vector<std::uint64_t> report_;
};

/// Worker actor: owns one ShardSim, advances it against the coordinator's
/// GO watermark, retransmits digests until acknowledged, optionally
/// crashes the whole process (_exit) after a given step — the crash-
/// recovery hook the multi-process tests and the now_shard tool use.
class ShardWorkerActor final : public net::Actor {
 public:
  /// `crash_after`: if non-zero, the process calls _exit(kCrashExitCode)
  /// immediately after completing that step count (post-checkpoint).
  ShardWorkerActor(const ShardSpec& spec, std::unique_ptr<ShardSim> sim,
                   std::size_t crash_after = 0);

  static constexpr int kCrashExitCode = 3;

  void on_round(std::size_t round, std::span<const net::Message> inbox,
                net::Outbox& out) override;

  [[nodiscard]] bool done() const { return done_; }

 private:
  ShardSpec spec_;
  std::unique_ptr<ShardSim> sim_;
  std::size_t crash_after_;
  std::size_t go_ = 0;  // steps the coordinator has acknowledged
  bool done_ = false;
};

/// Coordinator actor: collects digests, merges complete steps, chains the
/// run digest, broadcasts the GO watermark each round, and ends the run
/// with Tag::kShardBye. Throws TransportError-style failures as
/// std::runtime_error on digest mismatch (two reports for the same
/// (shard, step) disagreeing means determinism is broken).
class ShardCoordinatorActor final : public net::Actor {
 public:
  explicit ShardCoordinatorActor(const ShardSpec& spec);

  void on_round(std::size_t round, std::span<const net::Message> inbox,
                net::Outbox& out) override;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ShardRunResult& result() const { return result_; }

 private:
  struct PendingStep {
    std::vector<std::uint64_t> digest;  // per shard; 0 = missing
    std::vector<std::vector<std::uint64_t>> report;  // per shard payload
    std::size_t have = 0;
  };

  ShardSpec spec_;
  std::size_t merged_ = 0;  // steps fully merged (the GO watermark)
  bool finished_ = false;
  bool bye_sent_ = false;
  std::vector<PendingStep> pending_;  // indexed by step
  ShardRunResult result_;
};

/// Fixed endpoint naming: coordinator is node 0, shard s is node s + 1.
[[nodiscard]] inline NodeId coordinator_node() { return NodeId{0}; }
[[nodiscard]] inline NodeId shard_node(std::size_t shard) {
  return NodeId{shard + 1};
}

/// Runs the full sharded protocol single-process over InProcTransport
/// (optionally under a FaultyTransport with `faults`). The reference
/// deployment every multi-process run must reproduce bit-exactly.
[[nodiscard]] ShardRunResult run_single_process(
    const ShardSpec& spec, const net::FaultPlan* faults = nullptr,
    std::uint64_t fault_seed = 0);

/// Drives one worker process's engine over `transport` until the
/// coordinator ends the run. Resumes from a checkpoint when one exists
/// (crash recovery); `crash_after` forwards to ShardWorkerActor.
void run_worker(const ShardSpec& spec, std::size_t shard,
                net::Transport& transport, std::size_t crash_after = 0);

/// Drives the coordinator's engine over `transport` in the hub process of
/// a multi-process run, until the run completes AND every worker process
/// disconnected (the coordinator re-broadcasts the end-of-run notice until
/// then, which makes termination robust to faulted messages). `hub` is the
/// underlying socket hub (`transport` may be a fault decorator over it);
/// `between_rounds` runs after every round with the coordinator's
/// finished flag — the now_shard tool uses it to reap and respawn crashed
/// workers (and to NOT respawn on orderly end-of-run exits).
[[nodiscard]] ShardRunResult run_hub(
    const ShardSpec& spec, net::Transport& transport, net::SocketHub& hub,
    const std::function<void(bool finished)>& between_rounds = {});

}  // namespace now::sim
