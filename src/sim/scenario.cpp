#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>

#include "common/math_util.hpp"
#include "sim/table.hpp"
#include "sim/trace.hpp"

namespace now::sim {

namespace {

/// Forced-leave DoS victims (ScenarioConfig::batch_leave_quota): honest
/// members of the worst (highest Byzantine fraction) cluster first — the
/// batched form of the ForcedLeaveAdversary, stripping the cluster's honest
/// majority while corrupted joiners queue up — then members of the smallest
/// cluster, pushing it toward the merge threshold (restructuring DoS).
/// Returns the number of victims appended (<= quota).
std::size_t pick_forced_leave_victims(const core::NowSystem& system,
                                      std::size_t quota,
                                      std::vector<NodeId>& victims) {
  const auto& state = system.state();
  if (quota == 0 || system.num_clusters() < 2) return 0;
  ClusterId worst = ClusterId::invalid();
  ClusterId smallest = ClusterId::invalid();
  double worst_fraction = -1.0;
  std::size_t smallest_size = static_cast<std::size_t>(-1);
  // One sorted Byzantine copy for the whole sweep (streams slab extents —
  // see cluster.hpp's sorted-span byzantine_fraction overload).
  std::vector<NodeId> sorted_byz(state.byzantine.begin(),
                                 state.byzantine.end());
  std::sort(sorted_byz.begin(), sorted_byz.end());
  for (const ClusterId c : state.cluster_ids()) {
    const auto& cl = state.cluster_at(c);
    const double p = cluster::byzantine_fraction(cl, sorted_byz);
    if (p > worst_fraction) {
      worst_fraction = p;
      worst = c;
    }
    if (cl.size() < smallest_size) {
      smallest_size = cl.size();
      smallest = c;
    }
  }
  const std::size_t before = victims.size();
  for (const NodeId member : state.cluster_at(worst).members()) {
    if (victims.size() - before >= quota) break;
    if (!state.byzantine.contains(member)) victims.push_back(member);
  }
  if (smallest != worst) {
    for (const NodeId member : state.cluster_at(smallest).members()) {
      if (victims.size() - before >= quota) break;
      victims.push_back(member);
    }
  }
  return victims.size() - before;
}

/// What one adversarial batch step did, beyond the state change: the
/// forced-leave count, whether the global corruption budget clipped the
/// requested volume, and the engine's OpReport (resolve replays / spills
/// feed the coverage signature).
struct BatchOutcome {
  std::size_t forced = 0;
  bool budget_saturated = false;
  core::OpReport report;
};

/// One time step of the batched adversary: corrupt a batch_byz_fraction of
/// the joiners (within the static adversary's global budget tau * n),
/// force up to batch_leave_quota leave victims out of the worst/smallest
/// clusters, and, under BatchPlacement::kTargeted, churn the adversary's
/// own misplaced nodes — Byzantine nodes outside the currently
/// most-corrupted cluster leave so their replacements can re-roll the
/// placement walk, the batched form of Section 3.3's join-leave attack.
BatchOutcome run_adversarial_batch(const ScenarioConfig& config,
                                   const adversary::Adversary& adversary,
                                   core::NowSystem& system, std::size_t ops,
                                   Rng& rng) {
  const auto& state = system.state();
  const double budget =
      adversary.tau() * static_cast<double>(system.num_nodes() + ops);
  const std::size_t budget_left = static_cast<std::size_t>(std::max(
      0.0, std::floor(budget) -
               static_cast<double>(state.byzantine_total())));
  const auto requested = static_cast<std::size_t>(
      std::floor(config.batch_byz_fraction * static_cast<double>(ops)));
  const std::size_t byz_joins = std::min({ops, budget_left, requested});

  BatchOutcome outcome;
  outcome.budget_saturated = requested > 0 && byz_joins < requested;

  std::vector<NodeId> victims;
  outcome.forced = pick_forced_leave_victims(
      system, std::min(config.batch_leave_quota, ops), victims);
  const std::size_t forced = outcome.forced;
  if (config.batch_placement == BatchPlacement::kTargeted &&
      state.byzantine_total() > 0 && system.num_clusters() > 1) {
    // Full knowledge: target the cluster that is already worst. Sorted
    // Byzantine copy once, extent-streaming counts per cluster.
    ClusterId target = ClusterId::invalid();
    double worst = -1.0;
    std::vector<NodeId> sorted_byz(state.byzantine.begin(),
                                   state.byzantine.end());
    std::sort(sorted_byz.begin(), sorted_byz.end());
    for (const ClusterId c : state.cluster_ids()) {
      const double p =
          cluster::byzantine_fraction(state.cluster_at(c), sorted_byz);
      if (p > worst) {
        worst = p;
        target = c;
      }
    }
    // Churn the adversary's misplaced nodes first (deterministic NodeSet
    // order), keep the ones that already landed in the target; skip any
    // the forced-leave quota already claimed.
    for (const NodeId b : state.byzantine.items()) {
      if (victims.size() >= ops) break;
      if (state.home_of(b) == target) continue;
      if (std::find(victims.begin(), victims.end(), b) != victims.end()) {
        continue;
      }
      victims.push_back(b);
    }
    // Fill the quota with uniform honest victims, distinct from every
    // earlier pick (forced honest victims count against the honest pool).
    std::size_t honest_victims = 0;
    for (const NodeId v : victims) {
      if (!state.byzantine.contains(v)) ++honest_victims;
    }
    const std::size_t honest_pool =
        system.num_nodes() - state.byzantine_total();
    while (victims.size() < ops && honest_victims < honest_pool) {
      const NodeId candidate = state.random_honest_node(rng);
      if (std::find(victims.begin(), victims.end(), candidate) ==
          victims.end()) {
        victims.push_back(candidate);
        ++honest_victims;
      }
    }
  } else if (forced == 0) {
    victims = state.sample_distinct_nodes(rng, ops);
  } else {
    // Uniform remainder (Byzantine victims allowed, as in the quota-less
    // path), distinct from the forced picks.
    while (victims.size() < ops) {
      const NodeId candidate = state.random_node(rng);
      if (std::find(victims.begin(), victims.end(), candidate) ==
          victims.end()) {
        victims.push_back(candidate);
      }
    }
  }
  outcome.report =
      system.step_parallel_mixed(ops, byz_joins, victims, config.shards)
          .second;
  return outcome;
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config,
                            adversary::Adversary& adversary,
                            Metrics& metrics) {
  core::NowSystem system{config.params, metrics, config.seed};
  Rng driver_rng{config.seed ^ 0xC0FFEE5EEDULL};

  const std::size_t n0 =
      config.n0 > 0 ? config.n0
                    : static_cast<std::size_t>(
                          isqrt(config.params.max_size));
  const double byz_fraction = config.initial_byz_fraction >= 0.0
                                  ? config.initial_byz_fraction
                                  : adversary.tau();
  const auto byz0 = static_cast<std::size_t>(
      std::floor(byz_fraction * static_cast<double>(n0)));

  ScenarioResult result;
  // Split/merge totals are attributed to THIS scenario: counts already in
  // the caller's metrics (or restored from a checkpoint) are offset out.
  std::size_t start_step = 0;
  std::size_t splits_offset = 0;
  std::size_t merges_offset = 0;
  const OperationId split_op = metrics.intern("split");
  const OperationId merge_op = metrics.intern("merge");
  const std::size_t splits_at_entry = metrics.operation_count(split_op);
  const std::size_t merges_at_entry = metrics.operation_count(merge_op);

  if (!config.resume_from.empty()) {
    const ScenarioResume resume = load_scenario_checkpoint(
        config, adversary, system, driver_rng, result, config.resume_from);
    start_step = resume.step;
    splits_offset = resume.splits_so_far;
    merges_offset = resume.merges_so_far;
  } else {
    system.initialize(n0, byz0, config.topology);
  }

  // Traces must cover the whole run to be replayable, so resumed runs
  // and halt-and-checkpoint runs (which stop before the horizon) do not
  // record — a half-written trace would fail replay anyway.
  std::unique_ptr<TraceRecorder> recorder;
  if (!config.trace_path.empty() && start_step == 0 &&
      config.halt_at == 0) {
    recorder = std::make_unique<TraceRecorder>(config, n0, byz0,
                                               adversary.name());
    system.set_trace_sink(recorder.get());
  }

  const auto sample_now = [&](std::size_t step) {
    const auto report = system.check();
    InvariantSample s;
    s.step = step;
    s.num_nodes = report.num_nodes;
    s.num_clusters = report.num_clusters;
    s.min_cluster_size = report.min_cluster_size;
    s.max_cluster_size = report.max_cluster_size;
    s.worst_byz_fraction = report.worst_byz_fraction;
    s.compromised_clusters = report.compromised_clusters;
    s.overlay_max_degree = report.overlay_max_degree;
    s.overlay_connected = report.overlay_connected;
    result.samples.push_back(s);
    result.peak_byz_fraction =
        std::max(result.peak_byz_fraction, s.worst_byz_fraction);
    if (s.compromised_clusters > 0 && !result.ever_compromised) {
      result.ever_compromised = true;
      result.first_compromise_step = step;
    }
    if (recorder != nullptr) recorder->record_sample(s);
  };
  const auto finalize = [&] {
    result.total_splits = splits_offset +
                          metrics.operation_count(split_op) -
                          splits_at_entry;
    result.total_merges = merges_offset +
                          metrics.operation_count(merge_op) -
                          merges_at_entry;
    result.final_nodes = system.num_nodes();
    result.final_clusters = system.num_clusters();
    result.final_byzantine = system.state().byzantine_total();
    result.total_compactions = system.state().member_slab().compaction_count();
  };
  const auto checkpoint_now = [&](std::size_t step) {
    save_scenario_checkpoint(
        config, adversary, system, driver_rng, result, step,
        splits_offset + metrics.operation_count(split_op) - splits_at_entry,
        merges_offset + metrics.operation_count(merge_op) - merges_at_entry,
        config.checkpoint_path);
  };

  // Trace-v2 embedded-checkpoint cadence: auto mode targets ~8 checkpoints
  // across the horizon so bisection cost stays O(log steps) without
  // ballooning short traces.
  const std::size_t trace_ckpt_every =
      config.trace_checkpoint_every > 0
          ? config.trace_checkpoint_every
          : std::max<std::size_t>(8, config.steps / 8);

  if (start_step == 0) sample_now(0);
  for (std::size_t t = start_step + 1; t <= config.steps; ++t) {
    if (recorder != nullptr) recorder->begin_step(t);
    if (config.batch_ops > 0) {
      // Joins always match leaves so the batch is size-neutral; on a tiny
      // network the whole batch shrinks rather than going joins-heavy.
      const std::size_t ops = std::min(
          config.batch_ops,
          system.num_nodes() > 2 ? system.num_nodes() - 2 : 0);
      if (config.batch_byz_fraction > 0.0 || config.batch_leave_quota > 0) {
        const BatchOutcome outcome =
            run_adversarial_batch(config, adversary, system, ops, driver_rng);
        result.total_forced_leaves += outcome.forced;
        result.max_step_forced_leaves =
            std::max(result.max_step_forced_leaves, outcome.forced);
        result.total_resolve_replays += outcome.report.resolve_replays;
        result.total_stage2_spills += outcome.report.stage2_spills;
        if (outcome.budget_saturated) ++result.budget_saturated_steps;
      } else {
        const std::vector<NodeId> victims =
            system.state().sample_distinct_nodes(driver_rng, ops);
        const auto report =
            system
                .step_parallel(ops, victims,
                               /*byzantine_joiners=*/false, config.shards)
                .second;
        result.total_resolve_replays += report.resolve_replays;
        result.total_stage2_spills += report.stage2_spills;
      }
    } else {
      adversary.step(system, t, driver_rng);
    }
    if (t % config.sample_every == 0 || t == config.steps) sample_now(t);
    if (recorder != nullptr && config.trace_format == 0 &&
        t % trace_ckpt_every == 0 && t != config.steps) {
      // Embed a full system snapshot plus the run's partial aggregates, so
      // a replay seeked here can reproduce the end summary exactly.
      recorder->record_checkpoint(
          t, system,
          splits_offset + metrics.operation_count(split_op) - splits_at_entry,
          merges_offset + metrics.operation_count(merge_op) - merges_at_entry,
          result);
    }
    if (!config.checkpoint_path.empty()) {
      if (config.halt_at == t) {
        // Checkpoint-and-stop: the partial result reports the state at the
        // halt; a --resume run completes the horizon bit-identically.
        checkpoint_now(t);
        system.set_trace_sink(nullptr);
        result.halted_at_step = t;
        finalize();
        return result;
      }
      if (config.checkpoint_every > 0 && t % config.checkpoint_every == 0) {
        checkpoint_now(t);
      }
    }
  }

  finalize();
  if (recorder != nullptr) {
    system.set_trace_sink(nullptr);
    recorder->finish(result, config.trace_path);
  }
  return result;
}

void write_samples_csv(const ScenarioResult& result, std::ostream& os) {
  Table table({"step", "nodes", "clusters", "min_cluster", "max_cluster",
               "worst_byz_fraction", "compromised", "overlay_max_degree",
               "overlay_connected"});
  for (const auto& s : result.samples) {
    table.add_row({Table::fmt(std::uint64_t{s.step}),
                   Table::fmt(std::uint64_t{s.num_nodes}),
                   Table::fmt(std::uint64_t{s.num_clusters}),
                   Table::fmt(std::uint64_t{s.min_cluster_size}),
                   Table::fmt(std::uint64_t{s.max_cluster_size}),
                   Table::fmt(s.worst_byz_fraction, 4),
                   Table::fmt(std::uint64_t{s.compromised_clusters}),
                   Table::fmt(std::uint64_t{s.overlay_max_degree}),
                   s.overlay_connected ? "1" : "0"});
  }
  table.write_csv(os);
}

}  // namespace now::sim
