#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

namespace now::sim {

namespace {

constexpr char kTraceMagic[] = "NOWTRAC1";
constexpr char kCheckpointMagic[] = "NOWCKPT1";

/// Trace frame tags. v1 defined 1..6; v2 appends kFrameCheckpoint. The
/// footer is NOT a frame — it lives after the end frame and is located
/// via the trailing offset word, never by sequential scan.
enum Frame : std::uint8_t {
  kFrameStep = 1,
  kFrameJoin = 2,
  kFrameLeave = 3,
  kFrameBatch = 4,
  kFrameSample = 5,
  kFrameEnd = 6,
  kFrameCheckpoint = 7,
};

/// Footer magic ("IDX2" little-endian) — a cheap tripwire: a trailing
/// offset that lands anywhere but a real footer fails here instead of
/// misparsing entries.
constexpr std::uint32_t kFooterMagic = 0x32584449;

void write_sample(core::SnapshotWriter& w, const InvariantSample& s) {
  w.u64(s.step);
  w.u64(s.num_nodes);
  w.u64(s.num_clusters);
  w.u64(s.min_cluster_size);
  w.u64(s.max_cluster_size);
  w.f64(s.worst_byz_fraction);
  w.u64(s.compromised_clusters);
  w.u64(s.overlay_max_degree);
  w.u8(s.overlay_connected ? 1 : 0);
}

InvariantSample read_sample(core::SnapshotReader& r) {
  InvariantSample s;
  s.step = r.u64();
  s.num_nodes = r.u64();
  s.num_clusters = r.u64();
  s.min_cluster_size = r.u64();
  s.max_cluster_size = r.u64();
  s.worst_byz_fraction = r.f64();
  s.compromised_clusters = r.u64();
  s.overlay_max_degree = r.u64();
  s.overlay_connected = r.u8() != 0;
  return s;
}

// The summary layout is frozen across v1/v2 — the PR-6 behavior counters
// on ScenarioResult are deliberately NOT serialized here.
void write_summary(core::SnapshotWriter& w, const ScenarioResult& result) {
  w.f64(result.peak_byz_fraction);
  w.u8(result.ever_compromised ? 1 : 0);
  w.u64(result.first_compromise_step);
  w.u64(result.total_splits);
  w.u64(result.total_merges);
  w.u64(result.final_nodes);
  w.u64(result.final_clusters);
  w.u64(result.final_byzantine);
  w.u64(result.total_forced_leaves);
  w.u64(result.max_step_forced_leaves);
}

ScenarioResult read_summary(core::SnapshotReader& r) {
  ScenarioResult result;
  result.peak_byz_fraction = r.f64();
  result.ever_compromised = r.u8() != 0;
  result.first_compromise_step = r.u64();
  result.total_splits = r.u64();
  result.total_merges = r.u64();
  result.final_nodes = r.u64();
  result.final_clusters = r.u64();
  result.final_byzantine = r.u64();
  result.total_forced_leaves = r.u64();
  result.max_step_forced_leaves = r.u64();
  return result;
}

struct TraceHeader {
  core::NowParams params;
  std::uint64_t seed = 0;
  std::uint64_t steps = 0;
  std::uint64_t sample_every = 0;
  std::uint64_t n0 = 0;
  std::uint64_t byz0 = 0;
  core::InitTopology topology = core::InitTopology::kSparseRandom;
  std::uint64_t batch_ops = 0;
  std::uint64_t shards = 1;
  double batch_byz_fraction = 0.0;
  BatchPlacement placement = BatchPlacement::kUniform;
  std::uint64_t leave_quota = 0;
  std::string adversary;
};

void write_header(core::SnapshotWriter& w, const TraceHeader& h) {
  core::save_params(h.params, w);
  w.u64(h.seed);
  w.u64(h.steps);
  w.u64(h.sample_every);
  w.u64(h.n0);
  w.u64(h.byz0);
  w.u32(static_cast<std::uint32_t>(h.topology));
  w.u64(h.batch_ops);
  w.u64(h.shards);
  w.f64(h.batch_byz_fraction);
  w.u32(static_cast<std::uint32_t>(h.placement));
  w.u64(h.leave_quota);
  w.str(h.adversary);
}

TraceHeader read_header(core::SnapshotReader& r) {
  TraceHeader h;
  h.params = core::read_params(r);
  h.seed = r.u64();
  h.steps = r.u64();
  h.sample_every = r.u64();
  h.n0 = r.u64();
  h.byz0 = r.u64();
  h.topology = static_cast<core::InitTopology>(r.u32());
  h.batch_ops = r.u64();
  h.shards = r.u64();
  h.batch_byz_fraction = r.f64();
  h.placement = static_cast<BatchPlacement>(r.u32());
  h.leave_quota = r.u64();
  h.adversary = r.str();
  return h;
}

struct TraceFooter {
  std::vector<TraceCheckpointInfo> checkpoints;
  /// Payload byte offset of the footer itself — the event stream's end.
  std::uint64_t offset = 0;
};

/// Locates and validates a v2 footer via the trailing offset word. Leaves
/// the reader positioned right before that word; callers seek back.
TraceFooter read_footer(core::SnapshotReader& r) {
  if (r.size() < 8) {
    throw core::SnapshotError("trace too short for a footer offset");
  }
  r.seek(r.size() - 8);
  TraceFooter footer;
  footer.offset = r.u64();
  if (footer.offset > r.size() - 8) {
    throw core::SnapshotError("trace footer offset past end of payload");
  }
  r.seek(footer.offset);
  if (r.u32() != kFooterMagic) {
    throw core::SnapshotError("trace footer magic mismatch (truncated or "
                              "overwritten footer)");
  }
  const std::uint64_t count = r.count(16);
  footer.checkpoints.reserve(count);
  std::uint64_t prev_step = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceCheckpointInfo info;
    info.step = r.u64();
    info.offset = r.u64();
    if (info.offset >= footer.offset) {
      throw core::SnapshotError(
          "trace checkpoint offset points past the event stream");
    }
    if (i > 0 && info.step <= prev_step) {
      throw core::SnapshotError("trace footer steps not increasing");
    }
    prev_step = info.step;
    footer.checkpoints.push_back(info);
  }
  if (r.pos() != r.size() - 8) {
    throw core::SnapshotError("trace footer size mismatch");
  }
  return footer;
}

}  // namespace

// ------------------------------------------------------------- recorder

TraceRecorder::TraceRecorder(const ScenarioConfig& config, std::size_t n0,
                             std::size_t byz0, std::string adversary_name)
    : format_version_(config.trace_format == 1 ? 1 : kTraceFormatVersion) {
  TraceHeader h;
  h.params = config.params;
  h.seed = config.seed;
  h.steps = config.steps;
  h.sample_every = config.sample_every;
  h.n0 = n0;
  h.byz0 = byz0;
  h.topology = config.topology;
  h.batch_ops = config.batch_ops;
  h.shards = config.shards;
  h.batch_byz_fraction = config.batch_byz_fraction;
  h.placement = config.batch_placement;
  h.leave_quota = config.batch_leave_quota;
  h.adversary = std::move(adversary_name);
  write_header(writer_, h);
}

void TraceRecorder::on_join(NodeId node, bool byzantine) {
  writer_.u8(kFrameJoin);
  writer_.u64(node.value());
  writer_.u8(byzantine ? 1 : 0);
}

void TraceRecorder::on_leave(NodeId node) {
  writer_.u8(kFrameLeave);
  writer_.u64(node.value());
}

void TraceRecorder::on_batch(std::size_t joins, std::size_t byzantine_joins,
                             const std::vector<NodeId>& leaves,
                             std::size_t shards) {
  writer_.u8(kFrameBatch);
  writer_.u64(joins);
  writer_.u64(byzantine_joins);
  writer_.u64(shards);
  writer_.u64(leaves.size());
  for (const NodeId node : leaves) writer_.u64(node.value());
}

void TraceRecorder::begin_step(std::size_t t) {
  writer_.u8(kFrameStep);
  writer_.u64(t);
}

void TraceRecorder::record_sample(const InvariantSample& sample) {
  writer_.u8(kFrameSample);
  write_sample(writer_, sample);
}

void TraceRecorder::record_checkpoint(std::size_t step,
                                      const core::NowSystem& system,
                                      std::size_t splits_so_far,
                                      std::size_t merges_so_far,
                                      const ScenarioResult& partial) {
  if (format_version_ < 2) return;
  core::SnapshotWriter snap;
  core::save_system(system, snap);
  checkpoints_.emplace_back(step, writer_.buffer().size());
  writer_.u8(kFrameCheckpoint);
  writer_.u64(step);
  writer_.u64(splits_so_far);
  writer_.u64(merges_so_far);
  writer_.f64(partial.peak_byz_fraction);
  writer_.u8(partial.ever_compromised ? 1 : 0);
  writer_.u64(partial.first_compromise_step);
  writer_.u64(snap.buffer().size());
  writer_.bytes(snap.buffer().data(), snap.buffer().size());
}

void TraceRecorder::finish(const ScenarioResult& result,
                           const std::string& path) {
  writer_.u8(kFrameEnd);
  write_summary(writer_, result);
  if (format_version_ >= 2) {
    const std::uint64_t footer_offset = writer_.buffer().size();
    writer_.u32(kFooterMagic);
    writer_.u64(checkpoints_.size());
    for (const auto& [step, offset] : checkpoints_) {
      writer_.u64(step);
      writer_.u64(offset);
    }
    writer_.u64(footer_offset);
  }
  writer_.write_file(path, kTraceMagic, format_version_);
}

// ------------------------------------------------------------- replayer

TraceReplayResult replay_trace(const std::string& path,
                               const ReplayOptions& opts) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceMinReadVersion, kTraceFormatVersion);
  const std::uint32_t version = reader.version();
  const TraceHeader header = read_header(reader);
  const std::uint64_t header_end = reader.pos();

  std::uint64_t body_end = reader.size();
  std::vector<TraceCheckpointInfo> index;
  if (version >= 2) {
    const TraceFooter footer = read_footer(reader);
    body_end = footer.offset;
    index = footer.checkpoints;
    reader.seek(header_end);
  }

  TraceReplayResult replay;
  Metrics metrics;
  core::NowParams params = header.params;
  if (opts.override_resolve) params.resolve_mode = opts.resolve_mode;
  core::NowSystem system{params, metrics, header.seed};

  // Split/merge counts before the seek point (embedded in the restored
  // checkpoint) — the replayed tail only adds to them.
  std::size_t splits_base = 0;
  std::size_t merges_base = 0;
  std::size_t current_step = 0;

  if (opts.start_checkpoint == kReplayFromStart) {
    system.initialize(header.n0, header.byz0, header.topology);
  } else {
    if (opts.start_checkpoint >= index.size()) {
      throw core::SnapshotError(
          "trace has no checkpoint #" +
          std::to_string(opts.start_checkpoint) + ": " + path);
    }
    const TraceCheckpointInfo& ck = index[opts.start_checkpoint];
    reader.seek(ck.offset);
    if (reader.u8() != kFrameCheckpoint) {
      throw core::SnapshotError(
          "trace footer entry does not point at a checkpoint frame: " +
          path);
    }
    const std::uint64_t step = reader.u64();
    if (step != ck.step) {
      throw core::SnapshotError("trace footer step disagrees with the "
                                "checkpoint frame: " + path);
    }
    splits_base = reader.u64();
    merges_base = reader.u64();
    replay.result.peak_byz_fraction = reader.f64();
    replay.result.ever_compromised = reader.u8() != 0;
    replay.result.first_compromise_step = reader.u64();
    const std::uint64_t snap_size = reader.count(1);
    const std::uint64_t snap_end = reader.pos() + snap_size;
    core::load_system(system, reader);
    if (reader.pos() != snap_end) {
      throw core::SnapshotError(
          "embedded checkpoint snapshot size mismatch: " + path);
    }
    current_step = step;
    replay.start_step = step;
  }

  const auto mismatch = [&](const std::string& what) {
    if (replay.ok) {
      replay.ok = false;
      replay.error = "step " + std::to_string(current_step) + ": " + what;
      replay.first_bad_step = current_step;
    }
  };
  const auto note_sample = [&](const InvariantSample& s) {
    replay.result.samples.push_back(s);
    replay.result.peak_byz_fraction =
        std::max(replay.result.peak_byz_fraction, s.worst_byz_fraction);
    if (s.compromised_clusters > 0 && !replay.result.ever_compromised) {
      replay.result.ever_compromised = true;
      replay.result.first_compromise_step = s.step;
    }
  };

  std::vector<NodeId> leaves;
  bool saw_end = false;
  while (reader.pos() < body_end && replay.ok && !saw_end) {
    switch (reader.u8()) {
      case kFrameStep:
        current_step = reader.u64();
        ++replay.steps_replayed;
        break;
      case kFrameJoin: {
        const NodeId recorded{reader.u64()};
        const bool byzantine = reader.u8() != 0;
        const auto [node, report] = system.join(byzantine);
        (void)report;
        if (node != recorded) {
          mismatch("join produced node " +
                   std::to_string(node.value()) + ", trace recorded " +
                   std::to_string(recorded.value()));
        }
        break;
      }
      case kFrameLeave: {
        const NodeId node{reader.u64()};
        if (!system.state().is_placed(node)) {
          mismatch("leave victim " + std::to_string(node.value()) +
                   " is not placed");
          break;
        }
        system.leave(node);
        break;
      }
      case kFrameBatch: {
        const std::size_t joins = reader.u64();
        const std::size_t byz_joins = reader.u64();
        const std::size_t shards = reader.u64();
        const std::uint64_t count = reader.count(8);
        leaves.clear();
        leaves.reserve(count);
        bool placed = true;
        for (std::uint64_t i = 0; i < count; ++i) {
          leaves.push_back(NodeId{reader.u64()});
          placed = placed && system.state().is_placed(leaves.back());
        }
        if (!placed) {
          mismatch("batch names an unplaced leave victim");
          break;
        }
        if (byz_joins > joins) {
          mismatch("batch records more byzantine joins than joins");
          break;
        }
        const std::size_t use_shards =
            opts.shards_override > 0 ? opts.shards_override : shards;
        system.step_parallel_mixed(joins, byz_joins, leaves, use_shards);
        break;
      }
      case kFrameSample: {
        const InvariantSample recorded = read_sample(reader);
        const auto report = system.check();
        InvariantSample live;
        live.step = recorded.step;
        live.num_nodes = report.num_nodes;
        live.num_clusters = report.num_clusters;
        live.min_cluster_size = report.min_cluster_size;
        live.max_cluster_size = report.max_cluster_size;
        live.worst_byz_fraction = report.worst_byz_fraction;
        live.compromised_clusters = report.compromised_clusters;
        live.overlay_max_degree = report.overlay_max_degree;
        live.overlay_connected = report.overlay_connected;
        if (!(live == recorded)) {
          std::ostringstream os;
          os << "invariant sample diverged at recorded step "
             << recorded.step << " (nodes " << recorded.num_nodes << " vs "
             << live.num_nodes << ", clusters " << recorded.num_clusters
             << " vs " << live.num_clusters << ", worst p_C "
             << recorded.worst_byz_fraction << " vs "
             << live.worst_byz_fraction << ")";
          mismatch(os.str());
          break;
        }
        note_sample(live);
        ++replay.samples_checked;
        break;
      }
      case kFrameCheckpoint: {
        current_step = reader.u64();
        const std::uint64_t ck_splits = reader.u64();
        const std::uint64_t ck_merges = reader.u64();
        const double ck_peak = reader.f64();
        const bool ck_ever = reader.u8() != 0;
        const std::uint64_t ck_first = reader.u64();
        const std::uint64_t snap_size = reader.count(1);
        std::vector<std::uint8_t> embedded(snap_size);
        reader.bytes(embedded.data(), embedded.size());
        // Every checkpoint is an observation point: serialize the live
        // state through the same writer and compare byte-for-byte. The
        // snapshot payload is canonical (slab geometry, dense-set orders,
        // RNG words), so equality here IS state identity.
        core::SnapshotWriter live;
        core::save_system(system, live);
        if (live.buffer() != embedded) {
          mismatch(
              "live state diverged from the embedded checkpoint snapshot");
          break;
        }
        if (splits_base + metrics.operation_count(metrics.find("split")) != ck_splits ||
            merges_base + metrics.operation_count(metrics.find("merge")) != ck_merges ||
            replay.result.peak_byz_fraction != ck_peak ||
            replay.result.ever_compromised != ck_ever ||
            replay.result.first_compromise_step != ck_first) {
          mismatch("replay aggregates diverged from the embedded "
                   "checkpoint");
          break;
        }
        ++replay.checkpoints_checked;
        break;
      }
      case kFrameEnd: {
        const ScenarioResult recorded = read_summary(reader);
        saw_end = true;
        replay.result.total_splits =
            splits_base + metrics.operation_count(metrics.find("split"));
        replay.result.total_merges =
            merges_base + metrics.operation_count(metrics.find("merge"));
        replay.result.final_nodes = system.num_nodes();
        replay.result.final_clusters = system.num_clusters();
        replay.result.final_byzantine = system.state().byzantine_total();
        replay.result.total_forced_leaves = recorded.total_forced_leaves;
        replay.result.max_step_forced_leaves =
            recorded.max_step_forced_leaves;
        if (replay.result.final_nodes != recorded.final_nodes ||
            replay.result.final_clusters != recorded.final_clusters ||
            replay.result.final_byzantine != recorded.final_byzantine ||
            replay.result.total_splits != recorded.total_splits ||
            replay.result.total_merges != recorded.total_merges ||
            replay.result.peak_byz_fraction !=
                recorded.peak_byz_fraction ||
            replay.result.ever_compromised != recorded.ever_compromised) {
          mismatch("end-of-run summary diverged from the recorded one");
        }
        break;
      }
      default:
        throw core::SnapshotError("unknown trace frame tag: " + path);
    }
  }
  if (!saw_end && replay.ok) {
    mismatch("trace has no end-of-run summary frame");
  }
  if (saw_end && version >= 2 && reader.pos() != body_end) {
    throw core::SnapshotError(
        "trailing bytes between end frame and footer: " + path);
  }
  return replay;
}

std::vector<TraceCheckpointInfo> trace_checkpoints(const std::string& path) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceMinReadVersion, kTraceFormatVersion);
  if (reader.version() < 2) return {};
  return read_footer(reader).checkpoints;
}

TraceInfo trace_info(const std::string& path) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceMinReadVersion, kTraceFormatVersion);
  const TraceHeader h = read_header(reader);
  TraceInfo info;
  info.version = reader.version();
  info.seed = h.seed;
  info.steps = h.steps;
  info.sample_every = h.sample_every;
  info.n0 = h.n0;
  info.byz0 = h.byz0;
  info.batch_ops = h.batch_ops;
  info.shards = h.shards;
  info.tau = h.params.tau;
  info.adversary = h.adversary;
  if (info.version >= 2) {
    info.checkpoint_count = read_footer(reader).checkpoints.size();
  }
  return info;
}

// -------------------------------------------------------------- bisect

TraceBisectResult bisect_trace(const std::string& path) {
  TraceBisectResult out;
  const std::vector<TraceCheckpointInfo> index = trace_checkpoints(path);
  // Probe i: i == 0 replays from scratch (the anchor — no restore);
  // i >= 1 restores checkpoint i-1 and replays the suffix.
  const auto probe = [&](std::size_t i) {
    ReplayOptions opts;
    if (i > 0) {
      opts.start_checkpoint = i - 1;
      ++out.restores;
    }
    ++out.probes;
    return replay_trace(path, opts);
  };

  const TraceReplayResult anchor = probe(0);
  if (anchor.ok) return out;
  out.diverged = true;
  out.first_bad_step = anchor.first_bad_step;
  out.error = anchor.error;

  // Monotone predicate over start points: a clean probe byte-verifies the
  // embedded snapshots after its start, pinning that whole suffix to the
  // recorded trajectory — so clean-from-i implies clean-from-j for every
  // j > i, and binary search is sound. lo always fails, hi is clean (the
  // past-the-end sentinel: an empty suffix is vacuously clean).
  std::size_t lo = 0;
  std::size_t hi = index.size() + 1;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const TraceReplayResult r = probe(mid);
    if (r.ok) {
      hi = mid;
    } else {
      lo = mid;
      out.first_bad_step = r.first_bad_step;
      out.error = r.error;
    }
  }
  out.fork_lower_bound = lo == 0 ? 0 : index[lo - 1].step;
  return out;
}

// ------------------------------------------------------------ mutation

namespace {

std::uint64_t read_u64_at(const std::vector<std::uint8_t>& buf,
                          std::size_t off) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
  }
  return v;
}

void write_u64_at(std::vector<std::uint8_t>& buf, std::size_t off,
                  std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

struct FrameRef {
  std::uint8_t tag = 0;
  std::uint64_t offset = 0;  // payload offset of the tag byte
  std::uint64_t step = 0;    // step the frame belongs to
};

/// Structural walk of the event stream (no system needed) — the mutation
/// machinery's frame index. `reader` must be positioned after the header.
std::vector<FrameRef> scan_frames(core::SnapshotReader& reader,
                                  std::uint64_t body_end) {
  std::vector<FrameRef> frames;
  std::uint64_t step = 0;
  bool saw_end = false;
  while (reader.pos() < body_end && !saw_end) {
    FrameRef ref;
    ref.offset = reader.pos();
    ref.tag = reader.u8();
    switch (ref.tag) {
      case kFrameStep:
        step = reader.u64();
        break;
      case kFrameJoin:
        reader.u64();
        reader.u8();
        break;
      case kFrameLeave:
        reader.u64();
        break;
      case kFrameBatch: {
        reader.u64();
        reader.u64();
        reader.u64();
        const std::uint64_t count = reader.count(8);
        reader.seek(reader.pos() + count * 8);
        break;
      }
      case kFrameSample:
        (void)read_sample(reader);
        break;
      case kFrameCheckpoint: {
        reader.u64();  // step
        reader.u64();  // splits
        reader.u64();  // merges
        reader.f64();  // peak
        reader.u8();   // ever_compromised
        reader.u64();  // first_compromise_step
        const std::uint64_t snap_size = reader.count(1);
        reader.seek(reader.pos() + snap_size);
        break;
      }
      case kFrameEnd:
        (void)read_summary(reader);
        saw_end = true;
        break;
      default:
        throw core::SnapshotError("unknown trace frame tag during scan");
    }
    ref.step = step;
    frames.push_back(ref);
  }
  return frames;
}

}  // namespace

TraceMutation mutate_trace(const std::string& path,
                           const std::string& out_path,
                           TraceMutationKind kind, std::uint64_t pick) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceMinReadVersion, kTraceFormatVersion);
  const std::uint32_t version = reader.version();
  std::vector<std::uint8_t> payload(reader.size());
  reader.bytes(payload.data(), payload.size());

  core::SnapshotReader scan{payload};
  (void)read_header(scan);
  std::uint64_t body_end = payload.size();
  if (version >= 2) {
    body_end = read_u64_at(payload, payload.size() - 8);
  }
  const std::vector<FrameRef> frames = scan_frames(scan, body_end);

  std::vector<FrameRef> candidates;
  for (const FrameRef& f : frames) {
    switch (kind) {
      case TraceMutationKind::kEventBit:
        if (f.tag == kFrameJoin) candidates.push_back(f);
        if (f.tag == kFrameBatch &&
            read_u64_at(payload, f.offset + 1) > 0) {  // joins > 0
          candidates.push_back(f);
        }
        break;
      case TraceMutationKind::kSampleField:
        if (f.tag == kFrameSample) candidates.push_back(f);
        break;
      case TraceMutationKind::kSummaryField:
        if (f.tag == kFrameEnd) candidates.push_back(f);
        break;
    }
  }
  TraceMutation mutation;
  if (candidates.empty()) return mutation;
  const FrameRef target = candidates[pick % candidates.size()];
  mutation.applied = true;
  mutation.step = target.step;

  std::ostringstream desc;
  switch (kind) {
    case TraceMutationKind::kEventBit: {
      if (target.tag == kFrameJoin) {
        // Flip the corruption bit (offset: tag + node id).
        payload[target.offset + 1 + 8] ^= 1;
        desc << "flipped join corruption bit at step " << target.step;
      } else {
        // Nudge byz_joins within [0, joins] (offsets: tag, joins,
        // byz_joins).
        const std::uint64_t joins = read_u64_at(payload, target.offset + 1);
        const std::size_t byz_off = target.offset + 1 + 8;
        const std::uint64_t byz = read_u64_at(payload, byz_off);
        write_u64_at(payload, byz_off, byz > 0 ? byz - 1 : byz + 1);
        desc << "changed batch byzantine joins " << byz << " -> "
             << (byz > 0 ? byz - 1 : byz + 1) << " (of " << joins
             << ") at step " << target.step;
      }
      break;
    }
    case TraceMutationKind::kSampleField: {
      // Bump num_nodes (offsets: tag, step, num_nodes).
      const std::size_t off = target.offset + 1 + 8;
      write_u64_at(payload, off, read_u64_at(payload, off) + 1);
      desc << "bumped sample num_nodes at step " << target.step;
      break;
    }
    case TraceMutationKind::kSummaryField: {
      // Bump final_nodes (offsets: tag, peak f64, ever u8,
      // first_compromise, splits, merges).
      const std::size_t off = target.offset + 1 + 8 + 1 + 8 + 8 + 8;
      write_u64_at(payload, off, read_u64_at(payload, off) + 1);
      desc << "bumped summary final_nodes (end frame at step "
           << target.step << ")";
      break;
    }
  }
  mutation.description = desc.str();

  core::SnapshotWriter w;
  w.bytes(payload.data(), payload.size());
  w.write_file(out_path, kTraceMagic, version);
  return mutation;
}

std::string describe_trace(const std::string& path) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceMinReadVersion, kTraceFormatVersion);
  const TraceHeader h = read_header(reader);
  std::ostringstream os;
  os << "v" << reader.version() << " seed=" << h.seed << " steps="
     << h.steps << " n0=" << h.n0 << " byz0=" << h.byz0
     << " tau=" << h.params.tau << " k=" << h.params.k
     << " adversary=" << h.adversary;
  if (h.batch_ops > 0) {
    os << " batch_ops=" << h.batch_ops << " shards=" << h.shards
       << " byz_fraction=" << h.batch_byz_fraction << " placement="
       << (h.placement == BatchPlacement::kTargeted ? "targeted"
                                                    : "uniform")
       << " leave_quota=" << h.leave_quota;
  }
  if (reader.version() >= 2) {
    os << " checkpoints=" << read_footer(reader).checkpoints.size();
  }
  if (!h.params.shuffle_enabled) os << " (no-shuffle)";
  return os.str();
}

// ----------------------------------------------------------- checkpoints

namespace {

/// The scenario fields a resumed run must agree on (steps may legally
/// differ — callers can extend the horizon).
void write_scenario_fingerprint(core::SnapshotWriter& w,
                                const ScenarioConfig& c) {
  core::save_params(c.params, w);
  w.u64(c.seed);
  w.u64(c.sample_every);
  w.u64(c.n0);
  w.f64(c.initial_byz_fraction);
  w.u32(static_cast<std::uint32_t>(c.topology));
  w.u64(c.batch_ops);
  w.f64(c.batch_byz_fraction);
  w.u32(static_cast<std::uint32_t>(c.batch_placement));
  w.u64(c.batch_leave_quota);
}

void check_scenario_fingerprint(core::SnapshotReader& r,
                                const ScenarioConfig& c) {
  core::check_params(c.params, r);
  const auto fail = [](const char* field) {
    throw core::SnapshotError(
        std::string("checkpoint scenario mismatch: ") + field);
  };
  if (r.u64() != c.seed) fail("seed");
  if (r.u64() != c.sample_every) fail("sample_every");
  if (r.u64() != c.n0) fail("n0");
  if (r.f64() != c.initial_byz_fraction) fail("initial_byz_fraction");
  if (r.u32() != static_cast<std::uint32_t>(c.topology)) fail("topology");
  if (r.u64() != c.batch_ops) fail("batch_ops");
  if (r.f64() != c.batch_byz_fraction) fail("batch_byz_fraction");
  if (r.u32() != static_cast<std::uint32_t>(c.batch_placement)) {
    fail("batch_placement");
  }
  if (r.u64() != c.batch_leave_quota) fail("batch_leave_quota");
}

}  // namespace

void save_scenario_checkpoint(const ScenarioConfig& config,
                              const adversary::Adversary& adversary,
                              const core::NowSystem& system,
                              const Rng& driver_rng,
                              const ScenarioResult& partial,
                              std::size_t step, std::size_t splits_so_far,
                              std::size_t merges_so_far,
                              const std::string& path) {
  core::SnapshotWriter w;
  write_scenario_fingerprint(w, config);
  w.u64(step);
  for (const std::uint64_t word : driver_rng.state()) w.u64(word);
  w.u64(partial.samples.size());
  for (const InvariantSample& s : partial.samples) write_sample(w, s);
  write_summary(w, partial);
  w.u64(splits_so_far);
  w.u64(merges_so_far);
  w.str(adversary.name());
  w.f64(adversary.tau());
  adversary.save_state(w);
  core::save_system(system, w);
  w.write_file(path, kCheckpointMagic, kCheckpointFormatVersion);
}

ScenarioResume load_scenario_checkpoint(const ScenarioConfig& config,
                                        adversary::Adversary& adversary,
                                        core::NowSystem& system,
                                        Rng& driver_rng,
                                        ScenarioResult& partial,
                                        const std::string& path) {
  core::SnapshotReader r = core::SnapshotReader::read_file(
      path, kCheckpointMagic, kCheckpointFormatVersion,
      kCheckpointFormatVersion);
  check_scenario_fingerprint(r, config);
  ScenarioResume resume;
  resume.step = r.u64();
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) word = r.u64();
  driver_rng.restore_state(rng_state);
  // One serialized sample is 8 u64/f64 words plus the connected flag.
  const std::uint64_t sample_count = r.count(65);
  partial.samples.clear();
  partial.samples.reserve(sample_count);
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    partial.samples.push_back(read_sample(r));
  }
  const ScenarioResult summary = read_summary(r);
  partial.peak_byz_fraction = summary.peak_byz_fraction;
  partial.ever_compromised = summary.ever_compromised;
  partial.first_compromise_step = summary.first_compromise_step;
  partial.total_forced_leaves = summary.total_forced_leaves;
  partial.max_step_forced_leaves = summary.max_step_forced_leaves;
  resume.splits_so_far = r.u64();
  resume.merges_so_far = r.u64();
  const std::string adversary_name = r.str();
  if (adversary_name != adversary.name()) {
    throw core::SnapshotError("checkpoint adversary mismatch: saved '" +
                              adversary_name + "', resuming with '" +
                              adversary.name() + "'");
  }
  // The corruption budget is the one constructor argument every strategy
  // shares and the trajectory always depends on; the rest of the
  // construction (schedules, background-churn rates) must be reproduced
  // by the caller — bit-identical resumption is only guaranteed for an
  // identically constructed adversary.
  if (r.f64() != adversary.tau()) {
    throw core::SnapshotError(
        "checkpoint adversary mismatch: different tau");
  }
  adversary.load_state(r);
  core::load_system(system, r);
  if (!r.at_end()) {
    throw core::SnapshotError("trailing bytes after checkpoint payload: " +
                              path);
  }
  return resume;
}

}  // namespace now::sim
