#include "sim/trace.hpp"

#include <sstream>
#include <utility>

namespace now::sim {

namespace {

constexpr char kTraceMagic[] = "NOWTRAC1";
constexpr char kCheckpointMagic[] = "NOWCKPT1";

/// Trace frame tags.
enum Frame : std::uint8_t {
  kFrameStep = 1,
  kFrameJoin = 2,
  kFrameLeave = 3,
  kFrameBatch = 4,
  kFrameSample = 5,
  kFrameEnd = 6,
};

void write_sample(core::SnapshotWriter& w, const InvariantSample& s) {
  w.u64(s.step);
  w.u64(s.num_nodes);
  w.u64(s.num_clusters);
  w.u64(s.min_cluster_size);
  w.u64(s.max_cluster_size);
  w.f64(s.worst_byz_fraction);
  w.u64(s.compromised_clusters);
  w.u64(s.overlay_max_degree);
  w.u8(s.overlay_connected ? 1 : 0);
}

InvariantSample read_sample(core::SnapshotReader& r) {
  InvariantSample s;
  s.step = r.u64();
  s.num_nodes = r.u64();
  s.num_clusters = r.u64();
  s.min_cluster_size = r.u64();
  s.max_cluster_size = r.u64();
  s.worst_byz_fraction = r.f64();
  s.compromised_clusters = r.u64();
  s.overlay_max_degree = r.u64();
  s.overlay_connected = r.u8() != 0;
  return s;
}

void write_summary(core::SnapshotWriter& w, const ScenarioResult& result) {
  w.f64(result.peak_byz_fraction);
  w.u8(result.ever_compromised ? 1 : 0);
  w.u64(result.first_compromise_step);
  w.u64(result.total_splits);
  w.u64(result.total_merges);
  w.u64(result.final_nodes);
  w.u64(result.final_clusters);
  w.u64(result.final_byzantine);
  w.u64(result.total_forced_leaves);
  w.u64(result.max_step_forced_leaves);
}

ScenarioResult read_summary(core::SnapshotReader& r) {
  ScenarioResult result;
  result.peak_byz_fraction = r.f64();
  result.ever_compromised = r.u8() != 0;
  result.first_compromise_step = r.u64();
  result.total_splits = r.u64();
  result.total_merges = r.u64();
  result.final_nodes = r.u64();
  result.final_clusters = r.u64();
  result.final_byzantine = r.u64();
  result.total_forced_leaves = r.u64();
  result.max_step_forced_leaves = r.u64();
  return result;
}

struct TraceHeader {
  core::NowParams params;
  std::uint64_t seed = 0;
  std::uint64_t steps = 0;
  std::uint64_t sample_every = 0;
  std::uint64_t n0 = 0;
  std::uint64_t byz0 = 0;
  core::InitTopology topology = core::InitTopology::kSparseRandom;
  std::uint64_t batch_ops = 0;
  std::uint64_t shards = 1;
  double batch_byz_fraction = 0.0;
  BatchPlacement placement = BatchPlacement::kUniform;
  std::uint64_t leave_quota = 0;
  std::string adversary;
};

void write_header(core::SnapshotWriter& w, const TraceHeader& h) {
  core::save_params(h.params, w);
  w.u64(h.seed);
  w.u64(h.steps);
  w.u64(h.sample_every);
  w.u64(h.n0);
  w.u64(h.byz0);
  w.u32(static_cast<std::uint32_t>(h.topology));
  w.u64(h.batch_ops);
  w.u64(h.shards);
  w.f64(h.batch_byz_fraction);
  w.u32(static_cast<std::uint32_t>(h.placement));
  w.u64(h.leave_quota);
  w.str(h.adversary);
}

TraceHeader read_header(core::SnapshotReader& r) {
  TraceHeader h;
  h.params = core::read_params(r);
  h.seed = r.u64();
  h.steps = r.u64();
  h.sample_every = r.u64();
  h.n0 = r.u64();
  h.byz0 = r.u64();
  h.topology = static_cast<core::InitTopology>(r.u32());
  h.batch_ops = r.u64();
  h.shards = r.u64();
  h.batch_byz_fraction = r.f64();
  h.placement = static_cast<BatchPlacement>(r.u32());
  h.leave_quota = r.u64();
  h.adversary = r.str();
  return h;
}

}  // namespace

// ------------------------------------------------------------- recorder

TraceRecorder::TraceRecorder(const ScenarioConfig& config, std::size_t n0,
                             std::size_t byz0, std::string adversary_name) {
  TraceHeader h;
  h.params = config.params;
  h.seed = config.seed;
  h.steps = config.steps;
  h.sample_every = config.sample_every;
  h.n0 = n0;
  h.byz0 = byz0;
  h.topology = config.topology;
  h.batch_ops = config.batch_ops;
  h.shards = config.shards;
  h.batch_byz_fraction = config.batch_byz_fraction;
  h.placement = config.batch_placement;
  h.leave_quota = config.batch_leave_quota;
  h.adversary = std::move(adversary_name);
  write_header(writer_, h);
}

void TraceRecorder::on_join(NodeId node, bool byzantine) {
  writer_.u8(kFrameJoin);
  writer_.u64(node.value());
  writer_.u8(byzantine ? 1 : 0);
}

void TraceRecorder::on_leave(NodeId node) {
  writer_.u8(kFrameLeave);
  writer_.u64(node.value());
}

void TraceRecorder::on_batch(std::size_t joins, std::size_t byzantine_joins,
                             const std::vector<NodeId>& leaves,
                             std::size_t shards) {
  writer_.u8(kFrameBatch);
  writer_.u64(joins);
  writer_.u64(byzantine_joins);
  writer_.u64(shards);
  writer_.u64(leaves.size());
  for (const NodeId node : leaves) writer_.u64(node.value());
}

void TraceRecorder::begin_step(std::size_t t) {
  writer_.u8(kFrameStep);
  writer_.u64(t);
}

void TraceRecorder::record_sample(const InvariantSample& sample) {
  writer_.u8(kFrameSample);
  write_sample(writer_, sample);
}

void TraceRecorder::finish(const ScenarioResult& result,
                           const std::string& path) {
  writer_.u8(kFrameEnd);
  write_summary(writer_, result);
  writer_.write_file(path, kTraceMagic, kTraceFormatVersion);
}

// ------------------------------------------------------------- replayer

TraceReplayResult replay_trace(const std::string& path) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceFormatVersion, kTraceFormatVersion);
  const TraceHeader header = read_header(reader);

  TraceReplayResult replay;
  Metrics metrics;
  core::NowSystem system{header.params, metrics, header.seed};
  system.initialize(header.n0, header.byz0, header.topology);

  std::size_t current_step = 0;
  const auto mismatch = [&](const std::string& what) {
    if (replay.ok) {
      replay.ok = false;
      replay.error = "step " + std::to_string(current_step) + ": " + what;
    }
  };
  const auto note_sample = [&](const InvariantSample& s) {
    replay.result.samples.push_back(s);
    replay.result.peak_byz_fraction =
        std::max(replay.result.peak_byz_fraction, s.worst_byz_fraction);
    if (s.compromised_clusters > 0 && !replay.result.ever_compromised) {
      replay.result.ever_compromised = true;
      replay.result.first_compromise_step = s.step;
    }
  };

  std::vector<NodeId> leaves;
  bool saw_end = false;
  while (!reader.at_end() && replay.ok && !saw_end) {
    switch (reader.u8()) {
      case kFrameStep:
        current_step = reader.u64();
        ++replay.steps_replayed;
        break;
      case kFrameJoin: {
        const NodeId recorded{reader.u64()};
        const bool byzantine = reader.u8() != 0;
        const auto [node, report] = system.join(byzantine);
        (void)report;
        if (node != recorded) {
          mismatch("join produced node " +
                   std::to_string(node.value()) + ", trace recorded " +
                   std::to_string(recorded.value()));
        }
        break;
      }
      case kFrameLeave: {
        const NodeId node{reader.u64()};
        if (!system.state().is_placed(node)) {
          mismatch("leave victim " + std::to_string(node.value()) +
                   " is not placed");
          break;
        }
        system.leave(node);
        break;
      }
      case kFrameBatch: {
        const std::size_t joins = reader.u64();
        const std::size_t byz_joins = reader.u64();
        const std::size_t shards = reader.u64();
        const std::uint64_t count = reader.count(8);
        leaves.clear();
        leaves.reserve(count);
        bool placed = true;
        for (std::uint64_t i = 0; i < count; ++i) {
          leaves.push_back(NodeId{reader.u64()});
          placed = placed && system.state().is_placed(leaves.back());
        }
        if (!placed) {
          mismatch("batch names an unplaced leave victim");
          break;
        }
        system.step_parallel_mixed(joins, byz_joins, leaves, shards);
        break;
      }
      case kFrameSample: {
        const InvariantSample recorded = read_sample(reader);
        const auto report = system.check();
        InvariantSample live;
        live.step = recorded.step;
        live.num_nodes = report.num_nodes;
        live.num_clusters = report.num_clusters;
        live.min_cluster_size = report.min_cluster_size;
        live.max_cluster_size = report.max_cluster_size;
        live.worst_byz_fraction = report.worst_byz_fraction;
        live.compromised_clusters = report.compromised_clusters;
        live.overlay_max_degree = report.overlay_max_degree;
        live.overlay_connected = report.overlay_connected;
        if (!(live == recorded)) {
          std::ostringstream os;
          os << "invariant sample diverged at recorded step "
             << recorded.step << " (nodes " << recorded.num_nodes << " vs "
             << live.num_nodes << ", clusters " << recorded.num_clusters
             << " vs " << live.num_clusters << ", worst p_C "
             << recorded.worst_byz_fraction << " vs "
             << live.worst_byz_fraction << ")";
          mismatch(os.str());
          break;
        }
        note_sample(live);
        ++replay.samples_checked;
        break;
      }
      case kFrameEnd: {
        const ScenarioResult recorded = read_summary(reader);
        saw_end = true;
        replay.result.total_splits = metrics.operation_count("split");
        replay.result.total_merges = metrics.operation_count("merge");
        replay.result.final_nodes = system.num_nodes();
        replay.result.final_clusters = system.num_clusters();
        replay.result.final_byzantine = system.state().byzantine_total();
        replay.result.total_forced_leaves = recorded.total_forced_leaves;
        replay.result.max_step_forced_leaves =
            recorded.max_step_forced_leaves;
        if (replay.result.final_nodes != recorded.final_nodes ||
            replay.result.final_clusters != recorded.final_clusters ||
            replay.result.final_byzantine != recorded.final_byzantine ||
            replay.result.total_splits != recorded.total_splits ||
            replay.result.total_merges != recorded.total_merges ||
            replay.result.peak_byz_fraction !=
                recorded.peak_byz_fraction ||
            replay.result.ever_compromised != recorded.ever_compromised) {
          mismatch("end-of-run summary diverged from the recorded one");
        }
        break;
      }
      default:
        throw core::SnapshotError("unknown trace frame tag: " + path);
    }
  }
  if (!saw_end && replay.ok) {
    mismatch("trace has no end-of-run summary frame");
  }
  return replay;
}

std::string describe_trace(const std::string& path) {
  core::SnapshotReader reader = core::SnapshotReader::read_file(
      path, kTraceMagic, kTraceFormatVersion, kTraceFormatVersion);
  const TraceHeader h = read_header(reader);
  std::ostringstream os;
  os << "seed=" << h.seed << " steps=" << h.steps << " n0=" << h.n0
     << " byz0=" << h.byz0 << " tau=" << h.params.tau
     << " k=" << h.params.k << " adversary=" << h.adversary;
  if (h.batch_ops > 0) {
    os << " batch_ops=" << h.batch_ops << " shards=" << h.shards
       << " byz_fraction=" << h.batch_byz_fraction << " placement="
       << (h.placement == BatchPlacement::kTargeted ? "targeted"
                                                    : "uniform")
       << " leave_quota=" << h.leave_quota;
  }
  if (!h.params.shuffle_enabled) os << " (no-shuffle)";
  return os.str();
}

// ----------------------------------------------------------- checkpoints

namespace {

/// The scenario fields a resumed run must agree on (steps may legally
/// differ — callers can extend the horizon).
void write_scenario_fingerprint(core::SnapshotWriter& w,
                                const ScenarioConfig& c) {
  core::save_params(c.params, w);
  w.u64(c.seed);
  w.u64(c.sample_every);
  w.u64(c.n0);
  w.f64(c.initial_byz_fraction);
  w.u32(static_cast<std::uint32_t>(c.topology));
  w.u64(c.batch_ops);
  w.f64(c.batch_byz_fraction);
  w.u32(static_cast<std::uint32_t>(c.batch_placement));
  w.u64(c.batch_leave_quota);
}

void check_scenario_fingerprint(core::SnapshotReader& r,
                                const ScenarioConfig& c) {
  core::check_params(c.params, r);
  const auto fail = [](const char* field) {
    throw core::SnapshotError(
        std::string("checkpoint scenario mismatch: ") + field);
  };
  if (r.u64() != c.seed) fail("seed");
  if (r.u64() != c.sample_every) fail("sample_every");
  if (r.u64() != c.n0) fail("n0");
  if (r.f64() != c.initial_byz_fraction) fail("initial_byz_fraction");
  if (r.u32() != static_cast<std::uint32_t>(c.topology)) fail("topology");
  if (r.u64() != c.batch_ops) fail("batch_ops");
  if (r.f64() != c.batch_byz_fraction) fail("batch_byz_fraction");
  if (r.u32() != static_cast<std::uint32_t>(c.batch_placement)) {
    fail("batch_placement");
  }
  if (r.u64() != c.batch_leave_quota) fail("batch_leave_quota");
}

}  // namespace

void save_scenario_checkpoint(const ScenarioConfig& config,
                              const adversary::Adversary& adversary,
                              const core::NowSystem& system,
                              const Rng& driver_rng,
                              const ScenarioResult& partial,
                              std::size_t step, std::size_t splits_so_far,
                              std::size_t merges_so_far,
                              const std::string& path) {
  core::SnapshotWriter w;
  write_scenario_fingerprint(w, config);
  w.u64(step);
  for (const std::uint64_t word : driver_rng.state()) w.u64(word);
  w.u64(partial.samples.size());
  for (const InvariantSample& s : partial.samples) write_sample(w, s);
  write_summary(w, partial);
  w.u64(splits_so_far);
  w.u64(merges_so_far);
  w.str(adversary.name());
  w.f64(adversary.tau());
  adversary.save_state(w);
  core::save_system(system, w);
  w.write_file(path, kCheckpointMagic, kCheckpointFormatVersion);
}

ScenarioResume load_scenario_checkpoint(const ScenarioConfig& config,
                                        adversary::Adversary& adversary,
                                        core::NowSystem& system,
                                        Rng& driver_rng,
                                        ScenarioResult& partial,
                                        const std::string& path) {
  core::SnapshotReader r = core::SnapshotReader::read_file(
      path, kCheckpointMagic, kCheckpointFormatVersion,
      kCheckpointFormatVersion);
  check_scenario_fingerprint(r, config);
  ScenarioResume resume;
  resume.step = r.u64();
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& word : rng_state) word = r.u64();
  driver_rng.restore_state(rng_state);
  // One serialized sample is 8 u64/f64 words plus the connected flag.
  const std::uint64_t sample_count = r.count(65);
  partial.samples.clear();
  partial.samples.reserve(sample_count);
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    partial.samples.push_back(read_sample(r));
  }
  const ScenarioResult summary = read_summary(r);
  partial.peak_byz_fraction = summary.peak_byz_fraction;
  partial.ever_compromised = summary.ever_compromised;
  partial.first_compromise_step = summary.first_compromise_step;
  partial.total_forced_leaves = summary.total_forced_leaves;
  partial.max_step_forced_leaves = summary.max_step_forced_leaves;
  resume.splits_so_far = r.u64();
  resume.merges_so_far = r.u64();
  const std::string adversary_name = r.str();
  if (adversary_name != adversary.name()) {
    throw core::SnapshotError("checkpoint adversary mismatch: saved '" +
                              adversary_name + "', resuming with '" +
                              adversary.name() + "'");
  }
  // The corruption budget is the one constructor argument every strategy
  // shares and the trajectory always depends on; the rest of the
  // construction (schedules, background-churn rates) must be reproduced
  // by the caller — bit-identical resumption is only guaranteed for an
  // identically constructed adversary.
  if (r.f64() != adversary.tau()) {
    throw core::SnapshotError(
        "checkpoint adversary mismatch: different tau");
  }
  adversary.load_state(r);
  core::load_system(system, r);
  if (!r.at_end()) {
    throw core::SnapshotError("trailing bytes after checkpoint payload: " +
                              path);
  }
  return resume;
}

}  // namespace now::sim
