#include "sim/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace now::sim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << std::setw(static_cast<int>(widths[i])) << row[i];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2 * headers_.size();
  for (const std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace now::sim
