// End-to-end scenario runner: initialize a NOW deployment, drive it with an
// adversary for a number of time steps, and sample the Theorem-3 invariants
// along the way. All long-horizon benches and the integration tests are
// built on this.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "adversary/adversary.hpp"
#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::sim {

/// How the batched adversary (batch_byz_fraction > 0) picks its moves.
enum class BatchPlacement {
  /// Corrupted joiners are placed by the protocol's randCl like everyone
  /// else and the leave victims are uniform — adversarial *volume* without
  /// adversarial placement.
  kUniform,
  /// The batched join-leave attack (Section 3.3 under footnote *'s parallel
  /// operations): each step the adversary targets the cluster with the
  /// highest Byzantine fraction (it sees the whole state), keeps its nodes
  /// that already sit there, and churns its nodes that landed elsewhere —
  /// they leave this step and re-join (corrupted) in the next one. Honest
  /// uniform victims fill the remainder of the leave quota.
  kTargeted,
};

struct ScenarioConfig {
  core::NowParams params;
  std::size_t n0 = 0;          // 0 => sqrt(N)
  double initial_byz_fraction = -1.0;  // < 0 => the adversary's tau
  core::InitTopology topology = core::InitTopology::kSparseRandom;
  std::size_t steps = 1000;
  std::size_t sample_every = 50;
  std::uint64_t seed = 42;

  /// Batched churn mode: when batch_ops > 0 each time step performs
  /// batch_ops joins plus batch_ops leaves through NowSystem::step_parallel
  /// (sharded when shards > 1) instead of delegating the step to the
  /// adversary — the high-throughput regime the sharded engine exists for.
  /// Size holds constant. Joiners are honest unless batch_byz_fraction > 0.
  std::size_t batch_ops = 0;
  std::size_t shards = 1;

  /// Batched adversary: fraction of each step's joiners the adversary
  /// corrupts (subject to the global budget tau * n — the static-adversary
  /// rule every strategy obeys), placed per batch_placement. 0 keeps the
  /// historical honest-batch behavior.
  double batch_byz_fraction = 0.0;
  BatchPlacement batch_placement = BatchPlacement::kUniform;

  /// Batched forced-leave DoS quota: up to this many of each step's leave
  /// victims are *forced* by the adversary instead of drawn uniformly —
  /// honest members of the currently worst (highest Byzantine fraction)
  /// cluster first (stripping its honest majority), then members of the
  /// smallest cluster (pushing it toward the merge threshold, the
  /// restructuring-DoS flavor). Capped at batch_ops per step; the
  /// remainder of the quota-less leave slots stays uniform. 0 disables the
  /// attack. Composes with batch_byz_fraction/batch_placement (corrupted
  /// joiners + forced leaves is the paper's combined join-leave + DoS
  /// regime under footnote *'s parallel operations).
  std::size_t batch_leave_quota = 0;

  // ----------------------------- snapshots & traces (DESIGN.md §8)

  /// Periodic checkpointing: every this many steps the full scenario state
  /// (system snapshot + driver RNG + partial result + adversary state) is
  /// written to checkpoint_path, without stopping. 0 disables.
  std::size_t checkpoint_every = 0;
  /// One-shot checkpoint-and-stop: after exactly this step the scenario
  /// saves to checkpoint_path and returns the partial result
  /// (halted_at_step records the stop). 0 disables. The split long-run
  /// mode of bench_thm3_longrun --halt-at / --resume.
  std::size_t halt_at = 0;
  /// Where checkpoints are written (required by the two knobs above).
  std::string checkpoint_path;
  /// Resume from this checkpoint instead of initializing: the run
  /// continues at the saved step + 1 and is bit-identical to the
  /// uninterrupted run from there on, samples included.
  std::string resume_from;
  /// Record a scenario trace (sim/trace.hpp) of every event + invariant
  /// sample to this file. Ignored on resumed runs (a trace must cover the
  /// whole run to be replayable).
  std::string trace_path;
  /// Trace v2 embedded-checkpoint cadence: every this many steps the
  /// recorder embeds a full system snapshot into the trace, giving replay
  /// O(log steps) divergence bisection (trace_checkpoints / bisect_trace).
  /// 0 picks an automatic cadence (~8 checkpoints across the horizon).
  std::size_t trace_checkpoint_every = 0;
  /// Trace format to record: 0 = current (v2, seekable), 1 = legacy v1
  /// (header + events only, no embedded checkpoints, no footer). The v1
  /// writer exists so backward-compat coverage — old traces must keep
  /// replaying green — is itself a recorded, regenerable artifact.
  std::uint32_t trace_format = 0;
};

struct InvariantSample {
  std::size_t step = 0;
  std::size_t num_nodes = 0;
  std::size_t num_clusters = 0;
  std::size_t min_cluster_size = 0;
  std::size_t max_cluster_size = 0;
  double worst_byz_fraction = 0.0;
  std::size_t compromised_clusters = 0;
  std::size_t overlay_max_degree = 0;
  bool overlay_connected = true;

  /// Trace replay and resume tests compare samples bit-exactly.
  friend bool operator==(const InvariantSample&,
                         const InvariantSample&) = default;
};

struct ScenarioResult {
  std::vector<InvariantSample> samples;
  /// Max over the whole run (sampled steps) of max_C p_C.
  double peak_byz_fraction = 0.0;
  /// Any cluster ever at or above 1/3 Byzantine at a sampled step.
  bool ever_compromised = false;
  /// First sampled step at which a compromise was observed (or SIZE_MAX).
  std::size_t first_compromise_step = static_cast<std::size_t>(-1);
  std::size_t total_splits = 0;
  std::size_t total_merges = 0;
  std::size_t final_nodes = 0;
  std::size_t final_clusters = 0;
  /// Byzantine nodes alive at the end — lets callers check the static
  /// adversary's budget (<= tau * n) actually held, batched mode included.
  std::size_t final_byzantine = 0;
  /// Batched forced-leave accounting: total victims the adversary forced
  /// out across the run, and the largest number forced in any single step
  /// (callers assert it never exceeds batch_leave_quota).
  std::size_t total_forced_leaves = 0;
  std::size_t max_step_forced_leaves = 0;
  /// When ScenarioConfig::halt_at fired, the step the run checkpointed and
  /// stopped at; 0 means the run completed its full horizon.
  std::size_t halted_at_step = 0;

  // Observed-behavior counters feeding the coverage-guided corpus's
  // signature bits (sim/corpus.hpp). Deliberately NOT part of the trace
  // summary frame (sim/trace.cpp write_summary) — they describe which
  // engine paths a run exercised, not the trajectory itself, and adding
  // them there would break the v1 trace layout.
  /// Swaps the optimistic resolve handed to the sequential conflict
  /// replay, summed over the run's sharded batches.
  std::size_t total_resolve_replays = 0;
  /// Stage-1 slots spilled to the sequential stage-2 commit, summed over
  /// the run's sharded batches.
  std::size_t total_stage2_spills = 0;
  /// Membership-slab compactions triggered during the run.
  std::size_t total_compactions = 0;
  /// Steps where the static adversary's global budget tau * n clipped the
  /// requested batch_byz_fraction corruption volume.
  std::size_t budget_saturated_steps = 0;
};

/// Runs the scenario. The same Metrics records every operation, so callers
/// can mine per-operation cost distributions afterwards
/// (metrics.operation_samples(metrics.find("join")) etc.).
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config,
                                          adversary::Adversary& adversary,
                                          Metrics& metrics);

/// Writes the invariant samples as CSV (one row per sample) for external
/// plotting.
void write_samples_csv(const ScenarioResult& result, std::ostream& os);

}  // namespace now::sim
