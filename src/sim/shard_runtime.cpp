#include "sim/shard_runtime.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/snapshot.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"

namespace now::sim {

namespace {

constexpr std::string_view kCheckpointMagic = "NOWSHARD";
constexpr std::uint32_t kCheckpointVersion = 1;

// Stream tags separating the per-shard seed derivations from each other
// (and from anything the scenario driver derives from the same user seed).
constexpr std::uint64_t kSystemSeedStream = 0x5348534541ULL;   // "SHSEA"
constexpr std::uint64_t kDriverSeedStream = 0x534844525BULL;

[[nodiscard]] std::string checkpoint_path(const std::string& dir,
                                          std::size_t shard) {
  return dir + "/shard_" + std::to_string(shard) + ".ckpt";
}

/// Number of payload words in a digest report (see ShardSim::report).
constexpr std::size_t kReportWords = 11;

}  // namespace

// ---------------------------------------------------------------------------
// ShardSim

ShardSim::ShardSim(const ShardSpec& spec, std::size_t shard)
    : spec_(spec),
      shard_(shard),
      system_(spec.params, metrics_,
              Rng::derive_stream(spec.seed, kSystemSeedStream, shard).next()),
      driver_rng_(
          Rng::derive_stream(spec.seed, kDriverSeedStream, shard).next()) {
  // The population is initialized lazily on the first run_step so that
  // load_checkpoint can restore into a freshly constructed system (the
  // snapshot layer rejects restoring over an initialized one).
}

void ShardSim::run_step() {
  // (round, step) correlation key for tools/now_obs: every process tags
  // its per-step span with (shard, step), so merged timelines line up
  // by step even though the processes' clocks are independent.
  obs::ScopedSpan span(obs::Cat::kShard, "shard.step", nullptr, shard_,
                       completed_ + 1);
  if (completed_ == 0 && system_.num_nodes() == 0) {
    // Lazy first-use initialization (skipped entirely on restore).
    const auto byz0 = static_cast<std::size_t>(std::floor(
        spec_.byz_fraction * static_cast<double>(spec_.n0)));
    (void)system_.initialize(spec_.n0, byz0);
  }
  const std::size_t live = system_.num_nodes();
  const std::size_t ops =
      std::min(spec_.batch_ops, live > 2 ? live - 2 : std::size_t{0});
  const auto victims =
      system_.state().sample_distinct_nodes(driver_rng_, ops);
  (void)system_.step_parallel(ops, victims, /*byzantine_joiners=*/false,
                              /*shards=*/1);
  ++completed_;

  const auto inv = system_.check();
  const std::uint64_t messages = messages_base_ + metrics_.total().messages;
  const std::uint64_t rounds = rounds_base_ + metrics_.total().rounds;

  // Chain the digest over everything the future trajectory depends on:
  // the invariant sample pins the observable state, the RNG states pin the
  // unobservable remainder (two diverging states cannot produce equal
  // digests for long).
  core::SnapshotWriter w;
  w.u64(digest_);
  w.u64(completed_);
  w.u64(inv.num_nodes);
  w.u64(inv.num_clusters);
  w.u64(inv.min_cluster_size);
  w.u64(inv.max_cluster_size);
  w.u64(inv.compromised_clusters);
  w.f64(inv.worst_byz_fraction);
  w.u64(messages);
  w.u64(rounds);
  for (const std::uint64_t word : driver_rng_.state()) w.u64(word);
  for (const std::uint64_t word : system_.rng().state()) w.u64(word);
  digest_ = core::fnv1a64(w.buffer().data(), w.buffer().size());

  report_ = {shard_,
             completed_,
             digest_,
             inv.num_nodes,
             inv.num_clusters,
             inv.min_cluster_size,
             inv.max_cluster_size,
             inv.compromised_clusters,
             std::bit_cast<std::uint64_t>(inv.worst_byz_fraction),
             messages,
             rounds};
}

void ShardSim::save_checkpoint(const std::string& dir) const {
  obs::ScopedSpan span(obs::Cat::kSnapshot, "ckpt.save", nullptr, shard_,
                       completed_);
  core::SnapshotWriter w;
  w.u64(shard_);
  w.u64(completed_);
  w.u64(digest_);
  w.u64(messages_base_ + metrics_.total().messages);
  w.u64(rounds_base_ + metrics_.total().rounds);
  w.u64(report_.size());
  for (const std::uint64_t word : report_) w.u64(word);
  for (const std::uint64_t word : driver_rng_.state()) w.u64(word);
  core::save_params(spec_.params, w);
  core::save_system(system_, w);

  const std::string path = checkpoint_path(dir, shard_);
  const std::string tmp = path + ".tmp";
  w.write_file(tmp, kCheckpointMagic, kCheckpointVersion);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw core::SnapshotError("checkpoint rename failed: " + path);
  }
}

std::unique_ptr<ShardSim> ShardSim::load_checkpoint(const ShardSpec& spec,
                                                    std::size_t shard,
                                                    const std::string& dir) {
  // read_file throws when there is no (usable) checkpoint — a normal
  // fresh-start probe, so the restore span opens only once it succeeds.
  core::SnapshotReader r = core::SnapshotReader::read_file(
      checkpoint_path(dir, shard), kCheckpointMagic, kCheckpointVersion,
      kCheckpointVersion);
  obs::ScopedSpan span(obs::Cat::kSnapshot, "ckpt.restore", nullptr, shard);
  auto sim = std::unique_ptr<ShardSim>(new ShardSim(spec, shard));
  if (r.u64() != shard) {
    throw core::SnapshotError("checkpoint is for a different shard");
  }
  sim->completed_ = r.u64();
  sim->digest_ = r.u64();
  sim->messages_base_ = r.u64();
  sim->rounds_base_ = r.u64();
  const std::uint64_t words = r.count(8);
  if (words != kReportWords && words != 0) {
    throw core::SnapshotError("checkpoint report has unexpected size");
  }
  sim->report_.clear();
  for (std::uint64_t i = 0; i < words; ++i) sim->report_.push_back(r.u64());
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& word : rng_state) word = r.u64();
  sim->driver_rng_.restore_state(rng_state);
  core::check_params(spec.params, r);
  core::load_system(sim->system_, r);
  span.set_args(shard, sim->completed_);
  return sim;
}

// ---------------------------------------------------------------------------
// ShardWorkerActor

ShardWorkerActor::ShardWorkerActor(const ShardSpec& spec,
                                   std::unique_ptr<ShardSim> sim,
                                   std::size_t crash_after)
    : spec_(spec), sim_(std::move(sim)), crash_after_(crash_after) {}

void ShardWorkerActor::on_round(std::size_t /*round*/,
                                std::span<const net::Message> inbox,
                                net::Outbox& out) {
  if (done_) return;
  for (const net::Message& m : inbox) {
    if (m.tag == net::Tag::kShardGo && net::word_count(m.payload) == 1) {
      go_ = std::max(go_, static_cast<std::size_t>(net::word(m.payload, 0)));
    } else if (m.tag == net::Tag::kShardBye) {
      done_ = true;
      return;
    }
  }
  if (sim_->completed() < spec_.steps && sim_->completed() <= go_) {
    sim_->run_step();
    if (spec_.checkpoint_every > 0 && !spec_.checkpoint_dir.empty() &&
        sim_->completed() % spec_.checkpoint_every == 0) {
      sim_->save_checkpoint(spec_.checkpoint_dir);
    }
    if (crash_after_ != 0 && sim_->completed() == crash_after_) {
      // Simulated hard crash: no destructors, no flushing — the respawned
      // process must recover from the checkpoint alone.
      ::_exit(kCrashExitCode);
    }
    static const std::uint32_t kReportName =
        obs::span_name_id("shard.report");
    obs::instant(obs::Cat::kShard, kReportName, sim_->shard(),
                 sim_->completed());
    out.send(coordinator_node(), net::Tag::kShardDigest,
             net::pack_words(sim_->report()));
  } else if (sim_->completed() > 0) {
    // Not cleared to advance: retransmit the newest digest until the
    // coordinator acknowledges it (handles dropped digests AND replays
    // after a crash-restore, with no dedicated recovery path).
    static const std::uint32_t kRetransmitName =
        obs::span_name_id("shard.retransmit");
    obs::instant(obs::Cat::kShard, kRetransmitName, sim_->shard(),
                 sim_->completed());
    out.send(coordinator_node(), net::Tag::kShardDigest,
             net::pack_words(sim_->report()));
  }
}

// ---------------------------------------------------------------------------
// ShardCoordinatorActor

ShardCoordinatorActor::ShardCoordinatorActor(const ShardSpec& spec)
    : spec_(spec) {
  pending_.resize(spec.steps);
  for (PendingStep& p : pending_) {
    p.digest.assign(spec.num_shards, 0);
    p.report.resize(spec.num_shards);
  }
}

void ShardCoordinatorActor::on_round(std::size_t round,
                                     std::span<const net::Message> inbox,
                                     net::Outbox& out) {
  for (const net::Message& m : inbox) {
    if (m.tag != net::Tag::kShardDigest ||
        net::word_count(m.payload) != 11) {
      continue;
    }
    const auto shard = static_cast<std::size_t>(net::word(m.payload, 0));
    const auto step = static_cast<std::size_t>(net::word(m.payload, 1));
    const std::uint64_t digest = net::word(m.payload, 2);
    if (shard >= spec_.num_shards || step < 1 || step > spec_.steps) {
      continue;
    }
    PendingStep& p = pending_[step - 1];
    if (p.digest[shard] == 0) {
      p.digest[shard] = digest;
      auto& rep = p.report[shard];
      rep.clear();
      for (std::size_t i = 0; i < net::word_count(m.payload); ++i) {
        rep.push_back(net::word(m.payload, i));
      }
      ++p.have;
    } else if (p.digest[shard] != digest) {
      // Two reports of the same (shard, step) disagreeing means a shard's
      // replay diverged from its original execution — determinism broken.
      throw std::runtime_error(
          "shard digest mismatch: shard " + std::to_string(shard) +
          " step " + std::to_string(step));
    }
  }

  while (merged_ < spec_.steps && pending_[merged_].have == spec_.num_shards) {
    const PendingStep& p = pending_[merged_];
    core::SnapshotWriter w;
    w.u64(merged_ + 1);
    for (const std::uint64_t d : p.digest) w.u64(d);
    const std::uint64_t step_digest =
        core::fnv1a64(w.buffer().data(), w.buffer().size());

    core::SnapshotWriter chain;
    chain.u64(result_.run_digest);
    chain.u64(step_digest);
    result_.run_digest =
        core::fnv1a64(chain.buffer().data(), chain.buffer().size());
    result_.step_digests.push_back(step_digest);

    ShardStepStats stats;
    for (const auto& rep : p.report) {
      stats.num_nodes += rep[3];
      stats.num_clusters += rep[4];
      stats.min_cluster = stats.min_cluster == 0
                              ? rep[5]
                              : std::min(stats.min_cluster, rep[5]);
      stats.max_cluster = std::max(stats.max_cluster, rep[6]);
      stats.compromised += rep[7];
      stats.worst_byz =
          std::max(stats.worst_byz, std::bit_cast<double>(rep[8]));
      stats.messages += rep[9];
      stats.rounds += rep[10];
    }
    result_.final_stats = stats;
    ++merged_;
    result_.steps_completed = merged_;
    static const std::uint32_t kMergeName = obs::span_name_id("shard.merge");
    obs::instant(obs::Cat::kShard, kMergeName, merged_, step_digest);
  }

  if (merged_ == spec_.steps) finished_ = true;
  for (std::size_t s = 0; s < spec_.num_shards; ++s) {
    if (finished_) {
      out.send(shard_node(s), net::Tag::kShardBye);
    } else {
      out.send(shard_node(s), net::Tag::kShardGo, net::make_words({merged_}));
    }
  }
  result_.engine_rounds = round + 1;
}

// ---------------------------------------------------------------------------
// Runners

ShardRunResult run_single_process(const ShardSpec& spec,
                                  const net::FaultPlan* faults,
                                  std::uint64_t fault_seed) {
  Metrics scratch;
  net::InProcTransport inproc;
  std::unique_ptr<net::FaultyTransport> faulty;
  net::Transport* transport = &inproc;
  if (faults != nullptr && faults->any()) {
    faulty = std::make_unique<net::FaultyTransport>(inproc, *faults,
                                                    fault_seed);
    transport = faulty.get();
  }
  net::RoundEngine engine{scratch, *transport};

  auto coordinator = std::make_unique<ShardCoordinatorActor>(spec);
  const auto* coord = coordinator.get();
  engine.add_actor(coordinator_node(), std::move(coordinator));
  for (std::size_t s = 0; s < spec.num_shards; ++s) {
    engine.add_actor(shard_node(s),
                     std::make_unique<ShardWorkerActor>(
                         spec, std::make_unique<ShardSim>(spec, s)));
  }

  const std::size_t cap = spec.effective_round_cap();
  while (!coord->finished()) {
    if (engine.round() >= cap) {
      throw net::TransportError("shard run exceeded its round cap");
    }
    engine.run_round();
  }
  return coord->result();
}

void run_worker(const ShardSpec& spec, std::size_t shard,
                net::Transport& transport, std::size_t crash_after) {
  std::unique_ptr<ShardSim> sim;
  if (spec.checkpoint_every > 0 && !spec.checkpoint_dir.empty()) {
    try {
      sim = ShardSim::load_checkpoint(spec, shard, spec.checkpoint_dir);
      // A worker that starts from a checkpoint is (by construction of the
      // driver) a respawn after a crash; the instant makes the recovery
      // visible on the merged timeline.
      obs::instant(obs::Cat::kShard, obs::span_name_id("shard.respawn"),
                   shard, sim->completed());
    } catch (const core::SnapshotError&) {
      sim = nullptr;  // no (usable) checkpoint: fresh start
    }
  }
  if (!sim) sim = std::make_unique<ShardSim>(spec, shard);

  Metrics scratch;
  net::RoundEngine engine{scratch, transport};
  auto actor = std::make_unique<ShardWorkerActor>(spec, std::move(sim),
                                                  crash_after);
  const auto* worker = actor.get();
  engine.add_actor(shard_node(shard), std::move(actor));

  const std::size_t cap = spec.effective_round_cap();
  while (!worker->done()) {
    if (engine.round() >= cap) {
      throw net::TransportError("worker exceeded the round cap");
    }
    engine.run_round();
  }
}

ShardRunResult run_hub(const ShardSpec& spec, net::Transport& transport,
                       net::SocketHub& hub,
                       const std::function<void(bool)>& between_rounds) {
  Metrics scratch;
  net::RoundEngine engine{scratch, transport};
  auto coordinator = std::make_unique<ShardCoordinatorActor>(spec);
  const auto* coord = coordinator.get();
  engine.add_actor(coordinator_node(), std::move(coordinator));

  const std::size_t cap = spec.effective_round_cap();
  while (true) {
    if (engine.round() >= cap) {
      throw net::TransportError("shard run exceeded its round cap");
    }
    engine.run_round();
    if (between_rounds) between_rounds(coord->finished());
    // The coordinator re-broadcasts the end-of-run notice every round;
    // the run is over once every worker process has disconnected.
    if (coord->finished() && hub.num_live_spokes() == 0) break;
  }
  return coord->result();
}

}  // namespace now::sim
