// Seeded scenario corpus (DESIGN.md §8): randomized adversarial scenarios,
// each recorded as a replayable trace, with failing ones shrunk to minimal
// reproducers.
//
// The generator randomizes the ScenarioConfig axes — initialization
// topology, population, batch size, shard count, the batched adversary's
// corruption fraction and placement policy, and the forced-leave DoS
// quota — always within the model's adversary budget (tau <= 1/3 - eps;
// corrupted joiners bounded by tau * n). Every generated scenario is run
// once with trace recording (sim/trace.hpp); a scenario whose outcome
// violates the gated guarantees (a compromised cluster, a disconnected
// overlay, a breached corruption budget) is then SHRUNK — steps, batch
// size and population are greedily halved while the violation persists —
// and the minimal reproducer's trace is recorded in its place.
//
// bench/corpus/ holds the checked-in corpus; the CI `corpus` job replays
// every trace there and fails on any invariant-sample drift, so a
// behavioral change that alters any recorded trajectory is caught exactly
// like a bench-fidelity regression. scripts/gen_corpus.py +
// tools/now_trace.cpp drive generation/regeneration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/scenario.hpp"

namespace now::sim {

struct CorpusAxes {
  std::uint64_t master_seed = 20260726;
  std::size_t count = 6;
  std::size_t min_steps = 40;
  std::size_t max_steps = 120;
};

struct CorpusCase {
  std::string name;
  /// Trace file name, relative to the generation out_dir.
  std::string trace_file;
  ScenarioConfig config;
  ScenarioResult result;
  /// The scenario violated a gated guarantee; config/result describe the
  /// SHRUNK minimal reproducer.
  bool failing = false;
  /// Number of accepted shrink reductions (0 for passing scenarios).
  std::size_t shrink_rounds = 0;
};

/// True when the outcome violates the guarantees the corpus gates on: a
/// compromised cluster, a disconnected overlay at any sample, or a final
/// Byzantine population above the adversary's tau * n budget.
[[nodiscard]] bool scenario_failed(const ScenarioConfig& config,
                                   const ScenarioResult& result);

/// One deterministic randomized scenario drawn from the axes.
[[nodiscard]] ScenarioConfig random_scenario_config(Rng& rng,
                                                    const CorpusAxes& axes);

/// Runs `config` under the batched adversary driver, recording the trace
/// to `trace_path` (empty = no recording).
ScenarioResult run_corpus_scenario(ScenarioConfig config,
                                   const std::string& trace_path);

/// Greedy minimization of a failing config: halve steps, halve batch_ops,
/// then shrink n0, keeping each reduction only while scenario_failed still
/// holds. Returns the minimal failing config; `rounds_out` (optional)
/// receives the number of accepted reductions.
[[nodiscard]] ScenarioConfig shrink_failing_config(
    const ScenarioConfig& failing, std::size_t* rounds_out = nullptr);

/// Generates `axes.count` scenarios into `out_dir` (created if missing),
/// one trace file each, shrinking failing ones. Deterministic in
/// axes.master_seed.
std::vector<CorpusCase> generate_corpus(const CorpusAxes& axes,
                                        const std::string& out_dir);

}  // namespace now::sim
