// Seeded scenario corpus + coverage-guided fleet (DESIGN.md §8, §10):
// randomized adversarial scenarios, each recorded as a replayable trace,
// with failing ones shrunk to minimal reproducers.
//
// The generator randomizes the ScenarioConfig axes — initialization
// topology, population, batch size, shard count, the batched adversary's
// corruption fraction and placement policy, the forced-leave DoS quota,
// and (since trace v2) the engine's behavior axes: merge policy, threshold
// mode, walk mode and resolve mode — always within the model's adversary
// budget (tau <= 1/3 - eps; corrupted joiners bounded by tau * n). Every
// generated scenario is run once with trace recording (sim/trace.hpp); a
// scenario that violates the gated guarantees (a compromised cluster, a
// disconnected overlay, a breached corruption budget) is then SHRUNK —
// steps, batch size and population are greedily halved while the SAME
// failure kind persists — and the minimal reproducer's trace is recorded
// in its place.
//
// COVERAGE. A run's coverage signature is its configuration cell (the
// tuple of discrete config axes) crossed with the observed-behavior bits
// the run actually exercised: did a split fire, a merge fire, a slab
// compaction trigger, a stage-1 commit spill to stage 2, an optimistic
// resolve get replayed sequentially, the adversary's corruption budget
// saturate. run_coverage_fleet spends a step budget exploring: instead of
// re-rolling configs blindly it walks the enumerated config cells that no
// run has hit yet, mutating a parent config toward each unexplored cell —
// many short targeted runs instead of a few long random ones, which is
// why the fleet reaches a multiple of random sampling's distinct cells
// under the same budget (asserted in tests/sim/corpus_coverage_test.cpp).
//
// bench/corpus/ holds the checked-in corpus (traces + MANIFEST.tsv); the
// CI `corpus` job replays every trace there — v1 and v2 — and fails on
// any invariant-sample drift, so a behavioral change that alters any
// recorded trajectory is caught exactly like a bench-fidelity regression.
// The nightly fleet promotes new minimal reproducers into bench/corpus/
// (scripts/gen_corpus.py --promote). scripts/gen_corpus.py +
// tools/now_trace.cpp drive generation/regeneration.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/scenario.hpp"

namespace now::sim {

struct CorpusAxes {
  std::uint64_t master_seed = 20260726;
  std::size_t count = 6;
  std::size_t min_steps = 40;
  std::size_t max_steps = 120;
};

/// Which gated guarantee a failing scenario violated. Shrinking preserves
/// the kind: a reproducer minimized from a compromise must still
/// demonstrate a compromise, not merely any failure.
enum class FailureKind : std::uint8_t {
  kNone = 0,
  /// A cluster reached the 1/3 Byzantine threshold at a sampled step.
  kCompromise,
  /// The overlay was disconnected at a sampled step.
  kDisconnect,
  /// Final Byzantine population exceeded the tau * n + 1 budget.
  kBudgetBreach,
};

[[nodiscard]] const char* failure_kind_name(FailureKind kind);

/// Classifies a run outcome against the gated guarantees; `tau` is the
/// adversary budget the config ran under. Checks in severity order
/// (compromise > disconnect > budget breach) so the kind is deterministic
/// when several hold.
[[nodiscard]] FailureKind classify_failure(double tau,
                                           const ScenarioResult& result);

/// True when the outcome violates any gated guarantee.
[[nodiscard]] bool scenario_failed(const ScenarioConfig& config,
                                   const ScenarioResult& result);

// ---------------------------------------------------------------- coverage

/// The discrete configuration cell of a scenario: every axis the
/// randomizer draws from, quantized. Two configs in the same cell explore
/// the same engine paths by construction choice; behavior bits record
/// which paths a run ACTUALLY took.
struct CoverageCell {
  std::uint8_t topology = 0;        // 0 sparse-random, 1 modeled-sparse
  std::uint8_t placement = 0;       // 0 uniform, 1 targeted
  std::uint8_t resolve = 0;         // 0 auto, 1 sequential, 2 optimistic
  std::uint8_t merge_policy = 0;    // 0 dissolve, 1 absorb
  std::uint8_t threshold_mode = 0;  // 0 static-N, 1 dynamic-current-n
  std::uint8_t walk_mode = 0;       // 0 simulate, 1 sample-exact
  std::uint8_t quota_bucket = 0;    // 0 none, 1 partial, 2 full

  friend bool operator==(const CoverageCell&, const CoverageCell&) = default;
};

/// Observed-behavior bits (CoverageSignature::behavior).
enum CoverageBehavior : std::uint8_t {
  kBehaviorSplit = 1 << 0,
  kBehaviorMerge = 1 << 1,
  kBehaviorCompaction = 1 << 2,
  kBehaviorStage2Spill = 1 << 3,
  kBehaviorResolveReplay = 1 << 4,
  kBehaviorBudgetSaturated = 1 << 5,
};

/// A run's coverage signature: config cell x behavior bits.
struct CoverageSignature {
  CoverageCell cell;
  std::uint8_t behavior = 0;

  /// Dense integer key of the config cell alone (< kNumConfigCells).
  [[nodiscard]] std::uint32_t cell_key() const;
  /// Dense integer key of the full signature (cell_key * 64 + behavior).
  [[nodiscard]] std::uint32_t key() const;

  friend bool operator==(const CoverageSignature&,
                         const CoverageSignature&) = default;
};

/// Total enumerable config cells: 2 * 2 * 3 * 2 * 2 * 2 * 3.
inline constexpr std::uint32_t kNumConfigCells = 288;

/// The config cell a ScenarioConfig falls in (pure function of config).
[[nodiscard]] CoverageCell cell_of(const ScenarioConfig& config);

/// The cell with dense key `key` (inverse of CoverageSignature::cell_key).
[[nodiscard]] CoverageCell cell_from_key(std::uint32_t key);

/// Deterministic signature extraction from a finished run.
[[nodiscard]] CoverageSignature signature_of(const ScenarioConfig& config,
                                             const ScenarioResult& result);

/// Rewrites `parent`'s discrete axes to land exactly in `target` —
/// the fleet's mutation operator. Continuous knobs (seed, corruption
/// fraction, population) stay inherited from the parent; the quota bucket
/// is realized against the parent's batch_ops. A config mutated toward a
/// cell satisfies cell_of(mutated) == target, so reaching a named
/// unexplored cell takes exactly one mutation.
[[nodiscard]] ScenarioConfig mutate_toward_cell(const ScenarioConfig& parent,
                                                const CoverageCell& target);

// ------------------------------------------------------------------ corpus

struct CorpusCase {
  std::string name;
  /// Trace file name, relative to the generation out_dir.
  std::string trace_file;
  ScenarioConfig config;
  ScenarioResult result;
  /// The scenario violated a gated guarantee; config/result describe the
  /// SHRUNK minimal reproducer.
  bool failing = false;
  FailureKind failure = FailureKind::kNone;
  /// Number of accepted shrink reductions (0 for passing scenarios).
  std::size_t shrink_rounds = 0;
  CoverageSignature signature;
};

/// One deterministic randomized scenario drawn from the axes. Randomizes
/// every coverage axis, including merge policy, threshold mode, walk mode
/// and resolve mode (kSimulate walks are capped to small populations —
/// they flood real messages).
[[nodiscard]] ScenarioConfig random_scenario_config(Rng& rng,
                                                    const CorpusAxes& axes);

/// Runs `config` under the batched adversary driver, recording the trace
/// to `trace_path` (empty = no recording).
ScenarioResult run_corpus_scenario(ScenarioConfig config,
                                   const std::string& trace_path);

/// Greedy minimization of a failing config: halve steps, halve batch_ops,
/// then shrink n0, keeping each reduction only while the run still fails
/// with the SAME FailureKind as `failing` did. Returns the minimal
/// reproducer; `rounds_out` (optional) receives the number of accepted
/// reductions.
[[nodiscard]] ScenarioConfig shrink_failing_config(
    const ScenarioConfig& failing, std::size_t* rounds_out = nullptr);

/// Generates `axes.count` scenarios into `out_dir` (created if missing),
/// one trace file each, shrinking failing ones, plus a MANIFEST.tsv
/// describing every case. Deterministic in axes.master_seed. The discrete
/// behavior axes are STRATIFIED across the cases (case i takes merge
/// policy i % 2, threshold mode (i / 2) % 2, walk mode (i / 4) % 2, ...)
/// so a default-sized corpus covers each axis value at least once; case 0
/// is recorded in the legacy v1 trace format so backward-compat replay
/// coverage is itself a regenerable artifact.
std::vector<CorpusCase> generate_corpus(const CorpusAxes& axes,
                                        const std::string& out_dir);

/// Serializes the generation manifest (one TSV row per case:
/// name, trace file, trace format, failure kind, shrink rounds, signature
/// key, config cell key, steps, n0, seed) to out_dir/MANIFEST.tsv.
void write_corpus_manifest(const std::vector<CorpusCase>& cases,
                           const std::string& out_dir);

// ------------------------------------------------------------------- fleet

struct FleetOptions {
  std::uint64_t seed = 20260808;
  /// Total simulated steps the fleet may spend across all runs — the
  /// budget axis the coverage comparison holds fixed.
  std::size_t step_budget = 480;
  /// Horizon of each targeted run. Short: one run per hypothesis cell.
  std::size_t steps_per_run = 24;
  CorpusAxes axes;
  /// Shrink failing runs into minimal reproducers (costs extra runs
  /// outside the step budget; off for the in-test smoke).
  bool shrink_failures = false;
};

struct FleetRun {
  ScenarioConfig config;
  CoverageSignature signature;
  FailureKind failure = FailureKind::kNone;
  std::size_t steps = 0;
};

struct FleetResult {
  std::vector<FleetRun> runs;
  /// Distinct full signatures (config cell x behavior) observed.
  std::size_t distinct_signatures = 0;
  /// Distinct config cells observed.
  std::size_t distinct_cells = 0;
  std::size_t steps_spent = 0;
  /// Failing runs, shrunk to minimal reproducers when
  /// FleetOptions::shrink_failures is set (name/trace_file left empty —
  /// promotion assigns them).
  std::vector<CorpusCase> failures;
};

/// Coverage-guided exploration: seeds a parent from the axes, then walks
/// the unexplored config cells in deterministic order, mutating the
/// parent toward each and running a short scenario, until the step budget
/// is exhausted. Every run's signature is recorded; failing runs become
/// reproducer candidates.
[[nodiscard]] FleetResult run_coverage_fleet(const FleetOptions& options);

/// Writes the fleet's coverage report as JSON (schema in EXPERIMENTS.md):
/// totals, distinct cell/signature counts, per-run rows and the failure
/// list. Used by `now_trace fleet` and the nightly coverage artifact.
void write_coverage_report(const FleetResult& result, std::ostream& os);

}  // namespace now::sim
