// Scenario record & replay (DESIGN.md §8, §10).
//
// A trace is a compact framed binary file capturing everything an
// adversary (or the batched scenario driver) DID to a deployment: every
// join (with its corruption bit), every leave victim, every batched step's
// exact inputs, the step boundaries, and the invariant samples the run
// observed. All protocol-internal randomness derives from the recorded
// seed, so the event stream plus the header IS the full trajectory:
// replaying the events against a fresh system reproduces every membership
// move bit-exactly, and the recorded invariant samples double as a
// self-check — replay fails loudly on the first field that differs.
//
// This is the evaluation methodology of the dynamic-BRB line of work
// (replaying adversarial schedules against evolving memberships), applied
// to NOW: a failing adversarial scenario no longer evaporates with the
// process that found it — its trace is a portable, shrinkable, CI-gated
// reproducer (sim/corpus.hpp, bench/corpus/).
//
// Format v2 (DESIGN.md §10) adds SEEKABLE replay: the recorder embeds
// periodic full system snapshots (core/snapshot.hpp save_system payloads)
// as checkpoint frames, and a footer indexes their (step, byte offset)
// pairs so replay can restore any checkpoint in O(1) and continue from
// there bit-identically. Full replays byte-compare the live state against
// every embedded snapshot — each checkpoint is an extra observation point
// between samples — and bisect_trace binary-searches the checkpoint index
// to localize a divergence with O(log steps) restores instead of an
// O(steps) replay per hypothesis. v1 traces (header + events only) stay
// readable forever; the v1 WRITER also stays available
// (ScenarioConfig::trace_format = 1) so backward-compat coverage is a
// regenerable artifact, not a frozen binary.
//
// The same file also defines the scenario CHECKPOINT format — the system
// snapshot (core/snapshot.hpp) wrapped with the scenario driver's own
// state (driver RNG, accumulated samples, adversary state) — which backs
// ScenarioConfig::{checkpoint_every, halt_at, resume_from} and the
// split long-run of bench_thm3_longrun.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/now.hpp"
#include "core/snapshot.hpp"
#include "sim/scenario.hpp"

namespace now::sim {

// Version rules (DESIGN.md §10): the reader accepts every version in
// [kTraceMinReadVersion, kTraceFormatVersion]; the writer emits
// kTraceFormatVersion unless ScenarioConfig::trace_format pins v1. The
// header and event/sample/summary frame layouts are FROZEN across v1/v2 —
// v2 only appends new frame kinds (checkpoint) and a footer — so one
// replay loop serves both. Checkpoints embed a save_system payload and
// follow every snapshot version bump.
inline constexpr std::uint32_t kTraceFormatVersion = 2;
inline constexpr std::uint32_t kTraceMinReadVersion = 1;
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Records a scenario into an in-memory trace; run_scenario drives it
/// (attach as the system's TraceSink, call begin_step/record_sample/
/// record_checkpoint, then finish). A pure writer except for
/// record_checkpoint, which serializes the system it is handed.
class TraceRecorder final : public core::TraceSink {
 public:
  /// `n0` / `byz0` are the RESOLVED initialization inputs (after the
  /// sqrt(N) and tau defaults were applied). config.trace_format == 1
  /// selects the legacy v1 writer (no checkpoints, no footer).
  TraceRecorder(const ScenarioConfig& config, std::size_t n0,
                std::size_t byz0, std::string adversary_name);

  void on_join(NodeId node, bool byzantine) override;
  void on_leave(NodeId node) override;
  void on_batch(std::size_t joins, std::size_t byzantine_joins,
                const std::vector<NodeId>& leaves,
                std::size_t shards) override;

  void begin_step(std::size_t t);
  void record_sample(const InvariantSample& sample);

  /// Embeds a checkpoint frame: full system snapshot plus the run's
  /// partial aggregates (split/merge totals so far, peak fraction,
  /// compromise state), so a replay seeked here reproduces the end
  /// summary exactly. No-op for the v1 writer. Call at a step boundary,
  /// after the step's sample (if any) was recorded.
  void record_checkpoint(std::size_t step, const core::NowSystem& system,
                         std::size_t splits_so_far,
                         std::size_t merges_so_far,
                         const ScenarioResult& partial);

  /// Appends the end-of-run summary (and, for v2, the checkpoint footer)
  /// and writes the framed file.
  void finish(const ScenarioResult& result, const std::string& path);

 private:
  core::SnapshotWriter writer_;
  std::uint32_t format_version_ = kTraceFormatVersion;
  /// (step, payload byte offset of the frame tag) per embedded checkpoint,
  /// in step order — becomes the footer.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> checkpoints_;
};

/// Sentinel for ReplayOptions::start_checkpoint: replay from scratch
/// (initialize a fresh deployment) instead of restoring a checkpoint.
inline constexpr std::size_t kReplayFromStart = static_cast<std::size_t>(-1);

/// Knobs for replay_trace. The defaults reproduce the recorded run
/// exactly; every knob preserves bit-identity of the trajectory (shard
/// count and resolve mode are equivalence axes of the engine, and seeking
/// restores recorded state verbatim).
struct ReplayOptions {
  /// 0 = run each batch frame with its recorded shard count; otherwise
  /// override every batch with this count (the replay-level shard
  /// equivalence check).
  std::size_t shards_override = 0;
  /// Replay under a specific ResolveMode instead of the default.
  /// save_params excludes resolve_mode precisely so this cannot perturb
  /// the embedded-snapshot byte comparison.
  bool override_resolve = false;
  core::ResolveMode resolve_mode = core::ResolveMode::kAuto;
  /// Index into trace_checkpoints() to restore and continue from
  /// (v2 only); kReplayFromStart replays the whole trace.
  std::size_t start_checkpoint = kReplayFromStart;
};

/// Outcome of replaying one trace.
struct TraceReplayResult {
  bool ok = true;
  /// First mismatch (empty when ok): which frame diverged and how.
  std::string error;
  /// Step of the first observed mismatch (SIZE_MAX when ok). Divergence
  /// is observable at sample frames, checkpoint frames and the end
  /// summary, so this is the first OBSERVATION of the fork, at the
  /// trace's sample/checkpoint granularity.
  std::size_t first_bad_step = static_cast<std::size_t>(-1);
  /// Step the replay started at (0 = from scratch, else the restored
  /// checkpoint's step).
  std::size_t start_step = 0;
  std::size_t steps_replayed = 0;
  std::size_t samples_checked = 0;
  /// Embedded checkpoint snapshots byte-verified against live state.
  std::size_t checkpoints_checked = 0;
  /// The scenario outcome RECONSTRUCTED from the replayed run (samples,
  /// peak fraction, compromise step, final counts) — callers report
  /// verdicts from this exactly as they would from run_scenario. On a
  /// seeked replay, `samples` holds only the post-seek tail; aggregates
  /// are seeded from the restored checkpoint and cover the whole run.
  ScenarioResult result;
};

/// Re-drives a deployment from the trace and verifies every recorded
/// invariant sample, every embedded checkpoint snapshot (v2, byte-exact)
/// and the end-of-run summary. Throws core::SnapshotError on malformed
/// files (bad footer, dangling checkpoint offsets, truncation);
/// event/sample divergence is reported through the result instead (it
/// means behavior drifted, not that the file is damaged).
[[nodiscard]] TraceReplayResult replay_trace(const std::string& path,
                                             const ReplayOptions& opts = {});

/// One entry of a v2 trace's checkpoint footer.
struct TraceCheckpointInfo {
  std::size_t step = 0;
  /// Byte offset of the checkpoint frame's tag within the payload.
  std::uint64_t offset = 0;
};

/// The checkpoint index from a trace's footer, in step order. Empty for
/// v1 traces. Throws core::SnapshotError on a malformed footer.
[[nodiscard]] std::vector<TraceCheckpointInfo> trace_checkpoints(
    const std::string& path);

/// Header-level facts about a trace (the `now_trace info` listing and the
/// corpus manifest machinery).
struct TraceInfo {
  std::uint32_t version = 0;
  std::uint64_t seed = 0;
  std::size_t steps = 0;
  std::size_t sample_every = 0;
  std::size_t n0 = 0;
  std::size_t byz0 = 0;
  std::size_t batch_ops = 0;
  std::size_t shards = 0;
  /// The recorded adversary budget — enough to re-classify a replayed
  /// trajectory's failure kind without the original ScenarioConfig.
  double tau = 0.0;
  std::string adversary;
  std::size_t checkpoint_count = 0;
};
[[nodiscard]] TraceInfo trace_info(const std::string& path);

/// Outcome of bisecting a diverging trace.
struct TraceBisectResult {
  bool diverged = false;
  /// First observed mismatch step (== the full replay's first_bad_step).
  std::size_t first_bad_step = static_cast<std::size_t>(-1);
  /// Step of the checkpoint the last FAILING probe restored (0 when the
  /// from-scratch replay is that probe — the divergence precedes the
  /// first checkpoint). The fork lies in (fork_lower_bound,
  /// first_bad_step].
  std::size_t fork_lower_bound = 0;
  /// Checkpoint restores performed — the bisection's cost metric. At most
  /// ceil(log2(#checkpoints + 1)): one restore per binary-search probe
  /// (the anchoring from-scratch probe restores nothing).
  std::size_t restores = 0;
  std::size_t probes = 0;
  /// The failing probe's mismatch message (empty when !diverged).
  std::string error;
};

/// Localizes a divergence: one from-scratch replay anchors the failure,
/// then a binary search over the checkpoint index finds the last
/// checkpoint that still replays clean — monotone because every clean
/// probe byte-verifies the later embedded snapshots, pinning the suffix
/// to the recorded trajectory. O(log steps) checkpoint restores total.
/// Works (degenerately, zero restores) on v1 traces with no checkpoints.
[[nodiscard]] TraceBisectResult bisect_trace(const std::string& path);

/// Fault-injection for the replay verifier (the mutation tests): each
/// kind corrupts ONE recorded fact, re-frames the file with a valid
/// checksum, and replay must report a divergence — never silently pass.
enum class TraceMutationKind {
  /// Flip a recorded event: a join's corruption bit, or a batch frame's
  /// byzantine-join count (within bounds). The replayed trajectory forks
  /// at the event's step; detection happens at the next sample or
  /// checkpoint frame.
  kEventBit,
  /// Bump one field of a recorded invariant sample; detection is exact
  /// at that sample's step.
  kSampleField,
  /// Bump one field of the end-of-run summary; detection at the final
  /// step.
  kSummaryField,
};

struct TraceMutation {
  bool applied = false;
  /// Step of the mutated frame (the earliest step a replay may detect
  /// the fault at).
  std::size_t step = 0;
  std::string description;
};

/// Writes a mutated copy of `path` to `out_path` (valid framing, corrupt
/// content). `pick` selects deterministically among the eligible frames.
/// Returns applied = false when the trace has no frame of that kind.
TraceMutation mutate_trace(const std::string& path,
                           const std::string& out_path,
                           TraceMutationKind kind, std::uint64_t pick);

/// One-line human summary of a trace's header + summary frames (the
/// `now_trace info` listing and the corpus manifest).
[[nodiscard]] std::string describe_trace(const std::string& path);

// ----------------------------------------------------------- checkpoints

/// Saves the full scenario state: config fingerprint, current step,
/// driver RNG, the partial result (samples so far + aggregates), the
/// split/merge counts attributed to the run so far, the adversary's
/// internal state, and the embedded system snapshot.
void save_scenario_checkpoint(const ScenarioConfig& config,
                              const adversary::Adversary& adversary,
                              const core::NowSystem& system,
                              const Rng& driver_rng,
                              const ScenarioResult& partial,
                              std::size_t step, std::size_t splits_so_far,
                              std::size_t merges_so_far,
                              const std::string& path);

struct ScenarioResume {
  std::size_t step = 0;
  std::size_t splits_so_far = 0;
  std::size_t merges_so_far = 0;
};

/// Restores a checkpoint into a freshly constructed system + the caller's
/// driver RNG / result accumulators, returning the step to resume after.
/// Throws core::SnapshotError on malformed files or config mismatch.
ScenarioResume load_scenario_checkpoint(const ScenarioConfig& config,
                                        adversary::Adversary& adversary,
                                        core::NowSystem& system,
                                        Rng& driver_rng,
                                        ScenarioResult& partial,
                                        const std::string& path);

}  // namespace now::sim
