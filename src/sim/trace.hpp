// Scenario record & replay (DESIGN.md §8).
//
// A trace is a compact framed binary file capturing everything an
// adversary (or the batched scenario driver) DID to a deployment: every
// join (with its corruption bit), every leave victim, every batched step's
// exact inputs, the step boundaries, and the invariant samples the run
// observed. All protocol-internal randomness derives from the recorded
// seed, so the event stream plus the header IS the full trajectory:
// replaying the events against a fresh system reproduces every membership
// move bit-exactly, and the recorded invariant samples double as a
// self-check — replay fails loudly on the first field that differs.
//
// This is the evaluation methodology of the dynamic-BRB line of work
// (replaying adversarial schedules against evolving memberships), applied
// to NOW: a failing adversarial scenario no longer evaporates with the
// process that found it — its trace is a portable, shrinkable, CI-gated
// reproducer (sim/corpus.hpp, bench/corpus/).
//
// The same file also defines the scenario CHECKPOINT format — the system
// snapshot (core/snapshot.hpp) wrapped with the scenario driver's own
// state (driver RNG, accumulated samples, adversary state) — which backs
// ScenarioConfig::{checkpoint_every, halt_at, resume_from} and the
// split long-run of bench_thm3_longrun.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/now.hpp"
#include "core/snapshot.hpp"
#include "sim/scenario.hpp"

namespace now::sim {

// Traces carry only a header + the event stream (no embedded system
// state), so the snapshot v2 slab format did not touch them. Checkpoints
// embed a save_system payload and follow every snapshot version bump.
inline constexpr std::uint32_t kTraceFormatVersion = 1;
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Records a scenario into an in-memory trace; run_scenario drives it
/// (attach as the system's TraceSink, call begin_step/record_sample, then
/// finish). Purely a writer: it never inspects the system.
class TraceRecorder final : public core::TraceSink {
 public:
  /// `n0` / `byz0` are the RESOLVED initialization inputs (after the
  /// sqrt(N) and tau defaults were applied).
  TraceRecorder(const ScenarioConfig& config, std::size_t n0,
                std::size_t byz0, std::string adversary_name);

  void on_join(NodeId node, bool byzantine) override;
  void on_leave(NodeId node) override;
  void on_batch(std::size_t joins, std::size_t byzantine_joins,
                const std::vector<NodeId>& leaves,
                std::size_t shards) override;

  void begin_step(std::size_t t);
  void record_sample(const InvariantSample& sample);

  /// Appends the end-of-run summary and writes the framed file.
  void finish(const ScenarioResult& result, const std::string& path);

 private:
  core::SnapshotWriter writer_;
};

/// Outcome of replaying one trace.
struct TraceReplayResult {
  bool ok = true;
  /// First mismatch (empty when ok): which frame diverged and how.
  std::string error;
  std::size_t steps_replayed = 0;
  std::size_t samples_checked = 0;
  /// The scenario outcome RECONSTRUCTED from the replayed run (samples,
  /// peak fraction, compromise step, final counts) — callers report
  /// verdicts from this exactly as they would from run_scenario.
  ScenarioResult result;
};

/// Re-drives a fresh deployment from the trace and verifies every
/// recorded invariant sample and the end-of-run summary bit-exactly.
/// Throws core::SnapshotError on malformed files; event/sample divergence
/// is reported through the result instead (it means behavior drifted, not
/// that the file is damaged).
[[nodiscard]] TraceReplayResult replay_trace(const std::string& path);

/// One-line human summary of a trace's header + summary frames (the
/// `now_trace info` listing and the corpus manifest).
[[nodiscard]] std::string describe_trace(const std::string& path);

// ----------------------------------------------------------- checkpoints

/// Saves the full scenario state: config fingerprint, current step,
/// driver RNG, the partial result (samples so far + aggregates), the
/// split/merge counts attributed to the run so far, the adversary's
/// internal state, and the embedded system snapshot.
void save_scenario_checkpoint(const ScenarioConfig& config,
                              const adversary::Adversary& adversary,
                              const core::NowSystem& system,
                              const Rng& driver_rng,
                              const ScenarioResult& partial,
                              std::size_t step, std::size_t splits_so_far,
                              std::size_t merges_so_far,
                              const std::string& path);

struct ScenarioResume {
  std::size_t step = 0;
  std::size_t splits_so_far = 0;
  std::size_t merges_so_far = 0;
};

/// Restores a checkpoint into a freshly constructed system + the caller's
/// driver RNG / result accumulators, returning the step to resume after.
/// Throws core::SnapshotError on malformed files or config mismatch.
ScenarioResume load_scenario_checkpoint(const ScenarioConfig& config,
                                        adversary::Adversary& adversary,
                                        core::NowSystem& system,
                                        Rng& driver_rng,
                                        ScenarioResult& partial,
                                        const std::string& path);

}  // namespace now::sim
