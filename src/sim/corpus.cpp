#include "sim/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "adversary/adversary.hpp"
#include "adversary/schedule.hpp"

namespace now::sim {

bool scenario_failed(const ScenarioConfig& config,
                     const ScenarioResult& result) {
  if (result.ever_compromised) return true;
  for (const InvariantSample& s : result.samples) {
    if (!s.overlay_connected) return true;
  }
  // Static-adversary budget: the corpus only drives within-model
  // adversaries, so a breached budget is an engine bug, not an attack win.
  const double budget =
      config.params.tau * static_cast<double>(result.final_nodes) + 1.0;
  return static_cast<double>(result.final_byzantine) > budget;
}

ScenarioConfig random_scenario_config(Rng& rng, const CorpusAxes& axes) {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  // k scaled with tau's slack the way Lemma 1 prescribes, so the corpus
  // samples the paper's whp regime (plus its edges), not trivially-broken
  // configurations.
  const double taus[] = {0.05, 0.10, 0.15};
  config.params.tau = taus[rng.uniform(3)];
  config.params.k = 8 + static_cast<int>(rng.uniform(3)) * 2;  // 8|10|12
  config.topology = rng.uniform(4) == 0
                        ? core::InitTopology::kSparseRandom
                        : core::InitTopology::kModeledSparse;
  config.n0 = config.topology == core::InitTopology::kSparseRandom
                  ? 300 + rng.uniform(101)     // message-level flood: small
                  : 600 + rng.uniform(601);    // modeled: up to 1200
  config.steps = axes.min_steps +
                 rng.uniform(axes.max_steps - axes.min_steps + 1);
  config.sample_every = rng.uniform(2) == 0 ? 5 : 10;
  config.seed = rng.next();
  config.batch_ops = 2 + rng.uniform(9);  // 2..10
  const std::size_t shard_axis[] = {1, 2, 4, 8};
  config.shards = shard_axis[rng.uniform(4)];
  // Corruption volume within the budget; placement and the forced-leave
  // quota pick the attack flavor.
  config.batch_byz_fraction = rng.uniform01() * config.params.tau;
  config.batch_placement = rng.uniform(2) == 0 ? BatchPlacement::kUniform
                                               : BatchPlacement::kTargeted;
  config.batch_leave_quota = rng.uniform(config.batch_ops + 1);
  return config;
}

ScenarioResult run_corpus_scenario(ScenarioConfig config,
                                   const std::string& trace_path) {
  config.trace_path = trace_path;
  Metrics metrics;
  // The driver adversary only supplies the corruption budget tau; the
  // per-step moves come from the batched placement policy.
  adversary::RandomChurnAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0)};
  return run_scenario(config, adversary, metrics);
}

ScenarioConfig shrink_failing_config(const ScenarioConfig& failing,
                                     std::size_t* rounds_out) {
  ScenarioConfig best = failing;
  best.trace_path.clear();
  std::size_t rounds = 0;
  bool reduced = true;
  while (reduced && rounds < 40) {
    reduced = false;
    std::vector<ScenarioConfig> candidates;
    if (best.steps >= 20) {
      ScenarioConfig c = best;
      c.steps /= 2;
      candidates.push_back(c);
    }
    if (best.batch_ops >= 2) {
      ScenarioConfig c = best;
      c.batch_ops /= 2;
      c.batch_leave_quota = std::min(c.batch_leave_quota, c.batch_ops);
      candidates.push_back(c);
    }
    if (best.n0 >= 400) {
      ScenarioConfig c = best;
      c.n0 = c.n0 * 3 / 4;
      candidates.push_back(c);
    }
    for (const ScenarioConfig& candidate : candidates) {
      const ScenarioResult result = run_corpus_scenario(candidate, "");
      if (scenario_failed(candidate, result)) {
        best = candidate;
        ++rounds;
        reduced = true;
        break;
      }
    }
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return best;
}

std::vector<CorpusCase> generate_corpus(const CorpusAxes& axes,
                                        const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  Rng rng{axes.master_seed};
  std::vector<CorpusCase> cases;
  cases.reserve(axes.count);
  for (std::size_t i = 0; i < axes.count; ++i) {
    CorpusCase c;
    c.config = random_scenario_config(rng, axes);
    std::string suffix = std::to_string(i);
    while (suffix.size() < 3) suffix.insert(suffix.begin(), '0');
    c.name = "corpus_" + suffix;
    c.trace_file = c.name + ".trace";
    const std::string path = out_dir + "/" + c.trace_file;
    c.result = run_corpus_scenario(c.config, path);
    c.failing = scenario_failed(c.config, c.result);
    if (c.failing) {
      // Shrink to the minimal reproducer and record ITS trace instead —
      // the checked-in corpus carries the smallest scenario that still
      // demonstrates the violation.
      c.config = shrink_failing_config(c.config, &c.shrink_rounds);
      c.result = run_corpus_scenario(c.config, path);
      c.name += "_min";
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace now::sim
