#include "sim/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "adversary/adversary.hpp"
#include "adversary/schedule.hpp"

namespace now::sim {

const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kCompromise: return "compromise";
    case FailureKind::kDisconnect: return "disconnect";
    case FailureKind::kBudgetBreach: return "budget_breach";
  }
  return "unknown";
}

FailureKind classify_failure(double tau, const ScenarioResult& result) {
  if (result.ever_compromised) return FailureKind::kCompromise;
  for (const InvariantSample& s : result.samples) {
    if (!s.overlay_connected) return FailureKind::kDisconnect;
  }
  // Static-adversary budget: the corpus only drives within-model
  // adversaries, so a breached budget is an engine bug, not an attack win.
  const double budget =
      tau * static_cast<double>(result.final_nodes) + 1.0;
  if (static_cast<double>(result.final_byzantine) > budget) {
    return FailureKind::kBudgetBreach;
  }
  return FailureKind::kNone;
}

bool scenario_failed(const ScenarioConfig& config,
                     const ScenarioResult& result) {
  return classify_failure(config.params.tau, result) != FailureKind::kNone;
}

// ------------------------------------------------------------- coverage

CoverageCell cell_of(const ScenarioConfig& config) {
  CoverageCell cell;
  // kComplete initializations fold into the modeled bucket — the corpus
  // never draws them, and the cell space stays dense.
  cell.topology =
      config.topology == core::InitTopology::kSparseRandom ? 0 : 1;
  cell.placement =
      config.batch_placement == BatchPlacement::kTargeted ? 1 : 0;
  cell.resolve =
      static_cast<std::uint8_t>(config.params.resolve_mode);
  cell.merge_policy =
      config.params.merge_policy == core::MergePolicy::kAbsorb ? 1 : 0;
  cell.threshold_mode =
      config.params.threshold_mode == core::ThresholdMode::kDynamicCurrentN
          ? 1
          : 0;
  cell.walk_mode =
      config.params.walk_mode == core::WalkMode::kSampleExact ? 1 : 0;
  if (config.batch_leave_quota == 0) {
    cell.quota_bucket = 0;
  } else if (config.batch_ops > 0 &&
             config.batch_leave_quota >= config.batch_ops) {
    cell.quota_bucket = 2;
  } else {
    cell.quota_bucket = 1;
  }
  return cell;
}

std::uint32_t CoverageSignature::cell_key() const {
  std::uint32_t key = cell.topology;
  key = key * 2 + cell.placement;
  key = key * 3 + cell.resolve;
  key = key * 2 + cell.merge_policy;
  key = key * 2 + cell.threshold_mode;
  key = key * 2 + cell.walk_mode;
  key = key * 3 + cell.quota_bucket;
  return key;
}

std::uint32_t CoverageSignature::key() const {
  return cell_key() * 64 + behavior;
}

CoverageCell cell_from_key(std::uint32_t key) {
  CoverageCell cell;
  cell.quota_bucket = static_cast<std::uint8_t>(key % 3);
  key /= 3;
  cell.walk_mode = static_cast<std::uint8_t>(key % 2);
  key /= 2;
  cell.threshold_mode = static_cast<std::uint8_t>(key % 2);
  key /= 2;
  cell.merge_policy = static_cast<std::uint8_t>(key % 2);
  key /= 2;
  cell.resolve = static_cast<std::uint8_t>(key % 3);
  key /= 3;
  cell.placement = static_cast<std::uint8_t>(key % 2);
  key /= 2;
  cell.topology = static_cast<std::uint8_t>(key % 2);
  return cell;
}

CoverageSignature signature_of(const ScenarioConfig& config,
                               const ScenarioResult& result) {
  CoverageSignature sig;
  sig.cell = cell_of(config);
  if (result.total_splits > 0) sig.behavior |= kBehaviorSplit;
  if (result.total_merges > 0) sig.behavior |= kBehaviorMerge;
  if (result.total_compactions > 0) sig.behavior |= kBehaviorCompaction;
  if (result.total_stage2_spills > 0) sig.behavior |= kBehaviorStage2Spill;
  if (result.total_resolve_replays > 0) {
    sig.behavior |= kBehaviorResolveReplay;
  }
  if (result.budget_saturated_steps > 0) {
    sig.behavior |= kBehaviorBudgetSaturated;
  }
  return sig;
}

ScenarioConfig mutate_toward_cell(const ScenarioConfig& parent,
                                  const CoverageCell& target) {
  ScenarioConfig config = parent;
  config.trace_path.clear();
  config.topology = target.topology == 0
                        ? core::InitTopology::kSparseRandom
                        : core::InitTopology::kModeledSparse;
  config.batch_placement = target.placement == 1
                               ? BatchPlacement::kTargeted
                               : BatchPlacement::kUniform;
  config.params.resolve_mode =
      static_cast<core::ResolveMode>(target.resolve);
  config.params.merge_policy = target.merge_policy == 1
                                   ? core::MergePolicy::kAbsorb
                                   : core::MergePolicy::kDissolve;
  config.params.threshold_mode =
      target.threshold_mode == 1 ? core::ThresholdMode::kDynamicCurrentN
                                 : core::ThresholdMode::kStaticN;
  config.params.walk_mode = target.walk_mode == 1
                                ? core::WalkMode::kSampleExact
                                : core::WalkMode::kSimulate;
  if (config.params.walk_mode == core::WalkMode::kSimulate) {
    // Simulated walks flood real messages; keep the population small so a
    // targeted run stays cheap.
    config.n0 = std::min<std::size_t>(config.n0, 350);
  }
  switch (target.quota_bucket) {
    case 0:
      config.batch_leave_quota = 0;
      break;
    case 1:
      // Partial quota needs batch_ops >= 2 to be distinguishable from
      // "full"; the mutation may raise batch_ops to realize the bucket.
      config.batch_ops = std::max<std::size_t>(config.batch_ops, 2);
      config.batch_leave_quota =
          std::clamp<std::size_t>(config.batch_ops / 2, 1,
                                  config.batch_ops - 1);
      break;
    default:
      config.batch_ops = std::max<std::size_t>(config.batch_ops, 1);
      config.batch_leave_quota = config.batch_ops;
      break;
  }
  return config;
}

// --------------------------------------------------------------- corpus

ScenarioConfig random_scenario_config(Rng& rng, const CorpusAxes& axes) {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  // k scaled with tau's slack the way Lemma 1 prescribes, so the corpus
  // samples the paper's whp regime (plus its edges), not trivially-broken
  // configurations.
  const double taus[] = {0.05, 0.10, 0.15};
  config.params.tau = taus[rng.uniform(3)];
  config.params.k = 8 + static_cast<int>(rng.uniform(3)) * 2;  // 8|10|12
  // Engine behavior axes — each value must appear in the wild for the
  // coverage map to mean anything.
  config.params.walk_mode = rng.uniform(2) == 0
                                ? core::WalkMode::kSimulate
                                : core::WalkMode::kSampleExact;
  config.params.merge_policy = rng.uniform(2) == 0
                                   ? core::MergePolicy::kDissolve
                                   : core::MergePolicy::kAbsorb;
  config.params.threshold_mode =
      rng.uniform(2) == 0 ? core::ThresholdMode::kStaticN
                          : core::ThresholdMode::kDynamicCurrentN;
  config.params.resolve_mode =
      static_cast<core::ResolveMode>(rng.uniform(3));
  config.topology = rng.uniform(4) == 0
                        ? core::InitTopology::kSparseRandom
                        : core::InitTopology::kModeledSparse;
  config.n0 = config.topology == core::InitTopology::kSparseRandom
                  ? 300 + rng.uniform(101)     // message-level flood: small
                  : 600 + rng.uniform(601);    // modeled: up to 1200
  if (config.params.walk_mode == core::WalkMode::kSimulate) {
    config.n0 = std::min<std::size_t>(config.n0, 350);
  }
  config.steps = axes.min_steps +
                 rng.uniform(axes.max_steps - axes.min_steps + 1);
  config.sample_every = rng.uniform(2) == 0 ? 5 : 10;
  config.seed = rng.next();
  config.batch_ops = 2 + rng.uniform(9);  // 2..10
  const std::size_t shard_axis[] = {1, 2, 4, 8};
  config.shards = shard_axis[rng.uniform(4)];
  // Corruption volume within the budget; placement and the forced-leave
  // quota pick the attack flavor.
  config.batch_byz_fraction = rng.uniform01() * config.params.tau;
  config.batch_placement = rng.uniform(2) == 0 ? BatchPlacement::kUniform
                                               : BatchPlacement::kTargeted;
  config.batch_leave_quota = rng.uniform(config.batch_ops + 1);
  return config;
}

ScenarioResult run_corpus_scenario(ScenarioConfig config,
                                   const std::string& trace_path) {
  config.trace_path = trace_path;
  Metrics metrics;
  // The driver adversary only supplies the corruption budget tau; the
  // per-step moves come from the batched placement policy.
  adversary::RandomChurnAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0)};
  return run_scenario(config, adversary, metrics);
}

ScenarioConfig shrink_failing_config(const ScenarioConfig& failing,
                                     std::size_t* rounds_out) {
  ScenarioConfig best = failing;
  best.trace_path.clear();
  // Kind-preserving shrink: a reduction only counts while the run still
  // fails the SAME way the original did.
  const FailureKind kind = classify_failure(
      failing.params.tau, run_corpus_scenario(best, ""));
  std::size_t rounds = 0;
  bool reduced = kind != FailureKind::kNone;
  while (reduced && rounds < 40) {
    reduced = false;
    std::vector<ScenarioConfig> candidates;
    if (best.steps >= 20) {
      ScenarioConfig c = best;
      c.steps /= 2;
      candidates.push_back(c);
    }
    if (best.batch_ops >= 2) {
      ScenarioConfig c = best;
      c.batch_ops /= 2;
      c.batch_leave_quota = std::min(c.batch_leave_quota, c.batch_ops);
      candidates.push_back(c);
    }
    if (best.n0 >= 400) {
      ScenarioConfig c = best;
      c.n0 = c.n0 * 3 / 4;
      candidates.push_back(c);
    }
    for (const ScenarioConfig& candidate : candidates) {
      const ScenarioResult result = run_corpus_scenario(candidate, "");
      if (classify_failure(candidate.params.tau, result) == kind) {
        best = candidate;
        ++rounds;
        reduced = true;
        break;
      }
    }
  }
  if (rounds_out != nullptr) *rounds_out = rounds;
  return best;
}

std::vector<CorpusCase> generate_corpus(const CorpusAxes& axes,
                                        const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  Rng rng{axes.master_seed};
  std::vector<CorpusCase> cases;
  cases.reserve(axes.count);
  for (std::size_t i = 0; i < axes.count; ++i) {
    CorpusCase c;
    c.config = random_scenario_config(rng, axes);
    // Stratify the behavior axes so even a small corpus covers each value
    // at least once (the randomizer alone can miss one in 6 draws).
    c.config.params.merge_policy = i % 2 == 0
                                       ? core::MergePolicy::kDissolve
                                       : core::MergePolicy::kAbsorb;
    c.config.params.threshold_mode =
        (i / 2) % 2 == 0 ? core::ThresholdMode::kStaticN
                         : core::ThresholdMode::kDynamicCurrentN;
    c.config.params.walk_mode = (i / 4) % 2 == 0
                                    ? core::WalkMode::kSampleExact
                                    : core::WalkMode::kSimulate;
    if (c.config.params.walk_mode == core::WalkMode::kSimulate) {
      c.config.n0 = std::min<std::size_t>(c.config.n0, 350);
    }
    c.config.params.resolve_mode =
        static_cast<core::ResolveMode>(i % 3);
    // Case 0 exercises the legacy v1 writer: backward-compat replay
    // coverage stays a regenerable artifact rather than a frozen binary.
    c.config.trace_format = i == 0 ? 1 : 0;
    std::string suffix = std::to_string(i);
    while (suffix.size() < 3) suffix.insert(suffix.begin(), '0');
    c.name = "corpus_" + suffix;
    c.trace_file = c.name + ".trace";
    const std::string path = out_dir + "/" + c.trace_file;
    c.result = run_corpus_scenario(c.config, path);
    c.failure = classify_failure(c.config.params.tau, c.result);
    c.failing = c.failure != FailureKind::kNone;
    if (c.failing) {
      // Shrink to the minimal reproducer and record ITS trace instead —
      // the checked-in corpus carries the smallest scenario that still
      // demonstrates the violation.
      c.config = shrink_failing_config(c.config, &c.shrink_rounds);
      c.result = run_corpus_scenario(c.config, path);
      c.failure = classify_failure(c.config.params.tau, c.result);
      c.name += "_min";
    }
    c.signature = signature_of(c.config, c.result);
    cases.push_back(std::move(c));
  }
  write_corpus_manifest(cases, out_dir);
  return cases;
}

void write_corpus_manifest(const std::vector<CorpusCase>& cases,
                           const std::string& out_dir) {
  std::ofstream os(out_dir + "/MANIFEST.tsv");
  os << "name\ttrace_file\tformat\tfailure\tshrink_rounds\tsig_key\t"
        "cell_key\tsteps\tn0\tseed\tbatch_ops\tshards\n";
  for (const CorpusCase& c : cases) {
    os << c.name << '\t' << c.trace_file << '\t'
       << (c.config.trace_format == 1 ? 1 : 2) << '\t'
       << failure_kind_name(c.failure) << '\t' << c.shrink_rounds << '\t'
       << c.signature.key() << '\t' << c.signature.cell_key() << '\t'
       << c.config.steps << '\t' << c.config.n0 << '\t' << c.config.seed
       << '\t' << c.config.batch_ops << '\t' << c.config.shards << '\n';
  }
}

// ---------------------------------------------------------------- fleet

FleetResult run_coverage_fleet(const FleetOptions& options) {
  FleetResult out;
  Rng rng{options.seed};
  // One parent supplies the continuous knobs (tau, k, population,
  // corruption volume); each run rewrites the discrete axes to land on a
  // specific unexplored cell.
  ScenarioConfig parent = random_scenario_config(rng, options.axes);
  parent.batch_ops = std::max<std::size_t>(parent.batch_ops, 2);

  std::set<std::uint32_t> seen_cells;
  std::set<std::uint32_t> seen_signatures;
  // Deterministic but seed-dependent visiting order over the cell space.
  const std::uint32_t offset = static_cast<std::uint32_t>(
      rng.uniform(kNumConfigCells));
  std::uint32_t cursor = 0;

  while (out.steps_spent + options.steps_per_run <= options.step_budget) {
    // Next unexplored config cell; once the whole space is visited
    // (budget permitting), fall back to fresh random parents.
    std::uint32_t target_key = kNumConfigCells;
    while (cursor < kNumConfigCells) {
      const std::uint32_t key = (offset + cursor) % kNumConfigCells;
      ++cursor;
      if (seen_cells.find(key) == seen_cells.end()) {
        target_key = key;
        break;
      }
    }
    ScenarioConfig config;
    if (target_key < kNumConfigCells) {
      config = mutate_toward_cell(parent, cell_from_key(target_key));
    } else {
      config = random_scenario_config(rng, options.axes);
    }
    config.steps = options.steps_per_run;
    config.sample_every = 4;
    config.seed = rng.next();

    FleetRun run;
    run.config = config;
    run.steps = config.steps;
    const ScenarioResult result = run_corpus_scenario(config, "");
    run.signature = signature_of(config, result);
    run.failure = classify_failure(config.params.tau, result);
    seen_cells.insert(run.signature.cell_key());
    seen_signatures.insert(run.signature.key());
    out.steps_spent += config.steps;

    if (run.failure != FailureKind::kNone) {
      CorpusCase failure;
      failure.config = config;
      failure.result = result;
      failure.failing = true;
      failure.failure = run.failure;
      if (options.shrink_failures) {
        failure.config =
            shrink_failing_config(config, &failure.shrink_rounds);
        failure.result = run_corpus_scenario(failure.config, "");
        failure.failure = classify_failure(failure.config.params.tau,
                                           failure.result);
      }
      failure.signature = signature_of(failure.config, failure.result);
      out.failures.push_back(std::move(failure));
    }
    out.runs.push_back(std::move(run));
  }
  out.distinct_cells = seen_cells.size();
  out.distinct_signatures = seen_signatures.size();
  return out;
}

void write_coverage_report(const FleetResult& result, std::ostream& os) {
  os << "{\n";
  os << "  \"runs\": " << result.runs.size() << ",\n";
  os << "  \"steps_spent\": " << result.steps_spent << ",\n";
  os << "  \"total_config_cells\": " << kNumConfigCells << ",\n";
  os << "  \"distinct_cells\": " << result.distinct_cells << ",\n";
  os << "  \"distinct_signatures\": " << result.distinct_signatures
     << ",\n";
  os << "  \"failures\": [";
  for (std::size_t i = 0; i < result.failures.size(); ++i) {
    const CorpusCase& f = result.failures[i];
    os << (i == 0 ? "" : ",") << "\n    {\"kind\": \""
       << failure_kind_name(f.failure) << "\", \"cell\": "
       << f.signature.cell_key() << ", \"steps\": " << f.config.steps
       << ", \"n0\": " << f.config.n0 << ", \"seed\": " << f.config.seed
       << ", \"shrink_rounds\": " << f.shrink_rounds << "}";
  }
  os << (result.failures.empty() ? "" : "\n  ") << "],\n";
  os << "  \"cells\": [";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const FleetRun& r = result.runs[i];
    os << (i == 0 ? "" : ",") << "\n    {\"cell\": "
       << r.signature.cell_key() << ", \"behavior\": "
       << static_cast<unsigned>(r.signature.behavior) << ", \"failure\": \""
       << failure_kind_name(r.failure) << "\", \"seed\": "
       << r.config.seed << "}";
  }
  os << (result.runs.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
}

}  // namespace now::sim
