// Console table / CSV output for the experiment harness. Every bench binary
// prints the rows it reproduces through this, so outputs stay uniform and
// machine-readable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace now::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with sensible precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);

  /// Fixed-width aligned rendering.
  void print(std::ostream& os) const;

  /// Comma-separated rendering (same content).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace now::sim
