// Static-cluster-count baseline (the prior work NOW improves on:
// Awerbuch–Scheideler [6, 7] and Scheideler [31] assume the network size
// varies by at most a constant factor, so they can keep the *number* of
// clusters fixed).
//
// We reuse the NOW machinery — same join/leave shuffling, same randCl/
// randNum/exchange cost model — but never split or merge. When n grows from
// sqrt(N) to N the fixed #C forces cluster sizes from Theta(log N) up to
// Theta(sqrt(N) log N): per-operation cost blows up polynomially, which is
// exactly the paper's argument for dynamic clusters (Section 1: a static
// number of clusters "yields a significant increase in the number of nodes
// within each cluster, leading to a high-complexity computation").
#pragma once

#include <cstdint>
#include <utility>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::baseline {

class StaticPartitionSystem {
 public:
  /// `params` is interpreted as for NOW except that split/merge never fire.
  /// Uses kSampleExact walks (cluster sizes here grow far beyond the walk
  /// acceptance bound NOW's thresholds assume).
  StaticPartitionSystem(const core::NowParams& params, Metrics& metrics,
                        std::uint64_t seed);

  void initialize(std::size_t n0, std::size_t byzantine_count);
  std::pair<NodeId, core::OpReport> join(bool byzantine_node);
  core::OpReport leave(NodeId node);

  [[nodiscard]] const core::NowSystem& system() const { return system_; }
  [[nodiscard]] core::NowSystem& system() { return system_; }
  [[nodiscard]] std::size_t num_nodes() const { return system_.num_nodes(); }
  [[nodiscard]] std::size_t max_cluster_size() const;

 private:
  core::NowSystem system_;
};

}  // namespace now::baseline
