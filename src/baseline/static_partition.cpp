#include "baseline/static_partition.hpp"

#include <algorithm>
#include <limits>

namespace now::baseline {

namespace {

core::NowParams freeze_partition(core::NowParams params) {
  // Push both thresholds out of reach: clusters never split, never merge.
  // l is the only knob controlling them, so pick it enormous...
  params.l = 1e9;
  // ... and sample walks exactly (the simulated walk's acceptance step uses
  // the split threshold as its size bound, which no longer means anything).
  params.walk_mode = core::WalkMode::kSampleExact;
  return params;
}

}  // namespace

StaticPartitionSystem::StaticPartitionSystem(const core::NowParams& params,
                                             Metrics& metrics,
                                             std::uint64_t seed)
    : system_(freeze_partition(params), metrics, seed) {}

void StaticPartitionSystem::initialize(std::size_t n0,
                                       std::size_t byzantine_count) {
  system_.initialize(n0, byzantine_count, core::InitTopology::kSparseRandom);
}

std::pair<NodeId, core::OpReport> StaticPartitionSystem::join(
    bool byzantine_node) {
  return system_.join(byzantine_node);
}

core::OpReport StaticPartitionSystem::leave(NodeId node) {
  return system_.leave(node);
}

std::size_t StaticPartitionSystem::max_cluster_size() const {
  std::size_t best = 0;
  for (const ClusterId id : system_.state().cluster_ids()) {
    best = std::max(best, system_.state().cluster_at(id).size());
  }
  return best;
}

}  // namespace now::baseline
