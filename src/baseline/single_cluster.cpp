#include "baseline/single_cluster.hpp"

#include "agreement/phase_king.hpp"

namespace now::baseline {

Cost flat_agreement_cost(std::size_t n) {
  return agreement::phase_king_cost_bound(n);
}

Cost flat_broadcast_cost(std::size_t n) {
  const auto nn = static_cast<std::uint64_t>(n);
  return Cost{nn * (nn - 1), 2};
}

Cost flat_sampling_cost(std::size_t n) {
  const auto nn = static_cast<std::uint64_t>(n);
  return Cost{nn, nn};
}

}  // namespace now::baseline
