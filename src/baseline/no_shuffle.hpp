// No-shuffle baseline: NOW with the exchange step disabled.
//
// Section 3.3 explains why shuffling is not optional: without it "the
// adversary chooses a specific cluster and keeps adding and removing the
// Byzantine nodes until they fall into that cluster". This wrapper exists
// so benches and tests can run that exact experiment — same join placement
// (randCl), same split/merge, no exchange on join or leave — and watch the
// join-leave attack take the victim cluster past the 1/3 threshold.
#pragma once

#include <cstdint>

#include "common/metrics.hpp"
#include "core/now.hpp"

namespace now::baseline {

/// NOW parameters with shuffling disabled (everything else untouched).
[[nodiscard]] inline core::NowParams no_shuffle_params(
    core::NowParams params) {
  params.shuffle_enabled = false;
  return params;
}

}  // namespace now::baseline
