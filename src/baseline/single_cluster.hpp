// The "one reliable process" strawman from the paper's introduction:
// emulate a single highly-available process by running Byzantine agreement
// among *all* n nodes for every decision. Correct, but every decision costs
// Theta(n^2) messages per round and Theta(n) rounds — the expense NOW's
// clustering removes.
//
// This baseline is analytic (closed-form costs); there is nothing dynamic
// to simulate, since the whole point is that the flat approach ignores the
// network's structure.
#pragma once

#include <cstddef>

#include "common/metrics.hpp"

namespace now::baseline {

/// Cost of one flat Byzantine-agreement decision among n nodes (King
/// algorithm bound: 3(f+1)+1 rounds of n(n-1) unit messages, f = (n-1)/3).
[[nodiscard]] Cost flat_agreement_cost(std::size_t n);

/// Cost of one flat broadcast (every node relays once): n(n-1) messages.
[[nodiscard]] Cost flat_broadcast_cost(std::size_t n);

/// Cost of one uniform sample without structure: contact a random known
/// node and ask it to forward along a walk of length Theta(n) over an
/// unstructured network (no expander is maintained), i.e. Theta(n) messages.
[[nodiscard]] Cost flat_sampling_cost(std::size_t n);

}  // namespace now::baseline
