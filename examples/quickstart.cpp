// Quickstart: build a NOW deployment, watch it absorb churn, and read the
// guarantees back out.
//
//   $ ./examples/quickstart
//
// Walks through the public API end to end: parameters -> initialization ->
// join/leave -> invariant inspection -> per-operation cost accounting.
// Writes its cost table to EXAMPLE_quickstart.csv (deterministic; gated
// against bench/baseline/ by scripts/check_bench.py).
#include <fstream>
#include <iostream>

#include "core/now.hpp"
#include "sim/table.hpp"

int main() {
  using namespace now;

  // 1. Parameters. N bounds the network's size envelope [sqrt(N), N];
  //    tau is the adversary's share; k is the security parameter (clusters
  //    hold ~ k ln N nodes; bigger k = sharper whp guarantees).
  core::NowParams params;
  params.max_size = 1 << 14;  // N = 16384
  params.tau = 0.15;
  params.k = 4;

  // 2. A metrics sink: every unit message and round the protocol would send
  //    is charged here, per named operation.
  Metrics metrics;

  // 3. The system itself, fully deterministic for a given seed.
  core::NowSystem system{params, metrics, /*seed=*/2024};

  // 4. Initialization (Section 3.2 of the paper): network discovery, a
  //    representative committee via scalable Byzantine agreement, a random
  //    partition into Theta(log N)-sized clusters, and an expander overlay
  //    wired between them. 480 starting nodes; the adversary corrupts 15%.
  const auto init = system.initialize(480, 72);
  std::cout << "initialized: " << system.num_nodes() << " nodes in "
            << system.num_clusters() << " clusters ("
            << init.total.messages << " messages charged)\n";

  // 5. Maintenance (Section 3.3): nodes come and go; each join/leave
  //    triggers shuffling (exchange) and possibly split/merge, keeping
  //    every cluster > 2/3 honest whp.
  const auto [node, join_report] = system.join(/*byzantine_node=*/false);
  std::cout << "node " << node << " joined (cost: "
            << join_report.cost.messages << " msgs, "
            << join_report.cost.rounds << " rounds, "
            << join_report.splits << " induced splits)\n";

  const auto leave_report = system.leave(node);
  std::cout << "node " << node << " left (cost: "
            << leave_report.cost.messages << " msgs)\n";

  // 6. Inspect the invariants Theorem 3 promises.
  const auto inv = system.check();
  std::cout << "invariants " << (inv.ok ? "OK" : "VIOLATED")
            << ": clusters=" << inv.num_clusters << " sizes=["
            << inv.min_cluster_size << "," << inv.max_cluster_size
            << "] worst byzantine fraction="
            << sim::Table::fmt(inv.worst_byz_fraction, 3)
            << " overlay degree<=" << inv.overlay_max_degree << "\n";

  // 7. Per-operation accounting, straight from the metrics sink.
  sim::Table costs({"operation", "count", "total_msgs"});
  for (const auto& label : metrics.labels()) {
    costs.add_row({label,
                   sim::Table::fmt(
                       std::uint64_t{metrics.operation_count(
                           metrics.find(label))}),
                   sim::Table::fmt(
                       metrics.operation_total(metrics.find(label)).messages)});
  }
  costs.print(std::cout);
  std::ofstream csv("EXAMPLE_quickstart.csv");
  costs.write_csv(csv);
  return inv.ok ? 0 : 1;
}
