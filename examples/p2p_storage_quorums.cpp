// Scenario: quorums for a peer-to-peer storage service under hostile churn.
//
// The motivating deployment from the paper's introduction and the King-Saia
// question it answers: a DHT-like storage network needs small quorums of
// mostly-good processors to certify writes, while peers constantly arrive
// and depart and a coordinated fraction of them is malicious. NOW's
// clusters ARE those quorums: this example runs a day of simulated churn
// (including a join-leave attacker), and after every epoch performs
// quorum-certified writes — a write is durable iff the assigned cluster
// carries an honest supermajority and acknowledges through the > 1/2 rule.
#include <fstream>
#include <iostream>

#include "adversary/adversary.hpp"
#include "apps/sampling.hpp"
#include "cluster/intercluster.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

int main() {
  using namespace now;

  core::NowParams params;
  params.max_size = 1 << 14;
  params.tau = 0.15;
  params.k = 8;  // storage wants strong quorums: scale k to the threat
  params.walk_mode = core::WalkMode::kSampleExact;

  Metrics metrics;
  core::NowSystem system{params, metrics, 7777};
  system.initialize(900, 135, core::InitTopology::kModeledSparse);
  std::cout << "storage network up: " << system.num_nodes() << " peers, "
            << system.num_clusters() << " quorums of ~"
            << params.cluster_size_target() << " peers\n\n";

  // The adversary runs a join-leave attack against one quorum while
  // background churn keeps the population moving.
  adversary::JoinLeaveAdversary attacker{
      params.tau, adversary::ChurnSchedule::hold(900),
      /*background_churn=*/0.3};
  Rng rng{42};

  sim::Table log({"epoch", "peers", "quorums", "writes_ok", "writes_failed",
                  "worst_quorum_byz", "attacked_quorum"});
  const int epochs = 8;
  const int steps_per_epoch = 50;
  const int writes_per_epoch = 40;
  bool all_durable = true;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int s = 0; s < steps_per_epoch; ++s) {
      attacker.step(system, static_cast<std::size_t>(
                                epoch * steps_per_epoch + s + 1),
                    rng);
    }

    // Writes: pick the owning quorum by sampling (in a real DHT this would
    // be a key hash; sampling exercises the same randCl machinery), then
    // require the quorum to certify to a neighbor quorum (the witness).
    int ok = 0;
    int failed = 0;
    for (int w = 0; w < writes_per_epoch; ++w) {
      const auto& state = system.state();
      const ClusterId owner =
          state.random_cluster_size_biased(system.rng());
      const auto neighbors = state.overlay.neighbors(owner);
      if (neighbors.empty()) {
        ++failed;
        continue;
      }
      const auto witness = neighbors[system.rng().uniform(neighbors.size())];
      const auto outcome = cluster::cluster_send(
          state.cluster_at(owner), state.cluster_at(witness), /*units=*/2,
          state.byzantine, metrics);
      if (outcome.accepted && !outcome.forgeable) {
        ++ok;
      } else {
        ++failed;
        all_durable = false;
      }
    }

    const auto inv = system.check();
    log.add_row({sim::Table::fmt(std::uint64_t(epoch)),
                 sim::Table::fmt(std::uint64_t{system.num_nodes()}),
                 sim::Table::fmt(std::uint64_t{system.num_clusters()}),
                 sim::Table::fmt(std::uint64_t(ok)),
                 sim::Table::fmt(std::uint64_t(failed)),
                 sim::Table::fmt(inv.worst_byz_fraction, 3),
                 sim::Table::fmt(std::uint64_t{
                     attacker.target().valid() ? attacker.target().value()
                                               : 0})});
  }

  log.print(std::cout);
  std::ofstream csv("EXAMPLE_p2p_storage_quorums.csv");
  log.write_csv(csv);
  std::cout << "\nall writes quorum-certified: " << (all_durable ? "yes" : "NO")
            << " — the attacked quorum never lost its honest supermajority\n";
  return all_durable ? 0 : 1;
}
