// Scenario: broadcast and polling through a flash crowd.
//
// The "highly dynamic" half of the paper's title: a live-event network
// grows by an order of magnitude in minutes (flash crowd), then drains
// away. The operator needs to (a) broadcast updates to everyone and (b)
// poll the audience — both reliably despite a Byzantine fraction riding
// along, and both at O~(n) / polylog cost rather than the O(n^2) a flat
// protocol would pay. This is the polynomial-variance regime no
// static-cluster-count system survives (see bench_poly_growth).
#include <fstream>
#include <iostream>

#include "adversary/adversary.hpp"
#include "apps/agreement_service.hpp"
#include "apps/broadcast.hpp"
#include "baseline/single_cluster.hpp"
#include "common/math_util.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

int main() {
  using namespace now;

  core::NowParams params;
  params.max_size = 1 << 14;  // N
  params.tau = 0.10;
  params.k = 5;
  params.walk_mode = core::WalkMode::kSampleExact;

  Metrics metrics;
  core::NowSystem system{params, metrics, 31337};
  const auto n_low = static_cast<std::size_t>(isqrt(params.max_size));
  system.initialize(n_low * 2, n_low / 5,
                    core::InitTopology::kModeledSparse);
  std::cout << "pre-event network: " << system.num_nodes() << " nodes (N="
            << params.max_size << ", floor sqrt(N)=" << n_low << ")\n\n";

  // Flash crowd: ramp to N/4, then drain back. Joiners are corrupted
  // greedily up to tau.
  adversary::RandomChurnAdversary churn{
      params.tau,
      adversary::ChurnSchedule::oscillate(n_low * 2, params.max_size / 4)};
  Rng rng{1};

  sim::Table log({"phase", "n", "clusters", "bcast_msgs", "bcast_vs_naive",
                  "poll_msgs", "poll_result", "delivered"});
  const std::size_t phase_len =
      (params.max_size / 4 - n_low * 2) / 4;  // 4 checkpoints up, 4 down
  bool all_delivered = true;

  for (int phase = 0; phase < 8; ++phase) {
    for (std::size_t s = 0; s < phase_len; ++s) {
      churn.step(system,
                 static_cast<std::size_t>(phase) * phase_len + s + 1, rng);
    }

    // Broadcast a program update from an arbitrary (honest) node.
    const NodeId source =
        system.state().random_honest_node(system.rng());
    const auto bcast = apps::broadcast(system, source, 0xFEED);
    all_delivered = all_delivered && bcast.delivered_everywhere;
    const auto naive = apps::naive_broadcast_cost(system.num_nodes());

    // Poll: "is the stream healthy?" — honest nodes vote yes, Byzantine
    // nodes vote no, the majority decision must come back yes.
    const auto poll = apps::decide_majority(
        system, [](NodeId) { return true; }, /*byzantine_vote=*/false);
    all_delivered = all_delivered && poll.decision;

    log.add_row(
        {phase < 4 ? "surge" : "drain",
         sim::Table::fmt(std::uint64_t{system.num_nodes()}),
         sim::Table::fmt(std::uint64_t{system.num_clusters()}),
         sim::Table::fmt(bcast.cost.messages),
         "x" + sim::Table::fmt(
                   static_cast<double>(naive.messages) /
                       static_cast<double>(bcast.cost.messages),
                   1),
         sim::Table::fmt(poll.cost.messages),
         poll.decision ? "healthy" : "UNHEALTHY",
         bcast.delivered_everywhere ? "all" : "PARTIAL"});
  }

  log.print(std::cout);
  std::ofstream csv("EXAMPLE_flash_crowd_broadcast.csv");
  log.write_csv(csv);
  std::cout << "\nevery broadcast reached every node and every poll "
            << (all_delivered ? "returned the honest majority"
                              : "FAILED")
            << ", across a " << (params.max_size / 4) / (n_low * 2)
            << "x size swing\n";
  return all_delivered ? 0 : 1;
}
