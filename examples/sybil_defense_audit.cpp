// Scenario: red-team audit of the shuffling defense.
//
// A security review of a NOW deployment: run the strongest attacks the
// model allows (targeted join-leave cycling and forced-leave DoS) against
// the production configuration AND against a misconfigured deployment that
// disabled shuffling "to save bandwidth". Produces the audit table an
// operator would want: time-to-compromise, peak infiltration, and the
// bandwidth price of the defense.
#include <fstream>
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "baseline/no_shuffle.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

namespace {

struct AuditRow {
  std::string config;
  std::string attack;
  bool captured = false;
  std::size_t fall_step = 0;
  double peak = 0.0;
  std::uint64_t msgs_per_step = 0;
};

AuditRow audit(bool shuffling, const std::string& attack_kind,
               std::size_t steps) {
  using namespace now;
  core::NowParams params;
  params.max_size = 1 << 13;
  params.tau = 0.15;
  params.k = 10;
  params.walk_mode = core::WalkMode::kSampleExact;
  params.shuffle_enabled = shuffling;

  Metrics metrics;
  core::NowSystem system{params, metrics, shuffling ? 11u : 13u};
  system.initialize(800, 120, core::InitTopology::kModeledSparse);

  std::unique_ptr<adversary::Adversary> attacker;
  if (attack_kind == "join-leave cycling") {
    attacker = std::make_unique<adversary::JoinLeaveAdversary>(
        params.tau, adversary::ChurnSchedule::hold(800), 0.2);
  } else {
    attacker = std::make_unique<adversary::ForcedLeaveAdversary>(params.tau);
  }

  AuditRow row;
  row.config = shuffling ? "production (shuffling on)" : "misconfigured (off)";
  row.attack = attack_kind;
  Rng rng{99};
  const auto messages_before = metrics.total().messages;
  for (std::size_t t = 1; t <= steps; ++t) {
    attacker->step(system, t, rng);
    const auto inv = system.check();
    row.peak = std::max(row.peak, inv.worst_byz_fraction);
    if (inv.compromised_clusters > 0 && !row.captured) {
      row.captured = true;
      row.fall_step = t;
      break;  // the audit stops at first capture
    }
  }
  row.msgs_per_step = (metrics.total().messages - messages_before) /
                      std::max<std::size_t>(1, row.captured
                                                   ? row.fall_step
                                                   : steps);
  return row;
}

}  // namespace

int main() {
  using now::sim::Table;
  std::cout << "NOW deployment security audit — adversary: full-knowledge, "
               "static, tau = 0.15\n\n";

  Table table({"configuration", "attack", "outcome", "fall_step", "peak_byz",
               "msgs/step"});
  bool defense_holds = true;
  bool attack_demonstrated = false;
  for (const std::string attack : {"join-leave cycling", "forced-leave DoS"}) {
    for (const bool shuffling : {true, false}) {
      const auto row = audit(shuffling, attack, 1200);
      table.add_row({row.config, row.attack,
                     row.captured ? "CAPTURED" : "held",
                     row.captured ? Table::fmt(std::uint64_t{row.fall_step})
                                  : "-",
                     Table::fmt(row.peak, 3),
                     Table::fmt(row.msgs_per_step)});
      if (shuffling && row.captured) defense_holds = false;
      if (!shuffling && row.captured) attack_demonstrated = true;
    }
  }
  table.print(std::cout);
  std::ofstream csv("EXAMPLE_sybil_defense_audit.csv");
  table.write_csv(csv);

  std::cout << "\nfindings:\n"
            << "  * with shuffling, no quorum was captured in any attack "
               "(the paper's Theorem 3);\n"
            << "  * with shuffling disabled, the join-leave attack captures "
               "a quorum — Section 3.3's warning is not theoretical;\n"
            << "  * the defense's price is the per-step message overhead "
               "visible in the last column.\n";
  return defense_holds && attack_demonstrated ? 0 : 1;
}
