// Scenario: a replicated key-value store that survives churn, splits and
// merges.
//
// The DHT use case from the work NOW improves on (Awerbuch–Scheideler,
// "Towards a scalable and robust DHT"): keys live at rendezvous-chosen
// quorums; cluster splits and merges move only the keys whose winning
// quorum changed; every read is certified by an honest-majority quorum.
// This example loads a store, pushes the network through heavy growth and
// shrinkage (forcing real splits/merges), repairs placement after each
// wave, and audits that no key is ever lost or served unauthentically.
#include <fstream>
#include <iostream>

#include "adversary/adversary.hpp"
#include "apps/key_value.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

int main() {
  using namespace now;

  core::NowParams params;
  params.max_size = 1 << 13;
  params.tau = 0.12;
  params.k = 6;
  params.walk_mode = core::WalkMode::kSampleExact;

  Metrics metrics;
  core::NowSystem system{params, metrics, 555};
  system.initialize(700, 84, core::InitTopology::kModeledSparse);
  apps::KeyValueService kv{system};

  constexpr std::uint64_t kKeys = 120;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    kv.put(key * 0x9E3779B9, key * 11);
  }
  std::cout << "loaded " << kv.stored_entries() << " keys across "
            << system.num_clusters() << " quorums\n\n";

  adversary::RandomChurnAdversary churn{
      params.tau, adversary::ChurnSchedule::oscillate(400, 1200)};
  Rng rng{7};

  sim::Table log({"wave", "n", "quorums", "rehomed", "reads_ok",
                  "reads_lost", "unauthentic", "get_msgs(avg)"});
  bool healthy = true;
  std::size_t step = 0;
  for (int wave = 0; wave < 6; ++wave) {
    for (int s = 0; s < 250; ++s) churn.step(system, ++step, rng);
    const std::size_t rehomed = kv.repair();

    std::size_t ok = 0;
    std::size_t lost = 0;
    std::size_t unauthentic = 0;
    std::uint64_t get_msgs = 0;
    for (std::uint64_t key = 0; key < kKeys; ++key) {
      const auto got = kv.get(key * 0x9E3779B9);
      get_msgs += got.cost.messages;
      if (!got.found || got.value != key * 11) {
        ++lost;
      } else if (!got.authentic) {
        ++unauthentic;
      } else {
        ++ok;
      }
    }
    healthy = healthy && lost == 0 && unauthentic == 0;
    log.add_row({sim::Table::fmt(std::uint64_t(wave)),
                 sim::Table::fmt(std::uint64_t{system.num_nodes()}),
                 sim::Table::fmt(std::uint64_t{system.num_clusters()}),
                 sim::Table::fmt(std::uint64_t{rehomed}),
                 sim::Table::fmt(std::uint64_t{ok}),
                 sim::Table::fmt(std::uint64_t{lost}),
                 sim::Table::fmt(std::uint64_t{unauthentic}),
                 sim::Table::fmt(get_msgs / kKeys)});
  }

  log.print(std::cout);
  std::ofstream csv("EXAMPLE_churning_kv_store.csv");
  log.write_csv(csv);
  std::cout << "\nstore integrity across a 3x size oscillation: "
            << (healthy ? "every key served, every read certified"
                        : "DATA LOSS OR FORGERY DETECTED")
            << "\n";
  return healthy ? 0 : 1;
}
