// P12 — Properties 1 & 2 of OVER: at any time over a polynomially long
// sequence of vertex additions and removals, whp
//   Property 1: isoperimetric constant I(G) >= log^{1+alpha}(N)/2,
//   Property 2: max degree <= c log^{1+alpha}(N).
//
// Experiment: drive a standalone overlay through long random add/remove
// churn at several N; track max degree against the cap, connectivity, and
// the expansion (exact I(G) on small overlays, spectral lower bound +
// sweep-cut upper bound on larger ones).
#include "bench_common.hpp"

#include "graph/connectivity.hpp"
#include "graph/isoperimetric.hpp"
#include "graph/spectral.hpp"
#include "over/overlay.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "P12 (OVER Properties 1-2: expansion and degree under churn)",
      "I(G) >= log^{1+a}(N)/2 and max degree <= c log^{1+a}(N) survive "
      "polynomially many Add/Remove operations");

  sim::Table table({"N", "vertices", "churn_ops", "d*", "cap", "max_deg",
                    "min_deg", "connected", "I(G)_lower", "I(G)_upper",
                    "paper_I>=", "gap"});
  bench::JsonEmitter json("props_overlay");

  bool all_good = true;
  for (const std::uint64_t exponent : {12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    over::OverParams params;
    params.max_size = N;
    params.alpha = 0.1;
    over::Overlay overlay{params};
    Rng rng{exponent * 97};

    const std::size_t base = 32 + static_cast<std::size_t>(exponent) * 8;
    std::vector<ClusterId> initial;
    for (std::size_t i = 0; i < base; ++i) initial.emplace_back(i);
    overlay.initialize(initial, rng);

    auto sampler = [&overlay](ClusterId, Rng& r) {
      const auto verts = overlay.graph().vertices();
      return ClusterId{verts[r.uniform(verts.size())]};
    };

    const std::size_t churn_ops = 1500;
    std::uint64_t next_id = 100000;
    std::size_t worst_degree = 0;
    for (std::size_t step = 0; step < churn_ops; ++step) {
      const std::size_t m = overlay.num_clusters();
      const bool add = m < base / 2 || (m < base * 2 && rng.bernoulli(0.5));
      if (add) {
        overlay.add_vertex(ClusterId{next_id++}, sampler, rng);
      } else {
        const auto verts = overlay.graph().vertices();
        overlay.remove_vertex(ClusterId{verts[rng.uniform(verts.size())]},
                              sampler, rng);
      }
      worst_degree = std::max(worst_degree, overlay.graph().max_degree());
    }

    Rng spectral_rng{exponent};
    const auto est =
        graph::estimate_expansion(overlay.graph(), spectral_rng, 600);
    const bool connected = graph::is_connected(overlay.graph());
    const double paper_bound = bench::lnpow(N, 1.1) / 2.0;
    table.add_row(
        {sim::Table::fmt(N),
         sim::Table::fmt(std::uint64_t{overlay.num_clusters()}),
         sim::Table::fmt(std::uint64_t{churn_ops}),
         sim::Table::fmt(std::uint64_t{overlay.target_degree()}),
         sim::Table::fmt(std::uint64_t{overlay.degree_cap()}),
         sim::Table::fmt(std::uint64_t{worst_degree}),
         sim::Table::fmt(std::uint64_t{overlay.graph().min_degree()}),
         connected ? "yes" : "NO",
         sim::Table::fmt(est.edge_expansion_lower, 2),
         sim::Table::fmt(est.sweep_edge_expansion, 2),
         sim::Table::fmt(paper_bound, 2),
         sim::Table::fmt(est.spectral_gap, 3)});
    json.add_scalar("max_degree", N, static_cast<double>(worst_degree));
    json.add_scalar("degree_cap", N,
                    static_cast<double>(overlay.degree_cap()));
    json.add_scalar("edge_expansion_sweep", N, est.sweep_edge_expansion);
    json.add_scalar("spectral_gap", N, est.spectral_gap);
    // Property 2 exactly; Property 1 via the sweep upper bound staying above
    // the paper line (the lower bound is loose by Cheeger's quadratic).
    if (worst_degree > overlay.degree_cap() || !connected ||
        est.sweep_edge_expansion < paper_bound * 0.5) {
      all_good = false;
    }
  }
  table.print(std::cout);
  bench::print_verdict(
      all_good,
      "degrees never exceed the cap and the overlay stays a connected "
      "expander with edge expansion on the order of log^{1+a}(N) through "
      "1500-op churn sequences");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
