// XCH — Section 3.1's exchange claims: "The expected communication cost and
// round complexity of exchange are O(log^6 N) and O(log^4 N)."
//
// Measures full-cluster exchanges (simulated walks, every message charged)
// across an N sweep. Rounds combine per-member swap chains by max (they run
// in parallel), so the round budget tracks randCl's O(log^4 N).
#include "bench_common.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "XCH (exchange: full-cluster shuffle)",
      "expected O(log^6 N) messages and O(log^4 N) rounds per exchange");

  sim::Table table({"N", "|C|", "mean_msgs", "ln^6(N)", "ln^7(N)",
                    "mean_rounds", "ln^4(N)"});
  bench::JsonEmitter json("exchange_cost");

  std::vector<double> sweep_n;
  std::vector<double> costs;
  bool rounds_ok = true;

  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    core::NowParams params;
    params.max_size = N;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics, N + 23};
    const std::size_t n = std::min<std::size_t>(2500, N / 2);
    system.initialize(
        n, static_cast<std::size_t>(0.15 * static_cast<double>(n)),
                      core::InitTopology::kModeledSparse);

    RunningStat msgs;
    RunningStat rnds;
    std::size_t cluster_size = 0;
    const int trials = 25;
    std::size_t cursor = 0;
    double wall_ns = 0;
    for (int i = 0; i < trials; ++i) {
      const auto cluster_list = system.state().cluster_ids();
      const ClusterId target = cluster_list[cursor++ % cluster_list.size()];
      cluster_size = system.state().cluster_at(target).size();
      const auto before = metrics.total().messages;
      Cost cost;
      wall_ns += bench::time_ns([&] { cost = system.exchange_all(target); });
      msgs.add(static_cast<double>(metrics.total().messages - before));
      rnds.add(static_cast<double>(cost.rounds));
    }

    table.add_row({sim::Table::fmt(N),
                   sim::Table::fmt(std::uint64_t{cluster_size}),
                   sim::Table::fmt(msgs.mean(), 0),
                   sim::Table::fmt(bench::lnpow(N, 6.0), 0),
                   sim::Table::fmt(bench::lnpow(N, 7.0), 0),
                   sim::Table::fmt(rnds.mean(), 1),
                   sim::Table::fmt(bench::lnpow(N, 4.0), 0)});
    sweep_n.push_back(static_cast<double>(N));
    costs.push_back(msgs.mean());
    json.add("exchange", N, msgs.mean(), rnds.mean(), wall_ns / trials);
    if (rnds.mean() > bench::lnpow(N, 4.0)) rounds_ok = false;
  }
  table.print(std::cout);

  const auto fit = polylog_fit(sweep_n, costs);
  const auto poly = powerlaw_fit(sweep_n, costs);
  std::cout << "message cost ~ (ln N)^" << sim::Table::fmt(fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(fit.r2, 3)
            << "); as a power law N^" << sim::Table::fmt(poly.slope, 3)
            << "\n";
  bench::record_verdict(
      json,
      rounds_ok && poly.slope < 0.5,
      "exchange stays polylog — measured exponent sits between the paper's "
      "log^6 and log^7 because every swap's composition updates are charged "
      "explicitly; rounds stay within O(log^4 N)");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
