// ATT — Section 3.3's motivation for shuffling: "the adversary chooses a
// specific cluster and keeps adding and removing the Byzantine nodes until
// they fall into that cluster". With exchange enabled the attack is
// neutralized; without it the victim cluster falls.
//
// Experiment: identical join-leave attack against NOW and against the
// no-shuffle baseline; also the forced-leave (DoS) attack. Report
// time-to-compromise (or survival) and the victim cluster's peak Byzantine
// fraction.
// Record & replay (DESIGN.md §8): --record=DIR writes one scenario trace
// per attack row into DIR while running normally; --replay=DIR re-drives
// every row from its trace instead of from the adversary code, verifies
// the recorded invariant samples bit-exactly, and reports the SAME table
// and verdict — exiting 1 if any trace diverged. The pair proves the whole
// attack matrix is a deterministic, portable artifact.
#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <string_view>

#include "adversary/adversary.hpp"
#include "baseline/no_shuffle.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"

namespace now {
namespace {

struct AttackOutcome {
  bool fell = false;
  std::size_t fall_step = 0;
  double peak = 0.0;
};

/// Trace mode shared by every attack row. In replay mode `diverged`
/// records whether any trace failed verification.
struct TraceMode {
  std::string dir;
  bool record = false;
  bool replay = false;
  bool diverged = false;

  [[nodiscard]] std::string path(const std::string& label) const {
    return dir + "/attack_" + label + ".trace";
  }
};

AttackOutcome outcome_from(const sim::ScenarioResult& result) {
  return AttackOutcome{result.ever_compromised,
                       result.first_compromise_step,
                       result.peak_byz_fraction};
}

/// Replays one row's trace, verifying samples; an unreadable/missing
/// trace or a divergence marks the run failed (exit 1) instead of
/// aborting, so a partial --record directory is reported row by row.
AttackOutcome replay_row(TraceMode& mode, const std::string& label) {
  try {
    const auto replay = sim::replay_trace(mode.path(label));
    if (!replay.ok) {
      std::cerr << "REPLAY DIVERGED (" << label << "): " << replay.error
                << "\n";
      mode.diverged = true;
    }
    return outcome_from(replay.result);
  } catch (const core::SnapshotError& e) {
    std::cerr << "REPLAY UNREADABLE (" << label << "): " << e.what()
              << "\n";
    mode.diverged = true;
    return AttackOutcome{};
  }
}

AttackOutcome run_attack(bool shuffle, const std::string& kind,
                         std::size_t steps, std::uint64_t seed,
                         TraceMode& mode, const std::string& label) {
  sim::ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.tau = 0.15;
  // k scaled to the slack as Lemma 1 requires (see bench_thm3_longrun):
  // the shuffled system's survival is a whp statement in k, while the
  // no-shuffle capture is *systematic* — it happens at any k.
  config.params.k = 10;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.shuffle_enabled = shuffle;
  config.n0 = 900;
  config.steps = steps;
  config.sample_every = 5;
  config.seed = seed;
  if (mode.replay) return replay_row(mode, label);
  if (mode.record) config.trace_path = mode.path(label);

  Metrics metrics;
  std::unique_ptr<adversary::Adversary> adv;
  if (kind == "join-leave") {
    adv = std::make_unique<adversary::JoinLeaveAdversary>(
        config.params.tau, adversary::ChurnSchedule::hold(400),
        /*background_churn=*/0.1);
  } else {
    adv = std::make_unique<adversary::ForcedLeaveAdversary>(
        config.params.tau);
  }
  return outcome_from(sim::run_scenario(config, *adv, metrics));
}

/// The batched adversary (DESIGN.md §7): every time step is a batch of
/// joins + leaves through the sharded engine, the adversary corrupts a tau
/// fraction of each step's joiners and places them with the targeted
/// join-leave policy (its misplaced nodes churn until they land in the
/// most-corrupted cluster). With `leave_quota > 0` it additionally forces
/// that many victims per step out of the worst/smallest clusters — the
/// batched forced-leave DoS. The same attacks, the same separation — but
/// under footnote *'s "several parallel operations per time step" regime
/// instead of one operation at a time.
AttackOutcome run_batched_attack(bool shuffle, std::size_t shards,
                                 std::size_t steps, std::size_t leave_quota,
                                 std::uint64_t seed, TraceMode& mode,
                                 const std::string& label) {
  sim::ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.tau = 0.15;
  config.params.k = 10;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.shuffle_enabled = shuffle;
  config.n0 = 900;
  config.steps = steps;
  config.sample_every = 5;
  config.seed = seed;
  config.batch_ops = 8;
  config.shards = shards;
  config.batch_byz_fraction = config.params.tau;
  config.batch_placement = sim::BatchPlacement::kTargeted;
  config.batch_leave_quota = leave_quota;
  if (mode.replay) return replay_row(mode, label);
  if (mode.record) config.trace_path = mode.path(label);

  Metrics metrics;
  // Supplies the adversary's tau (the corruption budget); the per-step
  // moves come from the batched placement policy, not from step().
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(900)};
  return outcome_from(sim::run_scenario(config, adv, metrics));
}

int run(std::size_t shards, TraceMode mode) {
  if (mode.record) std::filesystem::create_directories(mode.dir);
  bench::print_header(
      "ATT (join-leave & forced-leave attacks: NOW vs no-shuffle)",
      "shuffling defeats the targeted attacks; without exchange the victim "
      "cluster is captured");

  const std::size_t steps = 1500;
  sim::Table table({"system", "attack", "steps", "captured", "fall_step",
                    "peak_pC"});
  bench::JsonEmitter json("attack");
  bool separation = true;

  for (const std::string kind : {"join-leave", "forced-leave"}) {
    for (const bool shuffle : {true, false}) {
      const std::string file_label =
          kind + (shuffle ? "_now" : "_noshuffle");
      const auto outcome = run_attack(shuffle, kind, steps,
                                      shuffle ? 17 : 31, mode, file_label);
      table.add_row({shuffle ? "NOW (shuffling)" : "no-shuffle baseline",
                     kind, sim::Table::fmt(std::uint64_t{steps}),
                     outcome.fell ? "YES" : "no",
                     outcome.fell
                         ? sim::Table::fmt(std::uint64_t{outcome.fall_step})
                         : "-",
                     sim::Table::fmt(outcome.peak, 3)});
      const std::string label =
          kind + (shuffle ? "[now]" : "[no-shuffle]");
      json.add_scalar("peak_pC[" + label + "]", steps, outcome.peak);
      json.add_scalar("captured[" + label + "]", steps,
                      outcome.fell ? 1.0 : 0.0);
      if (kind == "join-leave") {
        if (shuffle && outcome.fell) separation = false;
        if (!shuffle && !outcome.fell) separation = false;
      }
    }
  }

  // Batched-adversary axis: the same join-leave separation must survive the
  // parallel-operations regime (batch of 8 + 8 per step, sharded engine);
  // the forced-leave DoS quota (every leave slot adversarially forced at
  // the worst/smallest clusters, on top of the corrupted joiners) is the
  // leave-heavy worst case the optimistic-resolve engine is exercised
  // under.
  const std::size_t batched_steps = 400;
  for (const std::size_t quota : {std::size_t{0}, std::size_t{8}}) {
    const std::string attack =
        quota == 0 ? "batched join-leave" : "batched forced-leave";
    const std::string key =
        quota == 0 ? "batched-join-leave" : "batched-forced-leave";
    for (const bool shuffle : {true, false}) {
      const std::string file_label =
          key + (shuffle ? "_now" : "_noshuffle");
      const auto outcome =
          run_batched_attack(shuffle, shards, batched_steps, quota,
                             shuffle ? 19 : 37, mode, file_label);
      table.add_row(
          {shuffle ? "NOW (shuffling)" : "no-shuffle baseline", attack,
           sim::Table::fmt(std::uint64_t{batched_steps}),
           outcome.fell ? "YES" : "no",
           outcome.fell ? sim::Table::fmt(std::uint64_t{outcome.fall_step})
                        : "-",
           sim::Table::fmt(outcome.peak, 3)});
      const std::string label = key + (shuffle ? "[now]" : "[no-shuffle]");
      json.add_scalar("peak_pC[" + label + "]", batched_steps, outcome.peak);
      json.add_scalar("captured[" + label + "]", batched_steps,
                      outcome.fell ? 1.0 : 0.0);
      // The separation verdict requires NOW to survive every batched
      // attack; the no-shuffle capture is required for the join-leave
      // flavor (the forced-leave DoS degrades the baseline more slowly,
      // so its capture inside the horizon is reported but not gated).
      if (shuffle && outcome.fell) separation = false;
      if (!shuffle && quota == 0 && !outcome.fell) separation = false;
    }
  }

  table.print(std::cout);
  bench::record_verdict(
      json, separation,
      "the same join-leave attack that captures a cluster without shuffling "
      "is fully absorbed by NOW's exchange — sequentially and under batched "
      "parallel churn, forced-leave DoS quotas included — the experiment "
      "behind Section 3.3's design argument");
  if (mode.record) {
    std::cout << "recorded traces into " << mode.dir
              << "; verify with --replay=" << mode.dir << "\n";
  }
  if (mode.replay) {
    std::cout << (mode.diverged
                      ? "REPLAY: at least one trace DIVERGED\n"
                      : "REPLAY: every trace reproduced its recorded "
                        "invariant samples exactly\n");
  }
  return mode.diverged ? 1 : 0;
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  // --shards=K runs the batched-adversary axis through the sharded engine
  // with K shards (results are shard-count independent; K only changes
  // wall-clock). --record=DIR / --replay=DIR drive the trace subsystem
  // (see the header comment).
  std::size_t shards = 4;
  now::TraceMode mode;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kPrefix = "--shards=";
    if (arg.starts_with(kPrefix)) {
      shards = static_cast<std::size_t>(
          std::max(1L, std::atol(arg.substr(kPrefix.size()).data())));
    } else if (arg.starts_with("--record=")) {
      mode.dir = std::string(arg.substr(9));
      mode.record = true;
    } else if (arg.starts_with("--replay=")) {
      mode.dir = std::string(arg.substr(9));
      mode.replay = true;
    }
  }
  return now::run(shards, mode);
}
