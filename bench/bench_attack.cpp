// ATT — Section 3.3's motivation for shuffling: "the adversary chooses a
// specific cluster and keeps adding and removing the Byzantine nodes until
// they fall into that cluster". With exchange enabled the attack is
// neutralized; without it the victim cluster falls.
//
// Experiment: identical join-leave attack against NOW and against the
// no-shuffle baseline; also the forced-leave (DoS) attack. Report
// time-to-compromise (or survival) and the victim cluster's peak Byzantine
// fraction.
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "baseline/no_shuffle.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

struct AttackOutcome {
  bool fell = false;
  std::size_t fall_step = 0;
  double peak = 0.0;
};

AttackOutcome run_attack(bool shuffle, const std::string& kind,
                         std::size_t steps, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.tau = 0.15;
  // k scaled to the slack as Lemma 1 requires (see bench_thm3_longrun):
  // the shuffled system's survival is a whp statement in k, while the
  // no-shuffle capture is *systematic* — it happens at any k.
  config.params.k = 10;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.shuffle_enabled = shuffle;
  config.n0 = 900;
  config.steps = steps;
  config.sample_every = 5;
  config.seed = seed;

  Metrics metrics;
  std::unique_ptr<adversary::Adversary> adv;
  if (kind == "join-leave") {
    adv = std::make_unique<adversary::JoinLeaveAdversary>(
        config.params.tau, adversary::ChurnSchedule::hold(400),
        /*background_churn=*/0.1);
  } else {
    adv = std::make_unique<adversary::ForcedLeaveAdversary>(
        config.params.tau);
  }
  const auto result = sim::run_scenario(config, *adv, metrics);
  return AttackOutcome{result.ever_compromised, result.first_compromise_step,
                       result.peak_byz_fraction};
}

void run() {
  bench::print_header(
      "ATT (join-leave & forced-leave attacks: NOW vs no-shuffle)",
      "shuffling defeats the targeted attacks; without exchange the victim "
      "cluster is captured");

  const std::size_t steps = 1500;
  sim::Table table({"system", "attack", "steps", "captured", "fall_step",
                    "peak_pC"});
  bench::JsonEmitter json("attack");
  bool separation = true;

  for (const std::string kind : {"join-leave", "forced-leave"}) {
    for (const bool shuffle : {true, false}) {
      const auto outcome =
          run_attack(shuffle, kind, steps, shuffle ? 17 : 31);
      table.add_row({shuffle ? "NOW (shuffling)" : "no-shuffle baseline",
                     kind, sim::Table::fmt(std::uint64_t{steps}),
                     outcome.fell ? "YES" : "no",
                     outcome.fell
                         ? sim::Table::fmt(std::uint64_t{outcome.fall_step})
                         : "-",
                     sim::Table::fmt(outcome.peak, 3)});
      const std::string label =
          kind + (shuffle ? "[now]" : "[no-shuffle]");
      json.add_scalar("peak_pC[" + label + "]", steps, outcome.peak);
      json.add_scalar("captured[" + label + "]", steps,
                      outcome.fell ? 1.0 : 0.0);
      if (kind == "join-leave") {
        if (shuffle && outcome.fell) separation = false;
        if (!shuffle && !outcome.fell) separation = false;
      }
    }
  }
  table.print(std::cout);
  bench::print_verdict(
      separation,
      "the same join-leave attack that captures a cluster without shuffling "
      "is fully absorbed by NOW's exchange — the experiment behind Section "
      "3.3's design argument");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
