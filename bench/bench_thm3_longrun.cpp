// THM3 — Theorem 3: "Whp, after a number of steps polynomial in N, at each
// time step, all clusters are composed of more than two thirds of honest
// nodes" — for every adversary within the model (tau <= 1/3 - eps), under
// join-leave attacks and forced departures included. Lemma 1 makes the whp
// constant explicit: it holds "as long as the security parameter k is large
// enough" (the Chernoff tail is exp(-eps^2 tau k ln N / 3), so the needed k
// grows as the slack eps = 1/3 - tau shrinks).
//
// Experiment: long churn runs under all three adversary strategies, with k
// scaled to the slack: tau = 0.10 at moderate k, tau = 0.20 at large k, and
// tau = 0.28 at (insufficient) large k to show the regime boundary — at
// simulable scales that slack would need k in the hundreds, exactly as the
// lemma's tail predicts.
// Resumable split runs (the nightly's two-stage mode, DESIGN.md §8):
//   --halt-at=T --checkpoint-dir=D   run every scenario to step T, save one
//                                    scenario checkpoint per setting into D
//                                    and stop (no table, no BENCH json);
//   --resume-dir=D                   restore each scenario from D and
//                                    complete it — the final table and
//                                    BENCH_thm3_longrun.json are
//                                    bit-identical to a single-process run.
#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <string_view>

#include "adversary/adversary.hpp"
#include "core/snapshot.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

struct Setting {
  double tau;
  int k;
  std::size_t n0;
  bool gate;  // inside the finite-size whp regime: must stay clean
};

struct SplitMode {
  std::size_t halt_at = 0;      // stage 1: checkpoint + stop after this step
  std::string checkpoint_dir;   // stage 1 output / stage 2 input
  bool resume = false;          // stage 2: restore and complete
};

std::unique_ptr<adversary::Adversary> make_adversary(
    const std::string& kind, const Setting& setting) {
  if (kind == "random-churn") {
    return std::make_unique<adversary::RandomChurnAdversary>(
        setting.tau, adversary::ChurnSchedule::hold(setting.n0));
  }
  if (kind == "join-leave") {
    return std::make_unique<adversary::JoinLeaveAdversary>(
        setting.tau, adversary::ChurnSchedule::hold(setting.n0));
  }
  return std::make_unique<adversary::ForcedLeaveAdversary>(setting.tau);
}

std::string checkpoint_path(const SplitMode& mode, const std::string& kind,
                            const Setting& setting) {
  return mode.checkpoint_dir + "/thm3_" + kind + "_tau" +
         std::to_string(static_cast<int>(setting.tau * 100)) + "_k" +
         std::to_string(setting.k) + ".ckpt";
}

void run(const SplitMode& mode) {
  const bool stage1 = mode.halt_at > 0;
  if (stage1) std::filesystem::create_directories(mode.checkpoint_dir);
  bench::print_header(
      "THM3 (Theorem 3: all clusters stay > 2/3 honest forever)",
      "for tau <= 1/3 - eps and k large enough (vs. eps), whp no cluster "
      "ever reaches 1/3 Byzantine, under any of the model's adversaries");

  sim::Table table({"adversary", "tau", "k", "|C|~", "steps", "peak_pC",
                    "compromised", "first_step", "regime"});
  // Stage 1 emits no BENCH json — the resumed stage 2 produces the full
  // file, bit-identical to a single-process run.
  std::unique_ptr<bench::JsonEmitter> json;
  if (!stage1) json = std::make_unique<bench::JsonEmitter>("thm3_longrun");

  bool in_regime_clean = true;
  const std::uint64_t N = 1 << 12;
  const std::size_t steps = 1000;
  const std::vector<Setting> settings = {
      {0.10, 4, 600, false},  // small k: tail visible but rarely compromised
      {0.10, 8, 800, true},   // comfortable slack
      {0.20, 8, 800, false},  // slack 0.13: k=8 marginal
      {0.20, 16, 1600, true},  // k scaled to the slack
      {0.28, 16, 1600, false},  // slack 0.05: needs k ~ hundreds; expected
                                // to breach at simulable scales
  };

  for (const std::string kind : {"random-churn", "join-leave",
                                 "forced-leave"}) {
    for (const auto& setting : settings) {
      sim::ScenarioConfig config;
      config.params.max_size = N;
      config.params.k = setting.k;
      config.params.tau = setting.tau;
      config.params.walk_mode = core::WalkMode::kSampleExact;
      config.n0 = setting.n0;
      config.steps = steps;
      config.sample_every = 5;
      config.seed = static_cast<std::uint64_t>(setting.tau * 1000) +
                    static_cast<std::uint64_t>(setting.k) * 7 + kind.size();
      if (stage1) {
        config.halt_at = mode.halt_at;
        config.checkpoint_path = checkpoint_path(mode, kind, setting);
      } else if (mode.resume) {
        config.resume_from = checkpoint_path(mode, kind, setting);
      }

      Metrics metrics;
      const auto adv = make_adversary(kind, setting);
      const auto result = sim::run_scenario(config, *adv, metrics);
      if (stage1) {
        std::cout << "checkpointed " << kind << " tau=" << setting.tau
                  << " k=" << setting.k << " at step "
                  << result.halted_at_step << " -> "
                  << config.checkpoint_path << "\n";
        continue;
      }

      table.add_row(
          {kind, sim::Table::fmt(setting.tau, 2),
           sim::Table::fmt(std::uint64_t(setting.k)),
           sim::Table::fmt(std::uint64_t{config.params.cluster_size_target()}),
           sim::Table::fmt(std::uint64_t{steps}),
           sim::Table::fmt(result.peak_byz_fraction, 3),
           result.ever_compromised ? "YES" : "no",
           result.ever_compromised
               ? sim::Table::fmt(std::uint64_t{result.first_compromise_step})
               : "-",
           setting.gate ? "whp (gated)" : "boundary"});
      json->add_scalar("peak_pC[" + kind +
                           ",tau=" + sim::Table::fmt(setting.tau, 2) +
                           ",k=" + std::to_string(setting.k) + "]",
                       N, result.peak_byz_fraction);
      if (setting.gate && result.ever_compromised) in_regime_clean = false;
    }
  }
  if (stage1) {
    std::cout << "stage 1 complete; finish with --resume-dir="
              << mode.checkpoint_dir << "\n";
    return;
  }
  table.print(std::cout);
  bench::print_verdict(
      in_regime_clean,
      "with k scaled to the slack (Lemma 1's condition) no cluster is ever "
      "compromised under any adversary across 1000-step horizons; the "
      "boundary rows show exactly the k-vs-eps trade-off the analysis "
      "predicts");
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  now::SplitMode mode;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.starts_with("--halt-at=")) {
      mode.halt_at = static_cast<std::size_t>(
          std::atol(arg.substr(10).data()));
    } else if (arg.starts_with("--checkpoint-dir=")) {
      mode.checkpoint_dir = std::string(arg.substr(17));
    } else if (arg.starts_with("--resume-dir=")) {
      mode.checkpoint_dir = std::string(arg.substr(13));
      mode.resume = true;
    }
  }
  if ((mode.halt_at > 0 || mode.resume) && mode.checkpoint_dir.empty()) {
    std::cerr << "usage: --halt-at=T requires --checkpoint-dir=D "
                 "(and stage 2 is --resume-dir=D)\n";
    return 2;
  }
  if (mode.halt_at > 0 && mode.resume) {
    std::cerr << "--halt-at and --resume-dir are the two STAGES of a "
                 "split run; pass one of them\n";
    return 2;
  }
  try {
    now::run(mode);
  } catch (const now::core::SnapshotError& e) {
    std::cerr << "checkpoint error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
