// THM3 — Theorem 3: "Whp, after a number of steps polynomial in N, at each
// time step, all clusters are composed of more than two thirds of honest
// nodes" — for every adversary within the model (tau <= 1/3 - eps), under
// join-leave attacks and forced departures included. Lemma 1 makes the whp
// constant explicit: it holds "as long as the security parameter k is large
// enough" (the Chernoff tail is exp(-eps^2 tau k ln N / 3), so the needed k
// grows as the slack eps = 1/3 - tau shrinks).
//
// Experiment: long churn runs under all three adversary strategies, with k
// scaled to the slack: tau = 0.10 at moderate k, tau = 0.20 at large k, and
// tau = 0.28 at (insufficient) large k to show the regime boundary — at
// simulable scales that slack would need k in the hundreds, exactly as the
// lemma's tail predicts.
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

struct Setting {
  double tau;
  int k;
  std::size_t n0;
  bool gate;  // inside the finite-size whp regime: must stay clean
};

void run() {
  bench::print_header(
      "THM3 (Theorem 3: all clusters stay > 2/3 honest forever)",
      "for tau <= 1/3 - eps and k large enough (vs. eps), whp no cluster "
      "ever reaches 1/3 Byzantine, under any of the model's adversaries");

  sim::Table table({"adversary", "tau", "k", "|C|~", "steps", "peak_pC",
                    "compromised", "first_step", "regime"});
  bench::JsonEmitter json("thm3_longrun");

  bool in_regime_clean = true;
  const std::uint64_t N = 1 << 12;
  const std::size_t steps = 1000;
  const std::vector<Setting> settings = {
      {0.10, 4, 600, false},  // small k: tail visible but rarely compromised
      {0.10, 8, 800, true},   // comfortable slack
      {0.20, 8, 800, false},  // slack 0.13: k=8 marginal
      {0.20, 16, 1600, true},  // k scaled to the slack
      {0.28, 16, 1600, false},  // slack 0.05: needs k ~ hundreds; expected
                                // to breach at simulable scales
  };

  for (const std::string kind : {"random-churn", "join-leave",
                                 "forced-leave"}) {
    for (const auto& setting : settings) {
      sim::ScenarioConfig config;
      config.params.max_size = N;
      config.params.k = setting.k;
      config.params.tau = setting.tau;
      config.params.walk_mode = core::WalkMode::kSampleExact;
      config.n0 = setting.n0;
      config.steps = steps;
      config.sample_every = 5;
      config.seed = static_cast<std::uint64_t>(setting.tau * 1000) +
                    static_cast<std::uint64_t>(setting.k) * 7 + kind.size();

      Metrics metrics;
      std::unique_ptr<adversary::Adversary> adv;
      if (kind == "random-churn") {
        adv = std::make_unique<adversary::RandomChurnAdversary>(
            setting.tau, adversary::ChurnSchedule::hold(setting.n0));
      } else if (kind == "join-leave") {
        adv = std::make_unique<adversary::JoinLeaveAdversary>(
            setting.tau, adversary::ChurnSchedule::hold(setting.n0));
      } else {
        adv = std::make_unique<adversary::ForcedLeaveAdversary>(setting.tau);
      }
      const auto result = sim::run_scenario(config, *adv, metrics);

      table.add_row(
          {kind, sim::Table::fmt(setting.tau, 2),
           sim::Table::fmt(std::uint64_t(setting.k)),
           sim::Table::fmt(std::uint64_t{config.params.cluster_size_target()}),
           sim::Table::fmt(std::uint64_t{steps}),
           sim::Table::fmt(result.peak_byz_fraction, 3),
           result.ever_compromised ? "YES" : "no",
           result.ever_compromised
               ? sim::Table::fmt(std::uint64_t{result.first_compromise_step})
               : "-",
           setting.gate ? "whp (gated)" : "boundary"});
      json.add_scalar("peak_pC[" + kind +
                          ",tau=" + sim::Table::fmt(setting.tau, 2) +
                          ",k=" + std::to_string(setting.k) + "]",
                      N, result.peak_byz_fraction);
      if (setting.gate && result.ever_compromised) in_regime_clean = false;
    }
  }
  table.print(std::cout);
  bench::print_verdict(
      in_regime_clean,
      "with k scaled to the slack (Lemma 1's condition) no cluster is ever "
      "compromised under any adversary across 1000-step horizons; the "
      "boundary rows show exactly the k-vs-eps trade-off the analysis "
      "predicts");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
