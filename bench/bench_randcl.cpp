// RCL — Section 3.1's randCl cost and correctness claims:
//   * "this primitive has an expected communication cost of O(log^5 N)";
//   * "the expected round complexity ... is O(log^4 N)";
//   * a cluster is chosen according to the distribution |C|/n.
//
// The simulated walk is measured end to end (every randNum and every
// inter-cluster transfer individually charged); the output law is
// chi-squared against |C|/n.
#include "bench_common.hpp"

#include <map>

namespace now {
namespace {

void run() {
  bench::print_header(
      "RCL (randCl: biased CTRW cluster selection)",
      "expected O(log^5 N) messages, O(log^4 N) rounds; endpoint law |C|/n");

  sim::Table table({"N", "#C", "mean_msgs", "ln^5(N)", "mean_rounds",
                    "ln^4(N)", "mean_hops", "mean_restarts", "chi2_p"});
  bench::JsonEmitter json("randcl");

  std::vector<double> sweep_n;
  std::vector<double> costs;
  std::vector<double> rounds_sweep;
  bool law_ok = true;
  bool bounded = false;

  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    core::NowParams params;
    params.max_size = N;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics, N + 17};
    const std::size_t n = std::min<std::size_t>(2500, N / 2);
    system.initialize(
        n, static_cast<std::size_t>(0.15 * static_cast<double>(n)),
                      core::InitTopology::kModeledSparse);

    const ClusterId start = system.state().cluster_ids().front();
    RunningStat msgs;
    RunningStat rnds;
    RunningStat hops;
    RunningStat restarts;
    std::map<ClusterId, std::uint64_t> counts;
    const int trials = 1500;
    for (int i = 0; i < trials; ++i) {
      const auto before = metrics.total().messages;
      const auto result = system.rand_cl_from(start);
      msgs.add(static_cast<double>(metrics.total().messages - before));
      rnds.add(static_cast<double>(result.cost.rounds));
      hops.add(static_cast<double>(result.hops));
      restarts.add(static_cast<double>(result.restarts));
      counts[result.cluster]++;
    }

    std::vector<std::uint64_t> observed;
    std::vector<double> probs;
    for (const ClusterId id : system.state().cluster_ids()) {
      const auto& c = system.state().cluster_at(id);
      observed.push_back(counts[id]);
      probs.push_back(static_cast<double>(c.size()) /
                      static_cast<double>(system.num_nodes()));
    }
    const double p_value = chi_square_p_value(
        chi_square_statistic(observed, probs), observed.size() - 1);

    table.add_row({sim::Table::fmt(N),
                   sim::Table::fmt(std::uint64_t{system.num_clusters()}),
                   sim::Table::fmt(msgs.mean(), 0),
                   sim::Table::fmt(bench::lnpow(N, 5.0), 0),
                   sim::Table::fmt(rnds.mean(), 1),
                   sim::Table::fmt(bench::lnpow(N, 4.0), 0),
                   sim::Table::fmt(hops.mean(), 1),
                   sim::Table::fmt(restarts.mean(), 2),
                   sim::Table::fmt(p_value, 4)});
    sweep_n.push_back(static_cast<double>(N));
    costs.push_back(msgs.mean());
    rounds_sweep.push_back(rnds.mean());
    json.add("randcl", N, msgs.mean(), rnds.mean(), 0.0);
    json.add_scalar("chi2_p", N, p_value);
    if (p_value < 1e-4) law_ok = false;
  }
  table.print(std::cout);

  // O() bounds hide constants, so compare growth exponents, not absolutes.
  const auto fit = polylog_fit(sweep_n, costs);
  const auto rfit = polylog_fit(sweep_n, rounds_sweep);
  bounded = fit.slope < 5.0 && rfit.slope < 4.0;
  json.add_scalar("message_fit_exponent", 1ULL << 18, fit.slope);
  json.add_scalar("round_fit_exponent", 1ULL << 18, rfit.slope);
  std::cout << "message cost ~ (ln N)^" << sim::Table::fmt(fit.slope, 2)
            << " (paper bound exponent: 5); rounds ~ (ln N)^"
            << sim::Table::fmt(rfit.slope, 2) << " (paper bound: 4)\n";
  bench::record_verdict(
      json,
      law_ok && bounded && fit.slope < 5.5,
      "randCl lands within the paper's O(log^5 N)/O(log^4 N) budgets (the "
      "measured exponent is lower because the paper budgets O(log n) whp "
      "restarts where the expectation is O(1)) and its output matches the "
      "|C|/n law");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
