// RMK — Remarks 1 & 2 of the paper:
//   Remark 1: "One can tolerate a fraction of Byzantine nodes up to
//     1/2 - eps, but then we need to use cryptographic tools" — the
//     authenticated regime moves the per-cluster soundness line from 1/3 to
//     1/2.
//   Remark 2: "Considering an adversary controlling at most a fraction
//     1/r - eps of the nodes ... in all the clusters the adversary controls
//     at most a fraction 1/r" — the concentration argument is threshold-
//     agnostic.
//
// Experiment: long churn runs at tau just under 1/r for r = 2 (needs the
// authenticated regime), 3 (the paper's main setting), 4 and 5; report the
// peak per-cluster Byzantine fraction against the 1/r line.
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "RMK (Remarks 1-2: 1/2 with crypto; generalized 1/r ceilings)",
      "tau <= 1/r - eps keeps every cluster below a 1/r Byzantine fraction; "
      "r = 2 requires the authenticated (signature) regime");

  sim::Table table({"r", "tau", "regime", "k", "peak_pC", "1/r line",
                    "breached"});
  bench::JsonEmitter json("remarks");
  bool all_good = true;

  struct Row {
    int r;
    double tau;
    core::Robustness regime;
    int k;
  };
  // k scales with the inverse square of the slack eps = 1/r - tau (the
  // Chernoff exponent is eps^2 * |C| / Theta(1)); these choices keep the
  // per-reshuffle tail below ~1e-4 at the simulated scales.
  const std::vector<Row> rows = {
      {2, 0.35, core::Robustness::kAuthenticated, 20},
      {3, 0.20, core::Robustness::kPlain, 16},
      {4, 0.15, core::Robustness::kPlain, 20},
      {5, 0.10, core::Robustness::kPlain, 20},
  };

  for (const auto& row : rows) {
    sim::ScenarioConfig config;
    config.params.max_size = 1 << 12;
    config.params.k = row.k;
    config.params.tau = row.tau;
    config.params.robustness = row.regime;
    config.params.walk_mode = core::WalkMode::kSampleExact;
    config.n0 = 1200;
    config.steps = 700;
    config.sample_every = 5;
    config.seed = static_cast<std::uint64_t>(row.r) * 1009;

    Metrics metrics;
    adversary::RandomChurnAdversary adv{
        row.tau, adversary::ChurnSchedule::hold(1200)};
    const auto result = sim::run_scenario(config, adv, metrics);

    const double line = 1.0 / row.r;
    const bool breached = result.peak_byz_fraction >= line;
    table.add_row({sim::Table::fmt(std::uint64_t(row.r)),
                   sim::Table::fmt(row.tau, 2),
                   row.regime == core::Robustness::kPlain ? "plain"
                                                          : "authenticated",
                   sim::Table::fmt(std::uint64_t(row.k)),
                   sim::Table::fmt(result.peak_byz_fraction, 3),
                   sim::Table::fmt(line, 3), breached ? "YES" : "no"});
    json.add_scalar("peak_pC[r=" + std::to_string(row.r) + "]", 1 << 12,
                    result.peak_byz_fraction);
    if (breached) all_good = false;
  }
  table.print(std::cout);
  bench::print_verdict(
      all_good,
      "every cluster's Byzantine fraction stays under the 1/r line for all "
      "four regimes — including tau = 0.35 > 1/3 under Remark 1's "
      "authenticated model, which the plain 1/3 rule could not accept");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
