// FIG1 — Figure 1 of the paper: the initialization phase runs on the small
// graph (n0 = sqrt(N)) and costs O(N^{3/2} log N) = O(n0^3 log n0) in the
// worst (dense-knowledge) case, dominated by computing global knowledge;
// afterwards maintenance is polylog.
//
// We measure the real message-level discovery flood plus the charged
// clusterization costs on both topologies, sweep N, and fit the growth
// exponent of the dense case against the claimed 3/2.
#include "bench_common.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "FIG1 (Figure 1: Overview of NOW — initialization)",
      "init at n0 = sqrt(N) costs O(N^{3/2} log N) worst case; "
      "the discovery flood is O(n * e)");

  sim::Table table({"N", "n0=sqrt(N)", "topology", "discovery_msgs",
                    "quorum_msgs", "partition_msgs", "total_msgs",
                    "N^{3/2}lnN"});
  bench::JsonEmitter json("fig1_init");

  std::vector<double> dense_n;
  std::vector<double> dense_cost;
  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u}) {
    const std::uint64_t N = 1ULL << exponent;
    const auto n0 = static_cast<std::size_t>(isqrt(N));
    for (const auto topology :
         {core::InitTopology::kSparseRandom, core::InitTopology::kComplete}) {
      core::NowParams params;
      params.max_size = N;
      Metrics metrics;
      core::NowSystem system{params, metrics, 7 * N};
      core::InitReport report;
      const double wall_ns = bench::time_ns([&] {
        report = system.initialize(
            n0, static_cast<std::size_t>(0.15 * static_cast<double>(n0)),
            topology);
      });
      const bool dense = topology == core::InitTopology::kComplete;
      json.add(dense ? "init[complete]" : "init[sparse]", N,
               static_cast<double>(report.total.messages),
               static_cast<double>(report.total.rounds), wall_ns);
      const double bound =
          std::pow(static_cast<double>(N), 1.5) *
          std::log(static_cast<double>(N));
      table.add_row(
          {sim::Table::fmt(N), sim::Table::fmt(std::uint64_t{n0}),
           dense ? "complete" : "sparse",
           sim::Table::fmt(report.discovery.messages),
           sim::Table::fmt(report.quorum.messages),
           sim::Table::fmt(report.partition.messages),
           sim::Table::fmt(report.total.messages), sim::Table::fmt(bound, 0)});
      if (dense) {
        dense_n.push_back(static_cast<double>(N));
        dense_cost.push_back(static_cast<double>(report.total.messages));
      }
    }
  }
  table.print(std::cout);

  // Fit total init cost on the dense topology against N^beta.
  const auto fit = powerlaw_fit(dense_n, dense_cost);
  std::cout << "dense-case power-law fit: cost ~ N^" << sim::Table::fmt(
                   fit.slope, 3)
            << "  (r^2 = " << sim::Table::fmt(fit.r2, 4) << ")\n";
  json.add_scalar("dense_fit_exponent", 1ULL << 16, fit.slope);
  bench::print_verdict(
      fit.slope > 1.1 && fit.slope < 1.8 && fit.r2 > 0.97,
      "worst-case init cost grows polynomially with exponent ~3/2 "
      "(paper: N^{3/2} log N), far above the polylog maintenance costs "
      "(bench_fig2)");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
