// ABL — ablations of the reconstruction's design knobs (DESIGN.md §5):
//   1. randNum fast (commit+reveal, the paper's O(log^2 N) costing) vs
//      robust (+echo round): price of equivocation-resistance.
//   2. Merge policy: Algorithm 2's dissolve-and-rejoin vs Figure 2's
//      absorb-a-victim.
//   3. Walk length factor: shorter CTRWs are cheaper but mix worse — the
//      |C|/n law degrades measurably below factor ~0.5.
//   4. Hysteresis l: split/merge churn frequency vs cluster size spread.
#include "bench_common.hpp"

#include <map>

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

void ablate_rand_num_mode(bench::JsonEmitter& json) {
  std::cout << "\n[1] randNum mode (fast vs robust echo):\n";
  sim::Table table({"mode", "randnum_msgs(|C|=33)", "join_mean_msgs",
                    "join_mean_rounds"});
  for (const auto mode :
       {cluster::RandNumMode::kFast, cluster::RandNumMode::kRobust}) {
    core::NowParams params;
    params.max_size = 1 << 14;
    params.rand_num_mode = mode;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics, 5};
    system.initialize(1000, 150, core::InitTopology::kModeledSparse);
    for (int i = 0; i < 15; ++i) system.join(false);
    const auto joins = metrics.operation_samples(metrics.find("join"));
    table.add_row(
        {mode == cluster::RandNumMode::kFast ? "fast" : "robust",
         sim::Table::fmt(cluster::rand_num_cost_model(33, mode).messages),
         sim::Table::fmt(bench::mean_messages(joins), 0),
         sim::Table::fmt(bench::mean_rounds(joins), 1)});
    json.add(mode == cluster::RandNumMode::kFast ? "join[randnum=fast]"
                                                 : "join[randnum=robust]",
             1 << 14, bench::mean_messages(joins), bench::mean_rounds(joins),
             0.0);
  }
  table.print(std::cout);
}

void ablate_merge_policy(bench::JsonEmitter& json) {
  std::cout << "\n[2] merge policy (Algorithm 2 dissolve vs Figure 2 "
               "absorb):\n";
  sim::Table table({"policy", "merges", "mean_merge_msgs", "peak_pC",
                    "compromised"});
  for (const auto policy :
       {core::MergePolicy::kDissolve, core::MergePolicy::kAbsorb}) {
    sim::ScenarioConfig config;
    config.params.max_size = 1 << 12;
    config.params.k = 5;
    config.params.tau = 0.15;
    config.params.merge_policy = policy;
    config.params.walk_mode = core::WalkMode::kSampleExact;
    config.n0 = 800;
    config.steps = 700;
    config.sample_every = 20;
    Metrics metrics;
    adversary::RandomChurnAdversary adv{
        config.params.tau, adversary::ChurnSchedule::ramp(800, 300)};
    const auto result = sim::run_scenario(config, adv, metrics);
    const char* name =
        policy == core::MergePolicy::kDissolve ? "dissolve" : "absorb";
    table.add_row(
        {name, sim::Table::fmt(std::uint64_t{result.total_merges}),
         sim::Table::fmt(
             bench::mean_messages(metrics.operation_samples(metrics.find("merge"))), 0),
         sim::Table::fmt(result.peak_byz_fraction, 3),
         result.ever_compromised ? "YES" : "no"});
    json.add(std::string("merge[") + name + "]", 1 << 12,
             bench::mean_messages(metrics.operation_samples(metrics.find("merge"))),
             bench::mean_rounds(metrics.operation_samples(metrics.find("merge"))), 0.0);
    json.add_scalar(std::string("peak_pC[merge=") + name + "]", 1 << 12,
                    result.peak_byz_fraction);
  }
  table.print(std::cout);
}

void ablate_walk_factor(bench::JsonEmitter& json) {
  std::cout << "\n[3] CTRW length factor (mixing vs cost):\n";
  sim::Table table({"walk_factor", "mean_hops", "randcl_msgs", "chi2_p"});
  for (const double factor : {0.25, 0.5, 1.0, 2.0}) {
    core::NowParams params;
    params.max_size = 1 << 12;
    params.walk_factor = factor;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics,
                           static_cast<std::uint64_t>(factor * 100) + 3};
    system.initialize(800, 120, core::InitTopology::kModeledSparse);
    const ClusterId start = system.state().cluster_ids().front();
    RunningStat hops;
    RunningStat msgs;
    std::map<ClusterId, std::uint64_t> counts;
    for (int i = 0; i < 2500; ++i) {
      const auto before = metrics.total().messages;
      const auto result = system.rand_cl_from(start);
      hops.add(static_cast<double>(result.hops));
      msgs.add(static_cast<double>(metrics.total().messages - before));
      counts[result.cluster]++;
    }
    std::vector<std::uint64_t> observed;
    std::vector<double> probs;
    for (const ClusterId id : system.state().cluster_ids()) {
      const auto& c = system.state().cluster_at(id);
      observed.push_back(counts[id]);
      probs.push_back(static_cast<double>(c.size()) /
                      static_cast<double>(system.num_nodes()));
    }
    const double p = chi_square_p_value(
        chi_square_statistic(observed, probs), observed.size() - 1);
    table.add_row({sim::Table::fmt(factor, 2),
                   sim::Table::fmt(hops.mean(), 1),
                   sim::Table::fmt(msgs.mean(), 0),
                   sim::Table::fmt(p, 4)});
    json.add("randcl[wf=" + sim::Table::fmt(factor, 2) + "]", 1 << 12,
             msgs.mean(), 0.0, 0.0);
    json.add_scalar("chi2_p[wf=" + sim::Table::fmt(factor, 2) + "]", 1 << 12,
                    p);
  }
  table.print(std::cout);
  std::cout << "(low p at small factors = under-mixed walks; the paper's "
               "O(log^2 n) length is the safe regime)\n";
}

void ablate_hysteresis(bench::JsonEmitter& json) {
  std::cout << "\n[4] split/merge hysteresis l:\n";
  sim::Table table({"l", "splits", "merges", "min|C|", "max|C|"});
  for (const double l : {1.2, 1.5, 2.0}) {
    sim::ScenarioConfig config;
    config.params.max_size = 1 << 12;
    config.params.l = l;
    config.params.k = 4;
    config.params.tau = 0.10;
    config.params.walk_mode = core::WalkMode::kSampleExact;
    config.n0 = 500;
    config.steps = 600;
    config.sample_every = 20;
    Metrics metrics;
    adversary::RandomChurnAdversary adv{
        config.params.tau, adversary::ChurnSchedule::oscillate(400, 700)};
    const auto result = sim::run_scenario(config, adv, metrics);
    std::size_t min_size = static_cast<std::size_t>(-1);
    std::size_t max_size = 0;
    for (const auto& s : result.samples) {
      min_size = std::min(min_size, s.min_cluster_size);
      max_size = std::max(max_size, s.max_cluster_size);
    }
    table.add_row({sim::Table::fmt(l, 1),
                   sim::Table::fmt(std::uint64_t{result.total_splits}),
                   sim::Table::fmt(std::uint64_t{result.total_merges}),
                   sim::Table::fmt(std::uint64_t{min_size}),
                   sim::Table::fmt(std::uint64_t{max_size})});
    json.add_scalar("restructures[l=" + sim::Table::fmt(l, 1) + "]", 1 << 12,
                    static_cast<double>(result.total_splits +
                                        result.total_merges));
  }
  table.print(std::cout);
  std::cout << "(smaller l -> tighter sizes but more restructuring churn; "
               "the paper requires l > sqrt(2) so split halves stay above "
               "the merge line)\n";
}

void run() {
  bench::print_header("ABL (design ablations)",
                      "reconstruction knobs from DESIGN.md §5 quantified");
  bench::JsonEmitter json("ablation");
  ablate_rand_num_mode(json);
  ablate_merge_policy(json);
  ablate_walk_factor(json);
  ablate_hysteresis(json);
  bench::print_verdict(true, "see tables — trade-offs only, no correctness "
                             "cliff inside the paper's parameter regime");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
