// POLY — the headline claim (Sections 1-2): the clustering survives
// *polynomial* size variance — n may travel the whole range [sqrt(N), N] —
// where prior work (static number of clusters, [6,7,31]) only tolerates a
// constant factor.
//
// Experiment: oscillate n between sqrt(N) and N/4 under greedy-corruption
// churn. NOW must keep all invariants (honest supermajorities, logarithmic
// cluster sizes, per-op polylog cost) across the entire ride; the
// static-partition baseline driven through the same growth blows its
// cluster sizes and per-op costs up polynomially.
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "baseline/static_partition.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "POLY (polynomial size variance sqrt(N) <-> N)",
      "NOW keeps clusters O(log N) and > 2/3 honest while n varies "
      "polynomially; a static #clusters baseline degrades polynomially");

  const std::uint64_t N = 1 << 12;
  const auto n_low = static_cast<std::size_t>(isqrt(N));
  const std::size_t n_high = N / 4;
  bench::JsonEmitter json("poly_growth");

  // --- NOW through the full oscillation.
  sim::ScenarioConfig config;
  config.params.max_size = N;
  config.params.k = 5;
  config.params.tau = 0.15;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.n0 = 0;  // sqrt(N)
  config.steps = 2 * (n_high - n_low) + 200;
  config.sample_every = 64;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{
      config.params.tau, adversary::ChurnSchedule::oscillate(n_low, n_high)};
  const auto result = sim::run_scenario(config, adv, metrics);

  sim::Table now_table({"step", "n", "#C", "min|C|", "max|C|", "worst_pC",
                        "overlay_deg"});
  for (std::size_t i = 0; i < result.samples.size();
       i += std::max<std::size_t>(1, result.samples.size() / 12)) {
    const auto& s = result.samples[i];
    now_table.add_row({sim::Table::fmt(std::uint64_t{s.step}),
                       sim::Table::fmt(std::uint64_t{s.num_nodes}),
                       sim::Table::fmt(std::uint64_t{s.num_clusters}),
                       sim::Table::fmt(std::uint64_t{s.min_cluster_size}),
                       sim::Table::fmt(std::uint64_t{s.max_cluster_size}),
                       sim::Table::fmt(s.worst_byz_fraction, 3),
                       sim::Table::fmt(std::uint64_t{s.overlay_max_degree})});
  }
  std::cout << "NOW, n oscillating " << n_low << " <-> " << n_high << " (N="
            << N << "):\n";
  now_table.print(std::cout);
  std::cout << "splits=" << result.total_splits
            << " merges=" << result.total_merges
            << " peak_pC=" << sim::Table::fmt(result.peak_byz_fraction, 3)
            << " compromised=" << (result.ever_compromised ? "YES" : "no")
            << "\n\n";

  // --- Static-#clusters baseline through the same growth ramp.
  // Provision it at 4x the size floor — the constant-factor envelope its
  // designers ([6, 7]) assume — so it starts with several clusters; the
  // ramp then leaves that envelope and the per-op cost inflates anyway.
  core::NowParams base_params = config.params;
  base_params.k = 3;
  Metrics base_metrics;
  baseline::StaticPartitionSystem baseline{base_params, base_metrics, 99};
  const std::size_t base_n0 = 4 * n_low;
  baseline.initialize(
      base_n0,
      static_cast<std::size_t>(0.15 * static_cast<double>(base_n0)));
  sim::Table base_table({"n", "#C", "max|C|", "join_msgs(last)"});
  std::uint64_t last_join_small = 0;
  std::uint64_t last_join_big = 0;
  for (std::size_t n = base_n0; n < n_high; ++n) {
    const auto [node, report] = baseline.join(false);
    if (n == base_n0) last_join_small = report.cost.messages;
    last_join_big = report.cost.messages;
    if ((n & (n - 1)) == 0 || n + 1 == n_high) {  // powers of two + last
      base_table.add_row(
          {sim::Table::fmt(std::uint64_t{baseline.num_nodes()}),
           sim::Table::fmt(std::uint64_t{baseline.system().num_clusters()}),
           sim::Table::fmt(std::uint64_t{baseline.max_cluster_size()}),
           sim::Table::fmt(report.cost.messages)});
    }
  }
  std::cout << "Static-#clusters baseline ([6,7,31] regime) on the same "
               "growth:\n";
  base_table.print(std::cout);
  const double blowup =
      static_cast<double>(last_join_big) /
      static_cast<double>(std::max<std::uint64_t>(1, last_join_small));
  std::cout << "baseline join-cost blow-up across the ramp: x"
            << sim::Table::fmt(blowup, 1) << "\n";
  json.add("join[now]", N,
           bench::mean_messages(metrics.operation_samples(metrics.find("join"))),
           bench::mean_rounds(metrics.operation_samples(metrics.find("join"))), 0.0);
  json.add("join[static-baseline,final]", N,
           static_cast<double>(last_join_big), 0.0, 0.0);
  json.add_scalar("peak_pC", N, result.peak_byz_fraction);
  json.add_scalar("baseline_join_blowup", N, blowup);
  json.add_scalar("restructures", N,
                  static_cast<double>(result.total_splits +
                                      result.total_merges));

  bench::print_verdict(
      !result.ever_compromised && result.total_splits > 0 &&
          result.total_merges > 0 && blowup > 10.0,
      "NOW rides sqrt(N) <-> N/4 with intact invariants (clusters split and "
      "merge to track n) while the static baseline's cluster sizes and "
      "per-op costs inflate polynomially — the paper's core separation");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
