// L23 — Lemmas 2 & 3: the Byzantine fraction of a cluster behaves like a
// supermartingale between the drift ceilings. Lemma 3: a cluster that starts
// between tau(1+eps/2) and tau(1+eps) falls below tau(1+eps/2) within
// O(log N) uniformly-random node exchanges whp. Lemma 2: while recovering it
// never climbs past tau(1+eps) whp.
//
// Experiment: seed a cluster at exactly tau(1+eps) Byzantine by fiat, then
// exchange nodes one full-cluster round at a time, recording (a) the number
// of individual node swaps until the fraction is below tau(1+eps/2) and
// (b) the maximal excursion along the way. Sweep N; recovery should scale
// like ln N (each cluster holds ~ k ln N nodes).
#include "bench_common.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "L23 (Lemmas 2-3: drift of the Byzantine fraction)",
      "recovery below tau(1+eps/2) within O(log N) exchanges whp; "
      "no excursion above tau(1+eps) meanwhile");

  constexpr double kTau = 0.20;
  constexpr double kEps = 0.5;  // tau(1+eps) = 0.30 < 1/3
  constexpr int kTrials = 120;

  sim::Table table({"N", "|C|", "k*lnN", "mean_swaps", "p95_swaps",
                    "swaps/lnN", "P(excursion>tau(1+eps))"});
  bench::JsonEmitter json("lemma23_drift");

  std::vector<double> sweep_n;
  std::vector<double> mean_swaps_per_n;
  bool excursions_ok = true;

  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    core::NowParams params;
    params.max_size = N;
    params.tau = kTau;
    params.walk_mode = core::WalkMode::kSampleExact;
    Metrics metrics;
    core::NowSystem system{params, metrics, N + 3};
    const std::size_t n = 1500;
    system.initialize(n, static_cast<std::size_t>(kTau * n),
                      core::InitTopology::kModeledSparse);
    auto& state = const_cast<core::NowState&>(system.state());
    const ClusterId target = state.cluster_ids().front();

    RunningStat swaps_stat;
    std::vector<double> swaps_samples;
    int excursions = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      // Seed the target at ceil(tau(1+eps)|C|) Byzantine members: mark
      // members Byzantine / honest by fiat, preserving the global budget.
      auto& cluster = state.cluster_at(target);
      const auto want = static_cast<std::size_t>(
          std::ceil(kTau * (1 + kEps) * static_cast<double>(cluster.size())));
      // Clear current marks in the target.
      const auto member_view = cluster.members();
      std::vector<NodeId> members(member_view.begin(), member_view.end());
      std::size_t delta_added = 0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        const bool should_be_byz = i < want;
        const bool is_byz = state.byzantine.contains(members[i]);
        if (should_be_byz && !is_byz) {
          state.byzantine.insert(members[i]);
          ++delta_added;
        } else if (!should_be_byz && is_byz) {
          state.byzantine.erase(members[i]);
          // One fewer to remove elsewhere.
          if (delta_added > 0) --delta_added;
        }
      }
      for (auto it = state.byzantine.begin();
           it != state.byzantine.end() && delta_added > 0;) {
        if (state.home_of(*it) != target) {
          it = state.byzantine.erase(it);
          --delta_added;
        } else {
          ++it;
        }
      }

      // Exchange until recovered; track excursions.
      const double recover_line = kTau * (1 + kEps / 2);
      const double ceiling = kTau * (1 + kEps) + 1e-9;
      std::size_t swaps = 0;
      bool excursion = false;
      for (int round = 0; round < 50; ++round) {
        const double p =
            cluster::byzantine_fraction(cluster, state.byzantine);
        if (p < recover_line) break;
        if (p > ceiling && round > 0) excursion = true;
        system.exchange_all(target);
        swaps += cluster.size();
      }
      swaps_stat.add(static_cast<double>(swaps));
      swaps_samples.push_back(static_cast<double>(swaps));
      excursions += excursion ? 1 : 0;
    }

    const double ln_n = std::log(static_cast<double>(N));
    const double excursion_rate = static_cast<double>(excursions) / kTrials;
    table.add_row(
        {sim::Table::fmt(N),
         sim::Table::fmt(std::uint64_t{state.cluster_at(target).size()}),
         sim::Table::fmt(static_cast<double>(params.cluster_size_target()), 0),
         sim::Table::fmt(swaps_stat.mean(), 1),
         sim::Table::fmt(quantile(swaps_samples, 0.95), 1),
         sim::Table::fmt(swaps_stat.mean() / ln_n, 2),
         sim::Table::fmt(excursion_rate, 3)});
    sweep_n.push_back(static_cast<double>(N));
    mean_swaps_per_n.push_back(swaps_stat.mean());
    json.add_scalar("recovery_swaps", N, swaps_stat.mean());
    json.add_scalar("excursion_rate", N, excursion_rate);
    // Lemma 2's "whp" is asymptotic in the cluster size k ln N: at N = 2^10
    // a +1 member fluctuation already crosses the ceiling, so judge the
    // large-cluster rows.
    if (N >= (1ULL << 14) && excursion_rate > 0.10) excursions_ok = false;
  }
  table.print(std::cout);

  const auto fit = polylog_fit(sweep_n, mean_swaps_per_n);
  json.add_scalar("recovery_fit_exponent", 1ULL << 18, fit.slope);
  std::cout << "recovery swaps ~ (ln N)^" << sim::Table::fmt(fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(fit.r2, 3)
            << "; Lemmas 2-3 predict exponent ~1: O(log N) exchanges)\n";
  bench::print_verdict(
      fit.slope < 2.0 && excursions_ok,
      "seeded clusters decay back below tau(1+eps/2) within O(log N) swaps "
      "and stay under the tau(1+eps) ceiling while doing so");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
