// Shared helpers for the experiment benches. Every bench regenerates one of
// the paper's figures or quantitative claims (see DESIGN.md §4) and prints
// paper-claim vs measured through sim::Table.
#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

namespace now::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n==================================================="
               "=============================\n"
            << "EXPERIMENT " << experiment_id << "\n"
            << "Paper claim: " << claim << "\n"
            << "---------------------------------------------------"
               "-----------------------------\n";
}

inline void print_verdict(bool holds, const std::string& summary) {
  std::cout << "Verdict: " << (holds ? "REPRODUCED" : "DEVIATION") << " — "
            << summary << "\n";
}

/// Mean over samples of the message field.
inline double mean_messages(const std::vector<Cost>& samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.messages);
  return total / static_cast<double>(samples.size());
}

inline double mean_rounds(const std::vector<Cost>& samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.rounds);
  return total / static_cast<double>(samples.size());
}

/// ln(N)^e convenience for bound columns.
inline double lnpow(std::uint64_t n, double e) {
  return log_pow(static_cast<double>(n), e);
}

}  // namespace now::bench
