// Shared helpers for the experiment benches. Every bench regenerates one of
// the paper's figures or quantitative claims (see DESIGN.md §4) and prints
// paper-claim vs measured through sim::Table.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

namespace now::bench {

/// Machine-readable result sink writing BENCH_<name>.json next to the
/// binary, so the trajectory of every PR can be diffed mechanically instead
/// of scraping stdout tables. Two row kinds (schema in EXPERIMENTS.md,
/// "The BENCH_*.json schema"):
///   * cost rows   — {op, n, messages, rounds, wall_ns}: protocol costs of
///     an operation at network size n. wall_ns <= 0 means "not measured"
///     and is emitted as null.
///   * scalar rows — {op, n, value}: a dimensionless verdict quantity
///     (a peak Byzantine fraction, a fitted exponent, a p-value, ...).
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  ~JsonEmitter() { write(); }

  void add(const std::string& op, std::uint64_t n, double messages,
           double rounds, double wall_ns) {
    rows_.push_back(Row{op, n, messages, rounds, wall_ns, 0.0, false});
  }

  /// A verdict scalar (dimensionless), e.g. a peak fraction or an exponent.
  void add_scalar(const std::string& op, std::uint64_t n, double value) {
    rows_.push_back(Row{op, n, 0.0, 0.0, 0.0, value, true});
  }

  /// Writes BENCH_<name>.json (idempotent; also called by the destructor).
  void write() {
    std::ofstream out("BENCH_" + name_ + ".json");
    // Full round-trip precision: these files exist to be diffed mechanically
    // across PRs, so the default 6-significant-digit truncation would both
    // hide real changes and manufacture spurious equalities.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"op\": \"" << r.op << "\", \"n\": " << r.n;
      if (r.is_scalar) {
        out << ", \"value\": " << r.value;
      } else {
        out << ", \"messages\": " << r.messages
            << ", \"rounds\": " << r.rounds << ", \"wall_ns\": ";
        if (r.wall_ns > 0) {
          out << r.wall_ns;
        } else {
          out << "null";
        }
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string op;
    std::uint64_t n;
    double messages;
    double rounds;
    double wall_ns;
    double value;
    bool is_scalar;
  };

  std::string name_;
  std::vector<Row> rows_;
};

/// Wall-clock nanoseconds consumed by `fn()`.
template <typename Fn>
double time_ns(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n==================================================="
               "=============================\n"
            << "EXPERIMENT " << experiment_id << "\n"
            << "Paper claim: " << claim << "\n"
            << "---------------------------------------------------"
               "-----------------------------\n";
}

inline void print_verdict(bool holds, const std::string& summary) {
  std::cout << "Verdict: " << (holds ? "REPRODUCED" : "DEVIATION") << " — "
            << summary << "\n";
}

/// Prints the verdict AND records it as a `verdict` scalar row (1 =
/// REPRODUCED, 0 = DEVIATION) so scripts/check_bench.py can hard-fail a PR
/// whose CI bench flips away from REPRODUCED without scraping stdout.
inline void record_verdict(JsonEmitter& json, bool holds,
                           const std::string& summary) {
  print_verdict(holds, summary);
  json.add_scalar("verdict", 0, holds ? 1.0 : 0.0);
}

/// Mean over samples of the message field.
inline double mean_messages(std::span<const Cost> samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.messages);
  return total / static_cast<double>(samples.size());
}

inline double mean_rounds(std::span<const Cost> samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.rounds);
  return total / static_cast<double>(samples.size());
}

/// ln(N)^e convenience for bound columns.
inline double lnpow(std::uint64_t n, double e) {
  return log_pow(static_cast<double>(n), e);
}

}  // namespace now::bench
