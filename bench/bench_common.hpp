// Shared helpers for the experiment benches. Every bench regenerates one of
// the paper's figures or quantitative claims (see DESIGN.md §4) and prints
// paper-claim vs measured through sim::Table.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "core/now.hpp"
#include "sim/table.hpp"

namespace now::bench {

/// Machine-readable result sink: each bench appends (op, n, messages,
/// rounds, wall_ns) rows and writes BENCH_<name>.json next to the binary,
/// so the perf trajectory of every PR can be diffed mechanically instead of
/// scraping stdout tables. wall_ns <= 0 means "not measured" and is emitted
/// as null.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string name) : name_(std::move(name)) {}

  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  ~JsonEmitter() { write(); }

  void add(const std::string& op, std::uint64_t n, double messages,
           double rounds, double wall_ns) {
    rows_.push_back(Row{op, n, messages, rounds, wall_ns});
  }

  /// Writes BENCH_<name>.json (idempotent; also called by the destructor).
  void write() {
    std::ofstream out("BENCH_" + name_ + ".json");
    // Full round-trip precision: these files exist to be diffed mechanically
    // across PRs, so the default 6-significant-digit truncation would both
    // hide real changes and manufacture spurious equalities.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << "    {\"op\": \"" << r.op << "\", \"n\": " << r.n
          << ", \"messages\": " << r.messages << ", \"rounds\": " << r.rounds
          << ", \"wall_ns\": ";
      if (r.wall_ns > 0) {
        out << r.wall_ns;
      } else {
        out << "null";
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  struct Row {
    std::string op;
    std::uint64_t n;
    double messages;
    double rounds;
    double wall_ns;
  };

  std::string name_;
  std::vector<Row> rows_;
};

/// Wall-clock nanoseconds consumed by `fn()`.
template <typename Fn>
double time_ns(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "\n==================================================="
               "=============================\n"
            << "EXPERIMENT " << experiment_id << "\n"
            << "Paper claim: " << claim << "\n"
            << "---------------------------------------------------"
               "-----------------------------\n";
}

inline void print_verdict(bool holds, const std::string& summary) {
  std::cout << "Verdict: " << (holds ? "REPRODUCED" : "DEVIATION") << " — "
            << summary << "\n";
}

/// Mean over samples of the message field.
inline double mean_messages(const std::vector<Cost>& samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.messages);
  return total / static_cast<double>(samples.size());
}

inline double mean_rounds(const std::vector<Cost>& samples) {
  if (samples.empty()) return 0.0;
  double total = 0;
  for (const auto& c : samples) total += static_cast<double>(c.rounds);
  return total / static_cast<double>(samples.size());
}

/// ln(N)^e convenience for bound columns.
inline double lnpow(std::uint64_t n, double e) {
  return log_pow(static_cast<double>(n), e);
}

}  // namespace now::bench
