// THR — restructuring-thrash (cost amplification) analysis.
//
// Not a claim the paper states, but a question its design answers: the
// split/merge hysteresis l > sqrt(2) (Section 3.3, "l is a constant greater
// than sqrt(2) which influences the number of split and merge operations")
// exists so an adversary cannot bounce a cluster between the two thresholds
// with O(1) operations per restructuring. This bench drives the strongest
// threshold-chasing adversary against several l and reports how many
// adversarial operations one induced split/merge costs — the amplification
// the hysteresis buys.
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "THR (restructuring-thrash attack vs the hysteresis l)",
      "l > sqrt(2) forces Omega(k log N) adversarial operations per induced "
      "split/merge; the amplification grows with l");

  sim::Table table({"l", "steps", "splits", "merges", "ops_per_restructure",
                    "mean_op_msgs", "compromised"});
  bench::JsonEmitter json("thrash");

  bool amplification_grows = true;
  double previous_ratio = 0.0;
  for (const double l : {1.2, 1.5, 2.0}) {
    sim::ScenarioConfig config;
    config.params.max_size = 1 << 12;
    config.params.k = 6;
    config.params.tau = 0.10;
    config.params.l = l;
    config.params.walk_mode = core::WalkMode::kSampleExact;
    config.n0 = 600;
    config.steps = 800;
    config.sample_every = 40;
    config.seed = static_cast<std::uint64_t>(l * 100);

    Metrics metrics;
    adversary::ThrashAdversary adv{config.params.tau};
    const auto result = sim::run_scenario(config, adv, metrics);

    const std::size_t restructures =
        result.total_splits + result.total_merges;
    const double ratio =
        restructures == 0
            ? static_cast<double>(config.steps)
            : static_cast<double>(config.steps) /
                  static_cast<double>(restructures);
    const double mean_op =
        (bench::mean_messages(metrics.operation_samples(metrics.find("join"))) +
         bench::mean_messages(metrics.operation_samples(metrics.find("leave")))) /
        2.0;
    table.add_row({sim::Table::fmt(l, 1),
                   sim::Table::fmt(std::uint64_t{config.steps}),
                   sim::Table::fmt(std::uint64_t{result.total_splits}),
                   sim::Table::fmt(std::uint64_t{result.total_merges}),
                   sim::Table::fmt(ratio, 1), sim::Table::fmt(mean_op, 0),
                   result.ever_compromised ? "YES" : "no"});
    json.add("op_mean[l=" + sim::Table::fmt(l, 1) + "]", 1 << 12, mean_op,
             0.0, 0.0);
    json.add_scalar("ops_per_restructure[l=" + sim::Table::fmt(l, 1) + "]",
                    1 << 12, ratio);
    if (ratio < previous_ratio) amplification_grows = false;
    previous_ratio = ratio;
  }
  table.print(std::cout);
  bench::print_verdict(
      amplification_grows,
      "the threshold gap (l - 1/l) * k * ln N adversarial operations are "
      "needed per restructuring and the attack never endangers the honest "
      "supermajorities — the hysteresis does the job the paper assigns it");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
