// L1 — Lemma 1: "If a cluster C has exchanged all its nodes at time step t,
// P(p_C > tau (1 + eps)) <= n^{-gamma} ... as long as the security
// parameter k is large enough."
//
// Experiment: seed a target cluster entirely with Byzantine members (the
// worst possible pre-state), run `exchange` on all its nodes, and record the
// post-exchange Byzantine fraction. Sweep k and tau; report the empirical
// tail P(p_C > tau(1+eps)) and the Chernoff bound exp(-eps^2 tau |C| / 3)
// the proof uses.
#include "bench_common.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "L1 (Lemma 1: 2/3 honest after a full exchange)",
      "after exchanging all nodes, P(p_C > tau(1+eps)) <= n^-gamma; "
      "larger k sharpens the bound");

  constexpr double kEps = 0.5;
  constexpr int kTrials = 300;
  const std::uint64_t N = 1 << 12;

  sim::Table table({"k", "tau", "|C|", "mean_pC", "max_pC",
                    "P(pC>tau(1+eps))", "chernoff_bound", "P(pC>=1/3)"});
  bench::JsonEmitter json("lemma1_exchange");

  bool all_good = true;
  for (const int k : {2, 3, 5, 8}) {
    for (const double tau : {0.10, 0.20, 0.30}) {
      core::NowParams params;
      params.max_size = N;
      params.k = k;
      params.tau = tau;
      params.walk_mode = core::WalkMode::kSampleExact;
      Metrics metrics;
      core::NowSystem system{params, metrics, static_cast<std::uint64_t>(
                                                  k * 1000 + tau * 100)};
      const std::size_t n = 1200;
      system.initialize(n, static_cast<std::size_t>(tau * n),
                        core::InitTopology::kModeledSparse);

      // Worst-case seeding: make the target cluster 100% Byzantine by fiat
      // (the adversary cannot do better), then run the full exchange.
      auto& state = const_cast<core::NowState&>(system.state());
      const ClusterId target = state.cluster_ids().front();

      RunningStat fraction;
      int tail = 0;
      int compromised = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        // Re-seed: mark all current members Byzantine, keeping the global
        // budget by unmarking the same number elsewhere.
        std::vector<NodeId> added;
        for (const NodeId m : state.cluster_at(target).members()) {
          if (state.byzantine.insert(m)) added.push_back(m);
        }
        std::size_t to_unmark = added.size();
        for (auto it = state.byzantine.begin();
             it != state.byzantine.end() && to_unmark > 0;) {
          if (state.home_of(*it) != target) {
            it = state.byzantine.erase(it);
            --to_unmark;
          } else {
            ++it;
          }
        }
        system.exchange_all(target);
        const double p = cluster::byzantine_fraction(
            state.cluster_at(target), state.byzantine);
        fraction.add(p);
        if (p > tau * (1 + kEps)) ++tail;
        if (p >= 1.0 / 3.0) ++compromised;
      }

      const double size =
          static_cast<double>(state.cluster_at(target).size());
      const double chernoff = std::exp(-kEps * kEps * tau * size / 3.0);
      const double tail_rate = static_cast<double>(tail) / kTrials;
      const double comp_rate = static_cast<double>(compromised) / kTrials;
      table.add_row({sim::Table::fmt(std::uint64_t(k)),
                     sim::Table::fmt(tau, 2), sim::Table::fmt(size, 0),
                     sim::Table::fmt(fraction.mean(), 3),
                     sim::Table::fmt(fraction.max(), 3),
                     sim::Table::fmt(tail_rate, 3),
                     sim::Table::fmt(chernoff, 4),
                     sim::Table::fmt(comp_rate, 3)});
      const std::string setting = "[k=" + std::to_string(k) +
                                  ",tau=" + sim::Table::fmt(tau, 2) + "]";
      json.add_scalar("mean_pC" + setting, N, fraction.mean());
      json.add_scalar("tail_rate" + setting, N, tail_rate);
      // The lemma's regime: tau(1+eps) < 1/3 needs tau <= 0.2 at eps=0.5;
      // there the empirical tail must be within range of the bound.
      if (tau <= 0.2 && k >= 5 && tail_rate > std::max(0.05, 3 * chernoff)) {
        all_good = false;
      }
    }
  }
  table.print(std::cout);
  bench::print_verdict(
      all_good,
      "post-exchange Byzantine fraction concentrates at tau; the tail decays "
      "with k exactly as the Chernoff argument predicts (and tau = 0.30 > "
      "1/3 - eps sits outside the lemma's regime, as expected)");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
