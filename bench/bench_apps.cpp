// APP — Section 6's application claims: "A broadcast algorithm using our
// technique would have O~(n) message complexity as compared to O(n^2)
// without the clustering. Similarly, a sampling algorithm relying on our
// protocol would have a polylog(n) message complexity per sample." Plus the
// introduction's single-reliable-process strawman (flat Byzantine
// agreement) against the clustered agreement service.
#include "bench_common.hpp"

#include "apps/agreement_service.hpp"
#include "apps/broadcast.hpp"
#include "apps/sampling.hpp"
#include "baseline/single_cluster.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "APP (Section 6 applications vs flat baselines)",
      "broadcast O~(n) vs O(n^2); sampling polylog vs O(n); agreement O~(n) "
      "vs flat O(n^3) phase-king");

  sim::Table table({"n", "bcast_NOW", "bcast_naive", "ratio", "sample_NOW",
                    "sample_flat", "agree_NOW", "agree_flat"});
  bench::JsonEmitter json("apps");

  std::vector<double> sweep_n;
  std::vector<double> bcast_costs;
  bool crossover_ok = true;

  for (const std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    core::NowParams params;
    params.max_size = 1 << 14;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics,
                           static_cast<std::uint64_t>(n) * 13};
    system.initialize(
        n, static_cast<std::size_t>(0.15 * static_cast<double>(n)),
                      core::InitTopology::kModeledSparse);

    const NodeId source = system.state().live_nodes().front();
    const auto bcast = apps::broadcast(system, source, 7);
    const auto naive = apps::naive_broadcast_cost(n);

    const ClusterId start = system.state().cluster_ids().front();
    RunningStat sample_cost;
    for (int i = 0; i < 20; ++i) {
      sample_cost.add(static_cast<double>(
          apps::sample_node(system, start).cost.messages));
    }

    const auto agree = apps::decide_majority(
        system, [](NodeId) { return true; }, false);
    const auto flat_agree = baseline::flat_agreement_cost(n);
    const auto flat_sample = baseline::flat_sampling_cost(n);

    const double ratio = static_cast<double>(naive.messages) /
                         static_cast<double>(bcast.cost.messages);
    table.add_row({sim::Table::fmt(std::uint64_t{n}),
                   sim::Table::fmt(bcast.cost.messages),
                   sim::Table::fmt(naive.messages),
                   sim::Table::fmt(ratio, 2),
                   sim::Table::fmt(sample_cost.mean(), 0),
                   sim::Table::fmt(flat_sample.messages),
                   sim::Table::fmt(agree.cost.messages),
                   sim::Table::fmt(flat_agree.messages)});
    sweep_n.push_back(static_cast<double>(n));
    bcast_costs.push_back(static_cast<double>(bcast.cost.messages));
    json.add("broadcast[now]", n, static_cast<double>(bcast.cost.messages),
             static_cast<double>(bcast.cost.rounds), 0.0);
    json.add("sample[now]", n, sample_cost.mean(), 0.0, 0.0);
    json.add("agreement[now]", n, static_cast<double>(agree.cost.messages),
             static_cast<double>(agree.cost.rounds), 0.0);
    if (n >= 1024 && bcast.cost.messages >= naive.messages) {
      crossover_ok = false;
    }
    if (agree.cost.messages >= flat_agree.messages) crossover_ok = false;
  }
  table.print(std::cout);

  const auto fit = powerlaw_fit(sweep_n, bcast_costs);
  std::cout << "NOW broadcast cost ~ n^" << sim::Table::fmt(fit.slope, 2)
            << " (paper: O~(n), i.e. exponent ~1; naive is exactly 2)\n";
  std::cout << "note: per-sample cost is polylog but constant-heavy "
               "(randNum on every walk hop); it is flat in n while the "
               "unstructured baseline grows linearly — the crossover sits "
               "near n ~ 1e5 at these constants\n";
  bench::print_verdict(
      crossover_ok && fit.slope < 1.5,
      "clustered broadcast grows ~linearly in n and overtakes naive "
      "flooding by growing margins; clustered agreement beats flat "
      "phase-king by orders of magnitude; sampling stays polylog per draw");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
