// FIG2 — Figure 2 of the paper: "Maintenance of the overlay. Each operation
// has a polylog(N) complexity." Join, Leave and the induced Split / Merge
// are measured message-by-message (simulated CTRWs, real randNum cost
// model) across an N sweep; we then fit cost(N) = a (ln N)^b and check the
// growth is polylog (good fit, moderate b) and NOT polynomial (power-law
// exponent near zero).
#include "bench_common.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

/// The --shards axis: batched maintenance throughput of the sharded engine
/// (DESIGN.md §7) against the sequential baseline, at a fixed network size.
/// Emits one BENCH row per shard count: op = "batch[shards=K]", with the
/// mean messages/rounds of one batch and the wall time per join+leave pair.
void run_shards_axis(bench::JsonEmitter& json,
                     const std::vector<std::size_t>& shard_axis) {
  constexpr std::size_t kNodes = 20000;
  constexpr std::size_t kBatch = 32;
  constexpr int kSteps = 4;
  std::cout << "\nSharded batch stepping (n = " << kNodes << ", batch = "
            << kBatch << " joins + " << kBatch << " leaves):\n";
  sim::Table table({"shards", "engine", "mean_batch_msgs", "batch_rounds",
                    "waves", "wall_us_per_pair"});
  for (const std::size_t shards : shard_axis) {
    core::NowParams params;
    params.max_size = 1 << 16;
    params.walk_mode = core::WalkMode::kSampleExact;
    Metrics metrics;
    core::NowSystem system{params, metrics, 77};
    system.initialize(kNodes, kNodes * 15 / 100,
                      core::InitTopology::kModeledSparse);
    Rng victims_rng{5};
    double messages = 0;
    double rounds = 0;
    double waves = 0;
    double wall_ns = 0;
    for (int step = 0; step < kSteps; ++step) {
      const std::vector<NodeId> victims =
          system.state().sample_distinct_nodes(victims_rng, kBatch);
      core::OpReport report;
      wall_ns += bench::time_ns([&] {
        auto [joined, r] =
            system.step_parallel(kBatch, victims, false, shards);
        report = std::move(r);
      });
      messages += static_cast<double>(report.cost.messages);
      rounds += static_cast<double>(report.cost.rounds);
      waves += static_cast<double>(report.wave_count);
    }
    messages /= kSteps;
    rounds /= kSteps;
    waves /= kSteps;
    const double per_pair = wall_ns / (kSteps * kBatch);
    table.add_row({sim::Table::fmt(std::uint64_t{shards}),
                   shards <= 1 ? "sequential" : "sharded",
                   sim::Table::fmt(messages, 0), sim::Table::fmt(rounds, 0),
                   sim::Table::fmt(waves, 0),
                   sim::Table::fmt(per_pair / 1000.0, 1)});
    std::ostringstream op;
    op << "batch[shards=" << shards << "]";
    json.add(op.str(), kNodes, messages, rounds, per_pair);
    // The wave scheduler's dedup quantity: exchange waves per batch (the
    // sequential engine reports 0 — it exchanges per operation instead).
    std::ostringstream wave_op;
    wave_op << "wave_count[shards=" << shards << "]";
    json.add_scalar(wave_op.str(), kNodes, waves);
  }
  table.print(std::cout);
}

void run(const std::vector<std::size_t>& shard_axis) {
  bench::print_header(
      "FIG2 (Figure 2: maintenance operations)",
      "join / leave (incl. induced split & merge) each cost polylog(N) "
      "messages and O(log^4 N) rounds");

  sim::Table table({"N", "op", "count", "mean_msgs", "p95_msgs",
                    "mean_rounds", "ln^6(N)", "ln^8(N)"});
  bench::JsonEmitter json("fig2_maintenance");

  std::vector<double> sweep_n;
  std::vector<double> join_cost;
  std::vector<double> leave_cost;
  std::vector<double> leave_rounds;

  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    core::NowParams params;
    params.max_size = N;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics, N + 1};
    const std::size_t n = std::min<std::size_t>(N / 4, 2000);
    system.initialize(
        n, static_cast<std::size_t>(0.15 * static_cast<double>(n)),
                      core::InitTopology::kModeledSparse);

    // Alternate churn at constant size so both ops fire (and occasionally
    // drive splits/merges). Wall time is accumulated per operation kind so
    // the JSON trajectory tracks simulator speed alongside message cost.
    Rng rng{exponent};
    double leave_wall_ns = 0;
    double join_wall_ns = 0;
    for (int i = 0; i < 60; ++i) {
      leave_wall_ns += bench::time_ns(
          [&] { system.leave(system.state().random_node(rng)); });
      join_wall_ns +=
          bench::time_ns([&] { system.join(rng.bernoulli(0.15)); });
    }

    for (const std::string op : {"join", "leave", "split", "merge"}) {
      const auto samples = metrics.operation_samples(metrics.find(op));
      if (samples.empty()) continue;
      std::vector<double> msgs;
      for (const auto& c : samples) {
        msgs.push_back(static_cast<double>(c.messages));
      }
      table.add_row({sim::Table::fmt(N), op,
                     sim::Table::fmt(std::uint64_t{samples.size()}),
                     sim::Table::fmt(bench::mean_messages(samples), 0),
                     sim::Table::fmt(quantile(msgs, 0.95), 0),
                     sim::Table::fmt(bench::mean_rounds(samples), 1),
                     sim::Table::fmt(bench::lnpow(N, 6.0), 0),
                     sim::Table::fmt(bench::lnpow(N, 8.0), 0)});
      double wall_ns = 0;
      if (op == "join") wall_ns = join_wall_ns / 60.0;
      if (op == "leave") wall_ns = leave_wall_ns / 60.0;
      json.add(op, N, bench::mean_messages(samples),
               bench::mean_rounds(samples), wall_ns);
    }
    sweep_n.push_back(static_cast<double>(N));
    join_cost.push_back(
        bench::mean_messages(metrics.operation_samples(metrics.find("join"))));
    leave_cost.push_back(
        bench::mean_messages(metrics.operation_samples(metrics.find("leave"))));
    leave_rounds.push_back(
        bench::mean_rounds(metrics.operation_samples(metrics.find("leave"))));
  }
  table.print(std::cout);

  const auto join_fit = polylog_fit(sweep_n, join_cost);
  const auto leave_fit = polylog_fit(sweep_n, leave_cost);
  const auto round_fit = polylog_fit(sweep_n, leave_rounds);

  // A polylog curve (ln N)^b has *decreasing* local log-log slope b / ln N,
  // while a genuine power law N^c keeps it constant — that, not the raw
  // exponent over a narrow sweep, separates the two.
  const auto local_slope = [](const std::vector<double>& n,
                              const std::vector<double>& c, std::size_t i) {
    return std::log(c[i + 1] / c[i]) / std::log(n[i + 1] / n[i]);
  };
  const double join_s0 = local_slope(sweep_n, join_cost, 0);
  const double join_s1 = local_slope(sweep_n, join_cost, sweep_n.size() - 2);
  const double leave_s0 = local_slope(sweep_n, leave_cost, 0);
  const double leave_s1 =
      local_slope(sweep_n, leave_cost, sweep_n.size() - 2);
  std::cout << "join : cost ~ (ln N)^" << sim::Table::fmt(join_fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(join_fit.r2, 3)
            << "); local power-law slope " << sim::Table::fmt(join_s0, 2)
            << " -> " << sim::Table::fmt(join_s1, 2) << " (decreasing)\n";
  std::cout << "leave: cost ~ (ln N)^" << sim::Table::fmt(leave_fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(leave_fit.r2, 3)
            << "); local power-law slope " << sim::Table::fmt(leave_s0, 2)
            << " -> " << sim::Table::fmt(leave_s1, 2) << " (decreasing)\n";
  std::cout << "leave rounds ~ (ln N)^" << sim::Table::fmt(round_fit.slope, 2)
            << " (paper bound: (ln N)^4)\n";

  // Our leave includes the second exchange wave, so the polylog exponent is
  // higher than the paper's randCl-based log^6 but still polylog.
  bench::record_verdict(
      json,
      join_s1 < 0.92 * join_s0 && leave_s1 < 0.92 * leave_s0 &&
          join_fit.r2 > 0.9 && leave_fit.r2 > 0.9,
      "all maintenance costs grow sub-polynomially (local log-log slope "
      "falls across the sweep, the polylog signature; see EXPERIMENTS.md "
      "for the exponent-vs-paper discussion)");

  run_shards_axis(json, shard_axis);
}

}  // namespace
}  // namespace now

int main(int argc, char** argv) {
  // --shards=K1,K2,... selects the shard counts of the batched-throughput
  // axis; 1 is the sequential engine, >= 2 the sharded plan/commit engine.
  std::vector<std::size_t> shard_axis = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    constexpr std::string_view kPrefix = "--shards=";
    if (arg.starts_with(kPrefix)) {
      shard_axis.clear();
      std::stringstream list{std::string(arg.substr(kPrefix.size()))};
      for (std::string item; std::getline(list, item, ',');) {
        shard_axis.push_back(static_cast<std::size_t>(
            std::max(1L, std::atol(item.c_str()))));
      }
    }
  }
  now::run(shard_axis);
  return 0;
}
