// FIG2 — Figure 2 of the paper: "Maintenance of the overlay. Each operation
// has a polylog(N) complexity." Join, Leave and the induced Split / Merge
// are measured message-by-message (simulated CTRWs, real randNum cost
// model) across an N sweep; we then fit cost(N) = a (ln N)^b and check the
// growth is polylog (good fit, moderate b) and NOT polynomial (power-law
// exponent near zero).
#include "bench_common.hpp"

#include "adversary/adversary.hpp"
#include "sim/scenario.hpp"

namespace now {
namespace {

void run() {
  bench::print_header(
      "FIG2 (Figure 2: maintenance operations)",
      "join / leave (incl. induced split & merge) each cost polylog(N) "
      "messages and O(log^4 N) rounds");

  sim::Table table({"N", "op", "count", "mean_msgs", "p95_msgs",
                    "mean_rounds", "ln^6(N)", "ln^8(N)"});
  bench::JsonEmitter json("fig2_maintenance");

  std::vector<double> sweep_n;
  std::vector<double> join_cost;
  std::vector<double> leave_cost;
  std::vector<double> leave_rounds;

  for (const std::uint64_t exponent : {10u, 12u, 14u, 16u, 18u}) {
    const std::uint64_t N = 1ULL << exponent;
    core::NowParams params;
    params.max_size = N;
    params.walk_mode = core::WalkMode::kSimulate;
    Metrics metrics;
    core::NowSystem system{params, metrics, N + 1};
    const std::size_t n = std::min<std::size_t>(N / 4, 2000);
    system.initialize(
        n, static_cast<std::size_t>(0.15 * static_cast<double>(n)),
                      core::InitTopology::kModeledSparse);

    // Alternate churn at constant size so both ops fire (and occasionally
    // drive splits/merges). Wall time is accumulated per operation kind so
    // the JSON trajectory tracks simulator speed alongside message cost.
    Rng rng{exponent};
    double leave_wall_ns = 0;
    double join_wall_ns = 0;
    for (int i = 0; i < 60; ++i) {
      leave_wall_ns += bench::time_ns(
          [&] { system.leave(system.state().random_node(rng)); });
      join_wall_ns +=
          bench::time_ns([&] { system.join(rng.bernoulli(0.15)); });
    }

    for (const std::string op : {"join", "leave", "split", "merge"}) {
      const auto samples = metrics.operation_samples(op);
      if (samples.empty()) continue;
      std::vector<double> msgs;
      for (const auto& c : samples) msgs.push_back(static_cast<double>(c.messages));
      table.add_row({sim::Table::fmt(N), op,
                     sim::Table::fmt(std::uint64_t{samples.size()}),
                     sim::Table::fmt(bench::mean_messages(samples), 0),
                     sim::Table::fmt(quantile(msgs, 0.95), 0),
                     sim::Table::fmt(bench::mean_rounds(samples), 1),
                     sim::Table::fmt(bench::lnpow(N, 6.0), 0),
                     sim::Table::fmt(bench::lnpow(N, 8.0), 0)});
      double wall_ns = 0;
      if (op == "join") wall_ns = join_wall_ns / 60.0;
      if (op == "leave") wall_ns = leave_wall_ns / 60.0;
      json.add(op, N, bench::mean_messages(samples),
               bench::mean_rounds(samples), wall_ns);
    }
    sweep_n.push_back(static_cast<double>(N));
    join_cost.push_back(
        bench::mean_messages(metrics.operation_samples("join")));
    leave_cost.push_back(
        bench::mean_messages(metrics.operation_samples("leave")));
    leave_rounds.push_back(
        bench::mean_rounds(metrics.operation_samples("leave")));
  }
  table.print(std::cout);

  const auto join_fit = polylog_fit(sweep_n, join_cost);
  const auto leave_fit = polylog_fit(sweep_n, leave_cost);
  const auto round_fit = polylog_fit(sweep_n, leave_rounds);

  // A polylog curve (ln N)^b has *decreasing* local log-log slope b / ln N,
  // while a genuine power law N^c keeps it constant — that, not the raw
  // exponent over a narrow sweep, separates the two.
  const auto local_slope = [](const std::vector<double>& n,
                              const std::vector<double>& c, std::size_t i) {
    return std::log(c[i + 1] / c[i]) / std::log(n[i + 1] / n[i]);
  };
  const double join_s0 = local_slope(sweep_n, join_cost, 0);
  const double join_s1 = local_slope(sweep_n, join_cost, sweep_n.size() - 2);
  const double leave_s0 = local_slope(sweep_n, leave_cost, 0);
  const double leave_s1 =
      local_slope(sweep_n, leave_cost, sweep_n.size() - 2);
  std::cout << "join : cost ~ (ln N)^" << sim::Table::fmt(join_fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(join_fit.r2, 3)
            << "); local power-law slope " << sim::Table::fmt(join_s0, 2)
            << " -> " << sim::Table::fmt(join_s1, 2) << " (decreasing)\n";
  std::cout << "leave: cost ~ (ln N)^" << sim::Table::fmt(leave_fit.slope, 2)
            << " (r^2=" << sim::Table::fmt(leave_fit.r2, 3)
            << "); local power-law slope " << sim::Table::fmt(leave_s0, 2)
            << " -> " << sim::Table::fmt(leave_s1, 2) << " (decreasing)\n";
  std::cout << "leave rounds ~ (ln N)^" << sim::Table::fmt(round_fit.slope, 2)
            << " (paper bound: (ln N)^4)\n";

  // Our leave includes the second exchange wave, so the polylog exponent is
  // higher than the paper's randCl-based log^6 but still polylog.
  bench::print_verdict(
      join_s1 < 0.92 * join_s0 && leave_s1 < 0.92 * leave_s0 &&
          join_fit.r2 > 0.9 && leave_fit.r2 > 0.9,
      "all maintenance costs grow sub-polynomially (local log-log slope "
      "falls across the sweep, the polylog signature; see EXPERIMENTS.md "
      "for the exponent-vs-paper discussion)");
}

}  // namespace
}  // namespace now

int main() {
  now::run();
  return 0;
}
