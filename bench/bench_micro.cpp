// MICRO — google-benchmark microbenchmarks of the primitives, for profiling
// the simulator itself (wall-clock, not message-cost, which the other
// benches measure).
#include <benchmark/benchmark.h>

#include "agreement/phase_king.hpp"
#include "cluster/rand_num.hpp"
#include "core/now.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/random_walk.hpp"
#include "graph/spectral.hpp"

namespace now {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<graph::Vertex> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  Rng rng{2};
  for (auto _ : state) {
    graph::Graph g;
    graph::generate_erdos_renyi(g, verts, 10.0 / static_cast<double>(n), rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_ErdosRenyi)->Arg(128)->Arg(512)->Arg(2048);

void BM_CtrwWalk(benchmark::State& state) {
  graph::Graph g;
  std::vector<graph::Vertex> verts(200);
  for (std::size_t i = 0; i < verts.size(); ++i) verts[i] = i;
  Rng gen{3};
  graph::generate_erdos_renyi(g, verts, 0.05, gen);
  for (const auto v : g.vertices()) {
    if (g.degree(v) == 0) g.add_edge(v, (v + 1) % 200);
  }
  Rng rng{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ctrw_walk(g, 0, 25.0, rng).endpoint);
  }
}
BENCHMARK(BM_CtrwWalk);

void BM_SpectralEstimate(benchmark::State& state) {
  graph::Graph g;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<graph::Vertex> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  Rng gen{5};
  graph::generate_erdos_renyi(g, verts, 12.0 / static_cast<double>(n), gen);
  for (const auto v : g.vertices()) {
    if (g.degree(v) == 0) g.add_edge(v, (v + 1) % n);
  }
  Rng rng{6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::estimate_expansion(g, rng, 100).spectral_gap);
  }
}
BENCHMARK(BM_SpectralEstimate)->Arg(128)->Arg(512);

void BM_RandNumMessageLevel(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < s; ++i) members.emplace_back(i);
  Metrics metrics;
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::run_rand_num(members, {}, 1000, cluster::RandNumMode::kFast,
                              cluster::RandNumByz::kFollow, metrics, rng)
            .value);
  }
}
BENCHMARK(BM_RandNumMessageLevel)->Arg(16)->Arg(33);

void BM_PhaseKing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> members;
  std::map<NodeId, std::uint64_t> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    members.emplace_back(i);
    inputs[members.back()] = i % 2;
  }
  Metrics metrics;
  Rng rng{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agreement::run_phase_king(members, {}, inputs,
                                  agreement::ByzBehavior::kSilent, metrics,
                                  rng)
            .rounds);
  }
}
BENCHMARK(BM_PhaseKing)->Arg(7)->Arg(16)->Arg(31);

struct SystemFixture {
  core::NowParams params;
  Metrics metrics;
  core::NowSystem system;
  explicit SystemFixture(core::WalkMode mode)
      : params([mode] {
          core::NowParams p;
          p.max_size = 1 << 12;
          p.walk_mode = mode;
          return p;
        }()),
        system(params, metrics, 9) {
    system.initialize(800, 120, core::InitTopology::kModeledSparse);
  }
};

void BM_RandClSimulated(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSimulate};
  const ClusterId start = fx.system.state().clusters.begin()->first;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.system.rand_cl_from(start).cluster);
  }
}
BENCHMARK(BM_RandClSimulated);

void BM_RandClSampled(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSampleExact};
  const ClusterId start = fx.system.state().clusters.begin()->first;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.system.rand_cl_from(start).cluster);
  }
}
BENCHMARK(BM_RandClSampled);

void BM_ExchangeAll(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSampleExact};
  auto it = fx.system.state().clusters.begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.system.exchange_all(it->first).messages);
    ++it;
    if (it == fx.system.state().clusters.end()) {
      it = fx.system.state().clusters.begin();
    }
  }
}
BENCHMARK(BM_ExchangeAll);

void BM_JoinLeaveCycle(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSampleExact};
  Rng rng{10};
  for (auto _ : state) {
    const auto [node, report] = fx.system.join(false);
    benchmark::DoNotOptimize(report.cost.messages);
    fx.system.leave(node);
  }
}
BENCHMARK(BM_JoinLeaveCycle);

}  // namespace
}  // namespace now

BENCHMARK_MAIN();
