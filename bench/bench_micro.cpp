// MICRO — google-benchmark microbenchmarks of the primitives, for profiling
// the simulator itself (wall-clock, not message-cost, which the other
// benches measure).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "agreement/phase_king.hpp"
#include "cluster/rand_num.hpp"
#include "common/thread_pool.hpp"
#include "core/now.hpp"
#include "core/state.hpp"
#include "graph/erdos_renyi.hpp"
#include "graph/random_walk.hpp"
#include "graph/spectral.hpp"
#include "obs/obs.hpp"

namespace now {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng{1};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<graph::Vertex> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  Rng rng{2};
  for (auto _ : state) {
    graph::Graph g;
    graph::generate_erdos_renyi(g, verts, 10.0 / static_cast<double>(n), rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_ErdosRenyi)->Arg(128)->Arg(512)->Arg(2048);

void BM_CtrwWalk(benchmark::State& state) {
  graph::Graph g;
  std::vector<graph::Vertex> verts(200);
  for (std::size_t i = 0; i < verts.size(); ++i) verts[i] = i;
  Rng gen{3};
  graph::generate_erdos_renyi(g, verts, 0.05, gen);
  for (const auto v : g.vertices()) {
    if (g.degree(v) == 0) g.add_edge(v, (v + 1) % 200);
  }
  Rng rng{4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ctrw_walk(g, 0, 25.0, rng).endpoint);
  }
}
BENCHMARK(BM_CtrwWalk);

void BM_SpectralEstimate(benchmark::State& state) {
  graph::Graph g;
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<graph::Vertex> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  Rng gen{5};
  graph::generate_erdos_renyi(g, verts, 12.0 / static_cast<double>(n), gen);
  for (const auto v : g.vertices()) {
    if (g.degree(v) == 0) g.add_edge(v, (v + 1) % n);
  }
  Rng rng{6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::estimate_expansion(g, rng, 100).spectral_gap);
  }
}
BENCHMARK(BM_SpectralEstimate)->Arg(128)->Arg(512);

void BM_RandNumMessageLevel(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < s; ++i) members.emplace_back(i);
  Metrics metrics;
  Rng rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::run_rand_num(members, {}, 1000, cluster::RandNumMode::kFast,
                              cluster::RandNumByz::kFollow, metrics, rng)
            .value);
  }
}
BENCHMARK(BM_RandNumMessageLevel)->Arg(16)->Arg(33);

void BM_PhaseKing(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> members;
  std::map<NodeId, std::uint64_t> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    members.emplace_back(i);
    inputs[members.back()] = i % 2;
  }
  Metrics metrics;
  Rng rng{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agreement::run_phase_king(members, {}, inputs,
                                  agreement::ByzBehavior::kSilent, metrics,
                                  rng)
            .rounds);
  }
}
BENCHMARK(BM_PhaseKing)->Arg(7)->Arg(16)->Arg(31);

struct SystemFixture {
  core::NowParams params;
  Metrics metrics;
  core::NowSystem system;
  explicit SystemFixture(core::WalkMode mode)
      : params([mode] {
          core::NowParams p;
          p.max_size = 1 << 12;
          p.walk_mode = mode;
          return p;
        }()),
        system(params, metrics, 9) {
    system.initialize(800, 120, core::InitTopology::kModeledSparse);
  }
};

void BM_RandClSimulated(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSimulate};
  const ClusterId start = fx.system.state().cluster_ids().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.system.rand_cl_from(start).cluster);
  }
}
BENCHMARK(BM_RandClSimulated);

void BM_RandClSampled(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSampleExact};
  const ClusterId start = fx.system.state().cluster_ids().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.system.rand_cl_from(start).cluster);
  }
}
BENCHMARK(BM_RandClSampled);

void BM_ExchangeAll(benchmark::State& state) {
  SystemFixture fx{core::WalkMode::kSampleExact};
  std::size_t cursor = 0;
  for (auto _ : state) {
    const auto ids = fx.system.state().cluster_ids();
    benchmark::DoNotOptimize(
        fx.system.exchange_all(ids[cursor++ % ids.size()]).messages);
  }
}
BENCHMARK(BM_ExchangeAll);

/// Join/leave churn at size n — the hot maintenance path whose per-op
/// wall-clock cost gates how large a deployment the simulator can step.
///
/// The second argument is the --shards axis: shards = 1 drives the legacy
/// sequential engine one operation at a time (the pre-sharding trajectory
/// baseline); shards >= 2 drives batches of kShardedBatch joins + leaves
/// through the sharded plan/commit engine. Time is reported per
/// join + leave pair in both modes so the BENCH_micro.json rows stay
/// comparable across engines and PRs.
void BM_JoinLeaveCycle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kShardedBatch = 32;
  core::NowParams params;
  params.max_size = std::max<std::uint64_t>(std::uint64_t{1} << 12,
                                            std::bit_ceil(2 * n));
  params.walk_mode = core::WalkMode::kSampleExact;
  switch (state.range(2)) {
    case 1: params.resolve_mode = core::ResolveMode::kSequential; break;
    case 2: params.resolve_mode = core::ResolveMode::kOptimistic; break;
    default: break;
  }
  Metrics metrics;
  core::NowSystem system{params, metrics, 9};
  system.initialize(n, n * 15 / 100, core::InitTopology::kModeledSparse);
  if (shards <= 1) {
    for (auto _ : state) {
      const auto start = std::chrono::steady_clock::now();
      const auto [node, report] = system.join(false);
      benchmark::DoNotOptimize(report.cost.messages);
      system.leave(node);
      state.SetIterationTime(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    }
    return;
  }
  double commit_ns = 0;
  double plan_ns = 0;
  double resolve_ns = 0;
  double stage1_ns = 0;
  double stage2_ns = 0;
  double wave_count = 0;
  std::size_t batches = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto [joined, up] =
        system.step_parallel(kShardedBatch, {}, false, shards);
    benchmark::DoNotOptimize(up.cost.messages);
    const auto [unused, down] = system.step_parallel(0, joined, false, shards);
    benchmark::DoNotOptimize(down.cost.messages);
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        static_cast<double>(kShardedBatch));
    commit_ns += static_cast<double>(up.commit_ns + down.commit_ns);
    plan_ns += static_cast<double>(up.plan_ns + down.plan_ns);
    resolve_ns += static_cast<double>(up.resolve_ns + down.resolve_ns);
    stage1_ns += static_cast<double>(up.stage1_ns + down.stage1_ns);
    stage2_ns += static_cast<double>(up.stage2_ns + down.stage2_ns);
    wave_count += static_cast<double>(up.wave_count + down.wave_count);
    batches += 2;
  }
  // Phase scalar rows of BENCH_micro.json: mean wall-ns per batch of the
  // plan phase and the commit phase (with the commit further broken into
  // resolve / stage-1 apply / stage-2 merge), plus mean exchange waves —
  // the trajectory that attributes whole-step movement to the phase that
  // caused it.
  if (batches > 0) {
    const auto per_batch = [batches](double total) {
      return total / static_cast<double>(batches);
    };
    state.counters["commit_ns"] = per_batch(commit_ns);
    state.counters["plan_ns"] = per_batch(plan_ns);
    state.counters["resolve_ns"] = per_batch(resolve_ns);
    state.counters["stage1_ns"] = per_batch(stage1_ns);
    state.counters["stage2_ns"] = per_batch(stage2_ns);
    state.counters["wave_count"] = per_batch(wave_count);
  }
}
BENCHMARK(BM_JoinLeaveCycle)
    ->UseManualTime()
    ->Args({800, 1, 0})
    ->Args({800, 4, 0})
    ->Args({100000, 1, 0})
    ->Args({100000, 4, 0})
    ->Args({100000, 4, 1})
    ->Args({100000, 4, 2})
    ->Args({200000, 1, 0})
    ->Args({200000, 4, 0});

/// BM_JoinLeaveCycle's sharded body with the telemetry layer switched ON
/// (spans recorded, counters incremented) — the obs-overhead guard row.
/// scripts/check_bench.py compares it against BM_JoinLeaveCycle/100000/4/0
/// (same work, telemetry off) and warns when the hooks cost more than the
/// DESIGN.md §13 overhead budget. With NOW_OBS=OFF the two rows measure
/// identical code.
void BM_JoinLeaveCycleObs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kShardedBatch = 32;
  core::NowParams params;
  params.max_size = std::max<std::uint64_t>(std::uint64_t{1} << 12,
                                            std::bit_ceil(2 * n));
  params.walk_mode = core::WalkMode::kSampleExact;
  Metrics metrics;
  core::NowSystem system{params, metrics, 9};
  system.initialize(n, n * 15 / 100, core::InitTopology::kModeledSparse);
  obs::set_enabled(true);
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto [joined, up] =
        system.step_parallel(kShardedBatch, {}, false, shards);
    benchmark::DoNotOptimize(up.cost.messages);
    const auto [unused, down] = system.step_parallel(0, joined, false, shards);
    benchmark::DoNotOptimize(down.cost.messages);
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        static_cast<double>(kShardedBatch));
  }
  obs::set_enabled(false);
  obs::SpanRecorder::instance().reset();
  obs::Registry::instance().reset();
}
BENCHMARK(BM_JoinLeaveCycleObs)->UseManualTime()->Args({100000, 4});

/// The huge-batch tier (DESIGN.md §11): one deployment at n ∈ {1e6, 1e7}
/// stepped with 4096-op batches through the sharded engine — the scale the
/// streaming plan kernels, bulk RNG derivation and epoch-stamped scratch
/// exist for. Time is reported per join + leave pair (comparable with
/// BM_JoinLeaveCycle); the counters add the per-batch phase breakdown and
/// the deployment's memory footprint per node (NowSystem::footprint_bytes,
/// capacities included), so both ns/op and bytes-per-node are gated rows in
/// BENCH_micro.json. CI runs the 1e6 row; nightly runs the full 1e7 row and
/// uploads the phase breakdown.
///
/// Initialization at these sizes is minutes of wall time (~130 µs/node),
/// and Google Benchmark re-invokes the benchmark function several times to
/// calibrate the iteration count — so the initialized deployment is built
/// once per n and reused across invocations. Every iteration is a join
/// batch followed by a leave batch of the same nodes, so the population
/// returns to n and the system stays in steady state.
struct HugeDeployment {
  Metrics metrics;
  core::NowSystem system;
  explicit HugeDeployment(std::size_t n) : system{params_for(n), metrics, 9} {
    system.initialize(n, n * 15 / 100, core::InitTopology::kModeledSparse);
  }
  static core::NowParams params_for(std::size_t n) {
    core::NowParams params;
    params.max_size = std::bit_ceil(std::uint64_t{2} * n);
    params.walk_mode = core::WalkMode::kSampleExact;
    return params;
  }
};

HugeDeployment& huge_deployment(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<HugeDeployment>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<HugeDeployment>(n);
  return *slot;
}

void BM_HugeBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBatch = 4096;
  constexpr std::size_t kShards = 8;
  core::NowSystem& system = huge_deployment(n).system;
  double commit_ns = 0;
  double plan_ns = 0;
  double resolve_ns = 0;
  double stage1_ns = 0;
  double stage2_ns = 0;
  std::size_t batches = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto [joined, up] = system.step_parallel(kBatch, {}, false, kShards);
    benchmark::DoNotOptimize(up.cost.messages);
    const auto [unused, down] = system.step_parallel(0, joined, false, kShards);
    benchmark::DoNotOptimize(down.cost.messages);
    state.SetIterationTime(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(kBatch));
    commit_ns += static_cast<double>(up.commit_ns + down.commit_ns);
    plan_ns += static_cast<double>(up.plan_ns + down.plan_ns);
    resolve_ns += static_cast<double>(up.resolve_ns + down.resolve_ns);
    stage1_ns += static_cast<double>(up.stage1_ns + down.stage1_ns);
    stage2_ns += static_cast<double>(up.stage2_ns + down.stage2_ns);
    batches += 2;
  }
  if (batches > 0) {
    const auto per_batch = [batches](double total) {
      return total / static_cast<double>(batches);
    };
    state.counters["commit_ns"] = per_batch(commit_ns);
    state.counters["plan_ns"] = per_batch(plan_ns);
    state.counters["resolve_ns"] = per_batch(resolve_ns);
    state.counters["stage1_ns"] = per_batch(stage1_ns);
    state.counters["stage2_ns"] = per_batch(stage2_ns);
  }
  state.counters["bytes_per_node"] =
      static_cast<double>(system.footprint_bytes()) /
      static_cast<double>(system.num_nodes());
}
BENCHMARK(BM_HugeBatch)
    ->UseManualTime()
    ->Arg(1000000)
    ->Arg(10000000);

/// The stage-1 member-edit hot loop in isolation: apply_member_edits over
/// every cluster of an n-node partition — netting, one-pass merge, in-place
/// slab try_assign — with slots block-partitioned over `shards` workers,
/// exactly the shape of the batch commit's stage 1. Edits alternate between
/// a forward sweep (swap each cluster's 8 lowest members for 8 fresh ids)
/// and its inverse, so the state is steady, deltas net to zero, and no
/// sweep ever spills. Time is reported per cluster-edit application; this
/// is the microbenchmark BM_JoinLeaveCycle's slab win is attributed with.
void BM_MemberEditApply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kClusterSize = 64;
  constexpr std::size_t kEditsPerCluster = 8;
  const std::size_t k = n / kClusterSize;
  over::OverParams over;
  over.max_size = std::bit_ceil(std::uint64_t{2} * n);
  core::NowState st{over};
  std::vector<std::size_t> slots;
  slots.reserve(k);
  for (std::size_t ci = 0; ci < k; ++ci) {
    const ClusterId c = st.create_cluster();
    slots.push_back(st.slot_index(c));
    for (std::size_t i = 0; i < kClusterSize; ++i) {
      const NodeId node{ci * kClusterSize + i};
      st.register_node(node);
      st.add_member(c, node);
    }
  }
  std::vector<std::vector<core::NowState::MemberEdit>> forward(k);
  std::vector<std::vector<core::NowState::MemberEdit>> backward(k);
  for (std::size_t ci = 0; ci < k; ++ci) {
    for (std::size_t j = 0; j < kEditsPerCluster; ++j) {
      const NodeId old_id{ci * kClusterSize + j};
      const NodeId new_id{n + ci * kEditsPerCluster + j};
      forward[ci].push_back({old_id, /*add=*/false});
      forward[ci].push_back({new_id, /*add=*/true});
      backward[ci].push_back({new_id, /*add=*/false});
      backward[ci].push_back({old_id, /*add=*/true});
    }
  }
  ThreadPool pool{shards > 1 ? shards - 1 : 0};
  std::vector<core::NowState::EditScratch> scratch(shards);
  const auto sweep =
      [&](const std::vector<std::vector<core::NowState::MemberEdit>>& edits) {
        pool.parallel_for(shards, [&](std::size_t s) {
          const std::size_t begin = s * k / shards;
          const std::size_t end = (s + 1) * k / shards;
          for (std::size_t ci = begin; ci < end; ++ci) {
            benchmark::DoNotOptimize(
                st.apply_member_edits(slots[ci], edits[ci], scratch[s]));
          }
        });
      };
  double total_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    sweep(forward);
    sweep(backward);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    state.SetIterationTime(elapsed);
    total_seconds += elapsed;
  }
  for (const auto& sc : scratch) {
    if (!sc.spills.empty()) {
      state.SkipWithError("steady-state sweep spilled unexpectedly");
    }
  }
  // Per-cluster-edit cost: each iteration applies one forward and one
  // backward edit list to every cluster.
  state.counters["edit_ns"] = benchmark::Counter(
      total_seconds * 1e9 /
      (static_cast<double>(state.iterations()) * static_cast<double>(2 * k)));
}
BENCHMARK(BM_MemberEditApply)
    ->UseManualTime()
    ->Args({100000, 1})
    ->Args({100000, 4})
    ->Args({1000000, 1})
    ->Args({1000000, 4});

}  // namespace
}  // namespace now

// Custom main: in addition to the console table, always write the results to
// BENCH_micro.json (google-benchmark's JSON schema: wall-ns per op lives in
// real_time) so the wall-clock trajectory of the hot paths is machine-diffable
// across PRs without remembering --benchmark_out flags. An explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  const auto has_flag = [&args](std::string_view prefix) {
    return std::any_of(args.begin(), args.end(), [prefix](const char* arg) {
      return std::string_view(arg).starts_with(prefix);
    });
  };
  if (!has_flag("--benchmark_out=")) {
    args.push_back(out_flag.data());
    if (!has_flag("--benchmark_out_format=")) {
      args.push_back(format_flag.data());
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
