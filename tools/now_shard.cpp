// now_shard — multi-process sharded runtime driver (DESIGN.md §12).
//
//   now_shard compare [--shards=N] [--steps=T] [--ops=K] [--n0=N] [--seed=S]
//                     [--drop=P] [--dup=P] [--delay=P] [--reorder=P]
//                     [--partition=P] [--partition-rounds=R]
//                     [--fault-seed=F] [--crash-shard=S --crash-at=T]
//                     [--ckpt-dir=DIR] [--ckpt-every=K] [--bench]
//                     [--obs-dir=DIR]
//       Runs the sharded protocol three ways — single-process fault-free
//       (the reference), single-process under the fault plan, and
//       multi-process over local sockets (one worker process per shard,
//       same fault plan, optionally crashing one worker which is then
//       respawned and recovers from its checkpoint) — and verifies all
//       three produce the IDENTICAL run digest. With --bench, writes
//       BENCH_multiproc.json for the bench-regression gate. Exit 0 iff
//       every deployment reproduced the reference digest.
//
//   now_shard worker --port=P --shard=S [same spec/fault flags]
//                    [--crash-at=T]
//       Internal: one worker process of a compare run. Connects to the
//       hub, resumes from a checkpoint when one exists, and serves its
//       shard until the coordinator ends the run.
//
//   With --obs-dir=DIR every process of the multi-process leg records
//   runtime telemetry (src/obs/) and writes DIR/OBS_<label>_pid<pid>.json
//   on orderly exit (a crashed worker writes nothing; its respawn writes
//   under the new pid). `now_obs merge DIR` folds the files into one
//   Perfetto-loadable trace. Telemetry never feeds state: digests are
//   bit-identical with or without --obs-dir (and with NOW_OBS=OFF).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_common.hpp"
#include "net/faulty_transport.hpp"
#include "net/socket_transport.hpp"
#include "obs/obs.hpp"
#include "sim/shard_runtime.hpp"

namespace {

using now::net::FaultPlan;
using now::net::FaultyTransport;
using now::net::SocketHub;
using now::net::SocketSpoke;
using now::net::Transport;
using now::sim::ShardRunResult;
using now::sim::ShardSpec;

struct Options {
  ShardSpec spec;
  FaultPlan faults;
  std::uint64_t fault_seed = 0xFA17ULL;
  std::size_t crash_shard = SIZE_MAX;  // SIZE_MAX = no crash
  std::size_t crash_at = 0;
  bool bench = false;
  std::string obs_dir;  // empty = telemetry off
  // worker mode
  std::uint16_t port = 0;
  std::size_t shard = 0;
};

/// Path of this process's telemetry file; label names the process row in
/// the merged Perfetto view.
std::string obs_path(const std::string& dir, const std::string& label) {
  return dir + "/OBS_" + label + "_pid" + std::to_string(::getpid()) +
         ".json";
}

template <typename T>
bool parse_flag(std::string_view arg, std::string_view prefix, T& out) {
  if (arg.substr(0, prefix.size()) != prefix) return false;
  const std::string value(arg.substr(prefix.size()));
  if constexpr (std::is_floating_point_v<T>) {
    out = static_cast<T>(std::stod(value));
  } else {
    out = static_cast<T>(std::stoull(value));
  }
  return true;
}

bool parse_str_flag(std::string_view arg, std::string_view prefix,
                    std::string& out) {
  if (arg.substr(0, prefix.size()) != prefix) return false;
  out = std::string(arg.substr(prefix.size()));
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (parse_flag(arg, "--shards=", o.spec.num_shards)) continue;
    if (parse_flag(arg, "--steps=", o.spec.steps)) continue;
    if (parse_flag(arg, "--ops=", o.spec.batch_ops)) continue;
    if (parse_flag(arg, "--n0=", o.spec.n0)) continue;
    if (parse_flag(arg, "--seed=", o.spec.seed)) continue;
    if (parse_flag(arg, "--byz=", o.spec.byz_fraction)) continue;
    if (parse_flag(arg, "--ckpt-every=", o.spec.checkpoint_every)) continue;
    if (parse_str_flag(arg, "--ckpt-dir=", o.spec.checkpoint_dir)) continue;
    if (parse_str_flag(arg, "--obs-dir=", o.obs_dir)) continue;
    if (parse_flag(arg, "--round-cap=", o.spec.round_cap)) continue;
    if (parse_flag(arg, "--drop=", o.faults.drop)) continue;
    if (parse_flag(arg, "--dup=", o.faults.duplicate)) continue;
    if (parse_flag(arg, "--delay=", o.faults.delay)) continue;
    if (parse_flag(arg, "--reorder=", o.faults.reorder)) continue;
    if (parse_flag(arg, "--partition=", o.faults.partition)) continue;
    if (parse_flag(arg, "--partition-rounds=", o.faults.partition_rounds)) {
      continue;
    }
    if (parse_flag(arg, "--fault-seed=", o.fault_seed)) continue;
    if (parse_flag(arg, "--crash-shard=", o.crash_shard)) continue;
    if (parse_flag(arg, "--crash-at=", o.crash_at)) continue;
    if (parse_flag(arg, "--port=", o.port)) continue;
    if (parse_flag(arg, "--shard=", o.shard)) continue;
    if (arg == "--bench") {
      o.bench = true;
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n";
    std::exit(2);
  }
  return o;
}

/// Command line for one worker process, reproducing the spec and faults.
std::vector<std::string> worker_args(const Options& o, std::uint16_t port,
                                     std::size_t shard, bool with_crash) {
  std::vector<std::string> args = {
      "/proc/self/exe",
      "worker",
      "--port=" + std::to_string(port),
      "--shard=" + std::to_string(shard),
      "--shards=" + std::to_string(o.spec.num_shards),
      "--steps=" + std::to_string(o.spec.steps),
      "--ops=" + std::to_string(o.spec.batch_ops),
      "--n0=" + std::to_string(o.spec.n0),
      "--seed=" + std::to_string(o.spec.seed),
      "--byz=" + std::to_string(o.spec.byz_fraction),
      "--round-cap=" + std::to_string(o.spec.round_cap),
      "--drop=" + std::to_string(o.faults.drop),
      "--dup=" + std::to_string(o.faults.duplicate),
      "--delay=" + std::to_string(o.faults.delay),
      "--reorder=" + std::to_string(o.faults.reorder),
      "--partition=" + std::to_string(o.faults.partition),
      "--partition-rounds=" + std::to_string(o.faults.partition_rounds),
      "--fault-seed=" + std::to_string(o.fault_seed),
  };
  if (!o.spec.checkpoint_dir.empty()) {
    args.push_back("--ckpt-dir=" + o.spec.checkpoint_dir);
    args.push_back("--ckpt-every=" + std::to_string(o.spec.checkpoint_every));
  }
  if (!o.obs_dir.empty()) {
    args.push_back("--obs-dir=" + o.obs_dir);
  }
  if (with_crash && o.crash_shard == shard && o.crash_at > 0) {
    args.push_back("--crash-at=" + std::to_string(o.crash_at));
  }
  return args;
}

pid_t spawn_worker(const Options& o, std::uint16_t port, std::size_t shard,
                   bool with_crash) {
  const auto args = worker_args(o, port, shard, with_crash);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "fork failed\n";
    std::exit(1);
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

int run_worker_mode(const Options& o) {
  try {
    if (!o.obs_dir.empty()) now::obs::set_enabled(true);
    auto spoke = SocketSpoke::connect(o.port, o.shard);
    std::unique_ptr<FaultyTransport> faulty;
    Transport* transport = spoke.get();
    if (o.faults.any()) {
      faulty = std::make_unique<FaultyTransport>(*spoke, o.faults,
                                                 o.fault_seed);
      transport = faulty.get();
    }
    now::sim::run_worker(o.spec, o.shard, *transport,
                         o.crash_at > 0 ? o.crash_at : 0);
    if (!o.obs_dir.empty()) {
      const std::string label = "shard" + std::to_string(o.shard);
      now::obs::write_obs_file(obs_path(o.obs_dir, label), label);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "worker " << o.shard << ": " << e.what() << "\n";
    return 1;
  }
}

/// The multi-process deployment: hub + one forked worker per shard, with
/// crash respawn. Returns the merged result.
ShardRunResult run_multi_process(const Options& o, std::size_t* respawns) {
  auto hub = SocketHub::listen(o.spec.num_shards);
  std::map<std::size_t, pid_t> worker_pid;
  for (std::size_t s = 0; s < o.spec.num_shards; ++s) {
    worker_pid[s] = spawn_worker(o, hub->port(), s, /*with_crash=*/true);
  }
  hub->accept_initial();

  std::unique_ptr<FaultyTransport> faulty;
  Transport* transport = hub.get();
  if (o.faults.any()) {
    faulty =
        std::make_unique<FaultyTransport>(*hub, o.faults, o.fault_seed);
    transport = faulty.get();
  }

  const auto between_rounds = [&](bool finished) {
    for (const std::uint64_t dead : hub->drain_dead_processes()) {
      const auto shard = static_cast<std::size_t>(dead);
      int status = 0;
      if (worker_pid.count(shard) != 0) {
        (void)::waitpid(worker_pid[shard], &status, 0);
      }
      if (finished) continue;  // orderly end-of-run exits: nothing to do
      ++*respawns;
      // Respawn WITHOUT the crash flag: the replacement must recover from
      // its checkpoint and finish the run.
      worker_pid[shard] =
          spawn_worker(o, hub->port(), shard, /*with_crash=*/false);
    }
  };

  const ShardRunResult result =
      now::sim::run_hub(o.spec, *transport, *hub, between_rounds);

  for (auto& [shard, pid] : worker_pid) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "worker for shard " << shard
                << " exited abnormally (status " << status << ")\n";
    }
  }
  return result;
}

void print_result(const std::string& label, const ShardRunResult& r) {
  std::cout << "  " << label << ": digest=" << std::hex << r.run_digest
            << std::dec << " steps=" << r.steps_completed
            << " rounds=" << r.engine_rounds
            << " nodes=" << r.final_stats.num_nodes
            << " clusters=" << r.final_stats.num_clusters
            << " messages=" << r.final_stats.messages << "\n";
}

int run_compare_mode(Options o) {
  // Crash recovery needs checkpoints: default them on when a crash is
  // requested without explicit checkpoint flags.
  const bool crash = o.crash_shard != SIZE_MAX && o.crash_at > 0;
  if (crash && o.spec.checkpoint_dir.empty()) {
    o.spec.checkpoint_dir = "now_shard_ckpt";
    if (o.spec.checkpoint_every == 0) o.spec.checkpoint_every = 2;
  }
  if (!o.spec.checkpoint_dir.empty()) {
    std::filesystem::remove_all(o.spec.checkpoint_dir);
    std::filesystem::create_directories(o.spec.checkpoint_dir);
  }

  // Reference: single process, fault free, no checkpoints.
  ShardSpec reference_spec = o.spec;
  reference_spec.checkpoint_every = 0;
  reference_spec.checkpoint_dir.clear();
  const ShardRunResult reference =
      now::sim::run_single_process(reference_spec);
  print_result("single-process           ", reference);

  // Single process under the fault plan: the digest chain must be immune
  // to message-level faults (the protocol retries; the state trajectory is
  // untouched).
  bool ok = true;
  ShardRunResult faulted = reference;
  if (o.faults.any()) {
    faulted = now::sim::run_single_process(reference_spec, &o.faults,
                                           o.fault_seed);
    print_result("single-process + faults  ", faulted);
    ok = ok && faulted.run_digest == reference.run_digest;
  }

  // Multi process over sockets, same fault plan, optional crash + respawn.
  // Telemetry covers exactly this leg in the hub process (the workers
  // record their whole lifetime), so the hub's trace is the coordinator's
  // view of the socket run.
  std::size_t respawns = 0;
  if (!o.obs_dir.empty()) {
    std::filesystem::create_directories(o.obs_dir);
    now::obs::set_enabled(true);
  }
  const ShardRunResult multi = run_multi_process(o, &respawns);
  if (!o.obs_dir.empty()) {
    now::obs::set_enabled(false);
    now::obs::write_obs_file(obs_path(o.obs_dir, "hub"), "hub");
  }
  print_result("multi-process            ", multi);
  if (crash) {
    std::cout << "  crash: shard " << o.crash_shard << " after step "
              << o.crash_at << ", respawns=" << respawns << "\n";
  }
  ok = ok && multi.run_digest == reference.run_digest;
  ok = ok && multi.steps_completed == o.spec.steps;

  std::cout << (ok ? "REPRODUCED" : "DIVERGED")
            << ": multi-process run digest "
            << (ok ? "matches" : "does NOT match")
            << " the single-process reference\n";

  if (o.bench) {
    now::bench::JsonEmitter json("multiproc");
    const auto n = static_cast<std::uint64_t>(o.spec.num_shards);
    // u64 digests are exact in doubles only up to 2^53: split lo/hi 32.
    const auto lo = [](std::uint64_t v) {
      return static_cast<double>(v & 0xFFFFFFFFULL);
    };
    const auto hi = [](std::uint64_t v) {
      return static_cast<double>(v >> 32);
    };
    json.add_scalar("single_digest_lo", n, lo(reference.run_digest));
    json.add_scalar("single_digest_hi", n, hi(reference.run_digest));
    json.add_scalar("faulty_digest_lo", n, lo(faulted.run_digest));
    json.add_scalar("faulty_digest_hi", n, hi(faulted.run_digest));
    json.add_scalar("multi_digest_lo", n, lo(multi.run_digest));
    json.add_scalar("multi_digest_hi", n, hi(multi.run_digest));
    json.add_scalar("respawns", n, static_cast<double>(respawns));
    json.add_scalar("verdict", n, ok ? 1.0 : 0.0);
    json.add("merged", multi.final_stats.num_nodes,
             static_cast<double>(multi.final_stats.messages),
             static_cast<double>(multi.final_stats.rounds), 0.0);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: now_shard compare|worker [flags]\n";
    return 2;
  }
  const std::string_view mode = argv[1];
  const Options o = parse(argc, argv);
  if (mode == "worker") return run_worker_mode(o);
  if (mode == "compare") return run_compare_mode(o);
  std::cerr << "unknown mode: " << mode << "\n";
  return 2;
}
