// now_obs — merge per-process telemetry files into one Perfetto trace.
//
//   now_obs merge <dir | OBS_*.json...> [--out=PATH] [--summary=PATH]
//       Reads every OBS_*.json (written by processes run with telemetry
//       on, e.g. `now_shard ... --obs-dir=DIR`), aligns their steady-clock
//       timelines via the per-file wall-clock anchor (epoch_wall_us),
//       correlates shard files by the (round, step) keys their spans
//       carry, and writes:
//         --out      one Chrome/Perfetto trace_event JSON (default
//                    obs_trace.json) loadable in ui.perfetto.dev
//         --summary  a text report (default obs_summary.txt): top
//                    counters, histogram percentiles, the fault-event
//                    timeline, and a per-(shard, step) correlation table.
//       The summary is also printed to stdout.
//
//   now_obs summary <dir | OBS_*.json...>
//       The text report only; writes no files.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace {

namespace json = now::obs::json;

struct ObsFile {
  std::string path;
  std::string label;
  std::uint64_t pid = 0;
  std::uint64_t epoch_wall_us = 0;
  json::ValuePtr doc;
};

/// Expands arguments into OBS_*.json paths (directories are scanned).
std::vector<std::string> expand_inputs(int argc, char** argv, int first) {
  std::vector<std::string> paths;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) continue;  // flags handled elsewhere
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("OBS_", 0) == 0 && entry.path().extension() == ".json") {
          paths.push_back(entry.path().string());
        }
      }
    } else {
      paths.push_back(std::string(arg));
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

ObsFile load_obs_file(const std::string& path) {
  ObsFile f;
  f.path = path;
  f.doc = json::parse_file(path);
  const json::Value* meta = f.doc->get("nowObs");
  if (meta == nullptr) {
    throw json::ParseError(path + ": missing nowObs metadata");
  }
  if (const auto* label = meta->get("label")) f.label = label->as_string();
  if (const auto* pid = meta->get("pid")) f.pid = pid->as_u64();
  if (const auto* epoch = meta->get("epoch_wall_us")) {
    f.epoch_wall_us = epoch->as_u64();
  }
  return f;
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

/// Re-serializes a parsed value, shifting only the top-level "ts" of event
/// objects at the call site (handled by the caller rewriting that member).
void write_value(std::ostream& out, const json::Value& v) {
  switch (v.kind) {
    case json::Kind::kNull:
      out << "null";
      break;
    case json::Kind::kBool:
      out << (v.boolean ? "true" : "false");
      break;
    case json::Kind::kNumber:
      if (!v.raw.empty()) {
        out << v.raw;
      } else {
        out << v.number;
      }
      break;
    case json::Kind::kString:
      write_json_string(out, v.string);
      break;
    case json::Kind::kArray: {
      out << '[';
      bool first = true;
      for (const auto& item : v.array) {
        if (!first) out << ',';
        first = false;
        write_value(out, *item);
      }
      out << ']';
      break;
    }
    case json::Kind::kObject: {
      out << '{';
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) out << ',';
        first = false;
        write_json_string(out, key);
        out << ':';
        write_value(out, *value);
      }
      out << '}';
      break;
    }
  }
}

const std::vector<json::ValuePtr>& trace_events(const ObsFile& f) {
  static const std::vector<json::ValuePtr> kEmpty;
  const json::Value* events = f.doc->get("traceEvents");
  return events != nullptr && events->is_array() ? events->array : kEmpty;
}

/// Writes the merged Perfetto trace: every file's events with ts shifted
/// onto the common wall-clock timeline (earliest process = 0).
void write_merged_trace(std::ostream& out, const std::vector<ObsFile>& files,
                        std::uint64_t min_epoch_us) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const ObsFile& f : files) {
    const std::uint64_t shift_us = f.epoch_wall_us - min_epoch_us;
    for (const auto& event : trace_events(f)) {
      if (!event->is_object()) continue;
      if (!first) out << ",\n";
      first = false;
      out << '{';
      bool first_member = true;
      for (const auto& [key, value] : event->object) {
        if (!first_member) out << ',';
        first_member = false;
        write_json_string(out, key);
        out << ':';
        if (key == "ts") {
          char buf[64];
          std::snprintf(buf, sizeof buf, "%.3f",
                        value->as_number() +
                            static_cast<double>(shift_us));
          out << buf;
        } else {
          write_value(out, *value);
        }
      }
      out << '}';
    }
  }
  out << "]}\n";
}

// ---------------------------------------------------------------- summary

struct Histogram {
  std::map<std::uint64_t, std::uint64_t> buckets;  // bucket index -> count
};

/// Value at quantile q from log2 buckets (upper bound of the bucket the
/// quantile lands in; bucket b covers [2^(b-1), 2^b - 1], bucket 0 is 0).
std::uint64_t bucket_quantile(const Histogram& h, double q) {
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : h.buckets) total += count;
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (const auto& [bucket, count] : h.buckets) {
    seen += count;
    if (seen > rank) {
      return bucket == 0 ? 0
                         : (bucket >= 64 ? UINT64_MAX
                                         : (1ULL << bucket) - 1);
    }
  }
  return 0;
}

std::string format_fault(const std::string& name, std::uint64_t a0,
                         std::uint64_t a1) {
  // record() packs arg0 = (send round << 32) | until_round and
  // arg1 = (from << 32) | to.
  std::ostringstream out;
  out << "round " << (a0 >> 32) << "  " << name << "  " << (a1 >> 32)
      << " -> " << (a1 & 0xFFFFFFFFULL);
  if ((a0 & 0xFFFFFFFFULL) != 0) out << "  until round " << (a0 & 0xFFFFFFFFULL);
  return out.str();
}

void write_summary(std::ostream& out, const std::vector<ObsFile>& files,
                   std::uint64_t min_epoch_us) {
  out << "== now_obs summary: " << files.size() << " process file(s) ==\n";
  for (const ObsFile& f : files) {
    out << "  " << f.label << " (pid " << f.pid << ", +"
        << (f.epoch_wall_us - min_epoch_us) / 1000 << " ms): " << f.path
        << "\n";
  }

  // ---- counters and histograms, merged across processes by name.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Histogram> histograms;
  for (const ObsFile& f : files) {
    const json::Value* registry = f.doc->get("nowObs")->get("registry");
    if (registry == nullptr) continue;
    if (const auto* list = registry->get("counters")) {
      for (const auto& c : list->array) {
        counters[c->get("name")->as_string()] += c->get("value")->as_u64();
      }
    }
    if (const auto* list = registry->get("histograms")) {
      for (const auto& h : list->array) {
        Histogram& merged = histograms[h->get("name")->as_string()];
        for (const auto& pair : h->get("buckets")->array) {
          merged.buckets[pair->array[0]->as_u64()] +=
              pair->array[1]->as_u64();
        }
      }
    }
  }
  out << "\n-- top counters --\n";
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [name, value] : counters) ranked.emplace_back(value, name);
  std::sort(ranked.rbegin(), ranked.rend());
  const std::size_t top = std::min<std::size_t>(ranked.size(), 20);
  for (std::size_t i = 0; i < top; ++i) {
    out << "  " << ranked[i].second << " = " << ranked[i].first << "\n";
  }
  if (!histograms.empty()) {
    out << "\n-- histograms (log2 buckets; quantiles are bucket upper "
           "bounds) --\n";
    for (const auto& [name, h] : histograms) {
      std::uint64_t total = 0;
      for (const auto& [bucket, count] : h.buckets) total += count;
      out << "  " << name << ": n=" << total
          << " p50<=" << bucket_quantile(h, 0.50)
          << " p90<=" << bucket_quantile(h, 0.90)
          << " p99<=" << bucket_quantile(h, 0.99) << "\n";
    }
  }

  // ---- event-derived views: fault timeline + (shard, step) table.
  struct StepCell {
    double dur_us = 0;
    std::string label;
  };
  // (step, shard) -> per-process span durations; fault instants by round.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<StepCell>>
      steps;
  std::vector<std::pair<std::uint64_t, std::string>> faults;  // (round, line)
  std::vector<std::string> lifecycle;
  for (const ObsFile& f : files) {
    for (const auto& event : trace_events(f)) {
      const json::Value* name = event->get("name");
      const json::Value* cat = event->get("cat");
      if (name == nullptr || cat == nullptr) continue;
      const json::Value* args = event->get("args");
      const std::uint64_t a0 =
          args != nullptr && args->get("a0") ? args->get("a0")->as_u64() : 0;
      const std::uint64_t a1 =
          args != nullptr && args->get("a1") ? args->get("a1")->as_u64() : 0;
      if (cat->as_string() == "fault") {
        faults.emplace_back(a0 >> 32, format_fault(name->as_string(), a0, a1));
      } else if (name->as_string() == "shard.step") {
        StepCell cell;
        if (const auto* dur = event->get("dur")) cell.dur_us = dur->as_number();
        cell.label = f.label;
        steps[{a1, a0}].push_back(cell);  // key = (step, shard)
      } else if (name->as_string() == "shard.respawn" ||
                 name->as_string() == "ckpt.restore") {
        std::ostringstream line;
        line << "  " << f.label << ": " << name->as_string() << " shard "
             << a0;
        if (name->as_string() == "shard.respawn") {
          line << " resumed at step " << a1;
        }
        lifecycle.push_back(line.str());
      }
    }
  }
  if (!faults.empty()) {
    std::stable_sort(faults.begin(), faults.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    out << "\n-- fault timeline (" << faults.size() << " events) --\n";
    for (const auto& [round, line] : faults) out << "  " << line << "\n";
  }
  if (!lifecycle.empty()) {
    out << "\n-- crash recovery --\n";
    for (const std::string& line : lifecycle) out << line << "\n";
  }
  if (!steps.empty()) {
    out << "\n-- per-(shard, step) spans (correlation key: args a0=shard, "
           "a1=step) --\n";
    for (const auto& [key, cells] : steps) {
      out << "  step " << key.first << " shard " << key.second << ":";
      for (const StepCell& cell : cells) {
        char buf[64];
        std::snprintf(buf, sizeof buf, " %s=%.0fus", cell.label.c_str(),
                      cell.dur_us);
        out << buf;
      }
      out << "\n";
    }
  }
}

int run(int argc, char** argv) {
  const std::string_view mode = argc >= 2 ? argv[1] : "";
  if (mode != "merge" && mode != "summary") {
    std::cerr << "usage: now_obs merge|summary <dir|OBS_*.json...> "
                 "[--out=PATH] [--summary=PATH]\n";
    return 2;
  }
  std::string out_path = "obs_trace.json";
  std::string summary_path = "obs_summary.txt";
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) out_path = std::string(arg.substr(6));
    if (arg.rfind("--summary=", 0) == 0) {
      summary_path = std::string(arg.substr(10));
    }
  }

  const auto paths = expand_inputs(argc, argv, 2);
  if (paths.empty()) {
    std::cerr << "now_obs: no OBS_*.json inputs found\n";
    return 1;
  }
  std::vector<ObsFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) files.push_back(load_obs_file(path));
  std::uint64_t min_epoch_us = UINT64_MAX;
  for (const ObsFile& f : files) {
    min_epoch_us = std::min(min_epoch_us, f.epoch_wall_us);
  }

  if (mode == "merge") {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "now_obs: cannot write " << out_path << "\n";
      return 1;
    }
    write_merged_trace(out, files, min_epoch_us);
    std::cout << "wrote " << out_path << "\n";
    std::ofstream summary(summary_path, std::ios::binary | std::ios::trunc);
    if (!summary) {
      std::cerr << "now_obs: cannot write " << summary_path << "\n";
      return 1;
    }
    write_summary(summary, files, min_epoch_us);
    std::cout << "wrote " << summary_path << "\n";
  }
  write_summary(std::cout, files, min_epoch_us);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "now_obs: " << e.what() << "\n";
    return 1;
  }
}
