// now_trace — CLI driver for the scenario trace subsystem (DESIGN.md §8,
// §10).
//
//   now_trace gen --out=DIR [--count=N] [--seed=S] [--min-steps=A]
//                 [--max-steps=B]
//       Generates a seeded scenario corpus: N randomized scenarios within
//       the adversary budget, one replayable trace each, failing ones
//       shrunk to minimal reproducers. Prints a manifest line per case.
//
//   now_trace replay FILE...
//       Replays each trace against a fresh deployment and verifies every
//       recorded invariant sample and the end-of-run summary bit-exactly.
//       Exit 1 on the first divergence — the CI corpus job's gate.
//
//   now_trace info FILE...
//       Prints each trace's header summary without replaying.
//
//   now_trace bisect FILE...
//       Localizes a divergence with O(log steps) embedded-checkpoint
//       restores (v2 traces). Prints the fork interval; exit 3 when a
//       divergence was found, 0 when the trace replays clean.
//
//   now_trace mutate IN OUT --kind={event|sample|summary} [--pick=N]
//       Corrupts exactly one recorded fact and re-stamps the checksum —
//       the verifier mutation-testing harness.
//
//   now_trace fleet [--seed=S] [--budget=STEPS] [--steps-per-run=N]
//                   [--report=FILE] [--min-cells=N] [--shrink]
//                   [--out=DIR]
//       Runs the coverage-guided fleet and writes the JSON coverage
//       report (schema in EXPERIMENTS.md). With --out, records each
//       (shrunk) failing reproducer as a trace + manifest into DIR —
//       the staging directory `gen_corpus.py --promote` consumes. Exit
//       1 when fewer than --min-cells distinct config cells were
//       reached.
//
//   now_trace recheck DIR
//       Replays every trace named by DIR/MANIFEST.tsv and verifies that
//       each promoted failing reproducer STILL fails with the same
//       failure kind — the nightly reproducer-rot gate.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/snapshot.hpp"
#include "sim/corpus.hpp"
#include "sim/trace.hpp"

namespace {

using now::sim::CorpusAxes;
using now::sim::FailureKind;
using now::sim::TraceReplayResult;

std::uint64_t arg_value(std::string_view arg, std::string_view prefix,
                        std::uint64_t fallback) {
  if (!arg.starts_with(prefix)) return fallback;
  return static_cast<std::uint64_t>(
      std::strtoull(arg.substr(prefix.size()).data(), nullptr, 10));
}

int run_gen(const std::vector<std::string>& args) {
  CorpusAxes axes;
  std::string out_dir = "corpus";
  for (const std::string& arg : args) {
    if (arg.starts_with("--out=")) out_dir = arg.substr(6);
    axes.count = static_cast<std::size_t>(
        arg_value(arg, "--count=", axes.count));
    axes.master_seed = arg_value(arg, "--seed=", axes.master_seed);
    axes.min_steps = static_cast<std::size_t>(
        arg_value(arg, "--min-steps=", axes.min_steps));
    axes.max_steps = static_cast<std::size_t>(
        arg_value(arg, "--max-steps=", axes.max_steps));
  }
  const auto cases = now::sim::generate_corpus(axes, out_dir);
  std::size_t failing = 0;
  for (const auto& c : cases) {
    std::cout << c.name << "  " << c.trace_file << "\n    "
              << now::sim::describe_trace(out_dir + "/" + c.trace_file)
              << "\n    samples=" << c.result.samples.size()
              << " peak_pC=" << c.result.peak_byz_fraction
              << " sig=" << c.signature.key();
    if (c.failing) {
      ++failing;
      std::cout << "  FAILING " << now::sim::failure_kind_name(c.failure)
                << " (minimal reproducer, " << c.shrink_rounds
                << " shrink rounds)";
    }
    std::cout << "\n";
  }
  std::cout << "generated " << cases.size() << " trace(s) into " << out_dir
            << " (" << failing << " failing reproducer(s))\n";
  return 0;
}

int run_replay(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace replay FILE...\n";
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : args) {
    try {
      const TraceReplayResult replay = now::sim::replay_trace(path);
      if (replay.ok) {
        std::cout << "REPLAYED " << path << ": " << replay.steps_replayed
                  << " steps, " << replay.samples_checked
                  << " invariant samples verified, peak_pC="
                  << replay.result.peak_byz_fraction << "\n";
      } else {
        all_ok = false;
        std::cerr << "DIVERGED " << path << ": " << replay.error << "\n";
      }
    } catch (const now::core::SnapshotError& e) {
      all_ok = false;
      std::cerr << "UNREADABLE " << path << ": " << e.what() << "\n";
    }
  }
  return all_ok ? 0 : 1;
}

int run_info(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace info FILE...\n";
    return 2;
  }
  for (const std::string& path : args) {
    try {
      std::cout << path << ": " << now::sim::describe_trace(path) << "\n";
    } catch (const now::core::SnapshotError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

int run_bisect(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace bisect FILE...\n";
    return 2;
  }
  bool any_diverged = false;
  for (const std::string& path : args) {
    try {
      const now::sim::TraceBisectResult b = now::sim::bisect_trace(path);
      if (b.diverged) {
        any_diverged = true;
        std::cout << "DIVERGED " << path << ": fork in steps ("
                  << b.fork_lower_bound << ", " << b.first_bad_step
                  << "], first observed mismatch at step "
                  << b.first_bad_step << " (" << b.restores
                  << " checkpoint restores, " << b.probes << " probes)\n"
                  << "    " << b.error << "\n";
      } else {
        std::cout << "CLEAN " << path << ": full replay verified, "
                  << b.restores << " restores\n";
      }
    } catch (const now::core::SnapshotError& e) {
      std::cerr << "UNREADABLE " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  return any_diverged ? 3 : 0;
}

int run_mutate(const std::vector<std::string>& args) {
  std::string in_path;
  std::string out_path;
  std::string kind_name;
  std::uint64_t pick = 0;
  for (const std::string& arg : args) {
    if (arg.starts_with("--kind=")) {
      kind_name = arg.substr(7);
    } else if (arg.starts_with("--pick=")) {
      pick = arg_value(arg, "--pick=", 0);
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    }
  }
  now::sim::TraceMutationKind kind;
  if (kind_name == "event") {
    kind = now::sim::TraceMutationKind::kEventBit;
  } else if (kind_name == "sample") {
    kind = now::sim::TraceMutationKind::kSampleField;
  } else if (kind_name == "summary") {
    kind = now::sim::TraceMutationKind::kSummaryField;
  } else {
    std::cerr << "usage: now_trace mutate IN OUT "
                 "--kind={event|sample|summary} [--pick=N]\n";
    return 2;
  }
  if (in_path.empty() || out_path.empty()) {
    std::cerr << "usage: now_trace mutate IN OUT "
                 "--kind={event|sample|summary} [--pick=N]\n";
    return 2;
  }
  try {
    const now::sim::TraceMutation m =
        now::sim::mutate_trace(in_path, out_path, kind, pick);
    if (!m.applied) {
      std::cerr << "no mutation applied: " << m.description << "\n";
      return 1;
    }
    std::cout << "MUTATED " << out_path << " @ step " << m.step << ": "
              << m.description << "\n";
    return 0;
  } catch (const now::core::SnapshotError& e) {
    std::cerr << "UNREADABLE " << in_path << ": " << e.what() << "\n";
    return 1;
  }
}

int run_fleet(const std::vector<std::string>& args) {
  now::sim::FleetOptions options;
  std::string report_path;
  std::string out_dir;
  std::uint64_t min_cells = 0;
  for (const std::string& arg : args) {
    options.seed = arg_value(arg, "--seed=", options.seed);
    options.step_budget = static_cast<std::size_t>(
        arg_value(arg, "--budget=", options.step_budget));
    options.steps_per_run = static_cast<std::size_t>(
        arg_value(arg, "--steps-per-run=", options.steps_per_run));
    min_cells = arg_value(arg, "--min-cells=", min_cells);
    if (arg.starts_with("--report=")) report_path = arg.substr(9);
    if (arg.starts_with("--out=")) out_dir = arg.substr(6);
    if (arg == "--shrink") options.shrink_failures = true;
  }
  now::sim::FleetResult fleet = now::sim::run_coverage_fleet(options);
  if (!out_dir.empty() && !fleet.failures.empty()) {
    // Stage the reproducers: name each by seed (deterministic in the
    // fleet seed, collision-free against the corpus_NNN namespace),
    // record its trace, and write the staging manifest that
    // `gen_corpus.py --promote` consumes.
    std::filesystem::create_directories(out_dir);
    for (now::sim::CorpusCase& c : fleet.failures) {
      c.name = "fleet_" + std::to_string(c.config.seed);
      c.trace_file = c.name + ".trace";
      c.result = now::sim::run_corpus_scenario(
          c.config, out_dir + "/" + c.trace_file);
    }
    now::sim::write_corpus_manifest(fleet.failures, out_dir);
    std::cerr << "staged " << fleet.failures.size()
              << " reproducer(s) into " << out_dir << "\n";
  }
  if (report_path.empty()) {
    now::sim::write_coverage_report(fleet, std::cout);
  } else {
    std::ofstream os(report_path);
    now::sim::write_coverage_report(fleet, os);
  }
  std::cerr << "fleet: " << fleet.runs.size() << " runs, "
            << fleet.distinct_cells << "/" << now::sim::kNumConfigCells
            << " config cells, " << fleet.distinct_signatures
            << " distinct signatures, " << fleet.steps_spent
            << " steps spent, " << fleet.failures.size() << " failure(s)\n";
  if (fleet.distinct_cells < min_cells) {
    std::cerr << "FAIL: reached " << fleet.distinct_cells
              << " config cells, --min-cells=" << min_cells << "\n";
    return 1;
  }
  return 0;
}

FailureKind failure_kind_from_name(std::string_view name) {
  if (name == "compromise") return FailureKind::kCompromise;
  if (name == "disconnect") return FailureKind::kDisconnect;
  if (name == "budget_breach") return FailureKind::kBudgetBreach;
  return FailureKind::kNone;
}

int run_recheck(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace recheck DIR\n";
    return 2;
  }
  const std::string dir = args[0];
  std::ifstream manifest(dir + "/MANIFEST.tsv");
  if (!manifest.good()) {
    std::cerr << "no manifest at " << dir << "/MANIFEST.tsv\n";
    return 2;
  }
  std::string line;
  std::getline(manifest, line);  // header
  bool all_ok = true;
  std::size_t checked = 0;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cols;
    std::stringstream ss(line);
    std::string col;
    while (std::getline(ss, col, '\t')) cols.push_back(col);
    if (cols.size() < 4) {
      std::cerr << "malformed manifest row: " << line << "\n";
      all_ok = false;
      continue;
    }
    const std::string& name = cols[0];
    const std::string path = dir + "/" + cols[1];
    const FailureKind expected = failure_kind_from_name(cols[3]);
    ++checked;
    try {
      const TraceReplayResult replay = now::sim::replay_trace(path);
      if (!replay.ok) {
        all_ok = false;
        std::cerr << "DIVERGED " << name << ": " << replay.error << "\n";
        continue;
      }
      const double tau = now::sim::trace_info(path).tau;
      const FailureKind observed =
          now::sim::classify_failure(tau, replay.result);
      if (observed != expected) {
        all_ok = false;
        std::cerr << "ROTTED " << name << ": manifest says "
                  << now::sim::failure_kind_name(expected)
                  << " but the replay classifies as "
                  << now::sim::failure_kind_name(observed) << "\n";
        continue;
      }
      std::cout << "RECHECKED " << name << ": "
                << now::sim::failure_kind_name(observed) << "\n";
    } catch (const now::core::SnapshotError& e) {
      all_ok = false;
      std::cerr << "UNREADABLE " << name << ": " << e.what() << "\n";
    }
  }
  if (checked == 0) {
    std::cerr << "manifest named no cases\n";
    return 2;
  }
  std::cout << "rechecked " << checked << " case(s): "
            << (all_ok ? "all reproduce" : "FAILURES ABOVE") << "\n";
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: now_trace "
                 "{gen|replay|info|bisect|mutate|fleet|recheck} ...\n";
    return 2;
  }
  const std::string_view command{argv[1]};
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (command == "gen") return run_gen(args);
  if (command == "replay") return run_replay(args);
  if (command == "info") return run_info(args);
  if (command == "bisect") return run_bisect(args);
  if (command == "mutate") return run_mutate(args);
  if (command == "fleet") return run_fleet(args);
  if (command == "recheck") return run_recheck(args);
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
