// now_trace — CLI driver for the scenario trace subsystem (DESIGN.md §8).
//
//   now_trace gen --out=DIR [--count=N] [--seed=S] [--min-steps=A]
//                 [--max-steps=B]
//       Generates a seeded scenario corpus: N randomized scenarios within
//       the adversary budget, one replayable trace each, failing ones
//       shrunk to minimal reproducers. Prints a manifest line per case.
//
//   now_trace replay FILE...
//       Replays each trace against a fresh deployment and verifies every
//       recorded invariant sample and the end-of-run summary bit-exactly.
//       Exit 1 on the first divergence — the CI corpus job's gate.
//
//   now_trace info FILE...
//       Prints each trace's header summary without replaying.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/snapshot.hpp"
#include "sim/corpus.hpp"
#include "sim/trace.hpp"

namespace {

using now::sim::CorpusAxes;
using now::sim::TraceReplayResult;

std::uint64_t arg_value(std::string_view arg, std::string_view prefix,
                        std::uint64_t fallback) {
  if (!arg.starts_with(prefix)) return fallback;
  return static_cast<std::uint64_t>(
      std::strtoull(arg.substr(prefix.size()).data(), nullptr, 10));
}

int run_gen(const std::vector<std::string>& args) {
  CorpusAxes axes;
  std::string out_dir = "corpus";
  for (const std::string& arg : args) {
    if (arg.starts_with("--out=")) out_dir = arg.substr(6);
    axes.count = static_cast<std::size_t>(
        arg_value(arg, "--count=", axes.count));
    axes.master_seed = arg_value(arg, "--seed=", axes.master_seed);
    axes.min_steps = static_cast<std::size_t>(
        arg_value(arg, "--min-steps=", axes.min_steps));
    axes.max_steps = static_cast<std::size_t>(
        arg_value(arg, "--max-steps=", axes.max_steps));
  }
  const auto cases = now::sim::generate_corpus(axes, out_dir);
  std::size_t failing = 0;
  for (const auto& c : cases) {
    std::cout << c.name << "  " << c.trace_file << "\n    "
              << now::sim::describe_trace(out_dir + "/" + c.trace_file)
              << "\n    samples=" << c.result.samples.size()
              << " peak_pC=" << c.result.peak_byz_fraction;
    if (c.failing) {
      ++failing;
      std::cout << "  FAILING (minimal reproducer, " << c.shrink_rounds
                << " shrink rounds)";
    }
    std::cout << "\n";
  }
  std::cout << "generated " << cases.size() << " trace(s) into " << out_dir
            << " (" << failing << " failing reproducer(s))\n";
  return 0;
}

int run_replay(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace replay FILE...\n";
    return 2;
  }
  bool all_ok = true;
  for (const std::string& path : args) {
    try {
      const TraceReplayResult replay = now::sim::replay_trace(path);
      if (replay.ok) {
        std::cout << "REPLAYED " << path << ": " << replay.steps_replayed
                  << " steps, " << replay.samples_checked
                  << " invariant samples verified, peak_pC="
                  << replay.result.peak_byz_fraction << "\n";
      } else {
        all_ok = false;
        std::cerr << "DIVERGED " << path << ": " << replay.error << "\n";
      }
    } catch (const now::core::SnapshotError& e) {
      all_ok = false;
      std::cerr << "UNREADABLE " << path << ": " << e.what() << "\n";
    }
  }
  return all_ok ? 0 : 1;
}

int run_info(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "usage: now_trace info FILE...\n";
    return 2;
  }
  for (const std::string& path : args) {
    try {
      std::cout << path << ": " << now::sim::describe_trace(path) << "\n";
    } catch (const now::core::SnapshotError& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: now_trace {gen|replay|info} ...\n";
    return 2;
  }
  const std::string_view command{argv[1]};
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  if (command == "gen") return run_gen(args);
  if (command == "replay") return run_replay(args);
  if (command == "info") return run_info(args);
  std::cerr << "unknown command '" << command << "'\n";
  return 2;
}
