#!/usr/bin/env python3
"""Bench-regression gate: diff CI-produced BENCH_*.json against the
checked-in baseline (bench/baseline/).

Fidelity quantities are DETERMINISTIC (every bench runs fixed seeds), so
any drift is a real behavioral change that must be reviewed:

  * cost rows           — `messages` and `rounds` must match exactly;
  * scalar rows         — `value` must match exactly (this covers the
    `verdict` rows — 1.0 = REPRODUCED — plus peak Byzantine fractions,
    capture flags, fitted exponents, wave counts, chi-squared p-values);
  * missing rows/files  — coverage loss, also a hard failure.

Wall-clock quantities (`wall_ns` in cost rows; everything in
BENCH_micro.json, which uses Google Benchmark's schema) vary by machine
and are WARN-ONLY: a row is reported when it slows down by more than
--wall-tolerance (default 1.5x) but never fails the job. For
BENCH_micro.json only the *presence* of each benchmark is enforced.

The examples' CSV outputs (EXAMPLE_*.csv, written next to the binaries by
the example smoke tests) are gated the same way: every cell is a seeded
deterministic quantity (counts, fractions, message totals — never wall
clock), so the files must match the baseline byte for byte; any diff or
missing file is a hard failure.

Usage:
  scripts/check_bench.py --baseline bench/baseline --current build
  scripts/check_bench.py ... --update   # rewrite the baseline from current

Exit status: 0 = clean (warnings allowed), 1 = fidelity regression.
The update procedure is documented in EXPERIMENTS.md ("The bench-regression
gate").
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

# Exact comparisons still go through an epsilon to absorb JSON round-trip
# noise on doubles; 1e-9 relative is far below any real change.
REL_EPS = 1e-9


def close(a: float, b: float) -> bool:
    if a == b:
        return True
    if any(x is None for x in (a, b)):
        return False
    return math.isclose(a, b, rel_tol=REL_EPS, abs_tol=1e-12)


def row_key(row: dict) -> tuple:
    return (row.get("op"), row.get("n"))


def load(path: Path) -> dict:
    with path.open() as fh:
        return json.load(fh)


def check_emitter_file(name: str, base: dict, cur: dict, wall_tol: float,
                       errors: list, warnings: list) -> None:
    cur_rows = {row_key(r): r for r in cur.get("results", [])}
    for brow in base.get("results", []):
        key = row_key(brow)
        crow = cur_rows.get(key)
        if crow is None:
            errors.append(f"{name}: row {key} missing from current output")
            continue
        if "value" in brow:  # scalar row
            if not close(brow["value"], crow.get("value")):
                kind = "verdict" if brow["op"] == "verdict" else "scalar"
                errors.append(
                    f"{name}: {kind} row {key} changed "
                    f"{brow['value']} -> {crow.get('value')}")
            continue
        for field in ("messages", "rounds"):
            if not close(brow.get(field), crow.get(field)):
                errors.append(
                    f"{name}: {field} of {key} changed "
                    f"{brow.get(field)} -> {crow.get(field)}")
        bw, cw = brow.get("wall_ns"), crow.get("wall_ns")
        if bw and cw and cw > bw * wall_tol:
            warnings.append(
                f"{name}: wall_ns of {key} {bw:.0f} -> {cw:.0f} "
                f"(> {wall_tol:.2f}x slower; warn-only)")


# Per-batch phase/footprint counters emitted by bench_micro's sharded rows
# (BM_JoinLeaveCycle, BM_HugeBatch). All wall-clock or machine-dependent,
# hence warn-only like real_time — but tracked individually so a drift in
# one phase (plan vs resolve vs stage-1 vs stage-2) is attributed, not
# hidden inside the whole-step time.
MICRO_COUNTERS = ("commit_ns", "plan_ns", "resolve_ns", "stage1_ns",
                  "stage2_ns", "bytes_per_node")


def check_micro_file(name: str, base: dict, cur: dict, wall_tol: float,
                     errors: list, warnings: list) -> None:
    """Google Benchmark schema: wall time is machine-dependent, and the
    per-batch counters depend on the iteration count the framework picked,
    so everything is warn-only except benchmark presence."""
    cur_rows = {b.get("name"): b
                for b in cur.get("benchmarks", [])
                if b.get("run_type") != "aggregate"}
    for bbench in base.get("benchmarks", []):
        if bbench.get("run_type") == "aggregate":
            continue
        bname = bbench.get("name")
        cbench = cur_rows.get(bname)
        if cbench is None:
            errors.append(f"{name}: benchmark '{bname}' missing")
            continue
        bt, ct = bbench.get("real_time"), cbench.get("real_time")
        if bt and ct and ct > bt * wall_tol:
            warnings.append(
                f"{name}: real_time of '{bname}' {bt:.0f} -> {ct:.0f} "
                f"(> {wall_tol:.2f}x slower; warn-only)")
        for counter in MICRO_COUNTERS:
            bv, cv = bbench.get(counter), cbench.get(counter)
            if bv and cv and cv > bv * wall_tol:
                warnings.append(
                    f"{name}: {counter} of '{bname}' {bv:.0f} -> {cv:.0f} "
                    f"(> {wall_tol:.2f}x higher; warn-only)")


# Obs-overhead guard (DESIGN.md §13): the telemetry hooks' cost on the hot
# sharded step is bounded by comparing the obs-on row against the obs-off
# row *within the same run* (same machine, same build — wall-clock noise
# cancels, unlike baseline diffs). Warn-only like every wall-clock check.
OBS_ROW = "BM_JoinLeaveCycleObs/100000/4/manual_time"
OBS_BASELINE_ROW = "BM_JoinLeaveCycle/100000/4/0/manual_time"
OBS_OVERHEAD_TOLERANCE = 1.03


def check_obs_overhead(name: str, cur: dict, warnings: list) -> None:
    rows = {b.get("name"): b
            for b in cur.get("benchmarks", [])
            if b.get("run_type") != "aggregate"}
    obs_row, base_row = rows.get(OBS_ROW), rows.get(OBS_BASELINE_ROW)
    if obs_row is None or base_row is None:
        return  # presence is enforced against the baseline separately
    obs_t, base_t = obs_row.get("real_time"), base_row.get("real_time")
    if obs_t and base_t and obs_t > base_t * OBS_OVERHEAD_TOLERANCE:
        warnings.append(
            f"{name}: telemetry overhead {obs_t:.0f} vs {base_t:.0f} ns "
            f"(> {(OBS_OVERHEAD_TOLERANCE - 1) * 100:.0f}% budget, "
            f"'{OBS_ROW}' vs '{OBS_BASELINE_ROW}'; warn-only)")


def check_csv_file(name: str, base_path: Path, cur_path: Path,
                   errors: list) -> None:
    """Example CSVs carry no wall-clock columns, so the whole file is a
    deterministic fidelity quantity: compare exactly, line by line."""
    base_lines = base_path.read_text().splitlines()
    cur_lines = cur_path.read_text().splitlines()
    if len(base_lines) != len(cur_lines):
        errors.append(f"{name}: row count changed "
                      f"{len(base_lines)} -> {len(cur_lines)}")
        return
    for lineno, (brow, crow) in enumerate(zip(base_lines, cur_lines), 1):
        if brow != crow:
            errors.append(f"{name}: line {lineno} changed "
                          f"'{brow}' -> '{crow}'")
            return


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="bench/baseline",
                        help="directory with the checked-in BENCH_*.json")
    parser.add_argument("--current", default="build",
                        help="directory with the freshly produced files")
    parser.add_argument("--wall-tolerance", type=float, default=1.5,
                        help="warn when wall time exceeds baseline by this "
                             "factor (never fails)")
    parser.add_argument("--update", action="store_true",
                        help="copy current files over the baseline instead "
                             "of diffing")
    args = parser.parse_args()

    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    csv_baselines = sorted(baseline_dir.glob("EXAMPLE_*.csv"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {baseline_dir}",
              file=sys.stderr)
        return 1

    if args.update:
        for bpath in baselines + csv_baselines:
            cpath = current_dir / bpath.name
            if not cpath.exists():
                print(f"error: cannot update {bpath.name}: "
                      f"{cpath} does not exist", file=sys.stderr)
                return 1
            bpath.write_text(cpath.read_text())
            print(f"updated {bpath} from {cpath}")
        return 0

    errors: list = []
    warnings: list = []
    for bpath in baselines:
        cpath = current_dir / bpath.name
        if not cpath.exists():
            errors.append(f"{bpath.name}: not produced by this run "
                          f"({cpath} missing)")
            continue
        base, cur = load(bpath), load(cpath)
        if "benchmarks" in base:
            check_micro_file(bpath.name, base, cur, args.wall_tolerance,
                             errors, warnings)
            check_obs_overhead(bpath.name, cur, warnings)
        else:
            check_emitter_file(bpath.name, base, cur, args.wall_tolerance,
                               errors, warnings)
    for bpath in csv_baselines:
        cpath = current_dir / bpath.name
        if not cpath.exists():
            errors.append(f"{bpath.name}: not produced by this run "
                          f"({cpath} missing)")
            continue
        check_csv_file(bpath.name, bpath, cpath, errors)

    for w in warnings:
        print(f"warning: {w}")
    if errors:
        print(f"\n{len(errors)} fidelity regression(s) against "
              f"{baseline_dir}:", file=sys.stderr)
        for e in errors:
            print(f"  FAIL {e}", file=sys.stderr)
        print("\nIf the change is intentional, regenerate the baseline "
              "(EXPERIMENTS.md, 'The bench-regression gate'):\n"
              "  scripts/check_bench.py --baseline bench/baseline "
              "--current build --update", file=sys.stderr)
        return 1
    print(f"bench gate: {len(baselines) + len(csv_baselines)} file(s) "
          f"match the baseline ({len(warnings)} wall-time warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
