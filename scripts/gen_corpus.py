#!/usr/bin/env python3
"""Scenario-corpus driver: (re)generate the checked-in trace corpus under
bench/corpus/ via the `now_trace` tool (tools/now_trace.cpp).

The corpus is a set of seeded randomized adversarial scenarios — each a
replayable binary trace (sim/trace.hpp) — with failing scenarios shrunk to
minimal reproducers by the generator (sim/corpus.hpp). A MANIFEST.tsv
names every case with its trace format, failure kind and coverage
signature. CI's `corpus` job replays every checked-in trace (v1 and v2)
and fails on invariant-sample drift, so any behavioral change to the
engine that alters a recorded trajectory is caught exactly like a
bench-fidelity regression; `now_trace recheck` additionally verifies that
failing reproducers still fail with their recorded failure kind.

Usage:
  scripts/gen_corpus.py --build-dir build                 # regenerate
  scripts/gen_corpus.py --build-dir build --verify-only   # replay+recheck
  scripts/gen_corpus.py --build-dir build --promote DIR   # promote fleet
                                                          # reproducers

Promotion (the nightly flow): the coverage fleet (`now_trace fleet
--shrink`) drops minimal reproducers into a staging directory; --promote
copies any trace+manifest rows from that directory whose case name is not
already in the checked-in corpus, re-verifies them, and appends the rows
to bench/corpus/MANIFEST.tsv. The resulting diff is PR-able as-is.

Regeneration is deterministic in --seed, so re-running with the same seed
and the same engine produces byte-identical traces. After an INTENTIONAL
behavioral change, regenerate and commit the new traces together with the
change (the same policy as the bench baseline).
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path


def read_manifest(path: Path) -> tuple[str, list[list[str]]]:
    """Returns (header line, rows as column lists) of a MANIFEST.tsv."""
    lines = path.read_text().splitlines()
    if not lines:
        raise ValueError(f"{path} is empty")
    return lines[0], [line.split("\t") for line in lines[1:] if line]


def verify(tool: Path, out: Path) -> int:
    traces = sorted(out.glob("*.trace"))
    if not traces:
        print(f"error: no traces under {out}", file=sys.stderr)
        return 1
    replay = subprocess.run([str(tool), "replay"] +
                            [str(t) for t in traces]).returncode
    if replay != 0:
        return replay
    if (out / "MANIFEST.tsv").exists():
        return subprocess.run([str(tool), "recheck", str(out)]).returncode
    return 0


def promote(tool: Path, out: Path, staging: Path) -> int:
    """Copies staged reproducers not yet in the corpus, verifies, appends
    their manifest rows."""
    staged_manifest = staging / "MANIFEST.tsv"
    corpus_manifest = out / "MANIFEST.tsv"
    if not staged_manifest.exists():
        print(f"error: no manifest at {staged_manifest}", file=sys.stderr)
        return 1
    header, staged_rows = read_manifest(staged_manifest)
    if corpus_manifest.exists():
        _, corpus_rows = read_manifest(corpus_manifest)
        known = {row[0] for row in corpus_rows}
    else:
        corpus_manifest.write_text(header + "\n")
        known = set()

    promoted = []
    for row in staged_rows:
        name, trace_file = row[0], row[1]
        if name in known:
            continue
        src = staging / trace_file
        if not src.exists():
            print(f"error: manifest names missing trace {src}",
                  file=sys.stderr)
            return 1
        replay = subprocess.run([str(tool), "replay", str(src)])
        if replay.returncode != 0:
            print(f"error: staged trace {src} does not replay clean — "
                  f"not promoting", file=sys.stderr)
            return 1
        shutil.copy2(src, out / trace_file)
        with corpus_manifest.open("a") as mf:
            mf.write("\t".join(row) + "\n")
        promoted.append(name)

    if not promoted:
        print("nothing to promote (all staged cases already in corpus)")
        return 0
    print(f"promoted {len(promoted)} reproducer(s): {', '.join(promoted)}")
    # The promoted set must survive the reproducer-rot gate it will be
    # held to nightly.
    return subprocess.run([str(tool), "recheck", str(out)]).returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="directory containing the now_trace binary")
    parser.add_argument("--out", default="bench/corpus",
                        help="corpus directory (checked in)")
    parser.add_argument("--count", type=int, default=6,
                        help="number of scenarios to generate")
    parser.add_argument("--seed", type=int, default=20260726,
                        help="master seed (generation is deterministic)")
    parser.add_argument("--verify-only", action="store_true",
                        help="replay + recheck the existing corpus instead "
                             "of regenerating")
    parser.add_argument("--promote", metavar="DIR",
                        help="promote fleet reproducers from a staging "
                             "directory into the corpus")
    args = parser.parse_args()

    tool = Path(args.build_dir) / "now_trace"
    if not tool.exists():
        print(f"error: {tool} not found — build the `now_trace` target "
              f"first (cmake --build {args.build_dir} --target now_trace)",
              file=sys.stderr)
        return 1

    out = Path(args.out)
    if args.verify_only:
        return verify(tool, out)
    if args.promote:
        return promote(tool, out, Path(args.promote))

    out.mkdir(parents=True, exist_ok=True)
    for stale in out.glob("*.trace"):
        stale.unlink()
    gen = subprocess.run([str(tool), "gen", f"--out={out}",
                          f"--count={args.count}", f"--seed={args.seed}"])
    if gen.returncode != 0:
        return gen.returncode
    print(f"\nreplay-verifying the generated corpus...")
    return verify(tool, out)


if __name__ == "__main__":
    sys.exit(main())
