#!/usr/bin/env python3
"""Scenario-corpus driver: (re)generate the checked-in trace corpus under
bench/corpus/ via the `now_trace` tool (tools/now_trace.cpp).

The corpus is a set of seeded randomized adversarial scenarios — each a
replayable binary trace (sim/trace.hpp) — with failing scenarios shrunk to
minimal reproducers by the generator (sim/corpus.hpp). CI's `corpus` job
replays every checked-in trace and fails on invariant-sample drift, so any
behavioral change to the engine that alters a recorded trajectory is
caught exactly like a bench-fidelity regression.

Usage:
  scripts/gen_corpus.py --build-dir build                 # regenerate
  scripts/gen_corpus.py --build-dir build --verify-only   # replay only

Regeneration is deterministic in --seed, so re-running with the same seed
and the same engine produces byte-identical traces. After an INTENTIONAL
behavioral change, regenerate and commit the new traces together with the
change (the same policy as the bench baseline).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="directory containing the now_trace binary")
    parser.add_argument("--out", default="bench/corpus",
                        help="corpus directory (checked in)")
    parser.add_argument("--count", type=int, default=6,
                        help="number of scenarios to generate")
    parser.add_argument("--seed", type=int, default=20260726,
                        help="master seed (generation is deterministic)")
    parser.add_argument("--verify-only", action="store_true",
                        help="replay the existing corpus instead of "
                             "regenerating")
    args = parser.parse_args()

    tool = Path(args.build_dir) / "now_trace"
    if not tool.exists():
        print(f"error: {tool} not found — build the `now_trace` target "
              f"first (cmake --build {args.build_dir} --target now_trace)",
              file=sys.stderr)
        return 1

    out = Path(args.out)
    if args.verify_only:
        traces = sorted(out.glob("*.trace"))
        if not traces:
            print(f"error: no traces under {out}", file=sys.stderr)
            return 1
        return subprocess.run([str(tool), "replay"] +
                              [str(t) for t in traces]).returncode

    out.mkdir(parents=True, exist_ok=True)
    for stale in out.glob("*.trace"):
        stale.unlink()
    gen = subprocess.run([str(tool), "gen", f"--out={out}",
                          f"--count={args.count}", f"--seed={args.seed}"])
    if gen.returncode != 0:
        return gen.returncode
    traces = sorted(out.glob("*.trace"))
    print(f"\nreplay-verifying {len(traces)} generated trace(s)...")
    return subprocess.run([str(tool), "replay"] +
                          [str(t) for t in traces]).returncode


if __name__ == "__main__":
    sys.exit(main())
