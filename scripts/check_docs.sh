#!/usr/bin/env bash
# Docs-consistency gate: every `bench_<name>` mentioned in README.md or
# EXPERIMENTS.md must exist as bench/bench_<name>.cpp (CMake globs that
# directory, so file existence == build target existence). Fails the CI
# docs job when documentation references a bench that was renamed or
# removed.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
for doc in README.md EXPERIMENTS.md; do
  [ -f "$doc" ] || { echo "missing $doc" >&2; status=1; continue; }
  # Collect bench_<name> tokens, stripping punctuation and the .cpp/.json
  # artifact suffixes (BENCH_*.json names are checked via their bench).
  # `|| true`: a doc with zero bench references is fine, not a grep failure.
  refs=$(grep -oE 'bench_[a-z0-9_]+' "$doc" | sort -u || true)
  for ref in $refs; do
    if [ ! -f "bench/${ref}.cpp" ] && [ ! -f "bench/${ref}.hpp" ]; then
      echo "$doc references '$ref' but bench/${ref}.{cpp,hpp} does not" \
           "exist" >&2
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "docs check passed: every referenced bench target exists"
fi
exit "$status"
