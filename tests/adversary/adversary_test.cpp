#include "adversary/adversary.hpp"

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"

namespace now::adversary {
namespace {

core::NowParams small_params() {
  core::NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = core::WalkMode::kSampleExact;  // fast statistical runs
  return p;
}

TEST(ScheduleTest, HoldIsConstant) {
  const auto s = ChurnSchedule::hold(100);
  EXPECT_EQ(s.target(0), 100u);
  EXPECT_EQ(s.target(999), 100u);
}

TEST(ScheduleTest, RampGrowsThenHolds) {
  const auto s = ChurnSchedule::ramp(10, 15);
  EXPECT_EQ(s.target(0), 10u);
  EXPECT_EQ(s.target(3), 13u);
  EXPECT_EQ(s.target(5), 15u);
  EXPECT_EQ(s.target(50), 15u);
}

TEST(ScheduleTest, RampShrinks) {
  const auto s = ChurnSchedule::ramp(20, 12);
  EXPECT_EQ(s.target(0), 20u);
  EXPECT_EQ(s.target(8), 12u);
  EXPECT_EQ(s.target(100), 12u);
}

TEST(ScheduleTest, OscillateTriangleWave) {
  const auto s = ChurnSchedule::oscillate(10, 14);
  EXPECT_EQ(s.target(0), 10u);
  EXPECT_EQ(s.target(2), 12u);
  EXPECT_EQ(s.target(4), 14u);
  EXPECT_EQ(s.target(6), 12u);
  EXPECT_EQ(s.target(8), 10u);
  EXPECT_EQ(s.target(12), 14u);  // periodic
}

TEST(RandomChurnTest, FollowsScheduleAndBudget) {
  Metrics metrics;
  core::NowSystem system{small_params(), metrics, 1};
  system.initialize(300, 45);
  RandomChurnAdversary adv{0.15, ChurnSchedule::ramp(300, 380)};
  Rng rng{2};
  for (std::size_t t = 1; t <= 120; ++t) adv.step(system, t, rng);
  EXPECT_NEAR(static_cast<double>(system.num_nodes()), 380.0, 3.0);
  const double frac = static_cast<double>(system.state().byzantine_total()) /
                      static_cast<double>(system.num_nodes());
  EXPECT_LE(frac, 0.16);  // never exceeds tau (+1 node rounding)
  EXPECT_GT(frac, 0.10);  // greedy corruption keeps it near tau
}

TEST(RandomChurnTest, ProtectByzantineKeepsThemAlive) {
  Metrics metrics;
  core::NowSystem system{small_params(), metrics, 3};
  system.initialize(300, 45);
  RandomChurnAdversary adv{0.15, ChurnSchedule::hold(300),
                           /*protect_byzantine=*/true};
  Rng rng{4};
  for (std::size_t t = 1; t <= 100; ++t) adv.step(system, t, rng);
  // Byzantine population never decreases below its starting point.
  EXPECT_GE(system.state().byzantine_total(), 45u);
}

TEST(JoinLeaveTest, AttackPreservesPopulationRoughly) {
  Metrics metrics;
  core::NowSystem system{small_params(), metrics, 5};
  system.initialize(300, 45);
  JoinLeaveAdversary adv{0.15, ChurnSchedule::hold(300)};
  Rng rng{6};
  for (std::size_t t = 1; t <= 100; ++t) adv.step(system, t, rng);
  EXPECT_NEAR(static_cast<double>(system.num_nodes()), 300.0, 10.0);
  EXPECT_TRUE(adv.target().valid());
}

TEST(JoinLeaveTest, TargetIsALiveCluster) {
  Metrics metrics;
  core::NowSystem system{small_params(), metrics, 7};
  system.initialize(300, 45);
  JoinLeaveAdversary adv{0.15, ChurnSchedule::hold(300)};
  Rng rng{8};
  for (std::size_t t = 1; t <= 60; ++t) {
    adv.step(system, t, rng);
    ASSERT_TRUE(system.state().has_cluster(adv.target()));
  }
}

TEST(ForcedLeaveTest, DrainsHonestFromTargetButShuffleRefills) {
  Metrics metrics;
  core::NowSystem system{small_params(), metrics, 9};
  system.initialize(300, 45);
  ForcedLeaveAdversary adv{0.15};
  Rng rng{10};
  for (std::size_t t = 1; t <= 100; ++t) adv.step(system, t, rng);
  // With shuffling on, the target cluster must still be majority-honest.
  const auto& state = system.state();
  const auto& target = state.cluster_at(adv.target());
  EXPECT_LT(cluster::byzantine_fraction(target, state.byzantine), 0.5);
}

TEST(AdversaryTest, BudgetHonoredAcrossStrategies) {
  for (int kind = 0; kind < 3; ++kind) {
    Metrics metrics;
    core::NowSystem system{small_params(), metrics,
                           static_cast<std::uint64_t>(20 + kind)};
    system.initialize(300, 30);  // 10% initial
    std::unique_ptr<Adversary> adv;
    const double tau = 0.10;
    switch (kind) {
      case 0:
        adv = std::make_unique<RandomChurnAdversary>(
            tau, ChurnSchedule::hold(300));
        break;
      case 1:
        adv = std::make_unique<JoinLeaveAdversary>(
            tau, ChurnSchedule::hold(300));
        break;
      default:
        adv = std::make_unique<ForcedLeaveAdversary>(tau);
        break;
    }
    Rng rng{static_cast<std::uint64_t>(kind) + 100};
    for (std::size_t t = 1; t <= 80; ++t) {
      adv->step(system, t, rng);
      const double frac =
          static_cast<double>(system.state().byzantine_total()) /
          static_cast<double>(system.num_nodes());
      ASSERT_LE(frac, tau + 2.0 / static_cast<double>(system.num_nodes()))
          << "strategy " << kind << " step " << t;
    }
  }
}

}  // namespace
}  // namespace now::adversary
