#include <gtest/gtest.h>

#include "adversary/adversary.hpp"

namespace now::adversary {
namespace {

core::NowParams thrash_params(double l) {
  core::NowParams p;
  p.max_size = 1 << 12;
  p.k = 6;
  p.tau = 0.10;
  p.l = l;
  p.walk_mode = core::WalkMode::kSampleExact;
  return p;
}

TEST(ThrashTest, TriggersRestructuringWithoutCompromise) {
  Metrics metrics;
  core::NowSystem system{thrash_params(1.5), metrics, 1};
  system.initialize(600, 60, core::InitTopology::kModeledSparse);
  ThrashAdversary adv{0.10};
  Rng rng{2};
  for (std::size_t t = 1; t <= 400; ++t) adv.step(system, t, rng);
  // The attack does force restructuring...
  EXPECT_GT(adv.splits_triggered() + adv.merges_triggered(), 0u);
  // ... but the invariants survive it.
  const auto inv = system.check();
  EXPECT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
}

TEST(ThrashTest, HysteresisAmplifiesAttackCost) {
  // Larger l means more adversarial operations per induced restructuring.
  std::map<double, double> ops_per_restructure;
  for (const double l : {1.2, 2.0}) {
    Metrics metrics;
    core::NowSystem system{thrash_params(l), metrics, 3};
    system.initialize(600, 60, core::InitTopology::kModeledSparse);
    ThrashAdversary adv{0.10};
    Rng rng{4};
    const std::size_t steps = 500;
    for (std::size_t t = 1; t <= steps; ++t) adv.step(system, t, rng);
    const std::size_t restructures =
        adv.splits_triggered() + adv.merges_triggered();
    ops_per_restructure[l] =
        restructures == 0 ? static_cast<double>(steps)
                          : static_cast<double>(steps) /
                                static_cast<double>(restructures);
  }
  EXPECT_GT(ops_per_restructure.at(2.0), ops_per_restructure.at(1.2));
}

TEST(ThrashTest, RespectsCorruptionBudget) {
  Metrics metrics;
  core::NowSystem system{thrash_params(1.5), metrics, 5};
  system.initialize(600, 60, core::InitTopology::kModeledSparse);
  ThrashAdversary adv{0.10};
  Rng rng{6};
  for (std::size_t t = 1; t <= 200; ++t) {
    adv.step(system, t, rng);
    const double frac =
        static_cast<double>(system.state().byzantine_total()) /
        static_cast<double>(system.num_nodes());
    ASSERT_LE(frac, 0.10 + 2.0 / static_cast<double>(system.num_nodes()));
  }
}

}  // namespace
}  // namespace now::adversary
