// Tests for the trace & checkpoint half of the snapshot subsystem
// (sim/trace.hpp, sim/corpus.hpp, DESIGN.md §8): record/replay round
// trips on both scenario drivers, divergence detection, halt/resume
// equivalence against the uninterrupted run, and the corpus generator's
// determinism + shrink behavior.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/snapshot.hpp"
#include "sim/corpus.hpp"
#include "sim/trace.hpp"

namespace now::sim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Batched adversarial scenario: corrupted joiners, targeted placement,
/// forced-leave quota — every trace frame type gets exercised.
ScenarioConfig batched_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.k = 10;
  config.params.tau = 0.10;
  config.n0 = 800;
  config.topology = core::InitTopology::kModeledSparse;
  config.steps = 40;
  config.sample_every = 5;
  config.seed = seed;
  config.batch_ops = 6;
  config.shards = 4;
  config.batch_byz_fraction = 0.10;
  config.batch_placement = BatchPlacement::kTargeted;
  config.batch_leave_quota = 2;
  return config;
}

void expect_same_outcome(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    ASSERT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.peak_byz_fraction, b.peak_byz_fraction);
  EXPECT_EQ(a.ever_compromised, b.ever_compromised);
  EXPECT_EQ(a.first_compromise_step, b.first_compromise_step);
  EXPECT_EQ(a.total_splits, b.total_splits);
  EXPECT_EQ(a.total_merges, b.total_merges);
  EXPECT_EQ(a.final_nodes, b.final_nodes);
  EXPECT_EQ(a.final_clusters, b.final_clusters);
  EXPECT_EQ(a.final_byzantine, b.final_byzantine);
  EXPECT_EQ(a.total_forced_leaves, b.total_forced_leaves);
  EXPECT_EQ(a.max_step_forced_leaves, b.max_step_forced_leaves);
}

TEST(TraceTest, BatchedScenarioRecordsAndReplaysExactly) {
  const std::string path = temp_path("now_batched.trace");
  ScenarioConfig config = batched_config(11);
  config.trace_path = path;
  Metrics metrics;
  adversary::RandomChurnAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0)};
  const ScenarioResult recorded = run_scenario(config, adversary, metrics);

  const TraceReplayResult replay = replay_trace(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.steps_replayed, config.steps);
  EXPECT_EQ(replay.samples_checked, recorded.samples.size());
  ASSERT_EQ(replay.result.samples.size(), recorded.samples.size());
  for (std::size_t i = 0; i < recorded.samples.size(); ++i) {
    EXPECT_EQ(replay.result.samples[i], recorded.samples[i]);
  }
  EXPECT_EQ(replay.result.peak_byz_fraction, recorded.peak_byz_fraction);
  EXPECT_EQ(replay.result.final_nodes, recorded.final_nodes);
  EXPECT_EQ(replay.result.total_splits, recorded.total_splits);
  EXPECT_FALSE(describe_trace(path).empty());
  std::remove(path.c_str());
}

TEST(TraceTest, PerStepAdversaryScenarioReplaysExactly) {
  // The sequential driver: every join/leave the adversary issues is its
  // own trace frame, and the replayer re-drives them one by one.
  const std::string path = temp_path("now_adversary.trace");
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.k = 10;
  config.params.tau = 0.10;
  config.n0 = 600;
  config.topology = core::InitTopology::kModeledSparse;
  config.steps = 60;
  config.sample_every = 10;
  config.seed = 23;
  config.trace_path = path;
  Metrics metrics;
  adversary::JoinLeaveAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0), 0.3};
  const ScenarioResult recorded = run_scenario(config, adversary, metrics);

  const TraceReplayResult replay = replay_trace(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.samples_checked, recorded.samples.size());
  EXPECT_EQ(replay.result.final_nodes, recorded.final_nodes);
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayDetectsInjectedDivergence) {
  // A recorder is just a writer: feed it a fabricated invariant sample
  // mid-run and the replayer must flag exactly that sample.
  const std::string path = temp_path("now_tampered.trace");
  ScenarioConfig config = batched_config(31);
  Metrics metrics;
  core::NowSystem system{config.params, metrics, config.seed};
  system.initialize(config.n0, 80, config.topology);
  TraceRecorder recorder{config, config.n0, 80, "manual"};
  system.set_trace_sink(&recorder);
  Rng driver{config.seed ^ 0xC0FFEE5EEDULL};
  for (std::size_t t = 1; t <= 6; ++t) {
    recorder.begin_step(t);
    const auto victims = system.state().sample_distinct_nodes(driver, 4);
    system.step_parallel_mixed(4, 1, victims, 2);
  }
  InvariantSample bogus;
  bogus.step = 6;
  bogus.num_nodes = system.num_nodes() + 1;  // deliberately wrong
  bogus.num_clusters = system.num_clusters();
  recorder.record_sample(bogus);
  system.set_trace_sink(nullptr);
  recorder.finish(ScenarioResult{}, path);

  const TraceReplayResult replay = replay_trace(path);
  EXPECT_FALSE(replay.ok);
  EXPECT_NE(replay.error.find("invariant sample diverged"),
            std::string::npos)
      << replay.error;
  std::remove(path.c_str());
}

TEST(TraceTest, HaltAndResumeMatchesUninterruptedBatchedRun) {
  const std::string ckpt = temp_path("now_batched.ckpt");
  const ScenarioConfig base = batched_config(47);

  Metrics metrics_full;
  adversary::RandomChurnAdversary adv_full{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0)};
  const ScenarioResult full = run_scenario(base, adv_full, metrics_full);
  ASSERT_EQ(full.halted_at_step, 0u);

  ScenarioConfig halted = base;
  halted.checkpoint_path = ckpt;
  halted.halt_at = 20;
  Metrics metrics_half;
  adversary::RandomChurnAdversary adv_half{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0)};
  const ScenarioResult partial = run_scenario(halted, adv_half,
                                              metrics_half);
  EXPECT_EQ(partial.halted_at_step, 20u);
  EXPECT_LT(partial.samples.size(), full.samples.size());

  ScenarioConfig resumed = base;
  resumed.resume_from = ckpt;
  Metrics metrics_rest;
  adversary::RandomChurnAdversary adv_rest{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0)};
  const ScenarioResult rest = run_scenario(resumed, adv_rest, metrics_rest);
  EXPECT_EQ(rest.halted_at_step, 0u);
  expect_same_outcome(full, rest);
  std::remove(ckpt.c_str());
}

TEST(TraceTest, HaltAndResumeMatchesUninterruptedAdversaryRun) {
  // The per-step driver with a STATEFUL adversary (the join-leave
  // attacker's victim target survives the checkpoint), plus periodic
  // checkpoints along the way — the resumable-nightly configuration.
  const std::string ckpt = temp_path("now_adversary.ckpt");
  ScenarioConfig base;
  base.params.max_size = 1 << 12;
  base.params.walk_mode = core::WalkMode::kSampleExact;
  base.params.k = 10;
  base.params.tau = 0.10;
  base.n0 = 600;
  base.topology = core::InitTopology::kModeledSparse;
  base.steps = 60;
  base.sample_every = 10;
  base.seed = 53;

  Metrics metrics_full;
  adversary::JoinLeaveAdversary adv_full{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0), 0.25};
  const ScenarioResult full = run_scenario(base, adv_full, metrics_full);

  ScenarioConfig halted = base;
  halted.checkpoint_path = ckpt;
  halted.checkpoint_every = 10;
  halted.halt_at = 30;
  Metrics metrics_half;
  adversary::JoinLeaveAdversary adv_half{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0), 0.25};
  const ScenarioResult partial =
      run_scenario(halted, adv_half, metrics_half);
  EXPECT_EQ(partial.halted_at_step, 30u);

  ScenarioConfig resumed = base;
  resumed.resume_from = ckpt;
  Metrics metrics_rest;
  adversary::JoinLeaveAdversary adv_rest{
      base.params.tau, adversary::ChurnSchedule::hold(base.n0), 0.25};
  const ScenarioResult rest = run_scenario(resumed, adv_rest, metrics_rest);
  expect_same_outcome(full, rest);
  std::remove(ckpt.c_str());
}

TEST(TraceTest, CheckpointRejectsMismatchedScenario) {
  const std::string ckpt = temp_path("now_mismatch.ckpt");
  ScenarioConfig halted = batched_config(61);
  halted.checkpoint_path = ckpt;
  halted.halt_at = 10;
  Metrics metrics;
  adversary::RandomChurnAdversary adversary{
      halted.params.tau, adversary::ChurnSchedule::hold(halted.n0)};
  (void)run_scenario(halted, adversary, metrics);

  // Different seed => different trajectory: must be rejected, not resumed.
  ScenarioConfig wrong_seed = batched_config(62);
  wrong_seed.resume_from = ckpt;
  Metrics m2;
  adversary::RandomChurnAdversary a2{
      wrong_seed.params.tau, adversary::ChurnSchedule::hold(wrong_seed.n0)};
  EXPECT_THROW(run_scenario(wrong_seed, a2, m2), core::SnapshotError);

  // Different adversary strategy: its internal state cannot be restored.
  ScenarioConfig wrong_adv = batched_config(61);
  wrong_adv.resume_from = ckpt;
  Metrics m3;
  adversary::ForcedLeaveAdversary a3{wrong_adv.params.tau};
  EXPECT_THROW(run_scenario(wrong_adv, a3, m3), core::SnapshotError);
  std::remove(ckpt.c_str());
}

TEST(CorpusTest, GenerationIsDeterministicInTheMasterSeed) {
  CorpusAxes axes;
  axes.master_seed = 99;
  axes.count = 2;
  axes.min_steps = 20;
  axes.max_steps = 30;
  const std::string dir_a = temp_path("corpus_a");
  const std::string dir_b = temp_path("corpus_b");
  const auto a = generate_corpus(axes, dir_a);
  const auto b = generate_corpus(axes, dir_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].config.seed, b[i].config.seed);
    EXPECT_EQ(a[i].config.n0, b[i].config.n0);
    EXPECT_EQ(a[i].config.steps, b[i].config.steps);
    EXPECT_EQ(a[i].config.batch_ops, b[i].config.batch_ops);
    EXPECT_EQ(a[i].result.peak_byz_fraction, b[i].result.peak_byz_fraction);
    EXPECT_EQ(a[i].failing, b[i].failing);
    // Every generated trace replays green against the same binary.
    const TraceReplayResult replay =
        replay_trace(dir_a + "/" + a[i].trace_file);
    EXPECT_TRUE(replay.ok) << a[i].name << ": " << replay.error;
  }
}

TEST(CorpusTest, ShrinkReducesAFailingScenario) {
  // The no-shuffle deployment under the targeted batched attack is
  // captured systematically — a guaranteed-failing scenario for the
  // shrinker to minimize.
  // Mirrors bench_attack's batched forced-leave row against the
  // no-shuffle baseline (captured within a handful of steps there).
  ScenarioConfig failing;
  failing.params.max_size = 1 << 12;
  failing.params.walk_mode = core::WalkMode::kSampleExact;
  failing.params.k = 10;
  failing.params.tau = 0.15;
  failing.params.shuffle_enabled = false;
  failing.n0 = 900;
  failing.topology = core::InitTopology::kModeledSparse;
  failing.steps = 100;
  failing.sample_every = 5;
  failing.seed = 37;
  failing.batch_ops = 8;
  failing.shards = 2;
  failing.batch_byz_fraction = 0.15;
  failing.batch_placement = BatchPlacement::kTargeted;
  failing.batch_leave_quota = 8;

  const ScenarioResult before = run_corpus_scenario(failing, "");
  ASSERT_TRUE(scenario_failed(failing, before))
      << "the seed scenario must fail for the shrink test to mean anything";

  std::size_t rounds = 0;
  const ScenarioConfig shrunk = shrink_failing_config(failing, &rounds);
  EXPECT_GE(rounds, 1u);
  EXPECT_LE(shrunk.steps, failing.steps);
  EXPECT_LE(shrunk.batch_ops, failing.batch_ops);
  EXPECT_LE(shrunk.n0, failing.n0);
  const ScenarioResult after = run_corpus_scenario(shrunk, "");
  EXPECT_TRUE(scenario_failed(shrunk, after));
}

}  // namespace
}  // namespace now::sim
