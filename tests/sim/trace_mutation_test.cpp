// Mutation-testing the replay verifier (DESIGN.md §10): corrupt ONE
// recorded fact — an event, a sample field, a summary field — and the
// replay must report a divergence at the right step, never silently pass.
// Also the bisection acceptance: an injected divergence in a >= 500-step
// trace is localized with at most ceil(log2(steps / checkpoint_every)) + 2
// checkpoint restores.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "adversary/adversary.hpp"
#include "core/snapshot.hpp"
#include "sim/trace.hpp"

namespace now::sim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

ScenarioConfig batched_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.k = 10;
  config.params.tau = 0.10;
  config.n0 = 800;
  config.topology = core::InitTopology::kModeledSparse;
  config.steps = 40;
  config.sample_every = 5;
  config.seed = seed;
  config.batch_ops = 6;
  config.shards = 4;
  config.batch_byz_fraction = 0.10;
  config.batch_placement = BatchPlacement::kTargeted;
  config.batch_leave_quota = 2;
  return config;
}

ScenarioResult record_trace(const ScenarioConfig& base,
                            const std::string& path) {
  ScenarioConfig config = base;
  config.trace_path = path;
  Metrics metrics;
  adversary::RandomChurnAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0)};
  return run_scenario(config, adversary, metrics);
}

TEST(TraceMutationTest, SampleMutationIsDetectedAtExactlyThatStep) {
  const std::string path = temp_path("mut_sample.trace");
  const std::string mutated = temp_path("mut_sample_out.trace");
  (void)record_trace(batched_config(211), path);
  ASSERT_TRUE(replay_trace(path).ok);

  // Pick a mid-run sample (index 3 of the 9 samples at steps 0,5,...,40).
  const TraceMutation m =
      mutate_trace(path, mutated, TraceMutationKind::kSampleField, 3);
  ASSERT_TRUE(m.applied) << m.description;
  EXPECT_EQ(m.step, 15u);

  const TraceReplayResult replay = replay_trace(mutated);
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.first_bad_step, m.step) << replay.error;
  EXPECT_NE(replay.error.find("invariant sample diverged"),
            std::string::npos)
      << replay.error;
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(TraceMutationTest, SummaryMutationIsDetectedAtTheEnd) {
  const std::string path = temp_path("mut_summary.trace");
  const std::string mutated = temp_path("mut_summary_out.trace");
  (void)record_trace(batched_config(223), path);

  const TraceMutation m =
      mutate_trace(path, mutated, TraceMutationKind::kSummaryField, 0);
  ASSERT_TRUE(m.applied) << m.description;

  const TraceReplayResult replay = replay_trace(mutated);
  EXPECT_FALSE(replay.ok);
  EXPECT_NE(replay.error.find("summary"), std::string::npos)
      << replay.error;
  EXPECT_EQ(replay.first_bad_step, 40u);
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(TraceMutationTest, EventMutationIsDetectedAtOrAfterItsStep) {
  const std::string path = temp_path("mut_event.trace");
  const std::string mutated = temp_path("mut_event_out.trace");
  (void)record_trace(batched_config(227), path);

  // Batch frame mid-run: the replayed trajectory forks at the event's
  // step; the next sample or embedded checkpoint must observe it.
  const TraceMutation m =
      mutate_trace(path, mutated, TraceMutationKind::kEventBit, 17);
  ASSERT_TRUE(m.applied) << m.description;
  ASSERT_GT(m.step, 0u);

  const TraceReplayResult replay = replay_trace(mutated);
  EXPECT_FALSE(replay.ok) << "a corrupted event silently replayed";
  EXPECT_GE(replay.first_bad_step, m.step);
  // Detection latency is bounded by the observation cadence: even when
  // the corrupted corruption-bit leaves every sampled aggregate intact,
  // the next embedded checkpoint (every 8 steps here) byte-compares the
  // byzantine set and must catch it.
  EXPECT_LE(replay.first_bad_step, m.step + 8);
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(TraceMutationTest, NoMutationEverSilentlyPasses) {
  const std::string path = temp_path("mut_sweep.trace");
  const std::string mutated = temp_path("mut_sweep_out.trace");
  (void)record_trace(batched_config(229), path);

  const TraceMutationKind kinds[] = {TraceMutationKind::kEventBit,
                                     TraceMutationKind::kSampleField,
                                     TraceMutationKind::kSummaryField};
  for (const TraceMutationKind kind : kinds) {
    for (std::uint64_t pick = 0; pick < 5; ++pick) {
      const TraceMutation m = mutate_trace(path, mutated, kind, pick * 7);
      ASSERT_TRUE(m.applied);
      const TraceReplayResult replay = replay_trace(mutated);
      EXPECT_FALSE(replay.ok)
          << "mutation passed silently: " << m.description;
    }
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

TEST(TraceMutationTest, BisectLocalizesDivergenceWithLogRestores) {
  // Acceptance: a >= 500-step trace with checkpoint_every = 25, one
  // injected event corruption, localized in at most
  // ceil(log2(steps / checkpoint_every)) + 2 checkpoint restores.
  const std::string path = temp_path("bisect_long.trace");
  const std::string mutated = temp_path("bisect_long_out.trace");
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.k = 10;
  config.params.tau = 0.10;
  config.n0 = 400;
  config.topology = core::InitTopology::kModeledSparse;
  config.steps = 500;
  config.sample_every = 10;
  config.seed = 233;
  config.batch_ops = 4;
  config.shards = 2;
  config.batch_byz_fraction = 0.10;
  config.batch_placement = BatchPlacement::kTargeted;
  config.batch_leave_quota = 1;
  config.trace_checkpoint_every = 25;
  (void)record_trace(config, path);

  const auto checkpoints = trace_checkpoints(path);
  ASSERT_EQ(checkpoints.size(), 500u / 25 - 1);  // 25, 50, ..., 475

  // A clean trace bisects to "no divergence" with zero restores.
  const TraceBisectResult clean = bisect_trace(path);
  EXPECT_FALSE(clean.diverged) << clean.error;
  EXPECT_EQ(clean.restores, 0u);

  // Inject a mid-trace event corruption (pick 250 of the 500 batch
  // frames lands near step 251).
  const TraceMutation m =
      mutate_trace(path, mutated, TraceMutationKind::kEventBit, 250);
  ASSERT_TRUE(m.applied);
  ASSERT_GT(m.step, 100u);
  ASSERT_LT(m.step, 400u);

  const TraceReplayResult full = replay_trace(mutated);
  ASSERT_FALSE(full.ok);

  const TraceBisectResult bisect = bisect_trace(mutated);
  EXPECT_TRUE(bisect.diverged);
  // Same first observed mismatch as the full replay...
  EXPECT_EQ(bisect.first_bad_step, full.first_bad_step);
  // ...and the fork interval brackets the injected step.
  EXPECT_LT(bisect.fork_lower_bound, m.step);
  EXPECT_LE(m.step, bisect.first_bad_step);
  // The interval is checkpoint-cadence tight.
  EXPECT_LE(bisect.first_bad_step - bisect.fork_lower_bound, 2u * 25u);

  const auto budget = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(config.steps) / 25.0))) + 2;
  EXPECT_LE(bisect.restores, budget)
      << "bisection used " << bisect.restores << " restores over "
      << bisect.probes << " probes";
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

}  // namespace
}  // namespace now::sim
