// Coverage accounting for the corpus fleet (sim/corpus.hpp): deterministic
// signature extraction, dense cell-key round trips, one-mutation
// reachability of any named unexplored cell, kind-preserving shrinking,
// stratified corpus generation, and the fleet-vs-random acceptance bound
// (>= 2x the distinct signature cells of 6 random scenarios under the
// same simulated-step budget, fixed seed).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "sim/corpus.hpp"
#include "sim/trace.hpp"

namespace now::sim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(CoverageTest, CellKeysRoundTripTheWholeSpace) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t key = 0; key < kNumConfigCells; ++key) {
    CoverageSignature sig;
    sig.cell = cell_from_key(key);
    EXPECT_EQ(sig.cell_key(), key);
    seen.insert(sig.cell_key());
  }
  EXPECT_EQ(seen.size(), kNumConfigCells);
}

TEST(CoverageTest, SignatureExtractionIsDeterministic) {
  Rng rng{7};
  CorpusAxes axes;
  axes.min_steps = 10;
  axes.max_steps = 14;
  ScenarioConfig config = random_scenario_config(rng, axes);
  config.n0 = 300;

  const ScenarioResult a = run_corpus_scenario(config, "");
  const ScenarioResult b = run_corpus_scenario(config, "");
  const CoverageSignature sig_a = signature_of(config, a);
  const CoverageSignature sig_b = signature_of(config, b);
  EXPECT_EQ(sig_a, sig_b);
  EXPECT_LT(sig_a.cell_key(), kNumConfigCells);
  // The cell part is a pure function of the config.
  EXPECT_EQ(sig_a.cell, cell_of(config));
  // key() packs cell and behavior losslessly.
  EXPECT_EQ(sig_a.key() / 64, sig_a.cell_key());
  EXPECT_EQ(sig_a.key() % 64, sig_a.behavior);
}

TEST(CoverageTest, MutationReachesANamedUnexploredCellInOneStep) {
  Rng rng{11};
  CorpusAxes axes;
  const ScenarioConfig parent = random_scenario_config(rng, axes);
  // Every cell in the space is reachable with exactly one mutation — the
  // bounded-budget guarantee: targeting a named unexplored cell never
  // takes more than one run.
  for (std::uint32_t key = 0; key < kNumConfigCells; key += 13) {
    const CoverageCell target = cell_from_key(key);
    const ScenarioConfig mutated = mutate_toward_cell(parent, target);
    EXPECT_EQ(cell_of(mutated), target) << "cell key " << key;
  }
}

TEST(CoverageTest, FleetDoublesRandomSamplingCoverage) {
  // Acceptance: under the SAME total simulated-step budget, the
  // coverage-guided fleet reaches at least 2x the distinct signature
  // cells of 6 random scenarios. Fixed seeds; everything deterministic.
  CorpusAxes axes;
  axes.master_seed = 20260808;
  axes.min_steps = 20;
  axes.max_steps = 30;

  Rng rng{axes.master_seed};
  std::set<std::uint32_t> random_cells;
  std::size_t random_steps = 0;
  for (int i = 0; i < 6; ++i) {
    const ScenarioConfig config = random_scenario_config(rng, axes);
    const ScenarioResult result = run_corpus_scenario(config, "");
    random_cells.insert(signature_of(config, result).key());
    random_steps += config.steps;
  }

  FleetOptions options;
  options.seed = axes.master_seed;
  options.axes = axes;
  options.step_budget = random_steps;
  options.steps_per_run = 10;
  const FleetResult fleet = run_coverage_fleet(options);

  EXPECT_LE(fleet.steps_spent, random_steps);
  EXPECT_GE(fleet.distinct_signatures, 2 * random_cells.size())
      << "fleet: " << fleet.distinct_signatures << " cells over "
      << fleet.runs.size() << " runs; random baseline: "
      << random_cells.size() << " cells over 6 runs ("
      << random_steps << " steps)";
  // Guided exploration hits a distinct config cell per run by design.
  EXPECT_EQ(fleet.distinct_cells, fleet.runs.size());
}

TEST(CoverageTest, CoverageReportSerializesTheFleet) {
  FleetOptions options;
  options.seed = 5;
  options.step_budget = 20;
  options.steps_per_run = 10;
  options.axes.min_steps = 10;
  options.axes.max_steps = 12;
  const FleetResult fleet = run_coverage_fleet(options);
  ASSERT_EQ(fleet.runs.size(), 2u);

  std::ostringstream os;
  write_coverage_report(fleet, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"distinct_cells\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_config_cells\": 288"), std::string::npos);
  EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
}

TEST(CoverageTest, ShrinkPreservesTheFailureKind) {
  // The systematic failing scenario (no-shuffle deployment under the
  // targeted batched attack) classifies as a compromise; its minimal
  // reproducer must still be a compromise, not merely any failure.
  ScenarioConfig failing;
  failing.params.max_size = 1 << 12;
  failing.params.walk_mode = core::WalkMode::kSampleExact;
  failing.params.k = 10;
  failing.params.tau = 0.15;
  failing.params.shuffle_enabled = false;
  failing.n0 = 900;
  failing.topology = core::InitTopology::kModeledSparse;
  failing.steps = 100;
  failing.sample_every = 5;
  failing.seed = 37;
  failing.batch_ops = 8;
  failing.shards = 2;
  failing.batch_byz_fraction = 0.15;
  failing.batch_placement = BatchPlacement::kTargeted;
  failing.batch_leave_quota = 8;

  const ScenarioResult before = run_corpus_scenario(failing, "");
  const FailureKind kind = classify_failure(failing.params.tau, before);
  ASSERT_NE(kind, FailureKind::kNone);

  std::size_t rounds = 0;
  const ScenarioConfig shrunk = shrink_failing_config(failing, &rounds);
  EXPECT_GE(rounds, 1u);
  const ScenarioResult after = run_corpus_scenario(shrunk, "");
  EXPECT_EQ(classify_failure(shrunk.params.tau, after), kind)
      << "shrinking changed the failure kind";
}

TEST(CoverageTest, GeneratedCorpusStratifiesTheBehaviorAxes) {
  CorpusAxes axes;
  axes.master_seed = 424242;
  axes.count = 6;
  axes.min_steps = 12;
  axes.max_steps = 16;
  const std::string dir = temp_path("corpus_axes");
  const auto cases = generate_corpus(axes, dir);
  ASSERT_EQ(cases.size(), 6u);

  std::set<core::MergePolicy> merges;
  std::set<core::ThresholdMode> thresholds;
  std::set<core::WalkMode> walks;
  std::set<core::ResolveMode> resolves;
  for (const CorpusCase& c : cases) {
    merges.insert(c.config.params.merge_policy);
    thresholds.insert(c.config.params.threshold_mode);
    walks.insert(c.config.params.walk_mode);
    resolves.insert(c.config.params.resolve_mode);
  }
  EXPECT_EQ(merges.size(), 2u);
  EXPECT_EQ(thresholds.size(), 2u);
  EXPECT_EQ(walks.size(), 2u);
  EXPECT_EQ(resolves.size(), 3u);

  // Case 0 records through the legacy v1 writer; the rest are v2.
  EXPECT_EQ(trace_info(dir + "/" + cases[0].trace_file).version, 1u);
  EXPECT_EQ(trace_info(dir + "/" + cases[1].trace_file).version, 2u);

  // Both formats replay green.
  EXPECT_TRUE(replay_trace(dir + "/" + cases[0].trace_file).ok);
  EXPECT_TRUE(replay_trace(dir + "/" + cases[1].trace_file).ok);

  // The manifest names every case.
  std::ifstream manifest(dir + "/MANIFEST.tsv");
  ASSERT_TRUE(manifest.good());
  std::string content((std::istreambuf_iterator<char>(manifest)),
                      std::istreambuf_iterator<char>());
  for (const CorpusCase& c : cases) {
    EXPECT_NE(content.find(c.name), std::string::npos) << c.name;
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace now::sim
