// Trace format v2 (DESIGN.md §10): embedded checkpoints + footer index +
// seekable replay. Covers the footer round trip, seek-restore-continue
// bit-identity against the full replay (across shard counts and every
// ResolveMode), v1 backward compatibility (reader AND writer), and the
// malformed-footer rejection paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/snapshot.hpp"
#include "sim/trace.hpp"

namespace now::sim {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Batched adversarial scenario exercising every frame type.
ScenarioConfig batched_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.params.k = 10;
  config.params.tau = 0.10;
  config.n0 = 800;
  config.topology = core::InitTopology::kModeledSparse;
  config.steps = 40;
  config.sample_every = 5;
  config.seed = seed;
  config.batch_ops = 6;
  config.shards = 4;
  config.batch_byz_fraction = 0.10;
  config.batch_placement = BatchPlacement::kTargeted;
  config.batch_leave_quota = 2;
  return config;
}

ScenarioResult record_trace(const ScenarioConfig& base,
                            const std::string& path) {
  ScenarioConfig config = base;
  config.trace_path = path;
  Metrics metrics;
  adversary::RandomChurnAdversary adversary{
      config.params.tau, adversary::ChurnSchedule::hold(config.n0)};
  return run_scenario(config, adversary, metrics);
}

// --- raw-file surgery helpers (craft malformed-but-checksummed files) ---

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t read_u64_le(const std::vector<std::uint8_t>& buf,
                          std::size_t off) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
  }
  return v;
}

void write_u64_le(std::vector<std::uint8_t>& buf, std::size_t off,
                  std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// File layout: magic(8) + version(4) + payload + fnv1a64(payload)(8).
constexpr std::size_t kFilePrefix = 12;

/// Applies `edit` to the payload and re-stamps a VALID checksum, so the
/// mutated file passes framing and fails only at the targeted validation.
void corrupt_payload(const std::string& path,
                     const std::function<void(std::vector<std::uint8_t>&,
                                              std::size_t)>& edit) {
  std::vector<std::uint8_t> file = read_file_bytes(path);
  ASSERT_GT(file.size(), kFilePrefix + 8);
  const std::size_t payload_size = file.size() - kFilePrefix - 8;
  std::vector<std::uint8_t> payload(file.begin() + kFilePrefix,
                                    file.begin() + kFilePrefix +
                                        static_cast<std::ptrdiff_t>(
                                            payload_size));
  edit(payload, payload_size);
  std::copy(payload.begin(), payload.end(), file.begin() + kFilePrefix);
  write_u64_le(file, kFilePrefix + payload_size,
               core::fnv1a64(payload.data(), payload.size()));
  write_file_bytes(path, file);
}

TEST(TraceSeekTest, RecorderEmbedsCheckpointsAtRequestedCadence) {
  const std::string path = temp_path("seek_cadence.trace");
  ScenarioConfig config = batched_config(101);
  config.trace_checkpoint_every = 10;
  (void)record_trace(config, path);

  const TraceInfo info = trace_info(path);
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.steps, config.steps);
  EXPECT_EQ(info.tau, config.params.tau);

  // Checkpoints at 10, 20, 30 — never at the final step (the end summary
  // already covers it).
  const auto checkpoints = trace_checkpoints(path);
  ASSERT_EQ(checkpoints.size(), 3u);
  EXPECT_EQ(checkpoints[0].step, 10u);
  EXPECT_EQ(checkpoints[1].step, 20u);
  EXPECT_EQ(checkpoints[2].step, 30u);
  EXPECT_EQ(info.checkpoint_count, 3u);

  // The full replay byte-verifies each embedded snapshot.
  const TraceReplayResult replay = replay_trace(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.checkpoints_checked, 3u);
  std::remove(path.c_str());
}

TEST(TraceSeekTest, AutoCadenceTargetsAboutEightCheckpoints) {
  const std::string path = temp_path("seek_auto.trace");
  (void)record_trace(batched_config(103), path);  // steps=40, cadence 8
  const auto checkpoints = trace_checkpoints(path);
  ASSERT_EQ(checkpoints.size(), 4u);  // 8, 16, 24, 32
  EXPECT_EQ(checkpoints.front().step, 8u);
  EXPECT_EQ(checkpoints.back().step, 32u);
  std::remove(path.c_str());
}

TEST(TraceSeekTest, SeekRestoreContinueMatchesFullReplay) {
  const std::string path = temp_path("seek_continue.trace");
  ScenarioConfig config = batched_config(107);
  config.trace_checkpoint_every = 10;
  (void)record_trace(config, path);

  const TraceReplayResult full = replay_trace(path);
  ASSERT_TRUE(full.ok) << full.error;

  const auto checkpoints = trace_checkpoints(path);
  ASSERT_EQ(checkpoints.size(), 3u);
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    ReplayOptions opts;
    opts.start_checkpoint = i;
    const TraceReplayResult seek = replay_trace(path, opts);
    ASSERT_TRUE(seek.ok) << "seek from checkpoint " << i << ": "
                         << seek.error;
    EXPECT_EQ(seek.start_step, checkpoints[i].step);
    // Later embedded checkpoints are still byte-verified.
    EXPECT_EQ(seek.checkpoints_checked, checkpoints.size() - 1 - i);
    // The whole-run aggregates come out identical to the full replay —
    // the seeded partials plus the replayed tail.
    EXPECT_EQ(seek.result.peak_byz_fraction, full.result.peak_byz_fraction);
    EXPECT_EQ(seek.result.ever_compromised, full.result.ever_compromised);
    EXPECT_EQ(seek.result.total_splits, full.result.total_splits);
    EXPECT_EQ(seek.result.total_merges, full.result.total_merges);
    EXPECT_EQ(seek.result.final_nodes, full.result.final_nodes);
    EXPECT_EQ(seek.result.final_clusters, full.result.final_clusters);
    EXPECT_EQ(seek.result.final_byzantine, full.result.final_byzantine);
    // The replayed tail samples are bit-identical to the full replay's.
    ASSERT_LE(seek.result.samples.size(), full.result.samples.size());
    const std::size_t skip =
        full.result.samples.size() - seek.result.samples.size();
    for (std::size_t j = 0; j < seek.result.samples.size(); ++j) {
      EXPECT_EQ(seek.result.samples[j], full.result.samples[skip + j])
          << "checkpoint " << i << " tail sample " << j;
    }
  }
  std::remove(path.c_str());
}

TEST(TraceSeekTest, SeekIsBitIdenticalAcrossShardsAndResolveModes) {
  const std::string path = temp_path("seek_equiv.trace");
  ScenarioConfig config = batched_config(109);
  config.trace_checkpoint_every = 10;
  (void)record_trace(config, path);

  const TraceReplayResult full = replay_trace(path);
  ASSERT_TRUE(full.ok) << full.error;

  const std::size_t shard_axis[] = {1, 4, 8};
  const core::ResolveMode resolve_axis[] = {core::ResolveMode::kAuto,
                                            core::ResolveMode::kSequential,
                                            core::ResolveMode::kOptimistic};
  for (const std::size_t shards : shard_axis) {
    for (const core::ResolveMode resolve : resolve_axis) {
      ReplayOptions opts;
      opts.start_checkpoint = 1;  // mid-trace restore
      opts.shards_override = shards;
      opts.override_resolve = true;
      opts.resolve_mode = resolve;
      const TraceReplayResult seek = replay_trace(path, opts);
      ASSERT_TRUE(seek.ok)
          << "shards=" << shards << " resolve="
          << static_cast<int>(resolve) << ": " << seek.error;
      // Replay compares every sample and later checkpoint bit-exactly, so
      // ok already proves equivalence; the finals double-check it.
      EXPECT_EQ(seek.result.final_nodes, full.result.final_nodes);
      EXPECT_EQ(seek.result.final_byzantine, full.result.final_byzantine);
      EXPECT_EQ(seek.result.peak_byz_fraction,
                full.result.peak_byz_fraction);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceSeekTest, V1WriterStaysReadableAndUnseekable) {
  const std::string path = temp_path("seek_v1.trace");
  ScenarioConfig config = batched_config(113);
  config.trace_format = 1;  // legacy writer
  const ScenarioResult recorded = record_trace(config, path);

  const TraceInfo info = trace_info(path);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.checkpoint_count, 0u);
  EXPECT_TRUE(trace_checkpoints(path).empty());

  const TraceReplayResult replay = replay_trace(path);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(replay.checkpoints_checked, 0u);
  EXPECT_EQ(replay.result.final_nodes, recorded.final_nodes);

  // Seeking a v1 trace is a hard error, not a silent full replay.
  ReplayOptions opts;
  opts.start_checkpoint = 0;
  EXPECT_THROW((void)replay_trace(path, opts), core::SnapshotError);
  std::remove(path.c_str());
}

TEST(TraceSeekTest, V1AndV2RecordTheSameTrajectory) {
  // The format bump cannot change what is recorded: the same scenario
  // written through both writers replays to identical outcomes.
  const std::string v1 = temp_path("seek_pair_v1.trace");
  const std::string v2 = temp_path("seek_pair_v2.trace");
  ScenarioConfig config = batched_config(127);
  config.trace_format = 1;
  (void)record_trace(config, v1);
  config.trace_format = 0;
  (void)record_trace(config, v2);

  const TraceReplayResult a = replay_trace(v1);
  const TraceReplayResult b = replay_trace(v2);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.result.samples.size(), b.result.samples.size());
  for (std::size_t i = 0; i < a.result.samples.size(); ++i) {
    EXPECT_EQ(a.result.samples[i], b.result.samples[i]);
  }
  EXPECT_EQ(a.result.final_nodes, b.result.final_nodes);
  EXPECT_EQ(a.result.total_splits, b.result.total_splits);
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(TraceSeekTest, MalformedFootersAreRejectedNotMisparsed) {
  const std::string path = temp_path("seek_malformed.trace");
  ScenarioConfig config = batched_config(131);
  config.trace_checkpoint_every = 10;
  (void)record_trace(config, path);
  const std::vector<std::uint8_t> pristine = read_file_bytes(path);

  // Footer offset pointing past the end of the payload.
  corrupt_payload(path, [](std::vector<std::uint8_t>& payload,
                           std::size_t size) {
    write_u64_le(payload, size - 8, size + 1000);
  });
  EXPECT_THROW((void)trace_checkpoints(path), core::SnapshotError);
  EXPECT_THROW((void)replay_trace(path), core::SnapshotError);

  // Footer offset landing mid-stream (magic tripwire).
  write_file_bytes(path, pristine);
  corrupt_payload(path, [](std::vector<std::uint8_t>& payload,
                           std::size_t size) {
    write_u64_le(payload, size - 8, 4);
  });
  EXPECT_THROW((void)trace_checkpoints(path), core::SnapshotError);

  // A checkpoint index entry pointing past the event stream ("offset past
  // EOF" flavor): entry 0's offset field lives at footer + 4 (magic) + 8
  // (count) + 8 (step).
  write_file_bytes(path, pristine);
  corrupt_payload(path, [](std::vector<std::uint8_t>& payload,
                           std::size_t size) {
    const std::uint64_t footer = read_u64_le(payload, size - 8);
    write_u64_le(payload, static_cast<std::size_t>(footer) + 4 + 8 + 8,
                 footer + 1);
  });
  EXPECT_THROW((void)trace_checkpoints(path), core::SnapshotError);

  // Plain truncation (footer cut off) dies at the checksum gate.
  std::vector<std::uint8_t> truncated = pristine;
  truncated.resize(truncated.size() - 20);
  write_file_bytes(path, truncated);
  EXPECT_THROW((void)replay_trace(path), core::SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace now::sim
