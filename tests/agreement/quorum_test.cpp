#include "agreement/quorum.hpp"

#include "common/node_set.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace now::agreement {
namespace {

std::vector<NodeId> make_nodes(std::size_t n) {
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.emplace_back(i * 10);
  return nodes;
}

TEST(QuorumTest, CommitteeHasRequestedSizeAndIsSorted) {
  Metrics metrics;
  Rng rng{1};
  const auto nodes = make_nodes(50);
  const auto result = build_representative_quorum(nodes, 12, metrics, rng);
  EXPECT_EQ(result.committee.size(), 12u);
  EXPECT_TRUE(std::is_sorted(result.committee.begin(),
                             result.committee.end()));
  const NodeSet unique(result.committee.begin(),
                                result.committee.end());
  EXPECT_EQ(unique.size(), 12u);
  for (const NodeId id : result.committee) {
    EXPECT_TRUE(std::binary_search(nodes.begin(), nodes.end(), id));
  }
}

TEST(QuorumTest, ChargesPublishedCost) {
  Metrics metrics;
  Rng rng{2};
  const auto nodes = make_nodes(100);
  const auto result = build_representative_quorum(nodes, 10, metrics, rng);
  EXPECT_EQ(metrics.total().messages, result.charged.messages);
  EXPECT_EQ(metrics.total().rounds, result.charged.rounds);
  EXPECT_EQ(result.charged, quorum_cost_model(100));
}

TEST(QuorumTest, CostModelScalesAsN32) {
  const auto c1 = quorum_cost_model(1000);
  const auto c2 = quorum_cost_model(4000);
  // n^{3/2} * log n: quadrupling n multiplies by 8 * (log ratio ~ 1.2).
  const double ratio = static_cast<double>(c2.messages) /
                       static_cast<double>(c1.messages);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 11.0);
}

TEST(QuorumTest, CommitteeIsUniform) {
  // Inclusion probability of a fixed node should be ~ size / n.
  Metrics metrics;
  Rng rng{3};
  const auto nodes = make_nodes(20);
  constexpr int kTrials = 20000;
  int hits = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto result = build_representative_quorum(nodes, 5, metrics, rng);
    hits += std::binary_search(result.committee.begin(),
                               result.committee.end(), nodes[7])
                ? 1
                : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(QuorumTest, HonestMajorityWithHighProbability) {
  // With tau = 0.15 and a committee of ~ 5 ln N members, > 2/3 honest holds
  // in the overwhelming majority of draws (Chernoff / Lemma-1 style; larger
  // committees — larger k in the paper — sharpen the bound).
  Metrics metrics;
  Rng rng{4};
  const std::size_t n = 1000;
  const auto nodes = make_nodes(n);
  NodeSet byz;
  for (std::size_t i = 0; i < 150; ++i) byz.insert(nodes[i * 6]);

  constexpr int kTrials = 2000;
  int bad = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto result = build_representative_quorum(nodes, 33, metrics, rng);
    std::size_t b = 0;
    for (const NodeId id : result.committee) b += byz.contains(id) ? 1u : 0u;
    if (3 * b >= result.committee.size()) ++bad;
  }
  EXPECT_LT(static_cast<double>(bad) / kTrials, 0.05);
}

}  // namespace
}  // namespace now::agreement
