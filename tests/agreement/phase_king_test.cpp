#include "agreement/phase_king.hpp"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace now::agreement {
namespace {

std::vector<NodeId> make_members(std::size_t n) {
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; ++i) members.emplace_back(i);
  return members;
}

TEST(PhaseKingTest, AllHonestUnanimousInput) {
  Metrics metrics;
  Rng rng{1};
  const auto members = make_members(7);
  std::map<NodeId, std::uint64_t> inputs;
  for (const NodeId m : members) inputs[m] = 4;
  const auto result = run_phase_king(members, {}, inputs,
                                     ByzBehavior::kSilent, metrics, rng);
  ASSERT_EQ(result.decisions.size(), 7u);
  for (const auto& [id, v] : result.decisions) EXPECT_EQ(v, 4u);
}

TEST(PhaseKingTest, AllHonestMixedInputsStillAgree) {
  Metrics metrics;
  Rng rng{2};
  const auto members = make_members(10);
  std::map<NodeId, std::uint64_t> inputs;
  for (std::size_t i = 0; i < members.size(); ++i)
    inputs[members[i]] = i % 3;
  const auto result = run_phase_king(members, {}, inputs,
                                     ByzBehavior::kSilent, metrics, rng);
  const std::uint64_t v = result.decisions.begin()->second;
  for (const auto& [id, decided] : result.decisions) EXPECT_EQ(decided, v);
}

TEST(PhaseKingTest, SingleNodeDecidesOwnValue) {
  Metrics metrics;
  Rng rng{3};
  const auto members = make_members(1);
  const auto result = run_phase_king(
      members, {}, {{NodeId{0}, 9}}, ByzBehavior::kSilent, metrics, rng);
  EXPECT_EQ(result.decisions.at(NodeId{0}), 9u);
}

TEST(PhaseKingTest, CostWithinBound) {
  Metrics metrics;
  Rng rng{4};
  const auto members = make_members(13);
  std::map<NodeId, std::uint64_t> inputs;
  for (const NodeId m : members) inputs[m] = 1;
  const auto result = run_phase_king(members, {}, inputs,
                                     ByzBehavior::kSilent, metrics, rng);
  const Cost bound = phase_king_cost_bound(13);
  EXPECT_LE(result.messages, bound.messages);
  EXPECT_EQ(result.rounds, bound.rounds);
}

struct AdversarialCase {
  std::size_t n;
  ByzBehavior behavior;
};

class PhaseKingAdversarialTest
    : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(PhaseKingAdversarialTest, AgreementAndValidityUnderMaxFaults) {
  const auto [n, behavior] = GetParam();
  const std::size_t f = (n - 1) / 3;

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Metrics metrics;
    Rng rng{seed * 1000 + n};
    const auto members = make_members(n);
    // Corrupt the *last* f members (kings are taken in id order, so the
    // first phases have honest kings; also try corrupting the first f, so
    // the early kings are Byzantine).
    NodeSet byz_front(members.begin(),
                               members.begin() + static_cast<long>(f));
    NodeSet byz_back(members.end() - static_cast<long>(f),
                              members.end());
    for (const auto& byzantine : {byz_front, byz_back}) {
      // Validity: all honest share input 1 -> decision must be 1 whatever
      // the adversary does.
      std::map<NodeId, std::uint64_t> inputs;
      for (const NodeId m : members) inputs[m] = 1;
      const auto result =
          run_phase_king(members, byzantine, inputs, behavior, metrics, rng);
      ASSERT_EQ(result.decisions.size(), n - f);
      for (const auto& [id, v] : result.decisions) {
        EXPECT_EQ(v, 1u) << "n=" << n << " seed=" << seed;
      }

      // Agreement: divergent honest inputs -> all honest decide the same.
      std::map<NodeId, std::uint64_t> mixed;
      std::uint64_t salt = seed;
      for (const NodeId m : members) mixed[m] = splitmix64(salt) % 2;
      const auto r2 =
          run_phase_king(members, byzantine, mixed, behavior, metrics, rng);
      const std::uint64_t first = r2.decisions.begin()->second;
      for (const auto& [id, v] : r2.decisions) {
        EXPECT_EQ(v, first) << "n=" << n << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PhaseKingAdversarialTest,
    ::testing::Values(
        AdversarialCase{4, ByzBehavior::kSilent},
        AdversarialCase{4, ByzBehavior::kEquivocate},
        AdversarialCase{7, ByzBehavior::kSilent},
        AdversarialCase{7, ByzBehavior::kRandomLies},
        AdversarialCase{7, ByzBehavior::kEquivocate},
        AdversarialCase{7, ByzBehavior::kCollude},
        AdversarialCase{10, ByzBehavior::kEquivocate},
        AdversarialCase{10, ByzBehavior::kCollude},
        AdversarialCase{13, ByzBehavior::kRandomLies},
        AdversarialCase{13, ByzBehavior::kEquivocate}));

TEST(PhaseKingTest, GoldenCostParityAcrossTransportRefactor) {
  // Exact (messages, rounds) pinned from the pre-Transport monolithic
  // simulator: the RoundEngine + InProcTransport split must keep the
  // message-level protocols bit-identical, costs included.
  struct Golden {
    std::size_t n;
    std::uint64_t messages;
    std::uint64_t rounds;
  };
  for (const Golden g :
       {Golden{4, 54, 7}, Golden{7, 270, 10}, Golden{13, 1620, 16}}) {
    Metrics metrics;
    Rng rng{1};
    const auto members = make_members(g.n);
    std::map<NodeId, std::uint64_t> inputs;
    for (const NodeId m : members) inputs[m] = 4;
    const auto result = run_phase_king(members, {}, inputs,
                                       ByzBehavior::kSilent, metrics, rng);
    EXPECT_EQ(result.messages, g.messages) << "n=" << g.n;
    EXPECT_EQ(result.rounds, g.rounds) << "n=" << g.n;
    EXPECT_EQ(metrics.total().messages, g.messages) << "n=" << g.n;
  }
}

TEST(PhaseKingTest, GoldenCostParityUnderEquivocation) {
  // Adversarial golden pin: Byzantine send patterns (and the RNG draws
  // behind them) must also survive the transport refactor bit-exactly.
  Metrics metrics;
  Rng rng{7};
  const auto members = make_members(10);
  const NodeSet byz{NodeId{7}, NodeId{8}, NodeId{9}};
  std::map<NodeId, std::uint64_t> inputs;
  for (const NodeId m : members) inputs[m] = 1;
  const auto result = run_phase_king(members, byz, inputs,
                                     ByzBehavior::kEquivocate, metrics, rng);
  EXPECT_EQ(result.messages, 891u);
  EXPECT_EQ(result.rounds, 13u);
}

TEST(PhaseKingTest, CostBoundGrowsCubically) {
  // 3(f+1)+1 rounds of n(n-1) messages with f ~ n/3 -> Theta(n^3).
  const Cost c100 = phase_king_cost_bound(100);
  const Cost c200 = phase_king_cost_bound(200);
  const double ratio = static_cast<double>(c200.messages) /
                       static_cast<double>(c100.messages);
  EXPECT_NEAR(ratio, 8.0, 0.8);
}

}  // namespace
}  // namespace now::agreement
