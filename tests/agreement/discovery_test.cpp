#include "agreement/discovery.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/erdos_renyi.hpp"

namespace now::agreement {
namespace {

graph::Graph path_topology(std::size_t n) {
  graph::Graph g;
  for (graph::Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (graph::Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(DiscoveryTest, AllHonestLearnEveryone) {
  Metrics metrics;
  const auto topo = path_topology(10);
  const auto result = run_discovery(topo, {}, metrics);
  EXPECT_TRUE(result.complete);
  for (const auto& [id, known] : result.knowledge) {
    EXPECT_EQ(known.size(), 10u);
  }
}

TEST(DiscoveryTest, RoundsBoundedByDiameter) {
  Metrics metrics;
  const auto topo = path_topology(12);
  const auto result = run_discovery(topo, {}, metrics);
  // Path of 12: diameter 11, but every node starts knowing its neighbors,
  // so the flood needs at most diameter - 1 forwarding rounds.
  EXPECT_LE(result.rounds, graph::diameter(topo));
  EXPECT_GE(result.rounds, 1u);
}

TEST(DiscoveryTest, CompleteTopologyFinishesInOneRound) {
  Metrics metrics;
  graph::Graph topo;
  Rng rng{1};
  std::vector<graph::Vertex> verts{0, 1, 2, 3, 4};
  graph::generate_erdos_renyi(topo, verts, 1.0, rng);
  const auto result = run_discovery(topo, {}, metrics);
  EXPECT_TRUE(result.complete);
  // Everyone already knows everyone: one quiescent confirmation round where
  // fresh sets are flushed, then nothing new.
  EXPECT_LE(result.rounds, 1u);
}

TEST(DiscoveryTest, SilentByzantineCannotBlockConnectedHonest) {
  // Honest nodes 0..8 in a path, Byzantine node 9 hangs off node 0.
  Metrics metrics;
  auto topo = path_topology(9);
  topo.add_vertex(9);
  topo.add_edge(9, 0);
  const NodeSet byz{NodeId{9}};
  const auto result = run_discovery(topo, byz, metrics);
  EXPECT_TRUE(result.complete);
  // Honest still learn the Byzantine node's id (it is someone's neighbor).
  EXPECT_TRUE(result.knowledge.at(NodeId{8}).contains(NodeId{9}));
}

TEST(DiscoveryTest, ByzantineCutVertexDoesBlock) {
  // 0-1-2  3-4-5 joined only through Byzantine node 6: the honest nodes are
  // NOT connected once 6 withholds, so discovery cannot complete. This is
  // exactly why the paper assumes the adversary cannot disconnect the
  // honest component.
  graph::Graph topo;
  for (graph::Vertex v = 0; v <= 6; ++v) topo.add_vertex(v);
  topo.add_edge(0, 1);
  topo.add_edge(1, 2);
  topo.add_edge(3, 4);
  topo.add_edge(4, 5);
  topo.add_edge(2, 6);
  topo.add_edge(6, 3);
  Metrics metrics;
  const auto result = run_discovery(topo, {NodeId{6}}, metrics);
  EXPECT_FALSE(result.complete);
  EXPECT_FALSE(result.knowledge.at(NodeId{0}).contains(NodeId{5}));
}

TEST(DiscoveryTest, CostIsBoundedByNTimesEdges) {
  // Each identity crosses each directed edge at most once -> <= 2 * n * e.
  Metrics metrics;
  const std::size_t n = 16;
  const auto topo = path_topology(n);
  const auto result = run_discovery(topo, {}, metrics);
  EXPECT_LE(result.messages,
            2 * static_cast<std::uint64_t>(n) * topo.num_edges());
  EXPECT_EQ(metrics.total().messages, result.messages);
}

TEST(DiscoveryTest, GoldenCostParityAcrossTransportRefactor) {
  // Exact (messages, rounds) pinned from the pre-Transport monolithic
  // simulator; the engine rounds mapping (engine runs charged rounds + 2)
  // is part of the contract these pins guard.
  {
    Metrics metrics;
    const auto result = run_discovery(path_topology(12), {}, metrics);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.messages, 264u);
    EXPECT_EQ(result.rounds, 10u);
  }
  {
    Metrics metrics;
    graph::Graph topo;
    Rng rng{2};
    std::vector<graph::Vertex> verts{0, 1, 2, 3, 4, 5, 6, 7, 8};
    graph::generate_erdos_renyi(topo, verts, 0.5, rng);
    const auto result = run_discovery(topo, {NodeId{3}}, metrics);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.messages, 261u);
    EXPECT_EQ(result.rounds, 1u);
  }
}

TEST(DiscoveryTest, DenserTopologyCostsMore) {
  Metrics sparse_metrics;
  Metrics dense_metrics;
  Rng rng{2};
  std::vector<graph::Vertex> verts;
  for (graph::Vertex v = 0; v < 30; ++v) verts.push_back(v);

  graph::Graph dense;
  graph::generate_erdos_renyi(dense, verts, 1.0, rng);
  const auto sparse_result =
      run_discovery(path_topology(30), {}, sparse_metrics);
  const auto dense_result = run_discovery(dense, {}, dense_metrics);
  EXPECT_GT(dense_result.messages, sparse_result.messages);
}

}  // namespace
}  // namespace now::agreement
