#include "over/overlay.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/spectral.hpp"

namespace now::over {
namespace {

std::vector<ClusterId> make_clusters(std::size_t n, std::uint64_t first = 0) {
  std::vector<ClusterId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.emplace_back(first + i);
  return ids;
}

/// Uniform sampler over the overlay's current vertices.
Overlay::Sampler uniform_sampler(const Overlay& overlay) {
  return [&overlay](ClusterId, Rng& rng) {
    const auto verts = overlay.graph().vertices();
    return ClusterId{verts[rng.uniform(verts.size())]};
  };
}

OverParams test_params() {
  OverParams p;
  p.max_size = 1 << 14;
  p.alpha = 0.1;
  return p;
}

TEST(OverlayTest, DegreeParametersAreConsistent) {
  Overlay overlay{test_params()};
  EXPECT_GE(overlay.target_degree(), 3u);
  EXPECT_LE(overlay.degree_floor(), overlay.target_degree());
  EXPECT_GE(overlay.degree_cap(), overlay.target_degree());
}

TEST(OverlayTest, InitializeMeetsFloorAndCap) {
  Overlay overlay{test_params()};
  Rng rng{1};
  overlay.initialize(make_clusters(60), rng);
  EXPECT_EQ(overlay.num_clusters(), 60u);
  const auto& g = overlay.graph();
  EXPECT_GE(g.min_degree(),
            std::min(overlay.degree_floor(), std::size_t{59}));
  EXPECT_LE(g.max_degree(), overlay.degree_cap());
}

TEST(OverlayTest, InitializeIsConnectedAtRealisticSizes) {
  Overlay overlay{test_params()};
  Rng rng{2};
  overlay.initialize(make_clusters(100), rng);
  EXPECT_TRUE(graph::is_connected(overlay.graph()));
}

TEST(OverlayTest, TinyOverlayDegenerate) {
  Overlay overlay{test_params()};
  Rng rng{3};
  overlay.initialize(make_clusters(2), rng);
  EXPECT_EQ(overlay.num_clusters(), 2u);
  EXPECT_TRUE(overlay.graph().has_edge(0, 1));  // floor repair links them
}

TEST(OverlayTest, AddVertexWiresTargetDegree) {
  Overlay overlay{test_params()};
  Rng rng{4};
  overlay.initialize(make_clusters(50), rng);
  const ClusterId fresh{1000};
  const auto nbrs = overlay.add_vertex(fresh, uniform_sampler(overlay), rng);
  EXPECT_EQ(overlay.degree(fresh), nbrs.size());
  EXPECT_GE(overlay.degree(fresh), overlay.degree_floor());
  EXPECT_LE(overlay.degree(fresh), overlay.degree_cap());
  for (const ClusterId nb : nbrs) EXPECT_TRUE(overlay.has(nb));
}

TEST(OverlayTest, RemoveVertexRepairsFloors) {
  Overlay overlay{test_params()};
  Rng rng{5};
  overlay.initialize(make_clusters(40), rng);
  auto sampler = uniform_sampler(overlay);
  // Remove a third of the vertices; every survivor must stay above floor.
  for (std::uint64_t v = 0; v < 13; ++v) {
    overlay.remove_vertex(ClusterId{v}, sampler, rng);
  }
  EXPECT_EQ(overlay.num_clusters(), 27u);
  EXPECT_GE(overlay.graph().min_degree(), overlay.degree_floor());
  EXPECT_LE(overlay.graph().max_degree(), overlay.degree_cap());
  EXPECT_TRUE(graph::is_connected(overlay.graph()));
}

class OverlayChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlayChurnTest, PropertiesSurviveLongChurn) {
  // Property 1 (expansion, checked spectrally) and Property 2 (degree cap)
  // after a long random add/remove sequence.
  Overlay overlay{test_params()};
  Rng rng{GetParam()};
  overlay.initialize(make_clusters(60), rng);
  auto sampler = uniform_sampler(overlay);
  std::uint64_t next_id = 1000;
  for (int step = 0; step < 400; ++step) {
    const bool add = overlay.num_clusters() < 40 ||
                     (overlay.num_clusters() < 90 && rng.bernoulli(0.5));
    if (add) {
      overlay.add_vertex(ClusterId{next_id++}, sampler, rng);
    } else {
      const auto verts = overlay.graph().vertices();
      overlay.remove_vertex(ClusterId{verts[rng.uniform(verts.size())]},
                            sampler, rng);
    }
    ASSERT_LE(overlay.graph().max_degree(), overlay.degree_cap());
  }
  EXPECT_GE(overlay.graph().min_degree(), overlay.degree_floor());
  EXPECT_TRUE(graph::is_connected(overlay.graph()));
  Rng spectral_rng{99};
  const auto est =
      graph::estimate_expansion(overlay.graph(), spectral_rng, 400);
  EXPECT_GT(est.spectral_gap, 0.2);  // solidly an expander
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayChurnTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(OverlayTest, NeighborsAccessor) {
  Overlay overlay{test_params()};
  Rng rng{6};
  overlay.initialize(make_clusters(20), rng);
  for (const auto v : overlay.graph().vertices()) {
    const auto nbrs = overlay.neighbors(ClusterId{v});
    EXPECT_EQ(nbrs.size(), overlay.degree(ClusterId{v}));
    for (const ClusterId nb : nbrs) {
      EXPECT_TRUE(overlay.graph().has_edge(v, nb.value()));
    }
  }
}

}  // namespace
}  // namespace now::over
