// Tests for the flat extent-based membership arena (cluster/member_slab.hpp,
// DESIGN.md §9): the extent/cap policy, the parallel-safe try_assign + spill
// protocol, compaction (trigger, packing, and — the tentpole contract — its
// UNOBSERVABILITY to everything RNG-visible), slab-geometry bit-identity
// across shard counts and resolve modes, and snapshot round-trips of a
// fragmented slab.
#include "cluster/member_slab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/now.hpp"
#include "core/state.hpp"

namespace now::core {
namespace {

NowParams slab_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  p.k = 10;
  p.tau = 0.10;
  return p;
}

over::OverParams small_over() {
  over::OverParams p;
  p.max_size = 1 << 12;
  return p;
}

/// Full slab consistency sweep against the cluster partition: every live
/// cluster's extent is in bounds, sorted, sized consistently and disjoint
/// from every other extent; the live counter matches; and at rest the
/// compaction trigger has been honored (every mutation path ends in
/// maybe_compact).
void expect_slab_consistent(const NowState& state) {
  const cluster::MemberSlab& slab = state.member_slab();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  std::uint64_t live = 0;
  for (const ClusterId id : state.cluster_ids()) {
    const auto& c = state.cluster_at(id);
    const auto& e = slab.extent(state.slot_index(id));
    ASSERT_EQ(c.size(), static_cast<std::size_t>(e.size)) << "cluster " << id;
    ASSERT_LE(e.size, e.cap) << "cluster " << id;
    ASSERT_LE(e.first + e.cap, slab.tail()) << "cluster " << id;
    const auto members = c.members();
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()))
        << "cluster " << id;
    if (e.cap > 0) ranges.emplace_back(e.first, e.first + e.cap);
    live += e.size;
  }
  EXPECT_EQ(live, slab.live());
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    ASSERT_LE(ranges[i - 1].second, ranges[i].first) << "extents overlap";
  }
  EXPECT_FALSE(slab.compaction_due());
}

/// The slab's full observable geometry: the allocated prefix plus every
/// slot's (first, size, cap) triple. Bit-identity of this signature is the
/// layout-determinism contract.
struct SlabSignature {
  std::uint64_t tail = 0;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> extents;
  bool operator==(const SlabSignature&) const = default;
};

SlabSignature slab_signature(const NowState& state) {
  const cluster::MemberSlab& slab = state.member_slab();
  SlabSignature sig;
  sig.tail = slab.tail();
  for (std::size_t s = 0; s < slab.slot_count(); ++s) {
    const auto& e = slab.extent(s);
    sig.extents.emplace_back(e.first, e.size, e.cap);
  }
  return sig;
}

/// Sorted (cluster id, size) pairs — the full partition signature.
std::vector<std::pair<std::uint64_t, std::size_t>> partition_signature(
    const NowSystem& system) {
  std::vector<std::pair<std::uint64_t, std::size_t>> sig;
  for (const ClusterId id : system.state().cluster_ids()) {
    sig.emplace_back(id.value(), system.state().cluster_at(id).size());
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

std::pair<std::vector<NodeId>, OpReport> drive_batch(NowSystem& system,
                                                     Rng& victim_rng,
                                                     std::size_t shards) {
  const auto leaves = system.state().sample_distinct_nodes(victim_rng, 8);
  return system.step_parallel_mixed(8, 1, leaves, shards);
}

// --------------------------------------------------------------- slab units

TEST(MemberSlabTest, InsertEraseKeepSortedExtents) {
  cluster::MemberSlab slab;
  slab.acquire_slot(0);
  for (const std::uint64_t v : {9u, 1u, 5u, 3u, 7u}) {
    slab.insert_sorted(0, NodeId{v});
  }
  const auto members = slab.members(0);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(slab.size(0), 5u);
  EXPECT_EQ(slab.live(), 5u);
  slab.erase_sorted(0, NodeId{5});
  EXPECT_EQ(slab.size(0), 4u);
  EXPECT_EQ(slab.live(), 4u);
  const auto after = slab.members(0);
  EXPECT_TRUE(std::is_sorted(after.begin(), after.end()));
  EXPECT_FALSE(std::binary_search(after.begin(), after.end(), NodeId{5}));
}

TEST(MemberSlabTest, CapPolicyGrantsHeadroomAndRelocationMovesToTail) {
  cluster::MemberSlab slab;
  slab.acquire_slot(0);
  slab.acquire_slot(1);
  slab.insert_sorted(0, NodeId{1});
  // First insert allocates cap_for(1) = 9 at the tail.
  EXPECT_EQ(slab.extent(0).cap, cluster::MemberSlab::cap_for(1));
  const std::uint64_t tail_before = slab.tail();
  EXPECT_EQ(tail_before, slab.extent(0).cap);
  // A second slot carves strictly after the first.
  slab.insert_sorted(1, NodeId{2});
  EXPECT_EQ(slab.extent(1).first, tail_before);
  // Fill slot 0 past its cap: the extent relocates to a fresh tail range,
  // leaving its old range behind as dead space.
  const std::uint64_t old_first = slab.extent(0).first;
  for (std::uint64_t v = 10; slab.extent(0).first == old_first; ++v) {
    slab.insert_sorted(0, NodeId{v});
  }
  EXPECT_GT(slab.extent(0).first, slab.extent(1).first);
  const auto members = slab.members(0);
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
}

TEST(MemberSlabTest, TryAssignFailsBeyondCapAndNeverMoves) {
  cluster::MemberSlab slab;
  slab.acquire_slot(0);
  for (std::uint64_t v = 0; v < 4; ++v) slab.insert_sorted(0, NodeId{v});
  const auto extent_before = slab.extent(0);
  const std::uint64_t tail_before = slab.tail();

  // Within cap: succeeds in place.
  std::vector<NodeId> fits;
  for (std::uint64_t v = 100; v < 100 + extent_before.cap; ++v) {
    fits.emplace_back(v);
  }
  ASSERT_TRUE(slab.try_assign(0, fits));
  EXPECT_EQ(slab.extent(0).first, extent_before.first);
  EXPECT_EQ(slab.extent(0).cap, extent_before.cap);
  EXPECT_EQ(slab.tail(), tail_before);
  EXPECT_EQ(slab.live(), fits.size());

  // Beyond cap: refused, nothing changes.
  std::vector<NodeId> overflow = fits;
  overflow.emplace_back(999u);
  ASSERT_FALSE(slab.try_assign(0, overflow));
  EXPECT_EQ(slab.extent(0).first, extent_before.first);
  EXPECT_EQ(slab.size(0), fits.size());
  EXPECT_EQ(slab.tail(), tail_before);
}

TEST(MemberSlabTest, TryApplyEditsMatchesMergeAndThrowsBeforeMutating) {
  // The in-place stage-1 merge must produce exactly merge_sorted_edits'
  // output, refuse (untouched) when the merged run outgrows the cap, and
  // throw on a stale removal list WITHOUT having mutated the extent.
  cluster::MemberSlab slab;
  slab.acquire_slot(0);
  for (std::uint64_t v = 0; v < 40; v += 2) slab.insert_sorted(0, NodeId{v});
  const auto extent_before = slab.extent(0);

  // Mixed removals + additions, including an addition below the minimum
  // and one above the maximum, against the reference merge.
  const std::vector<NodeId> removals{NodeId{4}, NodeId{18}, NodeId{38}};
  const std::vector<NodeId> additions{NodeId{0xFFFF}, NodeId{1}, NodeId{19}};
  std::vector<NodeId> sorted_adds = additions;
  std::sort(sorted_adds.begin(), sorted_adds.end());
  std::vector<NodeId> expected;
  cluster::merge_sorted_edits(slab.members(0), removals, sorted_adds,
                              expected);
  ASSERT_TRUE(slab.try_apply_edits(0, removals, sorted_adds));
  EXPECT_TRUE(std::ranges::equal(slab.members(0), expected));
  EXPECT_EQ(slab.extent(0).first, extent_before.first);
  EXPECT_EQ(slab.extent(0).cap, extent_before.cap);
  EXPECT_EQ(slab.live(), expected.size());

  // Merged size beyond cap: refused, nothing changes.
  std::vector<NodeId> overflow;
  for (std::uint64_t v = 0; v <= extent_before.cap; ++v) {
    overflow.emplace_back(0x10000 + v);
  }
  ASSERT_FALSE(slab.try_apply_edits(0, {}, overflow));
  EXPECT_TRUE(std::ranges::equal(slab.members(0), expected));

  // Stale removals — a non-member and a duplicate — throw the same
  // std::invalid_argument as merge_sorted_edits, before any write.
  const std::vector<NodeId> absent{NodeId{4}};  // removed by the merge above
  EXPECT_THROW((void)slab.try_apply_edits(0, absent, {}),
               std::invalid_argument);
  const std::vector<NodeId> duplicate{NodeId{2}, NodeId{2}};
  EXPECT_THROW((void)slab.try_apply_edits(0, duplicate, {}),
               std::invalid_argument);
  EXPECT_TRUE(std::ranges::equal(slab.members(0), expected));
  EXPECT_EQ(slab.live(), expected.size());
}

TEST(MemberSlabTest, CompactionPacksAscendingSlotsAndResetsEmpties) {
  cluster::MemberSlab slab;
  for (std::size_t s = 0; s < 4; ++s) slab.acquire_slot(s);
  for (std::uint64_t v = 0; v < 20; ++v) slab.insert_sorted(1, NodeId{v});
  for (std::uint64_t v = 100; v < 110; ++v) slab.insert_sorted(3, NodeId{v});
  // Grow-then-shrink slot 1 to strand dead space behind a relocation.
  for (std::uint64_t v = 20; v < 60; ++v) slab.insert_sorted(1, NodeId{v});
  for (std::uint64_t v = 20; v < 60; ++v) slab.erase_sorted(1, NodeId{v});
  const std::vector<NodeId> one(slab.members(1).begin(),
                                slab.members(1).end());
  const std::vector<NodeId> three(slab.members(3).begin(),
                                  slab.members(3).end());

  slab.compact();
  EXPECT_GE(slab.compaction_count(), 1u);
  // Populated extents pack in ascending slot order with fresh cap_for
  // headroom; empty slots reset to zero.
  EXPECT_EQ(slab.extent(1).first, 0u);
  EXPECT_EQ(slab.extent(1).cap, cluster::MemberSlab::cap_for(one.size()));
  EXPECT_EQ(slab.extent(3).first, slab.extent(1).cap);
  EXPECT_EQ(slab.extent(3).cap, cluster::MemberSlab::cap_for(three.size()));
  EXPECT_EQ(slab.tail(), slab.extent(1).cap + slab.extent(3).cap);
  EXPECT_EQ(slab.extent(0).cap, 0u);
  EXPECT_EQ(slab.extent(2).cap, 0u);
  // Contents survive verbatim.
  const auto m1 = slab.members(1);
  const auto m3 = slab.members(3);
  EXPECT_TRUE(std::equal(m1.begin(), m1.end(), one.begin(), one.end()));
  EXPECT_TRUE(std::equal(m3.begin(), m3.end(), three.begin(), three.end()));
}

TEST(MemberSlabTest, CompactionTriggerIsAFunctionOfTailAndLive) {
  cluster::MemberSlab slab;
  slab.acquire_slot(0);
  // Inflate tail with churn on one slot; the trigger must fire exactly when
  // tail > 2 * live + slack, and every mutator self-compacts via
  // maybe_compact, so dead space stays bounded.
  for (std::uint64_t v = 0; v < 40000; ++v) {
    slab.insert_sorted(0, NodeId{v});
  }
  for (std::uint64_t v = 0; v < 39000; ++v) {
    slab.erase_sorted(0, NodeId{v});
  }
  EXPECT_FALSE(slab.compaction_due());
  EXPECT_LE(slab.tail(),
            2 * slab.live() + cluster::MemberSlab::kCompactSlack);
  EXPECT_GE(slab.compaction_count(), 1u);
}

// ---------------------------------------------------------- spill protocol

TEST(MemberSlabTest, OversizedMergeSpillsToSequentialCommit) {
  NowState state{small_over()};
  const ClusterId c = state.create_cluster();
  const std::size_t slot = state.slot_index(c);
  std::uint64_t next_id = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId node{next_id++};
    state.register_node(node);
    state.add_member(c, node);
  }
  const std::uint64_t cap = state.member_slab().extent(slot).cap;

  // A join burst larger than the extent's headroom: try_assign must refuse
  // and park the slot on the spill list instead of relocating in stage 1.
  std::vector<NowState::MemberEdit> edits;
  for (std::uint64_t i = 0; i <= cap; ++i) {
    edits.push_back({NodeId{1000 + i}, /*add=*/true});
  }
  NowState::EditScratch scratch;
  const std::int64_t delta =
      state.apply_member_edits(slot, edits, scratch);
  EXPECT_EQ(delta, static_cast<std::int64_t>(edits.size()));
  ASSERT_EQ(scratch.spills.size(), 1u);
  EXPECT_EQ(scratch.spills[0].first, slot);
  // The extent is untouched until the sequential commit lands the spill.
  EXPECT_EQ(state.cluster_at(c).size(), 4u);

  state.commit_spilled_members(scratch.spills[0].first,
                               scratch.spills[0].second);
  scratch.spills.clear();
  EXPECT_EQ(state.cluster_at(c).size(), 4u + edits.size());
  EXPECT_TRUE(state.cluster_at(c).contains(NodeId{1000}));
  EXPECT_TRUE(state.cluster_at(c).contains(NodeId{1000 + cap}));
  EXPECT_GT(state.member_slab().extent(slot).cap, cap);

  // Stage-2 bookkeeping reconciles cleanly (the debug assert inside
  // apply_size_deltas cross-checks the final extent size).
  const std::vector<std::pair<std::size_t, std::int64_t>> deltas{
      {slot, delta}};
  state.apply_size_deltas(deltas);
  state.adjust_placed_count(delta);
  EXPECT_EQ(state.num_nodes(), 4u + edits.size());
}

// ----------------------------------------------- system-level slab behavior

TEST(MemberSlabTest, SplitsCarveAndMergesCoalesceConsistently) {
  // Sustained growth (splits carve fresh extents) followed by sustained
  // shrinkage (merges drain and release extents): the slab stays consistent
  // with the partition after every operation.
  Metrics metrics;
  NowSystem system{slab_params(), metrics, 8};
  system.initialize(400, 0, InitTopology::kModeledSparse);
  const std::size_t clusters_before = system.num_clusters();
  std::size_t splits = 0;
  for (int i = 0; i < 200; ++i) {
    const auto [node, report] = system.join(false);
    splits += report.splits;
    expect_slab_consistent(system.state());
  }
  EXPECT_GT(splits, 0u);
  EXPECT_GT(system.num_clusters(), clusters_before);

  Rng rng{321};
  std::size_t merges = 0;
  for (int i = 0; i < 350 && system.num_nodes() > 100; ++i) {
    const auto report = system.leave(system.state().random_node(rng));
    merges += report.merges;
    expect_slab_consistent(system.state());
  }
  EXPECT_GT(merges, 0u);
  EXPECT_TRUE(system.check().ok);
}

TEST(MemberSlabTest, LayoutIsBitIdenticalAcrossShardsAndResolveModes) {
  // The tentpole determinism contract: the extent table — not just the
  // partition — is identical across shards {1, 4, 8} x all ResolveModes,
  // because the pool is only reshaped at sequential points and the spill
  // set is shard-independent.
  constexpr std::size_t kShardAxis[] = {1, 4, 8};
  constexpr ResolveMode kModes[] = {ResolveMode::kAuto,
                                    ResolveMode::kOptimistic,
                                    ResolveMode::kSequential};
  std::vector<std::unique_ptr<Metrics>> metrics;
  std::vector<std::unique_ptr<NowSystem>> systems;
  std::vector<Rng> victim_rngs;
  std::vector<std::string> contexts;
  std::vector<std::size_t> shard_of;
  for (const ResolveMode mode : kModes) {
    for (const std::size_t shards : kShardAxis) {
      NowParams p = slab_params();
      p.resolve_mode = mode;
      metrics.push_back(std::make_unique<Metrics>());
      systems.push_back(
          std::make_unique<NowSystem>(p, *metrics.back(), 61));
      systems.back()->initialize(900, 90, InitTopology::kModeledSparse);
      victim_rngs.emplace_back(61 ^ 99);
      contexts.push_back("mode " + std::to_string(static_cast<int>(mode)) +
                         " shards " + std::to_string(shards));
      shard_of.push_back(shards);
    }
  }
  for (int round = 0; round < 4; ++round) {
    for (std::size_t v = 0; v < systems.size(); ++v) {
      drive_batch(*systems[v], victim_rngs[v], shard_of[v]);
    }
    const SlabSignature reference = slab_signature(systems[0]->state());
    for (std::size_t v = 1; v < systems.size(); ++v) {
      ASSERT_EQ(slab_signature(systems[v]->state()), reference)
          << contexts[v] << " diverged from " << contexts[0] << " in round "
          << round;
    }
  }
  for (const auto& system : systems) {
    expect_slab_consistent(system->state());
    EXPECT_TRUE(system->check().ok);
  }
}

TEST(MemberSlabTest, ForcedCompactionMidScenarioIsUnobservable) {
  // Gap bytes and dead space are dead: force-compacting one of two
  // identical systems mid-run must not change anything RNG-observable —
  // joins, costs, partitions, homes — even though the extent tables now
  // differ. (Conflict footprints key on slab positions, but every position
  // a batch compares is computed from the same start-of-batch layout.)
  constexpr std::size_t kShards = 4;
  Metrics ma;
  Metrics mb;
  NowSystem a{slab_params(), ma, 17};
  NowSystem b{slab_params(), mb, 17};
  a.initialize(900, 90, InitTopology::kModeledSparse);
  b.initialize(900, 90, InitTopology::kModeledSparse);
  Rng victims_a{17 ^ 3};
  Rng victims_b{17 ^ 3};
  for (int t = 0; t < 2; ++t) {
    drive_batch(a, victims_a, kShards);
    drive_batch(b, victims_b, kShards);
  }

  // The sanctioned test-only mutation path (the slab is handed out const).
  auto& slab_b = const_cast<cluster::MemberSlab&>(b.state().member_slab());
  const std::uint64_t compactions_before = slab_b.compaction_count();
  slab_b.compact();
  ASSERT_EQ(slab_b.compaction_count(), compactions_before + 1);
  expect_slab_consistent(b.state());

  for (int t = 0; t < 4; ++t) {
    const auto [ja, ra] = drive_batch(a, victims_a, kShards);
    const auto [jb, rb] = drive_batch(b, victims_b, kShards);
    ASSERT_EQ(ja, jb) << "batch " << t;
    EXPECT_EQ(ra.cost.messages, rb.cost.messages) << "batch " << t;
    EXPECT_EQ(ra.cost.rounds, rb.cost.rounds) << "batch " << t;
    EXPECT_EQ(ra.conflicts, rb.conflicts) << "batch " << t;
    EXPECT_EQ(ra.splits, rb.splits) << "batch " << t;
    EXPECT_EQ(ra.merges, rb.merges) << "batch " << t;
  }
  EXPECT_EQ(partition_signature(a), partition_signature(b));
  for (const NodeId node : a.state().live_nodes()) {
    ASSERT_EQ(a.state().home_of(node), b.state().home_of(node));
  }
  EXPECT_EQ(a.rng().state(), b.rng().state());
}

TEST(MemberSlabTest, FragmentedSlabSurvivesSnapshotRoundTrip) {
  // Join-heavy churn relocates extents and leaves dead space behind; the
  // snapshot must restore the slab GEOMETRY verbatim (tail + every extent),
  // not just the membership, because compaction triggers and slab positions
  // feed back into behavior.
  const std::string path = testing::TempDir() + "member_slab_frag.snap";
  Metrics ma;
  NowSystem a{slab_params(), ma, 29};
  a.initialize(600, 60, InitTopology::kModeledSparse);
  // A join burst forces splits: each split strands the parent cluster's
  // extent as dead space (guaranteed fragmentation, below the compaction
  // threshold at this scale).
  std::size_t splits = 0;
  for (int i = 0; i < 200; ++i) splits += a.join(false).second.splits;
  ASSERT_GT(splits, 0u);
  Rng victims_a{29 ^ 1};
  for (int t = 0; t < 4; ++t) {
    const auto leaves = a.state().sample_distinct_nodes(victims_a, 4);
    a.step_parallel_mixed(12, 1, leaves, 4);
  }
  // The churn above must actually have fragmented the slab — dead space
  // beyond the live extents' reservations — or this test is vacuous.
  const cluster::MemberSlab& slab_a = a.state().member_slab();
  std::uint64_t reserved = 0;
  for (const ClusterId id : a.state().cluster_ids()) {
    reserved += slab_a.extent(a.state().slot_index(id)).cap;
  }
  EXPECT_GT(slab_a.tail(), reserved) << "churn produced no fragmentation";
  const SlabSignature saved = slab_signature(a.state());
  a.save(path);

  Metrics mb;
  NowSystem b{slab_params(), mb, 29};
  b.load(path);
  ASSERT_EQ(slab_signature(b.state()), saved);
  expect_slab_consistent(b.state());

  // Restore-then-continue stays bit-exact through more sharded batches.
  Rng victims_b{0};
  victims_b.restore_state(victims_a.state());
  for (int t = 0; t < 4; ++t) {
    const auto la = a.state().sample_distinct_nodes(victims_a, 4);
    const auto lb = b.state().sample_distinct_nodes(victims_b, 4);
    ASSERT_EQ(la, lb) << "batch " << t;
    const auto [ja, ra] = a.step_parallel_mixed(6, 1, la, 4);
    const auto [jb, rb] = b.step_parallel_mixed(6, 1, lb, 4);
    ASSERT_EQ(ja, jb) << "batch " << t;
    EXPECT_EQ(ra.cost.messages, rb.cost.messages) << "batch " << t;
  }
  ASSERT_EQ(slab_signature(a.state()), slab_signature(b.state()));
  EXPECT_EQ(partition_signature(a), partition_signature(b));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace now::core
