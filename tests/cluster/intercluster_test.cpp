#include "cluster/intercluster.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace now::cluster {
namespace {

/// Owns the MemberSlab the test clusters view; must outlive the Clusters it
/// hands out.
struct TestArena {
  MemberSlab slab;
  std::size_t next_slot = 0;

  Cluster make(ClusterId id, std::uint64_t first, std::size_t n) {
    const std::size_t slot = next_slot++;
    slab.acquire_slot(slot);
    Cluster c{id, slab, slot};
    for (std::uint64_t i = 0; i < n; ++i) c.add_member(NodeId{first + i});
    return c;
  }
};

TEST(InterclusterTest, CostIsProductOfSizesTimesUnits) {
  const auto cost = cluster_send_cost(5, 7, 3);
  EXPECT_EQ(cost.messages, 5u * 7 * 3);
  EXPECT_EQ(cost.rounds, 1u);
}

TEST(InterclusterTest, HonestMajorityIsAccepted) {
  Metrics metrics;
  TestArena arena;
  const auto from = arena.make(ClusterId{1}, 0, 9);
  const auto to = arena.make(ClusterId{2}, 100, 9);
  const NodeSet byz{NodeId{0}, NodeId{1}, NodeId{2}};  // 3 of 9
  const auto outcome = cluster_send(from, to, 2, byz, metrics);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_FALSE(outcome.forgeable);
  EXPECT_EQ(metrics.total().messages, 9u * 9 * 2);
  EXPECT_EQ(metrics.total().rounds, 0u);  // rounds returned in outcome.cost
  EXPECT_EQ(outcome.cost.rounds, 1u);
}

TEST(InterclusterTest, MinorityHonestIsRejected) {
  Metrics metrics;
  TestArena arena;
  const auto from = arena.make(ClusterId{1}, 0, 8);
  const auto to = arena.make(ClusterId{2}, 100, 8);
  NodeSet byz;
  for (std::uint64_t i = 0; i < 4; ++i) byz.insert(NodeId{i});  // half
  const auto outcome = cluster_send(from, to, 1, byz, metrics);
  // "at least half plus one" -> 4 honest of 8 is NOT enough.
  EXPECT_FALSE(outcome.accepted);
  EXPECT_FALSE(outcome.forgeable);  // 4 byz of 8 can't forge either
}

TEST(InterclusterTest, ByzantineMajorityCanForge) {
  Metrics metrics;
  TestArena arena;
  const auto from = arena.make(ClusterId{1}, 0, 7);
  const auto to = arena.make(ClusterId{2}, 100, 7);
  NodeSet byz;
  for (std::uint64_t i = 0; i < 5; ++i) byz.insert(NodeId{i});
  const auto outcome = cluster_send(from, to, 1, byz, metrics);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_TRUE(outcome.forgeable);
}

TEST(InterclusterTest, ExactTwoThirdsHonestStillAccepted) {
  // The NOW invariant (> 2/3 honest) comfortably implies the > 1/2 rule.
  Metrics metrics;
  TestArena arena;
  const auto from = arena.make(ClusterId{1}, 0, 9);
  const auto to = arena.make(ClusterId{2}, 100, 5);
  const NodeSet byz{NodeId{0}, NodeId{1}};  // 2 of 9 byz
  const auto outcome = cluster_send(from, to, 1, byz, metrics);
  EXPECT_TRUE(outcome.accepted);
}

TEST(InterclusterTest, CostOnlyChargeMatchesClusterSend) {
  // cluster_send_charge is the planners' cost-only path (the sharded
  // engine's exchange waves never consume the majority-rule outcome): it
  // must charge exactly the messages cluster_send charges and return the
  // same round count, for several shapes including the degenerate ones.
  for (const auto& [from_size, to_size, units] :
       {std::tuple<std::size_t, std::size_t, std::uint64_t>{7, 9, 1},
        {1, 1, 1},
        {16, 33, 3},
        {0, 5, 2}}) {
    Metrics full_metrics;
    Metrics charge_metrics;
    TestArena arena;
    const auto from = arena.make(ClusterId{1}, 0, from_size);
    const auto to = arena.make(ClusterId{2}, 100, to_size);
    const auto outcome = cluster_send(from, to, units, {}, full_metrics);
    const std::uint64_t rounds =
        cluster_send_charge(from_size, to_size, units, charge_metrics);
    EXPECT_EQ(charge_metrics.total().messages, full_metrics.total().messages)
        << from_size << "x" << to_size;
    EXPECT_EQ(rounds, outcome.cost.rounds);
    EXPECT_EQ(charge_metrics.total().messages,
              cluster_send_cost(from_size, to_size, units).messages);
  }
}

}  // namespace
}  // namespace now::cluster
