#include "cluster/rand_num.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace now::cluster {
namespace {

std::vector<NodeId> make_members(std::size_t n) {
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; ++i) members.emplace_back(i);
  return members;
}

TEST(RandNumTest, AllHonestAgreeFastMode) {
  Metrics metrics;
  Rng rng{1};
  const auto members = make_members(9);
  for (int i = 0; i < 20; ++i) {
    const auto result = run_rand_num(members, {}, 100, RandNumMode::kFast,
                                     RandNumByz::kFollow, metrics, rng);
    EXPECT_TRUE(result.agreement);
    EXPECT_LT(result.value, 100u);
  }
}

TEST(RandNumTest, FastModeCostMatchesModel) {
  Metrics metrics;
  Rng rng{2};
  const auto members = make_members(12);
  const auto result = run_rand_num(members, {}, 64, RandNumMode::kFast,
                                   RandNumByz::kFollow, metrics, rng);
  const Cost model = rand_num_cost_model(12, RandNumMode::kFast);
  EXPECT_EQ(result.messages, model.messages);
  EXPECT_EQ(result.rounds, model.rounds);
}

TEST(RandNumTest, RobustModeCostMatchesModelWhenAllFollow) {
  Metrics metrics;
  Rng rng{3};
  const auto members = make_members(8);
  const auto result = run_rand_num(members, {}, 64, RandNumMode::kRobust,
                                   RandNumByz::kFollow, metrics, rng);
  const Cost model = rand_num_cost_model(8, RandNumMode::kRobust);
  EXPECT_EQ(result.messages, model.messages);
  EXPECT_EQ(result.rounds, model.rounds);
  EXPECT_TRUE(result.agreement);
}

TEST(RandNumTest, OutputIsUniformAllHonest) {
  Metrics metrics;
  Rng rng{4};
  const auto members = make_members(7);
  constexpr std::uint64_t kRange = 8;
  constexpr int kTrials = 16000;
  std::vector<std::uint64_t> counts(kRange, 0);
  for (int i = 0; i < kTrials; ++i) {
    const auto result = run_rand_num(members, {}, kRange, RandNumMode::kFast,
                                     RandNumByz::kFollow, metrics, rng);
    counts[result.value]++;
  }
  std::vector<double> probs(kRange, 1.0 / kRange);
  const double stat = chi_square_statistic(counts, probs);
  EXPECT_GT(chi_square_p_value(stat, kRange - 1), 1e-4);
}

TEST(RandNumTest, BiasedContributionsCannotSkewOutput) {
  // Byzantine members always contribute 0; the sum of honest uniform
  // contributions keeps the result uniform (no-rushing synchrony).
  Metrics metrics;
  Rng rng{5};
  const auto members = make_members(9);
  const NodeSet byz{NodeId{0}, NodeId{1}};
  constexpr std::uint64_t kRange = 8;
  constexpr int kTrials = 16000;
  std::vector<std::uint64_t> counts(kRange, 0);
  for (int i = 0; i < kTrials; ++i) {
    const auto result = run_rand_num(members, byz, kRange, RandNumMode::kFast,
                                     RandNumByz::kBiased, metrics, rng);
    EXPECT_TRUE(result.agreement);
    counts[result.value]++;
  }
  std::vector<double> probs(kRange, 1.0 / kRange);
  const double stat = chi_square_statistic(counts, probs);
  EXPECT_GT(chi_square_p_value(stat, kRange - 1), 1e-4);
}

TEST(RandNumTest, SilentByzantineStillAgreesAndUniform) {
  Metrics metrics;
  Rng rng{6};
  const auto members = make_members(10);
  const NodeSet byz{NodeId{2}, NodeId{5}, NodeId{7}};
  constexpr std::uint64_t kRange = 4;
  std::vector<std::uint64_t> counts(kRange, 0);
  for (int i = 0; i < 12000; ++i) {
    const auto result = run_rand_num(members, byz, kRange, RandNumMode::kFast,
                                     RandNumByz::kSilent, metrics, rng);
    EXPECT_TRUE(result.agreement);  // silence is symmetric: views agree
    counts[result.value]++;
  }
  std::vector<double> probs(kRange, 1.0 / kRange);
  const double stat = chi_square_statistic(counts, probs);
  EXPECT_GT(chi_square_p_value(stat, kRange - 1), 1e-4);
}

TEST(RandNumTest, SelectiveRevealDivergesFastModeSometimes) {
  // The ablation the robust echo round exists for: an equivocating revealer
  // makes kFast honest views diverge in some runs.
  Metrics metrics;
  Rng rng{7};
  const auto members = make_members(9);
  const NodeSet byz{NodeId{0}, NodeId{4}};
  int divergences = 0;
  for (int i = 0; i < 300; ++i) {
    const auto result =
        run_rand_num(members, byz, 1000, RandNumMode::kFast,
                     RandNumByz::kSelectiveReveal, metrics, rng);
    divergences += result.agreement ? 0 : 1;
  }
  EXPECT_GT(divergences, 0);
}

TEST(RandNumTest, SelectiveRevealNeverDivergesRobustMode) {
  Metrics metrics;
  Rng rng{8};
  const auto members = make_members(9);
  const NodeSet byz{NodeId{0}, NodeId{4}};
  for (int i = 0; i < 300; ++i) {
    const auto result =
        run_rand_num(members, byz, 1000, RandNumMode::kRobust,
                     RandNumByz::kSelectiveReveal, metrics, rng);
    EXPECT_TRUE(result.agreement);
  }
}

TEST(RandNumTest, SingleMemberShortCircuit) {
  Metrics metrics;
  Rng rng{9};
  const auto members = make_members(1);
  const auto result = run_rand_num(members, {}, 10, RandNumMode::kRobust,
                                   RandNumByz::kFollow, metrics, rng);
  EXPECT_TRUE(result.agreement);
  EXPECT_LT(result.value, 10u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(RandNumTest, BulkDrawChargesModelMessages) {
  Metrics metrics;
  Rng rng{10};
  const auto draw =
      rand_num_value(15, 1000, RandNumMode::kFast, metrics, rng);
  EXPECT_LT(draw.value, 1000u);
  EXPECT_EQ(metrics.total().messages,
            rand_num_cost_model(15, RandNumMode::kFast).messages);
  EXPECT_EQ(metrics.total().rounds, 0u);  // rounds returned, not charged
  EXPECT_EQ(draw.cost.rounds,
            rand_num_cost_model(15, RandNumMode::kFast).rounds);
}

TEST(RandNumTest, CostModelMonotoneInSizeAndMode) {
  for (std::size_t s = 2; s < 40; ++s) {
    const auto fast = rand_num_cost_model(s, RandNumMode::kFast);
    const auto robust = rand_num_cost_model(s, RandNumMode::kRobust);
    EXPECT_LT(fast.messages, robust.messages);
    EXPECT_LT(rand_num_cost_model(s - 1, RandNumMode::kFast).messages,
              fast.messages);
  }
}

}  // namespace
}  // namespace now::cluster
