#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace now::cluster {
namespace {

TEST(ClusterTest, MembershipBasics) {
  Cluster c{ClusterId{1}};
  EXPECT_EQ(c.id(), ClusterId{1});
  EXPECT_EQ(c.size(), 0u);
  c.add_member(NodeId{5});
  c.add_member(NodeId{3});
  c.add_member(NodeId{9});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.contains(NodeId{3}));
  EXPECT_FALSE(c.contains(NodeId{4}));
  c.remove_member(NodeId{3});
  EXPECT_FALSE(c.contains(NodeId{3}));
  EXPECT_EQ(c.size(), 2u);
}

TEST(ClusterTest, MembersStaySorted) {
  Cluster c{ClusterId{2}};
  for (const auto v : {9, 1, 5, 3, 7}) c.add_member(NodeId{
      static_cast<std::uint64_t>(v)});
  const auto& members = c.members();
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(c.member_at(0), NodeId{1});
  EXPECT_EQ(c.member_at(4), NodeId{9});
}

TEST(ClusterTest, RandomMemberIsAMember) {
  Cluster c{ClusterId{3}};
  for (std::uint64_t v = 0; v < 10; ++v) c.add_member(NodeId{v});
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.contains(c.random_member(rng)));
}

TEST(ClusterTest, ByzantineCounting) {
  Cluster c{ClusterId{4}};
  for (std::uint64_t v = 0; v < 9; ++v) c.add_member(NodeId{v});
  NodeSet byz{NodeId{0}, NodeId{4}, NodeId{8}, NodeId{100}};
  EXPECT_EQ(byzantine_count(c, byz), 3u);  // 100 is not a member
  EXPECT_DOUBLE_EQ(byzantine_fraction(c, byz), 1.0 / 3.0);
}

TEST(ClusterTest, ByzantineFractionOfEmptyClusterIsZero) {
  Cluster c{ClusterId{5}};
  EXPECT_DOUBLE_EQ(byzantine_fraction(c, {NodeId{1}}), 0.0);
}

}  // namespace
}  // namespace now::cluster
