#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace now::cluster {
namespace {

/// A Cluster is a thin view over a MemberSlab extent; the fixture owns the
/// slab and hands out slab-backed clusters on sequential slots.
class ClusterTest : public ::testing::Test {
 protected:
  Cluster make(ClusterId id) {
    const std::size_t slot = next_slot_++;
    slab_.acquire_slot(slot);
    return Cluster{id, slab_, slot};
  }

  MemberSlab slab_;
  std::size_t next_slot_ = 0;
};

TEST_F(ClusterTest, MembershipBasics) {
  Cluster c = make(ClusterId{1});
  EXPECT_EQ(c.id(), ClusterId{1});
  EXPECT_EQ(c.size(), 0u);
  c.add_member(NodeId{5});
  c.add_member(NodeId{3});
  c.add_member(NodeId{9});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.contains(NodeId{3}));
  EXPECT_FALSE(c.contains(NodeId{4}));
  c.remove_member(NodeId{3});
  EXPECT_FALSE(c.contains(NodeId{3}));
  EXPECT_EQ(c.size(), 2u);
}

TEST_F(ClusterTest, MembersStaySorted) {
  Cluster c = make(ClusterId{2});
  for (const auto v : {9, 1, 5, 3, 7}) c.add_member(NodeId{
      static_cast<std::uint64_t>(v)});
  const auto members = c.members();
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  EXPECT_EQ(c.member_at(0), NodeId{1});
  EXPECT_EQ(c.member_at(4), NodeId{9});
}

TEST_F(ClusterTest, RandomMemberIsAMember) {
  Cluster c = make(ClusterId{3});
  for (std::uint64_t v = 0; v < 10; ++v) c.add_member(NodeId{v});
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(c.contains(c.random_member(rng)));
}

TEST_F(ClusterTest, ByzantineCounting) {
  Cluster c = make(ClusterId{4});
  for (std::uint64_t v = 0; v < 9; ++v) c.add_member(NodeId{v});
  NodeSet byz{NodeId{0}, NodeId{4}, NodeId{8}, NodeId{100}};
  EXPECT_EQ(byzantine_count(c, byz), 3u);  // 100 is not a member
  EXPECT_DOUBLE_EQ(byzantine_fraction(c, byz), 1.0 / 3.0);
  // The sorted-span overload streams the extent and must agree.
  const std::vector<NodeId> sorted_byz{NodeId{0}, NodeId{4}, NodeId{8},
                                       NodeId{100}};
  EXPECT_EQ(byzantine_count(c, sorted_byz), 3u);
  EXPECT_DOUBLE_EQ(byzantine_fraction(c, sorted_byz), 1.0 / 3.0);
}

TEST_F(ClusterTest, ByzantineFractionOfEmptyClusterIsZero) {
  Cluster c = make(ClusterId{5});
  EXPECT_DOUBLE_EQ(byzantine_fraction(c, {NodeId{1}}), 0.0);
  EXPECT_DOUBLE_EQ(
      byzantine_fraction(c, std::vector<NodeId>{NodeId{1}}), 0.0);
}

TEST_F(ClusterTest, ApplySortedEditsMergesInOnePass) {
  Cluster c = make(ClusterId{6});
  for (std::uint64_t v = 0; v < 10; v += 2) c.add_member(NodeId{v});  // 0..8
  std::vector<NodeId> scratch;
  const std::vector<NodeId> removals{NodeId{2}, NodeId{6}};
  const std::vector<NodeId> additions{NodeId{1}, NodeId{9}};
  c.apply_sorted_edits(removals, additions, scratch);
  const std::vector<NodeId> expect{NodeId{0}, NodeId{1}, NodeId{4},
                                   NodeId{8}, NodeId{9}};
  const auto members = c.members();
  ASSERT_EQ(members.size(), expect.size());
  EXPECT_TRUE(std::equal(members.begin(), members.end(), expect.begin()));
}

TEST_F(ClusterTest, StaleRemovalListThrowsInsteadOfCorrupting) {
  Cluster c = make(ClusterId{7});
  c.add_member(NodeId{1});
  std::vector<NodeId> scratch;
  // More removals than members: the old code's reserve arithmetic wrapped
  // in release builds; now it must throw.
  const std::vector<NodeId> too_many{NodeId{1}, NodeId{2}, NodeId{3}};
  EXPECT_THROW(c.apply_sorted_edits(too_many, {}, scratch),
               std::invalid_argument);
  // A removal naming a non-member (same lengths) must also throw.
  const std::vector<NodeId> stale{NodeId{2}};
  EXPECT_THROW(c.apply_sorted_edits(stale, {}, scratch),
               std::invalid_argument);
  // The membership survived both rejected edits.
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(NodeId{1}));
}

}  // namespace
}  // namespace now::cluster
