#include <gtest/gtest.h>

#include "adversary/adversary.hpp"
#include "baseline/no_shuffle.hpp"
#include "baseline/single_cluster.hpp"
#include "baseline/static_partition.hpp"

namespace now::baseline {
namespace {

core::NowParams base_params() {
  core::NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = core::WalkMode::kSampleExact;
  return p;
}

TEST(SingleClusterTest, FlatCostsScaleAsExpected) {
  // Agreement ~ n^3, broadcast ~ n^2, sampling ~ n.
  EXPECT_GT(flat_agreement_cost(200).messages,
            7 * flat_agreement_cost(100).messages);
  EXPECT_NEAR(static_cast<double>(flat_broadcast_cost(200).messages) /
                  static_cast<double>(flat_broadcast_cost(100).messages),
              4.0, 0.1);
  EXPECT_EQ(flat_sampling_cost(500).messages, 500u);
}

TEST(NoShuffleTest, ParamsOnlyDisableShuffling) {
  core::NowParams p = base_params();
  const auto q = no_shuffle_params(p);
  EXPECT_FALSE(q.shuffle_enabled);
  EXPECT_EQ(q.max_size, p.max_size);
  EXPECT_EQ(q.k, p.k);
}

TEST(NoShuffleTest, JoinLeaveAttackEventuallyCapturesACluster) {
  // Section 3.3's motivating attack: without exchange, cycling Byzantine
  // nodes through join/leave concentrates them in the victim cluster.
  Metrics metrics;
  core::NowSystem system{no_shuffle_params(base_params()), metrics, 1};
  system.initialize(300, 45);
  adversary::JoinLeaveAdversary attacker{0.15,
                                         adversary::ChurnSchedule::hold(300),
                                         /*background_churn=*/0.0};
  Rng rng{2};
  bool captured = false;
  for (std::size_t t = 1; t <= 2500 && !captured; ++t) {
    attacker.step(system, t, rng);
    captured = system.check().compromised_clusters > 0;
  }
  EXPECT_TRUE(captured)
      << "join-leave attack failed to capture a cluster without shuffling";
}

TEST(StaticPartitionTest, ClusterCountStaysFixedUnderGrowth) {
  Metrics metrics;
  StaticPartitionSystem system{base_params(), metrics, 3};
  system.initialize(300, 30);
  const std::size_t clusters_before = system.system().num_clusters();
  for (int i = 0; i < 300; ++i) system.join(false);
  EXPECT_EQ(system.system().num_clusters(), clusters_before);
  EXPECT_EQ(system.num_nodes(), 600u);
}

TEST(StaticPartitionTest, ClusterSizesBlowUpUnderGrowth) {
  // The paper's core argument against static #clusters: growing n inflates
  // every cluster linearly.
  Metrics metrics;
  StaticPartitionSystem system{base_params(), metrics, 4};
  system.initialize(300, 30);
  const std::size_t max_before = system.max_cluster_size();
  for (int i = 0; i < 600; ++i) system.join(false);
  EXPECT_GT(system.max_cluster_size(), 2 * max_before);
}

TEST(StaticPartitionTest, PerOperationCostGrowsWithN) {
  Metrics metrics;
  StaticPartitionSystem system{base_params(), metrics, 5};
  system.initialize(300, 0);
  const auto [n1, early] = system.join(false);
  for (int i = 0; i < 600; ++i) system.join(false);
  const auto [n2, late] = system.join(false);
  EXPECT_GT(late.cost.messages, 2 * early.cost.messages)
      << "static partition join cost should inflate with n";
}

TEST(StaticPartitionTest, LeavesWork) {
  Metrics metrics;
  StaticPartitionSystem system{base_params(), metrics, 6};
  system.initialize(300, 0);
  const auto node = system.system().state().random_node(
      system.system().rng());
  system.leave(node);
  EXPECT_EQ(system.num_nodes(), 299u);
}

}  // namespace
}  // namespace now::baseline
